//! # xkaapi — workspace facade
//!
//! Reproduction of *“X-Kaapi: a Multi Paradigm Runtime for Multicore
//! Architectures”* (Gautier, Lementec, Faucher, Raffin — ICPP 2013 workshop
//! P2S2). This root crate re-exports every workspace crate so the examples
//! in `examples/` and the integration tests in `tests/` can reach the whole
//! system through one dependency. See `README.md` for the tour and the
//! layer-stack diagram (facade → paradigm front-ends → engine → queue/steal
//! policies).
//!
//! The commonly-used engine types are additionally re-exported at the top
//! level, so `xkaapi::Runtime` works alongside the per-subsystem paths
//! (`xkaapi::core::Runtime`, `xkaapi::omp::OmpPool`, …).

#![warn(missing_docs)]

pub use xkaapi_astl as astl;
pub use xkaapi_core as core;
pub use xkaapi_epx as epx;
pub use xkaapi_forkjoin as forkjoin;
pub use xkaapi_linalg as linalg;
pub use xkaapi_omp as omp;
pub use xkaapi_quark as quark;
pub use xkaapi_sim as sim;
pub use xkaapi_skyline as skyline;

#[cfg(feature = "fault-injection")]
pub use xkaapi_core::FaultPlan;
pub use xkaapi_core::{
    Access, AccessMode, Affinity, AggregatedStealing, Builder, CancelToken, Ctx, DataflowEngine,
    DistanceMatrix, DistributedLanes, HandleId, HierarchicalVictim, JobBuilder, LocalityFirst,
    Partitioned, PerThiefStealing, Priority, PromotionPolicy, RecCtx, RecordStats, RecordedDag,
    Reduction, Region, RenamePolicy, ReplayTrace, Runtime, Shared, StatsSnapshot, StealPolicy,
    SubmitError, TaskAttrs, TaskBuilder, TaskQueue, Topology, Track, TrackEngine, Tunables,
    UniformVictim, VictimChoice, WorkItem,
};
pub use xkaapi_core::{JoinHandle, OffloadTunables};
