//! # xkaapi-repro — workspace root
//!
//! Reproduction of *“X-Kaapi: a Multi Paradigm Runtime for Multicore
//! Architectures”* (Gautier, Lementec, Faucher, Raffin — ICPP 2013 workshop
//! P2S2). This root crate re-exports every workspace crate so the examples
//! in `examples/` and the integration tests in `tests/` can reach the whole
//! system through one dependency. See `README.md` for the tour and
//! `DESIGN.md` for the system inventory.

pub use xkaapi_astl as astl;
pub use xkaapi_core as core;
pub use xkaapi_epx as epx;
pub use xkaapi_forkjoin as forkjoin;
pub use xkaapi_linalg as linalg;
pub use xkaapi_omp as omp;
pub use xkaapi_quark as quark;
pub use xkaapi_sim as sim;
pub use xkaapi_skyline as skyline;
