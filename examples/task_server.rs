//! The server scenario the injection subsystem exists for (ISSUE 4): N
//! submitter threads — stand-ins for connection handlers or an async
//! reactor — feed one runtime through the non-blocking
//! [`Runtime::submit`] front door, mixing the three completion styles:
//!
//! * **fire-and-forget** — drop the [`JoinHandle`]; the job still runs;
//! * **poll** — `try_result`/`is_done` from the submitter's own loop;
//! * **notify** — `on_complete` wakes the submitter, reactor-style, so no
//!   thread ever parks per in-flight request.
//!
//! Admission uses a bounded [`InjectPolicy`]: under flood the runtime
//! throttles (`Block`) instead of growing its queues without bound. The
//! example asserts every request was served exactly once and prints the
//! throughput plus the per-lane drain counters — CI runs it in release
//! mode as the server-path smoke gate.
//!
//! Since PR 9 the server also demonstrates the always-on telemetry
//! layer (DESIGN.md §9): tracing is enabled at build time, a reporter
//! thread prints a live stats snapshot (throughput plus per-band
//! submit→start p50/p99) every 25 ms while the flood runs — the sort
//! of periodic self-report a production server would export — and on
//! shutdown the accumulated event trace is dumped as
//! `task_server_trace.json`, a Perfetto-loadable chrome trace with one
//! lane per worker (CI uploads it next to the bench artifacts).
//!
//! Since PR 10 the server also demonstrates the **io track** (DESIGN.md
//! §10): request handlers that block on an external event — a database
//! reply, an upstream socket — are submitted with `.wait_external()`
//! and run on the dedicated io thread set instead of a CPU worker. The
//! demo parks one blocking stage per CPU worker behind a gate, re-runs
//! the CPU flood while they sit blocked, and asserts the flood's
//! throughput is unharmed — the proof that blockers never occupy the
//! compute pool.
//!
//! ```bash
//! cargo run --release --example task_server
//! ```
//!
//! [`Runtime::submit`]: xkaapi::core::Runtime::submit
//! [`JoinHandle`]: xkaapi::core::JoinHandle
//! [`InjectPolicy`]: xkaapi::core::InjectPolicy

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};
use xkaapi::core::{InjectPolicy, OnFull, Runtime, Topology};

/// ~1 µs of un-optimizable "request handling" work.
fn handle_request(tag: u64) -> u64 {
    let mut acc = tag;
    for i in 0..400 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc);
    tag
}

fn main() {
    let workers = 8usize;
    let submitters = 4usize;
    let requests_per_submitter = 5_000u64;
    // Model a 2-node machine so the sharded lanes actually shard, whatever
    // host CI runs on; a bounded admission window exercises backpressure.
    let rt = Arc::new(
        Runtime::builder()
            .workers(workers)
            .topology(Topology::two_level(workers, workers / 2))
            .inject_policy(InjectPolicy {
                max_pending: 256,
                on_full: OnFull::Block,
            })
            .tracing(true)
            .build(),
    );
    println!(
        "task_server: {workers} workers, {} inject lanes, {submitters} submitters x {requests_per_submitter} requests",
        rt.inject_lane_count()
    );

    let served = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));
    let start = Arc::new(Barrier::new(submitters + 1));
    let threads: Vec<_> = (0..submitters)
        .map(|s| {
            let rt = Arc::clone(&rt);
            let served = Arc::clone(&served);
            let checksum = Arc::clone(&checksum);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                let base = (s as u64) << 40;
                let third = requests_per_submitter / 3;
                // 1/3 fire-and-forget: handle dropped, job detached.
                for i in 0..third {
                    let (sv, ck) = (Arc::clone(&served), Arc::clone(&checksum));
                    drop(rt.submit(move |_ctx| {
                        ck.fetch_add(handle_request(base + i), Ordering::Relaxed);
                        sv.fetch_add(1, Ordering::Relaxed);
                    }));
                }
                // 1/3 polled: submit a batch, then poll handles to drain.
                let mut polled: Vec<_> = (third..2 * third)
                    .map(|i| {
                        let sv = Arc::clone(&served);
                        rt.submit(move |_ctx| {
                            sv.fetch_add(1, Ordering::Relaxed);
                            handle_request(base + i)
                        })
                        .expect("Block policy never rejects")
                    })
                    .collect();
                while !polled.is_empty() {
                    polled.retain_mut(|h| match h.try_result() {
                        Some(v) => {
                            checksum.fetch_add(v, Ordering::Relaxed);
                            false
                        }
                        None => true,
                    });
                    std::thread::yield_now();
                }
                // The rest notified: on_complete signals this "reactor".
                let notify = Arc::new((Mutex::new(0u64), Condvar::new()));
                let expected = requests_per_submitter - 2 * third;
                for i in 2 * third..requests_per_submitter {
                    let (sv, ck) = (Arc::clone(&served), Arc::clone(&checksum));
                    let h = rt
                        .submit(move |_ctx| {
                            ck.fetch_add(handle_request(base + i), Ordering::Relaxed);
                            sv.fetch_add(1, Ordering::Relaxed);
                        })
                        .expect("Block policy never rejects");
                    let notify = Arc::clone(&notify);
                    h.on_complete(move || {
                        let (mx, cv) = &*notify;
                        *mx.lock().unwrap() += 1;
                        cv.notify_one();
                    });
                }
                let (mx, cv) = &*notify;
                let mut done = mx.lock().unwrap();
                while *done < expected {
                    done = cv.wait(done).unwrap();
                }
            })
        })
        .collect();

    // Live telemetry reporter: while the flood runs, snapshot the runtime
    // every 25 ms and print throughput plus the per-band submit→start
    // quantiles. Each `stats()` call also drains the per-worker event
    // rings into the trace session, so a long-lived server never
    // overflows its rings between exports.
    let stop = Arc::new(AtomicBool::new(false));
    let reporter = {
        let (rt, served, stop) = (Arc::clone(&rt), Arc::clone(&served), Arc::clone(&stop));
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut last = 0u64;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(25));
                let now = served.load(Ordering::Relaxed);
                let lat = rt.stats().latency;
                let q = &lat.submit_to_start[1]; // submit() jobs are Normal band
                println!(
                    "  [live {:>5.0} ms] served {now} (+{}), normal-band submit→start \
                     p50 {:.1} µs p99 {:.1} µs",
                    t0.elapsed().as_secs_f64() * 1e3,
                    now - last,
                    q.p50_ns as f64 / 1e3,
                    q.p99_ns as f64 / 1e3,
                );
                last = now;
            }
        })
    };

    start.wait();
    let t0 = Instant::now();
    for t in threads {
        t.join().unwrap();
    }
    // The notify/poll thirds are provably done; spin out the tail of the
    // fire-and-forget third.
    let total = submitters as u64 * requests_per_submitter;
    while served.load(Ordering::Relaxed) < total {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    reporter.join().unwrap();

    // Every request served exactly once, and the expected checksum landed.
    assert_eq!(served.load(Ordering::Relaxed), total);
    let expect: u64 = (0..submitters as u64)
        .flat_map(|s| (0..requests_per_submitter).map(move |i| (s << 40) + i))
        .fold(0u64, |acc, tag| acc.wrapping_add(handle_request(tag)));
    assert_eq!(
        checksum.load(Ordering::Relaxed),
        expect,
        "lost or duplicated requests"
    );

    let snap = rt.stats();
    assert_eq!(snap.jobs_submitted, total);
    assert_eq!(snap.jobs_rejected, 0);
    let per_s = total as f64 / elapsed.as_secs_f64();
    println!(
        "served {total} requests in {:.1} ms ({per_s:.0} req/s)",
        elapsed.as_secs_f64() * 1e3
    );
    for (node, l) in rt.inject_lane_stats().iter().enumerate() {
        println!(
            "  lane[node {node}]: submitted {} drained {}",
            l.submitted, l.drained
        );
    }
    println!(
        "  drains: own-node {} remote-node {} (workers visit their own node's lane first; \
         the split depends on host scheduling — see ablation for the asserted property)",
        snap.inject_own_lane, snap.inject_remote_lane
    );

    // --- blocking-stage demo (PR 10): Track::Io vs the CPU pool --------
    // A request that blocks on an external event must never occupy a CPU
    // worker. Measure a pure-CPU flood, then park one blocking stage per
    // worker on the io track (gated on a condvar, i.e. blocked for the
    // whole measurement) and measure the same flood again: with the
    // blockers on the io thread set, CPU throughput is unharmed. Were
    // they on the CPU track, all eight workers would sit in the wait.
    let cpu_flood = |rt: &Arc<Runtime>, n: u64| -> Duration {
        let t0 = Instant::now();
        let hs: Vec<_> = (0..n)
            .map(|i| {
                rt.submit(move |_ctx| handle_request(i))
                    .expect("Block policy never rejects")
            })
            .collect();
        for h in hs {
            std::hint::black_box(h.wait());
        }
        t0.elapsed()
    };
    let io_before = rt.stats().tasks_io;
    let baseline = cpu_flood(&rt, 20_000);
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let blockers: Vec<_> = (0..workers)
        .map(|_| {
            let gate = Arc::clone(&gate);
            rt.task()
                .wait_external()
                .submit(move |_ctx| {
                    let (mx, cv) = &*gate;
                    let mut open = mx.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                })
                .expect("io submits bypass the bounded CPU admission window")
        })
        .collect();
    let blocked = cpu_flood(&rt, 20_000);
    {
        let (mx, cv) = &*gate;
        *mx.lock().unwrap() = true;
        cv.notify_all();
    }
    for h in blockers {
        h.wait();
    }
    let io_served = rt.stats().tasks_io - io_before;
    assert_eq!(
        io_served, workers as u64,
        "every blocking stage ran on the io thread set"
    );
    let ratio = blocked.as_secs_f64() / baseline.as_secs_f64().max(1e-9);
    println!(
        "io track: {workers} blocked stages held off-pool; CPU flood {:.1} ms \
         baseline vs {:.1} ms alongside blockers ({ratio:.2}x)",
        baseline.as_secs_f64() * 1e3,
        blocked.as_secs_f64() * 1e3,
    );
    assert!(
        ratio < 3.0,
        "CPU throughput collapsed with io-track blockers in flight ({ratio:.2}x)"
    );

    // Shutdown trace export: everything the workers recorded over the
    // whole run, one Perfetto lane per worker (job spans, inject drains,
    // steal attempts, park/unpark). A real server would dump this on
    // SIGTERM or behind a debug endpoint.
    let trace = rt.take_trace();
    let chrome = trace.to_chrome_trace();
    std::fs::write("task_server_trace.json", &chrome).expect("write trace");
    println!(
        "wrote task_server_trace.json ({} events across {} worker lanes, {} dropped)",
        trace.total_events(),
        trace.worker_count(),
        trace.dropped()
    );
    assert!(trace.total_events() > 0, "tracing was on; trace is empty");

    // Graceful teardown (DESIGN.md §8): a real server bounds its shutdown
    // instead of dropping the pool blind. All submitters have joined, so we
    // are the sole owner; every lane is already drained, so the bounded
    // drain must report clean.
    let Ok(rt) = Arc::try_unwrap(rt) else {
        unreachable!("submitter threads joined; main is the sole runtime owner");
    };
    let drained = rt.shutdown_timeout(Duration::from_secs(5));
    assert!(drained, "lanes were empty; shutdown must drain in bound");
    println!("task_server: OK (graceful shutdown, queues drained)");
}
