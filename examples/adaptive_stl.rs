//! The adaptive STL-like algorithm layer: parallel transform, reduce,
//! prefix sum, find, min and merge sort over the X-Kaapi runtime.
//!
//! ```text
//! cargo run --release --example adaptive_stl [n]
//! ```

use std::time::Instant;
use xkaapi::astl;
use xkaapi::core::Runtime;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let rt = Runtime::new(4);
    println!("adaptive STL algorithms, n = {n}");

    let mut data: Vec<u64> = (0..n as u64)
        .map(|i| (i * 2_654_435_761) % 1_000_003)
        .collect();

    let t0 = Instant::now();
    astl::for_each_mut(&rt, &mut data, |x| {
        *x = (*x).wrapping_mul(3).wrapping_add(1) % 1_000_003
    });
    println!(
        "for_each_mut   : {:7.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    let mut squares = vec![0u64; n];
    let t0 = Instant::now();
    astl::transform(&rt, &data, &mut squares, |&x| (x * x) % 1_000_003);
    println!(
        "transform      : {:7.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    let t0 = Instant::now();
    let total: u64 = astl::reduce(&rt, &data, || 0u64, |a, &x| *a += x, |a, b| a + b);
    println!(
        "reduce         : {:7.1} ms (sum = {total})",
        t0.elapsed().as_secs_f64() * 1e3
    );

    let mut scanned = data.clone();
    let t0 = Instant::now();
    astl::inclusive_scan(&rt, &mut scanned, |a, b| a.wrapping_add(b));
    println!(
        "inclusive_scan : {:7.1} ms (last = {}, equals reduce: {})",
        t0.elapsed().as_secs_f64() * 1e3,
        scanned[n - 1],
        scanned[n - 1] == total
    );

    let t0 = Instant::now();
    let pos = astl::find_first(&rt, &data, |&x| x == data[n / 2]);
    println!(
        "find_first     : {:7.1} ms (index {pos:?})",
        t0.elapsed().as_secs_f64() * 1e3
    );

    let t0 = Instant::now();
    let m = astl::min_element(&rt, &data).unwrap();
    println!(
        "min_element    : {:7.1} ms (data[{m}] = {})",
        t0.elapsed().as_secs_f64() * 1e3,
        data[m]
    );

    let t0 = Instant::now();
    astl::merge_sort(&rt, &mut data);
    println!(
        "merge_sort     : {:7.1} ms (sorted: {})",
        t0.elapsed().as_secs_f64() * 1e3,
        data.windows(2).all(|w| w[0] <= w[1])
    );
}
