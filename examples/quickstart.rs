//! Quickstart: the three paradigms of the X-Kaapi runtime in one program.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xkaapi::core::{Reduction, Runtime, Shared};

fn main() {
    // Builder defaults: available parallelism, overridable via
    // XKAAPI_WORKERS / XKAAPI_GRAIN_FACTOR without recompiling.
    let rt = Runtime::builder().build();
    println!("X-Kaapi quickstart on {} workers", rt.num_workers());

    // ------------------------------------------------------------------
    // 1. Data-flow tasks: declare accesses, the runtime orders the tasks.
    //    (read-after-write: the reader always sees 21.)
    let a = Shared::new(0u64);
    let b = Shared::new(0u64);
    rt.scope(|ctx| {
        let (a1, a2, b1) = (a.clone(), a.clone(), b.clone());
        ctx.spawn([a.write()], move |t| {
            *t.write(&a1) = 21;
        });
        ctx.spawn([a.read(), b.write()], move |t| {
            *t.write(&b1) = 2 * *t.read(&a2);
        });
    });
    println!("dataflow:   a=21 -> b = {}", b.get());

    // ------------------------------------------------------------------
    // 2. Fork-join (Cilk-style): recursive divide and conquer.
    fn fib(ctx: &mut xkaapi::core::Ctx<'_>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (x, y) = ctx.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        x + y
    }
    let f = rt.scope(|ctx| fib(ctx, 30));
    println!("fork-join:  fib(30) = {f}");

    // ------------------------------------------------------------------
    // 3. Adaptive parallel loops: split on demand when workers idle.
    let sum = rt.foreach_reduce(
        0..1_000_000,
        None,
        || 0u64,
        |s, i| *s += i as u64,
        |a, b| a + b,
    );
    println!("foreach:    sum(0..1e6) = {sum}");

    // Reductions through the cumulative-write access mode:
    let red = Reduction::with_slots(0u64, rt.num_workers(), || 0, |a, b| *a += b);
    let out = Shared::new(0u64);
    rt.scope(|ctx| {
        for i in 1..=1000u64 {
            let r = red.clone();
            ctx.spawn([red.cumul()], move |t| t.fold(&r, |acc| *acc += i));
        }
        let (r, o) = (red.clone(), out.clone());
        ctx.spawn([red.read(), out.write()], move |t| {
            *t.write(&o) = *t.read_reduced(&r);
        });
    });
    println!("reduction:  sum(1..=1000) = {}", out.get());

    // Scheduler statistics (steals, aggregation, promotions):
    let s = rt.stats();
    println!(
        "stats:      {} tasks, {} stolen, {} combines served {} requests",
        s.tasks_executed(),
        s.tasks_executed_stolen,
        s.combine_batches,
        s.combine_served
    );
}
