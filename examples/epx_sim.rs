//! The EPX mini-app end to end: run the MEPPEN and MAXPLANE scenarios under
//! all three execution modes and print per-phase time decompositions (the
//! real-machine counterpart of Fig. 8).
//!
//! ```text
//! cargo run --release --example epx_sim [scale] [threads]
//! ```

use xkaapi::core::Runtime;
use xkaapi::epx::{run, ExecMode, Scenario};
use xkaapi::omp::{OmpPool, Schedule};

fn show(name: &str, r: &xkaapi::epx::RunResult) {
    let t = r.times;
    println!(
        "  {name:16} total {:7.3}s  (repera {:.3} | loopelm {:.3} | cholesky {:.3} | other {:.3})  checksum {:+.6}",
        t.total(),
        t.repera,
        t.loopelm,
        t.cholesky,
        t.other,
        r.checksum
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let rt = Runtime::new(threads);
    let pool = OmpPool::new(threads);

    for sc in [Scenario::meppen(scale), Scenario::maxplane(scale)] {
        println!(
            "{} (mesh {:?}, {} steps, H ≥ {}):",
            sc.name, sc.mesh, sc.steps, sc.h_min_size
        );
        let r_seq = run(&sc, &ExecMode::Seq);
        show("sequential", &r_seq);
        let r_rt = run(&sc, &ExecMode::Xkaapi(&rt));
        show("xkaapi", &r_rt);
        let r_omp = run(&sc, &ExecMode::Omp(&pool, Schedule::Dynamic(16)));
        show("openmp-like", &r_omp);
        assert!(
            (r_seq.checksum - r_rt.checksum).abs() < 1e-9
                && (r_seq.checksum - r_omp.checksum).abs() < 1e-9,
            "physics must agree across execution modes"
        );
        println!("  (checksums agree across all modes)\n");
    }
}
