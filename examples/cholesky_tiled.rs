//! Dense tiled Cholesky on all four drivers (the Fig. 2 setup, for real):
//! sequential, QUARK-centralized, QUARK-on-X-Kaapi, direct data-flow and
//! PLASMA-style static — all producing the same factor.
//!
//! ```text
//! cargo run --release --example cholesky_tiled [n] [nb] [threads]
//! ```

use std::sync::Arc;
use std::time::Instant;
use xkaapi::core::Runtime;
use xkaapi::linalg::{
    cholesky_quark, cholesky_seq, cholesky_static, cholesky_xkaapi, flops, TiledMatrix,
};
use xkaapi::quark::Quark;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let nb: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    assert!(n.is_multiple_of(nb), "n must be a multiple of nb");
    println!(
        "tiled Cholesky: n={n}, nb={nb} ({}x{} tiles), {threads} threads",
        n / nb,
        n / nb
    );

    let orig = TiledMatrix::spd_random(n, nb, 42);
    let gf = |ns: u128| flops::cholesky(n) / ns as f64;

    let mut a = orig.clone_matrix();
    let t0 = Instant::now();
    cholesky_seq(&mut a).expect("SPD");
    let t_seq = t0.elapsed().as_nanos();
    println!(
        "sequential      : {:8.1} ms  {:5.2} GFlop/s",
        t_seq as f64 / 1e6,
        gf(t_seq)
    );
    let reference = a;

    // The online data-flow run executes with live telemetry on; the
    // recorded timeline (task spans, steals, parks — one Perfetto lane
    // per worker) is dumped next to the timings. Tracing is switched
    // back off before the later drivers so the trace covers exactly
    // this run.
    let rt = Arc::new(Runtime::new(threads));
    rt.set_tracing(true);
    let t0 = Instant::now();
    let a = cholesky_xkaapi(&rt, orig.clone_matrix()).expect("SPD");
    let t = t0.elapsed().as_nanos();
    rt.set_tracing(false);
    let trace = rt.take_trace();
    std::fs::write("cholesky_online_trace.json", trace.to_chrome_trace())
        .expect("write online trace");
    println!(
        "xkaapi dataflow : {:8.1} ms  {:5.2} GFlop/s  (max|Δ| {:.1e})",
        t as f64 / 1e6,
        gf(t),
        a.max_abs_diff_lower(&reference)
    );
    println!(
        "  wrote cholesky_online_trace.json ({} events, {} worker lanes)",
        trace.total_events(),
        trace.worker_count()
    );

    let q = Quark::new_centralized(threads);
    let mut a = orig.clone_matrix();
    let t0 = Instant::now();
    cholesky_quark(&q, &mut a).expect("SPD");
    let t = t0.elapsed().as_nanos();
    println!(
        "quark central   : {:8.1} ms  {:5.2} GFlop/s  (max|Δ| {:.1e}, {} queue ops)",
        t as f64 / 1e6,
        gf(t),
        a.max_abs_diff_lower(&reference),
        q.queue_ops().unwrap()
    );

    let q = Quark::new_on_xkaapi(Arc::clone(&rt));
    let mut a = orig.clone_matrix();
    let t0 = Instant::now();
    cholesky_quark(&q, &mut a).expect("SPD");
    let t = t0.elapsed().as_nanos();
    println!(
        "quark on xkaapi : {:8.1} ms  {:5.2} GFlop/s  (max|Δ| {:.1e})",
        t as f64 / 1e6,
        gf(t),
        a.max_abs_diff_lower(&reference)
    );

    let mut a = orig.clone_matrix();
    let t0 = Instant::now();
    cholesky_static(threads, &mut a).expect("SPD");
    let t = t0.elapsed().as_nanos();
    println!(
        "plasma static   : {:8.1} ms  {:5.2} GFlop/s  (max|Δ| {:.1e})",
        t as f64 / 1e6,
        gf(t),
        a.max_abs_diff_lower(&reference)
    );

    println!(
        "residual |A - L·Lᵀ| of the reference factor: {:.2e}",
        reference.cholesky_residual(&orig)
    );
}
