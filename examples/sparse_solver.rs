//! Sparse skyline LDLᵀ solver (the EPX CHOLESKY kernel): generate an
//! H-matrix-shaped SPD skyline system, factor it with the X-Kaapi
//! data-flow driver and with the OpenMP-style phase-barrier driver, solve,
//! and report residuals — Fig. 7's computation, for real.
//!
//! ```text
//! cargo run --release --example sparse_solver [n] [bs] [threads]
//! ```

use std::time::Instant;
use xkaapi::core::Runtime;
use xkaapi::omp::OmpPool;
use xkaapi::skyline::{ldlt_omp, ldlt_seq, ldlt_xkaapi, solve, BlockSkyline, SkylineMatrix};

fn residual(a: &SkylineMatrix, x: &[f64], b: &[f64]) -> f64 {
    a.mvp(x)
        .iter()
        .zip(b)
        .map(|(ax, bi)| (ax - bi).abs())
        .fold(0.0f64, f64::max)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let bs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(88);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("skyline LDLᵀ: n={n}, BS={bs} (paper: n=59462, 3.59% nnz, BS=88)");
    let a = SkylineMatrix::generate_spd(n, 0.0359, 7);
    println!(
        "matrix: density {:.4}, {} stored entries",
        a.density(),
        a.stored()
    );
    let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.13).cos()).collect();
    let b = a.mvp(&x_true);

    // sequential
    let mut f = BlockSkyline::from_skyline(&a, bs);
    let t0 = Instant::now();
    ldlt_seq(&mut f);
    let t_seq = t0.elapsed();
    let x = solve(&f, &b);
    println!(
        "sequential      : factor {:7.1} ms, |Ax-b|∞ = {:.2e}, |x-x*|∞ = {:.2e}",
        t_seq.as_secs_f64() * 1e3,
        residual(&a, &x, &b),
        x.iter()
            .zip(&x_true)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max)
    );

    // X-Kaapi data-flow
    let rt = Runtime::new(threads);
    let t0 = Instant::now();
    let f = ldlt_xkaapi(&rt, BlockSkyline::from_skyline(&a, bs));
    let t = t0.elapsed();
    let x = solve(&f, &b);
    println!(
        "xkaapi dataflow : factor {:7.1} ms, |Ax-b|∞ = {:.2e}",
        t.as_secs_f64() * 1e3,
        residual(&a, &x, &b)
    );

    // OpenMP-style with taskwait barriers
    let pool = OmpPool::new(threads);
    let mut f = BlockSkyline::from_skyline(&a, bs);
    let t0 = Instant::now();
    ldlt_omp(&pool, &mut f);
    let t = t0.elapsed();
    let x = solve(&f, &b);
    println!(
        "omp taskwait    : factor {:7.1} ms, |Ax-b|∞ = {:.2e}",
        t.as_secs_f64() * 1e3,
        residual(&a, &x, &b)
    );
}
