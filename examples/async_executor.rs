//! A minimal hand-rolled async executor over the runtime's `future`
//! adapter — the first real consumer of the default-on `future` feature.
//!
//! `JoinHandle<R>` implements `Future<Output = R>` with no reactor: the
//! wake-up rides the existing `on_complete` callback path, so *any*
//! executor can `.await` runtime work. This example shows the smallest
//! possible one — `block_on` polls the future on the calling thread and
//! parks between polls; the completion callback unparks it:
//!
//! * a single submit awaited to completion;
//! * sequential composition (`await` one handle, submit from its result);
//! * a fan-out of handles awaited in submission order while the pool
//!   completes them in any order it likes.
//!
//! Run with `cargo run --release --example async_executor`.

use std::future::Future;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;
use xkaapi::core::Runtime;

/// Park-based waker: `wake` unparks the thread sitting in [`block_on`].
/// `std::thread::park` permits spurious returns, so `block_on` re-polls
/// in a loop rather than trusting one unpark = one completion.
struct Unpark(Thread);

impl Wake for Unpark {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// The entire executor: poll, park until woken, poll again.
fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = pin!(fut);
    let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}

fn busy(seed: u64, iters: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

fn main() {
    let rt = Runtime::new(4);

    // 1. One submit, awaited.
    let v = block_on(async { rt.submit(|_| 21u64).unwrap().await * 2 });
    assert_eq!(v, 42);
    println!("await one handle        -> {v}");

    // 2. Sequential composition: the second job is built from the first
    //    job's awaited result — async control flow over pool work.
    let chained = block_on(async {
        let a = rt.submit(|_| (0..=1000u64).sum::<u64>()).unwrap().await;
        rt.submit(move |_| a / 715).unwrap().await
    });
    assert_eq!(chained, 700);
    println!("sequential composition  -> {chained}");

    // 3. Fan-out: submit first, await in submission order. The pool
    //    finishes the handles in whatever order it likes; each `.await`
    //    either returns immediately (already done) or parks until that
    //    handle's completion wakes us.
    let n = 256u64;
    let handles: Vec<_> = (0..n)
        .map(|i| rt.submit(move |_| busy(i, 10_000) & 0xff).unwrap())
        .collect();
    let sum = block_on(async {
        let mut s = 0u64;
        for h in handles {
            s += h.await;
        }
        s
    });
    let expect: u64 = (0..n).map(|i| busy(i, 10_000) & 0xff).sum();
    assert_eq!(sum, expect);
    println!("fan-out of {n} handles  -> checksum {sum}");

    println!("async executor over {} workers: ok", rt.num_workers());
}
