//! The libGOMP-style centralized task queue, extracted from [`OmpPool`]'s
//! internals so the same structure can be (a) the pool's explicit-task
//! queue and (b) a queue-layer policy for the `xkaapi-core` engine.
//!
//! [`CentralQueue`] is deliberately the *naive* design the paper measures
//! against: one global mutex around a `VecDeque`, FIFO order, every push
//! and pop paying a lock acquisition (counted in [`CentralQueue::ops`] —
//! the contention indicator reported next to the figures).
//!
//! [`OmpCentralQueue`] adapts it to [`xkaapi_core::TaskQueue`]: the engine
//! then routes fork-join jobs and eagerly-published data-flow tasks through
//! this single queue, turning the X-Kaapi engine into a faithful
//! centralized-scheduler baseline without a separate worker loop.
//!
//! [`OmpPool`]: crate::OmpPool

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use xkaapi_core::{TaskQueue, WorkItem};

/// A mutex-protected global FIFO with an operation counter.
pub struct CentralQueue<T> {
    q: Mutex<VecDeque<T>>,
    ops: AtomicUsize,
}

impl<T> Default for CentralQueue<T> {
    fn default() -> Self {
        CentralQueue::new()
    }
}

impl<T> CentralQueue<T> {
    /// Empty queue.
    pub fn new() -> CentralQueue<T> {
        CentralQueue {
            q: Mutex::new(VecDeque::new()),
            ops: AtomicUsize::new(0),
        }
    }

    /// Append at the tail (one lock acquisition).
    pub fn push_back(&self, item: T) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.q.lock().push_back(item);
    }

    /// Remove from the head (one lock acquisition).
    pub fn pop_front(&self) -> Option<T> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.q.lock().pop_front()
    }

    /// Remove the last item matching `pred` (reverse scan under the lock).
    pub fn take_last_matching(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut q = self.q.lock();
        let pos = q.iter().rposition(pred)?;
        q.remove(pos)
    }

    /// Racy emptiness snapshot (no lock when used as a hint only).
    pub fn is_empty(&self) -> bool {
        self.q.lock().is_empty()
    }

    /// Queued items right now.
    pub fn len(&self) -> usize {
        self.q.lock().len()
    }

    /// Lock acquisitions so far — the centralized-design contention metric.
    pub fn ops(&self) -> usize {
        self.ops.load(Ordering::Relaxed)
    }
}

/// [`TaskQueue`] adapter: the engine's ready work flows through one
/// [`CentralQueue`] per priority band, every worker pushing to and popping
/// from the same mutex-protected FIFOs (the libGOMP weight class). Pops
/// drain the highest non-empty band first; within one band the order is
/// the historical global FIFO, so attribute-free programs behave exactly
/// as before the bands existed.
pub struct OmpCentralQueue {
    bands: [CentralQueue<WorkItem>; xkaapi_core::PRIORITY_BANDS],
}

impl Default for OmpCentralQueue {
    fn default() -> Self {
        OmpCentralQueue::new()
    }
}

impl OmpCentralQueue {
    /// Empty queue; hand it to `xkaapi_core::Builder::task_queue`.
    pub fn new() -> OmpCentralQueue {
        OmpCentralQueue {
            bands: std::array::from_fn(|_| CentralQueue::new()),
        }
    }

    /// Lock acquisitions so far (contention indicator), across all bands.
    pub fn ops(&self) -> usize {
        self.bands.iter().map(CentralQueue::ops).sum()
    }
}

impl TaskQueue for OmpCentralQueue {
    fn name(&self) -> &'static str {
        "central-omp"
    }

    fn centralized(&self) -> bool {
        true
    }

    fn push(&self, _worker: usize, item: WorkItem) -> Result<(), WorkItem> {
        self.bands[item.band()].push_back(item);
        Ok(())
    }

    fn pop(&self, _worker: usize) -> Option<WorkItem> {
        self.bands.iter().find_map(CentralQueue::pop_front)
    }

    fn steal(&self, _thief: usize, _victim: usize) -> Option<WorkItem> {
        self.bands.iter().find_map(CentralQueue::pop_front)
    }

    fn take(&self, _worker: usize, token: *mut ()) -> Option<WorkItem> {
        if token.is_null() {
            return None;
        }
        self.bands
            .iter()
            .find_map(|q| q.take_last_matching(|item| std::ptr::eq(item.token(), token)))
    }

    fn is_empty_hint(&self, _worker: usize) -> bool {
        self.bands.iter().all(CentralQueue::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_ops_counter() {
        let q: CentralQueue<u32> = CentralQueue::new();
        assert!(q.is_empty());
        q.push_back(1);
        q.push_back(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.pop_front(), None);
        assert_eq!(q.ops(), 5);
    }

    #[test]
    fn take_last_matching_removes_in_place() {
        let q: CentralQueue<u32> = CentralQueue::new();
        for i in 0..5 {
            q.push_back(i);
        }
        assert_eq!(q.take_last_matching(|&x| x % 2 == 0), Some(4));
        assert_eq!(q.take_last_matching(|&x| x % 2 == 0), Some(2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_front(), Some(0));
    }

    #[test]
    fn engine_runs_dataflow_through_central_queue() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        use xkaapi_core::{Runtime, Shared};
        let q = Arc::new(OmpCentralQueue::new());
        let rt = Runtime::builder()
            .workers(3)
            .task_queue(Arc::clone(&q) as Arc<dyn TaskQueue>)
            .build();
        assert_eq!(rt.queue_name(), "central-omp");
        // Data-flow chain: sequential semantics must survive centralization.
        let h = Shared::new(0u64);
        rt.scope(|ctx| {
            for _ in 0..100 {
                let hw = h.clone();
                ctx.spawn([h.exclusive()], move |t| *t.write(&hw) += 1);
            }
        });
        assert_eq!(*h.get(), 100);
        // Fork-join through the same shared queue.
        let hits = AtomicU64::new(0);
        rt.scope(|ctx| {
            ctx.join(
                |_| hits.fetch_add(1, Ordering::Relaxed),
                |_| hits.fetch_add(1, Ordering::Relaxed),
            );
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert!(
            q.ops() > 0,
            "work actually flowed through the central queue"
        );
    }
}
