//! An OpenMP-3.0-like baseline runtime (the "libGOMP" of the reproduction).
//!
//! Implements the mechanisms the paper measures against GCC 4.6.2's OpenMP:
//!
//! * a persistent thread team running **parallel regions** with an implicit
//!   end barrier;
//! * **worksharing loops** with `static`, `static,chunk`, `dynamic,chunk`
//!   and `guided` schedules ([`Schedule`]);
//! * **explicit tasks** with a *centralized* task queue, the libGOMP
//!   throttle (tasks beyond `64 × num_threads` in flight execute
//!   immediately), `taskwait`, and the 1-thread artifact the paper calls out
//!   (with a team of one, task creation degenerates to a function call);
//! * a sense-reversing team [`barrier::CentralBarrier`].
//!
//! The point of this crate is to be *faithful to the weight class*: a
//! mutex-protected global queue and allocation per task is exactly what
//! makes fine-grained task parallelism collapse in Fig. 1, and the
//! phase-barrier style it forces on the sparse Cholesky is what Fig. 7
//! measures.

#![warn(missing_docs)]

pub mod barrier;
pub mod queue;

pub use queue::{CentralQueue, OmpCentralQueue};

use barrier::CentralBarrier;
use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Worksharing loop schedule (the `schedule(...)` clause).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous block per thread.
    Static,
    /// Round-robin blocks of the given chunk size.
    StaticChunk(usize),
    /// Threads claim chunks of the given size from a shared counter.
    Dynamic(usize),
    /// Exponentially decreasing chunks, at least the given minimum.
    Guided(usize),
}

/// libGOMP's task-throttle factor: beyond `64 × threads` queued tasks, new
/// tasks run immediately in the creating thread.
pub const TASK_THROTTLE_FACTOR: usize = 64;

type TaskFn = Box<dyn FnOnce(&OmpCtx<'_>) + Send>;

struct TaskNode {
    f: TaskFn,
    /// Counter of the spawning context, decremented on completion.
    parent: Arc<TaskCounter>,
}

struct TaskCounter {
    pending: AtomicUsize,
}

struct RegionSlot {
    /// Erased region body: `fn(ctx)`.
    body: *const (dyn Fn(&OmpCtx<'_>) + Sync),
    gen: usize,
}
unsafe impl Send for RegionSlot {}

struct Inner {
    nthreads: usize,
    /// Region dispatch: generation counter + body pointer.
    region: Mutex<Option<RegionSlot>>,
    region_cv: Condvar,
    gen: AtomicUsize,
    /// Centralized task queue (the QUARK/libGOMP-style contention point),
    /// the same structure [`queue::OmpCentralQueue`] exposes to the engine.
    tasks: CentralQueue<TaskNode>,
    tasks_inflight: AtomicUsize,
    barrier: CentralBarrier,
    /// End-of-region rendezvous (master waits here).
    done_count: AtomicUsize,
    done_mx: Mutex<()>,
    done_cv: Condvar,
    shutdown: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// The OpenMP-like runtime: a persistent team of threads.
pub struct OmpPool {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// Per-thread context inside a parallel region.
pub struct OmpCtx<'r> {
    inner: &'r Arc<Inner>,
    tid: usize,
    /// Children spawned by the current task context.
    counter: Arc<TaskCounter>,
}

impl OmpPool {
    /// Team of `n` threads.
    pub fn new(n: usize) -> OmpPool {
        assert!(n >= 1);
        let inner = Arc::new(Inner {
            nthreads: n,
            region: Mutex::new(None),
            region_cv: Condvar::new(),
            gen: AtomicUsize::new(0),
            tasks: CentralQueue::new(),
            tasks_inflight: AtomicUsize::new(0),
            barrier: CentralBarrier::new(n),
            done_count: AtomicUsize::new(0),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        let mut threads = Vec::new();
        for tid in 0..n {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("omp-{tid}"))
                    .stack_size(16 << 20)
                    .spawn(move || team_main(inner, tid))
                    .unwrap(),
            );
        }
        OmpPool { inner, threads }
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.inner.nthreads
    }

    /// Run a parallel region: `body` executes once per team thread, with an
    /// implicit task-draining barrier at the end. Blocks the caller.
    pub fn parallel<F>(&self, body: F)
    where
        F: Fn(&OmpCtx<'_>) + Sync,
    {
        let inner = &self.inner;
        // Erase the body lifetime; we block until the region fully ends.
        let ptr: *const (dyn Fn(&OmpCtx<'_>) + Sync) = &body;
        let ptr: *const (dyn Fn(&OmpCtx<'_>) + Sync) = unsafe { std::mem::transmute(ptr) };
        {
            let mut slot = inner.region.lock();
            debug_assert!(
                slot.is_none(),
                "nested/concurrent parallel regions not supported"
            );
            let gen = inner.gen.load(Ordering::Relaxed) + 1;
            *slot = Some(RegionSlot { body: ptr, gen });
            inner.done_count.store(0, Ordering::Relaxed);
            inner.gen.store(gen, Ordering::Release);
            inner.region_cv.notify_all();
        }
        // Wait for all team threads to finish the region.
        let mut g = inner.done_mx.lock();
        while inner.done_count.load(Ordering::Acquire) < inner.nthreads {
            inner.done_cv.wait(&mut g);
        }
        drop(g);
        inner.region.lock().take();
        let p = inner.panic.lock().take();
        if let Some(p) = p {
            resume_unwind(p);
        }
    }

    /// `#pragma omp parallel for` over `range`.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: Schedule, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for_chunks(range, schedule, |r| {
            for i in r {
                body(i);
            }
        });
    }

    /// Chunked worksharing loop (the schedules hand out whole chunks).
    pub fn parallel_for_chunks<F>(&self, range: Range<usize>, schedule: Schedule, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        let p = self.inner.nthreads;
        if p == 1 {
            body(range);
            return;
        }
        let next = AtomicUsize::new(range.start);
        let base = range.start;
        let end = range.end;
        self.parallel(|ctx| {
            let tid = ctx.thread_num();
            match schedule {
                Schedule::Static => {
                    let lo = base + n * tid / p;
                    let hi = base + n * (tid + 1) / p;
                    if lo < hi {
                        body(lo..hi);
                    }
                }
                Schedule::StaticChunk(c) => {
                    let c = c.max(1);
                    let mut lo = base + tid * c;
                    while lo < end {
                        body(lo..(lo + c).min(end));
                        lo += p * c;
                    }
                }
                Schedule::Dynamic(c) => {
                    let c = c.max(1);
                    loop {
                        let lo = next.fetch_add(c, Ordering::Relaxed);
                        if lo >= end {
                            break;
                        }
                        body(lo..(lo + c).min(end));
                    }
                }
                Schedule::Guided(min) => {
                    let min = min.max(1);
                    loop {
                        let lo = next.load(Ordering::Relaxed);
                        if lo >= end {
                            break;
                        }
                        let remaining = end - lo;
                        let c = (remaining / (2 * p)).max(min).min(remaining);
                        if next
                            .compare_exchange_weak(lo, lo + c, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            body(lo..lo + c);
                        }
                    }
                }
            }
        });
    }

    /// Run `producer` on one thread while the rest of the team executes the
    /// tasks it creates; returns when the producer finished and the task
    /// queue drained (the `parallel` + `single` idiom of task codes).
    pub fn single_producer<F>(&self, producer: F)
    where
        F: Fn(&OmpCtx<'_>) + Sync,
    {
        self.parallel(|ctx| {
            if ctx.thread_num() == 0 {
                producer(ctx);
            }
            // Others fall through to the region-end barrier, which drains
            // the task queue.
        });
    }
}

impl Drop for OmpPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.region.lock();
            self.inner.region_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn record_panic(inner: &Inner, p: Box<dyn std::any::Any + Send>) {
    let mut slot = inner.panic.lock();
    if slot.is_none() {
        *slot = Some(p);
    }
}

fn pop_task(inner: &Inner) -> Option<TaskNode> {
    inner.tasks.pop_front()
}

fn run_task(inner: &Arc<Inner>, tid: usize, node: TaskNode) {
    let child_counter = Arc::new(TaskCounter {
        pending: AtomicUsize::new(0),
    });
    let ctx = OmpCtx {
        inner,
        tid,
        counter: child_counter,
    };
    let res = catch_unwind(AssertUnwindSafe(|| (node.f)(&ctx)));
    // Implicit wait for nested children before signalling completion
    // (OpenMP tied-task semantics at end of task region).
    ctx.taskwait();
    if let Err(p) = res {
        record_panic(inner, p);
    }
    node.parent.pending.fetch_sub(1, Ordering::AcqRel);
    inner.tasks_inflight.fetch_sub(1, Ordering::AcqRel);
}

fn team_main(inner: Arc<Inner>, tid: usize) {
    let mut seen_gen = 0usize;
    loop {
        // Wait for the next region (or shutdown).
        {
            let mut slot = inner.region.lock();
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(r) = slot.as_ref() {
                    if r.gen > seen_gen {
                        seen_gen = r.gen;
                        break;
                    }
                }
                inner.region_cv.wait(&mut slot);
            }
        }
        let body_ptr = {
            let slot = inner.region.lock();
            slot.as_ref().map(|r| r.body)
        };
        let Some(body_ptr) = body_ptr else { continue };
        let body: &(dyn Fn(&OmpCtx<'_>) + Sync) = unsafe { &*body_ptr };
        let counter = Arc::new(TaskCounter {
            pending: AtomicUsize::new(0),
        });
        let ctx = OmpCtx {
            inner: &inner,
            tid,
            counter,
        };
        let res = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
        if let Err(p) = res {
            record_panic(&inner, p);
        }
        // Implicit region-end: drain the task queue, then barrier.
        loop {
            match pop_task(&inner) {
                Some(node) => run_task(&inner, tid, node),
                None => {
                    if inner.tasks_inflight.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        inner.barrier.wait();
        // Signal the master.
        if inner.done_count.fetch_add(1, Ordering::AcqRel) + 1 == inner.nthreads {
            let _g = inner.done_mx.lock();
            inner.done_cv.notify_all();
        }
    }
}

impl<'r> OmpCtx<'r> {
    /// This thread's id within the team.
    pub fn thread_num(&self) -> usize {
        self.tid
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.inner.nthreads
    }

    /// `#pragma omp task`: create an explicit task.
    ///
    /// Runs immediately (a plain call) when the team has one thread — the
    /// libGOMP artifact the paper observes at 1 core — or when more than
    /// `64 × threads` tasks are in flight (the libGOMP throttle).
    pub fn task<F>(&self, f: F)
    where
        F: FnOnce(&OmpCtx<'_>) + Send + 'r,
    {
        let inner = self.inner;
        if inner.nthreads == 1 {
            let ctx = OmpCtx {
                inner,
                tid: self.tid,
                counter: Arc::new(TaskCounter {
                    pending: AtomicUsize::new(0),
                }),
            };
            f(&ctx);
            ctx.taskwait();
            return;
        }
        let inflight = inner.tasks_inflight.load(Ordering::Acquire);
        if inflight > TASK_THROTTLE_FACTOR * inner.nthreads {
            // Throttled: undeferred execution.
            let ctx = OmpCtx {
                inner,
                tid: self.tid,
                counter: Arc::new(TaskCounter {
                    pending: AtomicUsize::new(0),
                }),
            };
            f(&ctx);
            ctx.taskwait();
            return;
        }
        self.counter.pending.fetch_add(1, Ordering::AcqRel);
        inner.tasks_inflight.fetch_add(1, Ordering::AcqRel);
        let boxed: Box<dyn FnOnce(&OmpCtx<'_>) + Send + 'r> = Box::new(f);
        // Safety: tasks complete before the region ends (implicit barrier),
        // and `'r` outlives the region.
        let boxed: TaskFn = unsafe { std::mem::transmute(boxed) };
        inner.tasks.push_back(TaskNode {
            f: boxed,
            parent: Arc::clone(&self.counter),
        });
    }

    /// `#pragma omp taskwait`: wait for the children of the current task,
    /// executing queued tasks meanwhile.
    pub fn taskwait(&self) {
        while self.counter.pending.load(Ordering::Acquire) > 0 {
            match pop_task(self.inner) {
                Some(node) => {
                    let inner = Arc::clone(self.inner);
                    run_task(&inner, self.tid, node);
                }
                None => std::thread::yield_now(),
            }
        }
    }

    /// Current number of queued+running explicit tasks (for tests).
    pub fn tasks_in_flight(&self) -> usize {
        self.inner.tasks_inflight.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallel_region_runs_team() {
        let pool = OmpPool::new(4);
        let count = AtomicUsize::new(0);
        pool.parallel(|ctx| {
            count.fetch_add(1 + ctx.thread_num(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    }

    #[test]
    fn parallel_for_static_covers() {
        let pool = OmpPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..1000, Schedule::Static, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_all_schedules_cover() {
        let pool = OmpPool::new(4);
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(7),
            Schedule::Dynamic(13),
            Schedule::Guided(4),
        ] {
            let hits: Vec<AtomicUsize> = (0..777).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(0..777, sched, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "schedule {sched:?} missed or duplicated iterations"
            );
        }
    }

    #[test]
    fn empty_range_ok() {
        let pool = OmpPool::new(2);
        pool.parallel_for(5..5, Schedule::Dynamic(1), |_| panic!("must not run"));
    }

    #[test]
    fn tasks_run_and_taskwait_orders() {
        let pool = OmpPool::new(4);
        let sum = AtomicUsize::new(0);
        let after_wait = AtomicUsize::new(0);
        pool.single_producer(|ctx| {
            let sum = &sum;
            for i in 0..100usize {
                ctx.task(move |_| {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
            ctx.taskwait();
            after_wait.store(sum.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        assert_eq!(
            after_wait.load(Ordering::Relaxed),
            4950,
            "taskwait saw all children"
        );
    }

    #[test]
    fn nested_tasks_complete() {
        let pool = OmpPool::new(3);
        let count = AtomicUsize::new(0);
        pool.single_producer(|ctx| {
            for _ in 0..10 {
                ctx.task(|c2| {
                    count.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..5 {
                        c2.task(|_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 10 * 6);
    }

    #[test]
    fn single_thread_degenerates_to_call() {
        // The 1-core libGOMP artifact: tasks execute inline, immediately.
        let pool = OmpPool::new(1);
        let order = parking_lot::Mutex::new(Vec::new());
        pool.single_producer(|ctx| {
            let order = &order;
            for i in 0..5 {
                ctx.task(move |_| {
                    order.lock().push(i);
                });
                order.lock().push(100 + i); // runs after task i (inline exec)
            }
        });
        assert_eq!(*order.lock(), vec![0, 100, 1, 101, 2, 102, 3, 103, 4, 104]);
    }

    #[test]
    fn fib_with_omp_tasks() {
        // The Fig. 1 benchmark shape on the OpenMP baseline.
        let pool = OmpPool::new(4);
        fn fib(ctx: &OmpCtx<'_>, n: u64, out: &AtomicUsize) {
            if n < 2 {
                out.fetch_add(n as usize, Ordering::Relaxed);
                return;
            }
            ctx.task(move |c| fib(c, n - 1, out));
            fib(ctx, n - 2, out);
            // per-call taskwait as in the paper's program
            ctx.taskwait();
        }
        let out = AtomicUsize::new(0);
        pool.single_producer(|ctx| {
            fib(ctx, 16, &out);
        });
        assert_eq!(out.load(Ordering::Relaxed), 987);
    }

    #[test]
    fn panic_in_region_propagates() {
        let pool = OmpPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel(|ctx| {
                if ctx.thread_num() == 1 {
                    panic!("region boom");
                }
            });
        }));
        assert!(r.is_err());
        // team survives
        let c = AtomicUsize::new(0);
        pool.parallel(|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn guided_chunks_decrease() {
        let pool = OmpPool::new(4);
        let sizes = parking_lot::Mutex::new(Vec::new());
        pool.parallel_for_chunks(0..10_000, Schedule::Guided(8), |r| {
            sizes.lock().push(r.len());
        });
        let sizes = sizes.lock();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 10_000);
        assert!(
            *sizes.iter().max().unwrap() > 8,
            "guided starts with large chunks"
        );
    }
}
