//! A sense-reversing central barrier (the classic libGOMP-style team
//! barrier): one atomic counter plus a flipping sense word; the last thread
//! to arrive flips the sense and releases everyone.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Sense-reversing spin barrier for a fixed-size team.
pub struct CentralBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl CentralBarrier {
    /// Barrier for `n` participants.
    pub fn new(n: usize) -> CentralBarrier {
        assert!(n >= 1);
        CentralBarrier {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Wait until all `n` participants arrived. Spins with yields; suitable
    /// for the short phase barriers of a parallel region.
    pub fn wait(&self) {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = CentralBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }

    #[test]
    fn phases_are_separated() {
        // No thread may enter phase k+1 before all completed phase k.
        const T: usize = 4;
        const PHASES: usize = 50;
        let b = Arc::new(CentralBarrier::new(T));
        let phase_counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..PHASES).map(|_| AtomicUsize::new(0)).collect());
        let mut hs = Vec::new();
        for _ in 0..T {
            let b = Arc::clone(&b);
            let pc = Arc::clone(&phase_counts);
            hs.push(std::thread::spawn(move || {
                for ph in 0..PHASES {
                    pc[ph].fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    // after the barrier, everyone must have bumped phase ph
                    assert_eq!(pc[ph].load(Ordering::SeqCst), T, "phase {ph}");
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
    }
}
