//! Blocked skyline LDLᵀ factorisation and solves — the paper's Fig. 7
//! experiment. The sequential code below is a line-for-line transcription
//! of the paper's pseudocode (`potrf`/`trsm`/`syrk`/`gemm` with
//! `is_empty(m,k)` profile queries); the two parallel drivers express it
//!
//! * as X-Kaapi data-flow tasks whose block indices define the memory
//!   accesses (no explicit synchronisation at all), and
//! * in the OpenMP style the paper describes: only `trsm`/`syrk`/`gemm`
//!   become tasks and `taskwait` barriers separate the phases (after the
//!   paper's lines 8 and 19) — the synchronisation that limits speedup.

use crate::kernels::{gemm_ldlt, ldlt_diag, syrk_ldlt, trsm_ldlt};
use crate::storage::BlockSkyline;
use xkaapi_core::{AccessMode, Partitioned, Priority, Region, Runtime};
use xkaapi_omp::OmpPool;

/// One operation of the blocked skyline LDLᵀ DAG (exported for the
/// simulator's Fig. 7 reproduction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkyOp {
    /// LDLᵀ of diagonal block `k` (the pseudocode's `potrf`).
    Potrf {
        /// Step.
        k: usize,
    },
    /// Panel solve of block `(m, k)`.
    Trsm {
        /// Step.
        k: usize,
        /// Block row.
        m: usize,
    },
    /// Diagonal update of `(m, m)` by panel `k`.
    Syrk {
        /// Step.
        k: usize,
        /// Block row.
        m: usize,
    },
    /// Update of `(m, n)` by panel `k`.
    Gemm {
        /// Step.
        k: usize,
        /// Block row.
        m: usize,
        /// Block column.
        n: usize,
    },
}

/// Dependence key of block `(m, k)`.
#[inline]
pub fn block_key(m: usize, k: usize) -> u64 {
    ((m as u64) << 32) | k as u64
}

/// Dependence key of the `D` segment of step `k` (disjoint from block keys
/// because the column part exceeds any block index).
#[inline]
pub fn d_key(nbl: usize, k: usize) -> u64 {
    ((k as u64) << 32) | (nbl as u64 + 1 + k as u64)
}

impl SkyOp {
    /// `(key, is_write)` accesses (block keys + D keys), for graph building.
    pub fn accesses(&self, nbl: usize) -> Vec<(u64, bool)> {
        match *self {
            SkyOp::Potrf { k } => vec![(block_key(k, k), true), (d_key(nbl, k), true)],
            SkyOp::Trsm { k, m } => vec![
                (block_key(k, k), false),
                (d_key(nbl, k), false),
                (block_key(m, k), true),
            ],
            SkyOp::Syrk { k, m } => vec![
                (block_key(m, k), false),
                (d_key(nbl, k), false),
                (block_key(m, m), true),
            ],
            SkyOp::Gemm { k, m, n } => vec![
                (block_key(m, k), false),
                (block_key(n, k), false),
                (d_key(nbl, k), false),
                (block_key(m, n), true),
            ],
        }
    }
}

/// Enumerate the blocked LDLᵀ operations of `a` in sequential order,
/// honouring the block envelope (`is_empty` skips, as in the pseudocode).
pub fn ldlt_ops(a: &BlockSkyline) -> Vec<SkyOp> {
    let nbl = a.nbl;
    let mut ops = Vec::new();
    for k in 0..nbl {
        ops.push(SkyOp::Potrf { k });
        for m in k + 1..nbl {
            if a.is_empty(m, k) {
                continue;
            }
            ops.push(SkyOp::Trsm { k, m });
        }
        for m in k + 1..nbl {
            if a.is_empty(m, k) {
                continue;
            }
            ops.push(SkyOp::Syrk { k, m });
            for n in k + 1..m {
                if a.is_empty(n, k) {
                    continue;
                }
                if a.is_empty(m, n) {
                    continue;
                }
                ops.push(SkyOp::Gemm { k, m, n });
            }
        }
    }
    ops
}

/// Sequential blocked LDLᵀ (the paper's pseudo-sequential code).
pub fn ldlt_seq(a: &mut BlockSkyline) {
    let nbl = a.nbl;
    let bs = a.bs;
    a.d = vec![0.0; nbl * bs];
    for k in 0..nbl {
        {
            let dseg: *mut f64 = a.d[k * bs..].as_mut_ptr();
            let blk = a.block_mut(k, k);
            // Safety: dseg and blk are disjoint fields.
            ldlt_diag(blk, unsafe { std::slice::from_raw_parts_mut(dseg, bs) }, bs);
        }
        let dk: Vec<f64> = a.d[k * bs..(k + 1) * bs].to_vec();
        let lkk: Vec<f64> = a.block(k, k).to_vec();
        for m in k + 1..nbl {
            if a.is_empty(m, k) {
                continue;
            }
            trsm_ldlt(&lkk, &dk, a.block_mut(m, k), bs);
        }
        for m in k + 1..nbl {
            if a.is_empty(m, k) {
                continue;
            }
            let lmk: Vec<f64> = a.block(m, k).to_vec();
            syrk_ldlt(&lmk, &dk, a.block_mut(m, m), bs);
            for n in k + 1..m {
                if a.is_empty(n, k) {
                    continue;
                }
                if a.is_empty(m, n) {
                    continue;
                }
                let lnk: Vec<f64> = a.block(n, k).to_vec();
                gemm_ldlt(&lmk, &lnk, &dk, a.block_mut(m, n), bs);
            }
        }
    }
}

#[derive(Clone, Copy)]
struct RawSlice(*mut f64, usize);
unsafe impl Send for RawSlice {}
unsafe impl Sync for RawSlice {}

impl RawSlice {
    unsafe fn get<'a>(self) -> &'a [f64] {
        unsafe { std::slice::from_raw_parts(self.0, self.1) }
    }

    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut<'a>(self) -> &'a mut [f64] {
        unsafe { std::slice::from_raw_parts_mut(self.0, self.1) }
    }
}

/// X-Kaapi data-flow LDLᵀ: block coordinates are declared as keyed regions,
/// no explicit synchronisation anywhere — the "XKaapi" curve of Fig. 7.
pub fn ldlt_xkaapi(rt: &Runtime, mut a: BlockSkyline) -> BlockSkyline {
    let nbl = a.nbl;
    let bs = a.bs;
    a.d = vec![0.0; nbl * bs];
    let part = Partitioned::new(a);
    // Convenience for building keyed accesses of the partitioned matrix.
    let reg = |key: u64, mode: AccessMode| part.access(Region::Key(key), mode);
    rt.scope(|ctx| {
        // Local views: safe because the declared keyed regions serialise
        // conflicting block accesses.
        let view = |p: &Partitioned<BlockSkyline>| -> &BlockSkyline { unsafe { &*p.view() } };
        let a0 = view(&part);
        for k in 0..nbl {
            let blk = RawSlice(a0.block_ptr(k, k), bs * bs);
            let dk = RawSlice(a0.d[k * bs..].as_ptr() as *mut f64, bs);
            // The diagonal factorisation is the critical path of the whole
            // DAG: spawn it through the builder at high priority so banded
            // queues/ready lists drain it before the update tasks.
            ctx.task()
                .access(reg(block_key(k, k), AccessMode::Exclusive))
                .access(reg(d_key(nbl, k), AccessMode::Write))
                .priority(Priority::High)
                .spawn(move |_| unsafe { ldlt_diag(blk.get_mut(), dk.get_mut(), bs) });
            for m in k + 1..nbl {
                if a0.is_empty(m, k) {
                    continue;
                }
                let lkk = RawSlice(a0.block_ptr(k, k), bs * bs);
                let bmk = RawSlice(a0.block_ptr(m, k), bs * bs);
                ctx.spawn(
                    [
                        reg(block_key(k, k), AccessMode::Read),
                        reg(d_key(nbl, k), AccessMode::Read),
                        reg(block_key(m, k), AccessMode::Exclusive),
                    ],
                    move |_| unsafe { trsm_ldlt(lkk.get(), dk.get(), bmk.get_mut(), bs) },
                );
            }
            for m in k + 1..nbl {
                if a0.is_empty(m, k) {
                    continue;
                }
                let lmk = RawSlice(a0.block_ptr(m, k), bs * bs);
                let bmm = RawSlice(a0.block_ptr(m, m), bs * bs);
                ctx.spawn(
                    [
                        reg(block_key(m, k), AccessMode::Read),
                        reg(d_key(nbl, k), AccessMode::Read),
                        reg(block_key(m, m), AccessMode::Exclusive),
                    ],
                    move |_| unsafe { syrk_ldlt(lmk.get(), dk.get(), bmm.get_mut(), bs) },
                );
                for n in k + 1..m {
                    if a0.is_empty(n, k) || a0.is_empty(m, n) {
                        continue;
                    }
                    let lnk = RawSlice(a0.block_ptr(n, k), bs * bs);
                    let bmn = RawSlice(a0.block_ptr(m, n), bs * bs);
                    ctx.spawn(
                        [
                            reg(block_key(m, k), AccessMode::Read),
                            reg(block_key(n, k), AccessMode::Read),
                            reg(d_key(nbl, k), AccessMode::Read),
                            reg(block_key(m, n), AccessMode::Exclusive),
                        ],
                        move |_| unsafe {
                            gemm_ldlt(lmk.get(), lnk.get(), dk.get(), bmn.get_mut(), bs)
                        },
                    );
                }
            }
        }
    });
    part.into_inner()
}

/// OpenMP-style LDLᵀ as the paper describes: the master factors the
/// diagonal block, `trsm`s are tasks followed by a `taskwait`, then
/// `syrk`/`gemm` tasks followed by another `taskwait` — phase barriers in
/// place of data-flow dependences (the "OpenMP" curve of Fig. 7).
pub fn ldlt_omp(pool: &OmpPool, a: &mut BlockSkyline) {
    let nbl = a.nbl;
    let bs = a.bs;
    a.d = vec![0.0; nbl * bs];
    let a_ref: &BlockSkyline = a;
    pool.single_producer(|ctx| {
        for k in 0..nbl {
            // line 3: potrf — not a task in the OpenMP version
            let blk = RawSlice(a_ref.block_ptr(k, k), bs * bs);
            let dk = RawSlice(a_ref.d[k * bs..].as_ptr() as *mut f64, bs);
            unsafe { ldlt_diag(blk.get_mut(), dk.get_mut(), bs) };
            // lines 4-8: trsm tasks + taskwait
            for m in k + 1..nbl {
                if a_ref.is_empty(m, k) {
                    continue;
                }
                let lkk = RawSlice(a_ref.block_ptr(k, k), bs * bs);
                let bmk = RawSlice(a_ref.block_ptr(m, k), bs * bs);
                ctx.task(move |_| unsafe { trsm_ldlt(lkk.get(), dk.get(), bmk.get_mut(), bs) });
            }
            ctx.taskwait();
            // lines 9-19: syrk + gemm tasks + taskwait
            for m in k + 1..nbl {
                if a_ref.is_empty(m, k) {
                    continue;
                }
                let lmk = RawSlice(a_ref.block_ptr(m, k), bs * bs);
                let bmm = RawSlice(a_ref.block_ptr(m, m), bs * bs);
                ctx.task(move |_| unsafe { syrk_ldlt(lmk.get(), dk.get(), bmm.get_mut(), bs) });
                for n in k + 1..m {
                    if a_ref.is_empty(n, k) || a_ref.is_empty(m, n) {
                        continue;
                    }
                    let lnk = RawSlice(a_ref.block_ptr(n, k), bs * bs);
                    let bmn = RawSlice(a_ref.block_ptr(m, n), bs * bs);
                    ctx.task(move |_| unsafe {
                        gemm_ldlt(lmk.get(), lnk.get(), dk.get(), bmn.get_mut(), bs)
                    });
                }
            }
            ctx.taskwait();
        }
    });
}

/// Solve `A·x = b` given the factored matrix (`L`, `D` in place). Handles
/// zero pivots by zeroing the corresponding solution component.
pub fn solve(f: &BlockSkyline, b: &[f64]) -> Vec<f64> {
    assert_eq!(b.len(), f.n);
    let bs = f.bs;
    let nbl = f.nbl;
    let padded = nbl * bs;
    let mut z = vec![0.0; padded];
    z[..f.n].copy_from_slice(b);

    // Forward: L z = b (unit-lower blocks).
    for m in 0..nbl {
        // off-diagonal contributions
        for k in f.block_jmin(m)..m {
            let blk = f.block(m, k);
            let (zk, zm) = {
                let (lo, hi) = z.split_at_mut(m * bs);
                (&lo[k * bs..k * bs + bs], &mut hi[..bs])
            };
            for t in 0..bs {
                let zt = zk[t];
                if zt == 0.0 {
                    continue;
                }
                let col = &blk[t * bs..t * bs + bs];
                for i in 0..bs {
                    zm[i] -= col[i] * zt;
                }
            }
        }
        // diagonal unit-lower solve
        let blk = f.block(m, m);
        let zm = &mut z[m * bs..m * bs + bs];
        for j in 0..bs {
            let zj = zm[j];
            if zj == 0.0 {
                continue;
            }
            for i in j + 1..bs {
                zm[i] -= blk[i + j * bs] * zj;
            }
        }
    }

    // Diagonal: y = D⁻¹ z (zero pivots ⇒ zero component).
    for (i, v) in z.iter_mut().enumerate() {
        let d = f.d[i];
        *v = if d == 0.0 { 0.0 } else { *v / d };
    }

    // Backward: Lᵀ x = y.
    for m in (0..nbl).rev() {
        // diagonal unit-upper (Lᵀ) solve
        {
            let blk = f.block(m, m);
            let zm = &mut z[m * bs..m * bs + bs];
            for j in (0..bs).rev() {
                let mut v = zm[j];
                for i in j + 1..bs {
                    v -= blk[i + j * bs] * zm[i];
                }
                zm[j] = v;
            }
        }
        // propagate to earlier block rows: y_k -= L[m][k]ᵀ x_m
        for k in f.block_jmin(m)..m {
            let blk = f.block(m, k);
            let (zk, zm) = {
                let (lo, hi) = z.split_at_mut(m * bs);
                (&mut lo[k * bs..k * bs + bs], &hi[..bs])
            };
            for t in 0..bs {
                let mut acc = 0.0;
                let col = &blk[t * bs..t * bs + bs];
                for i in 0..bs {
                    acc += col[i] * zm[i];
                }
                zk[t] -= acc;
            }
        }
    }

    z.truncate(f.n);
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SkylineMatrix;

    fn fixture(n: usize, density: f64, bs: usize, seed: u64) -> (SkylineMatrix, BlockSkyline) {
        let a = SkylineMatrix::generate_spd(n, density, seed);
        let b = BlockSkyline::from_skyline(&a, bs);
        (a, b)
    }

    fn factor_matches_dense_ldlt(a: &SkylineMatrix, f: &BlockSkyline) {
        // Rebuild A from L·D·Lᵀ and compare inside the envelope.
        let n = a.n;
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for t in 0..=j {
                    let lit = if i == t { 1.0 } else { f.at(i, t) };
                    let ljt = if j == t { 1.0 } else { f.at(j, t) };
                    s += lit * f.d[t] * ljt;
                }
                assert!(
                    (s - a.get(i, j)).abs() < 1e-7,
                    "rebuild mismatch at ({i},{j}): {s} vs {}",
                    a.get(i, j)
                );
            }
        }
    }

    #[test]
    fn seq_factor_reconstructs() {
        let (a, mut f) = fixture(96, 0.2, 16, 3);
        ldlt_seq(&mut f);
        factor_matches_dense_ldlt(&a, &f);
    }

    #[test]
    fn seq_factor_with_padding() {
        // n not a multiple of bs exercises the padded tail.
        let (a, mut f) = fixture(50, 0.3, 16, 5);
        ldlt_seq(&mut f);
        factor_matches_dense_ldlt(&a, &f);
    }

    #[test]
    fn solve_roundtrip() {
        let (a, mut f) = fixture(120, 0.15, 16, 7);
        ldlt_seq(&mut f);
        let x_true: Vec<f64> = (0..a.n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.mvp(&x_true);
        let x = solve(&f, &b);
        let max_err = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-6, "max err {max_err}");
    }

    #[test]
    fn xkaapi_matches_seq() {
        let (a, f0) = fixture(100, 0.25, 16, 11);
        let mut fs = BlockSkyline::from_skyline(&a, 16);
        ldlt_seq(&mut fs);
        let rt = Runtime::new(4);
        let fx = ldlt_xkaapi(&rt, f0);
        for i in 0..a.n {
            for j in 0..=i {
                assert!((fx.at(i, j) - fs.at(i, j)).abs() < 1e-9, "({i},{j})");
            }
        }
        for t in 0..a.n {
            assert!((fx.d[t] - fs.d[t]).abs() < 1e-9, "d[{t}]");
        }
    }

    #[test]
    fn omp_matches_seq() {
        let (a, mut fo) = fixture(100, 0.25, 16, 11);
        let mut fs = BlockSkyline::from_skyline(&a, 16);
        ldlt_seq(&mut fs);
        let pool = OmpPool::new(4);
        ldlt_omp(&pool, &mut fo);
        for i in 0..a.n {
            for j in 0..=i {
                assert!((fo.at(i, j) - fs.at(i, j)).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn ops_enumeration_skips_empty_blocks() {
        let (_, f) = fixture(200, 0.05, 16, 13);
        let ops = ldlt_ops(&f);
        let nbl = f.nbl;
        let dense_count = {
            // what a dense enumeration would give
            nbl + nbl * (nbl - 1) + nbl * (nbl - 1) * (nbl - 2) / 6
        };
        assert!(
            ops.len() < dense_count,
            "sparse DAG must be smaller than dense"
        );
        // every trsm/syrk/gemm references stored blocks only
        for op in &ops {
            match *op {
                SkyOp::Trsm { k, m } => assert!(!f.is_empty(m, k)),
                SkyOp::Syrk { k, m } => assert!(!f.is_empty(m, k)),
                SkyOp::Gemm { k, m, n } => {
                    assert!(!f.is_empty(m, k) && !f.is_empty(n, k) && !f.is_empty(m, n))
                }
                SkyOp::Potrf { .. } => {}
            }
        }
    }

    #[test]
    fn semi_definite_solve_projects() {
        // Singular system: duplicate constraint rows produce zero pivots;
        // solve must still return a finite vector with A·x = b on the range.
        let mut a = SkylineMatrix::from_profile((0..8usize).map(|i| i.saturating_sub(2)).collect());
        for i in 0..8usize {
            for j in i.saturating_sub(2)..=i {
                if i == j {
                    a.set(i, j, 2.0);
                } else {
                    a.set(i, j, 1.0);
                }
            }
        }
        let mut f = BlockSkyline::from_skyline(&a, 4);
        ldlt_seq(&mut f);
        let b: Vec<f64> = a.mvp(&[1.0; 8]);
        let x = solve(&f, &b);
        assert!(x.iter().all(|v| v.is_finite()));
    }
}
