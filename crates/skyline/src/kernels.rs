//! Block kernels of the skyline LDLᵀ factorisation — the paper's pseudo-BLAS
//! `potrf` / `trsm` / `syrk` / `gemm` calls of Fig. 7, in their LDLᵀ form
//! (EPX factors the semi-definite H matrix as `L·D·Lᵀ` with unit-lower `L`).
//!
//! Zero pivots (semi-definite case) are tolerated: the pivot's column of
//! `L` is zeroed, which yields a pseudo-factorisation consistent with
//! constrained systems where some multipliers are inactive.

/// Pivot magnitude below which a diagonal entry is treated as zero.
pub const PIVOT_TOL: f64 = 1e-12;

#[inline]
fn at(i: usize, j: usize, ld: usize) -> usize {
    i + j * ld
}

/// LDLᵀ of a diagonal block, in place: unit-lower `L` in the strictly lower
/// part of `a` (unit diagonal implicit), `D` written to `d`.
pub fn ldlt_diag(a: &mut [f64], d: &mut [f64], bs: usize) {
    debug_assert_eq!(a.len(), bs * bs);
    debug_assert_eq!(d.len(), bs);
    for j in 0..bs {
        let mut dj = a[at(j, j, bs)];
        for t in 0..j {
            let l = a[at(j, t, bs)];
            dj -= l * l * d[t];
        }
        let zero = dj.abs() < PIVOT_TOL;
        d[j] = if zero { 0.0 } else { dj };
        for i in j + 1..bs {
            if zero {
                a[at(i, j, bs)] = 0.0;
                continue;
            }
            let mut v = a[at(i, j, bs)];
            for t in 0..j {
                v -= a[at(i, t, bs)] * d[t] * a[at(j, t, bs)];
            }
            a[at(i, j, bs)] = v / d[j];
        }
    }
}

/// Panel solve: `B := B · L⁻ᵀ · D⁻¹` where `(l, d)` factor the diagonal
/// block. Applied to sub-diagonal block `(m, k)`.
pub fn trsm_ldlt(l: &[f64], d: &[f64], b: &mut [f64], bs: usize) {
    debug_assert_eq!(l.len(), bs * bs);
    debug_assert_eq!(b.len(), bs * bs);
    // Pass 1 — Y·Lᵀ = B with unit-lower L (columns must stay *unscaled*
    // while later columns consume them):
    // Y[:,j] = B[:,j] − Σ_{t<j} Y[:,t]·L[j,t]
    for j in 0..bs {
        for t in 0..j {
            let ljt = l[at(j, t, bs)];
            if ljt == 0.0 {
                continue;
            }
            let (head, tail) = b.split_at_mut(j * bs);
            let xt = &head[t * bs..t * bs + bs];
            let bj = &mut tail[..bs];
            for i in 0..bs {
                bj[i] -= xt[i] * ljt;
            }
        }
    }
    // Pass 2 — X = Y·D⁻¹ (zero pivot ⇒ zero column).
    for j in 0..bs {
        let col = &mut b[j * bs..j * bs + bs];
        if d[j] == 0.0 {
            col.iter_mut().for_each(|v| *v = 0.0);
        } else {
            let inv = 1.0 / d[j];
            col.iter_mut().for_each(|v| *v *= inv);
        }
    }
}

/// Symmetric update `C := C − A·D·Aᵀ` (lower part), `A` = panel block (m,k).
pub fn syrk_ldlt(a: &[f64], d: &[f64], c: &mut [f64], bs: usize) {
    debug_assert_eq!(a.len(), bs * bs);
    debug_assert_eq!(c.len(), bs * bs);
    for j in 0..bs {
        for t in 0..bs {
            let f = a[at(j, t, bs)] * d[t];
            if f == 0.0 {
                continue;
            }
            let acol = &a[t * bs..t * bs + bs];
            let ccol = &mut c[j * bs..j * bs + bs];
            for i in j..bs {
                ccol[i] -= acol[i] * f;
            }
        }
    }
}

/// General update `C := C − A·D·Bᵀ` (`A` = block (m,k), `B` = block (n,k),
/// `C` = block (m,n)).
pub fn gemm_ldlt(a: &[f64], b: &[f64], d: &[f64], c: &mut [f64], bs: usize) {
    debug_assert_eq!(a.len(), bs * bs);
    debug_assert_eq!(b.len(), bs * bs);
    debug_assert_eq!(c.len(), bs * bs);
    for j in 0..bs {
        let ccol = &mut c[j * bs..j * bs + bs];
        for t in 0..bs {
            let f = b[at(j, t, bs)] * d[t];
            if f == 0.0 {
                continue;
            }
            let acol = &a[t * bs..t * bs + bs];
            for i in 0..bs {
                ccol[i] -= acol[i] * f;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_block(bs: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = vec![0.0; bs * bs];
        for i in 0..bs {
            for j in 0..=i {
                let v = rng();
                a[at(i, j, bs)] = v;
                a[at(j, i, bs)] = v;
            }
            a[at(i, i, bs)] += bs as f64;
        }
        a
    }

    #[test]
    fn ldlt_reconstructs() {
        let bs = 12;
        let a0 = spd_block(bs, 3);
        let mut a = a0.clone();
        let mut d = vec![0.0; bs];
        ldlt_diag(&mut a, &mut d, bs);
        // rebuild: A = L D L^T with unit diagonal L
        let l = |i: usize, j: usize| -> f64 {
            if i == j {
                1.0
            } else if i > j {
                a[at(i, j, bs)]
            } else {
                0.0
            }
        };
        for i in 0..bs {
            for j in 0..=i {
                let mut s = 0.0;
                for t in 0..bs {
                    s += l(i, t) * d[t] * l(j, t);
                }
                assert!((s - a0[at(i, j, bs)]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn ldlt_handles_zero_pivot() {
        let bs = 4;
        // Rank-deficient: last row/col zero.
        let mut a = spd_block(bs, 5);
        for i in 0..bs {
            a[at(i, bs - 1, bs)] = 0.0;
            a[at(bs - 1, i, bs)] = 0.0;
        }
        let mut d = vec![0.0; bs];
        ldlt_diag(&mut a, &mut d, bs);
        assert_eq!(d[bs - 1], 0.0);
        assert!(d[..bs - 1].iter().all(|&x| x > 0.0));
    }

    #[test]
    fn trsm_inverts_panel_relation() {
        let bs = 8;
        let a0 = spd_block(bs, 7);
        let mut l = a0.clone();
        let mut d = vec![0.0; bs];
        ldlt_diag(&mut l, &mut d, bs);
        // Take X_true, compute B = X_true · D · Lᵀ (unit-lower L), solve back.
        let x_true: Vec<f64> = (0..bs * bs).map(|i| (i % 9) as f64 - 4.0).collect();
        let lfull = |i: usize, j: usize| -> f64 {
            if i == j {
                1.0
            } else if i > j {
                l[at(i, j, bs)]
            } else {
                0.0
            }
        };
        let mut b = vec![0.0; bs * bs];
        for j in 0..bs {
            for i in 0..bs {
                let mut s = 0.0;
                for t in 0..bs {
                    s += x_true[at(i, t, bs)] * d[t] * lfull(j, t);
                }
                b[at(i, j, bs)] = s;
            }
        }
        trsm_ldlt(&l, &d, &mut b, bs);
        for i in 0..bs * bs {
            assert!((b[i] - x_true[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn syrk_and_gemm_apply_d_weighting() {
        let bs = 6;
        let a: Vec<f64> = (0..bs * bs).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b: Vec<f64> = (0..bs * bs).map(|i| ((i % 3) as f64) - 1.0).collect();
        let d: Vec<f64> = (0..bs).map(|i| 1.0 + i as f64).collect();
        let mut c1 = vec![0.0; bs * bs];
        syrk_ldlt(&a, &d, &mut c1, bs);
        for j in 0..bs {
            for i in j..bs {
                let mut e = 0.0;
                for t in 0..bs {
                    e -= a[at(i, t, bs)] * d[t] * a[at(j, t, bs)];
                }
                assert!((c1[at(i, j, bs)] - e).abs() < 1e-10);
            }
        }
        let mut c2 = vec![0.0; bs * bs];
        gemm_ldlt(&a, &b, &d, &mut c2, bs);
        for j in 0..bs {
            for i in 0..bs {
                let mut e = 0.0;
                for t in 0..bs {
                    e -= a[at(i, t, bs)] * d[t] * b[at(j, t, bs)];
                }
                assert!((c2[at(i, j, bs)] - e).abs() < 1e-10);
            }
        }
    }
}
