//! Sparse skyline substrate: the EUROPLEXUS H-matrix storage, blocked LDLᵀ
//! factorisation (the paper's Fig. 7 pseudocode), solves, and profile
//! generators matching the reported MAXPLANE matrix shape (n = 59462,
//! 3.59 % nonzeros, best block size BS = 88).

#![warn(missing_docs)]
// Numeric kernels index several arrays by the same loop variable; iterator
// rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod factor;
pub mod kernels;
pub mod storage;

pub use factor::{block_key, d_key, ldlt_omp, ldlt_ops, ldlt_seq, ldlt_xkaapi, solve, SkyOp};
pub use storage::{BlockSkyline, SkylineMatrix};
