//! Symmetric skyline (variable-band) matrix storage.
//!
//! EUROPLEXUS stores its condensed `H` matrix (dynamic equilibrium
//! condensed onto the Lagrange multipliers) in a skyline format: for each
//! row `i` of the lower triangle, the columns from `jmin[i]` to `i` are held
//! contiguously. Skyline Cholesky/LDLᵀ factorisations fill only inside this
//! envelope, which is why the format survives factorisation unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A symmetric matrix in lower-triangle skyline storage.
#[derive(Clone)]
pub struct SkylineMatrix {
    /// Order.
    pub n: usize,
    /// First stored column of each row (`jmin[i] <= i`).
    jmin: Vec<usize>,
    /// Offset of row `i`'s values in `vals`.
    start: Vec<usize>,
    /// Row-contiguous values for columns `jmin[i]..=i`.
    vals: Vec<f64>,
}

impl SkylineMatrix {
    /// Zero matrix with the given row profile.
    pub fn from_profile(jmin: Vec<usize>) -> SkylineMatrix {
        let n = jmin.len();
        assert!(
            jmin.iter().enumerate().all(|(i, &j)| j <= i),
            "jmin[i] must be <= i"
        );
        let mut start = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        for (i, &j) in jmin.iter().enumerate() {
            start.push(acc);
            acc += i - j + 1;
        }
        start.push(acc);
        SkylineMatrix {
            n,
            jmin,
            start,
            vals: vec![0.0; acc],
        }
    }

    /// Row profile accessor.
    pub fn jmin(&self, i: usize) -> usize {
        self.jmin[i]
    }

    /// Stored entries (lower triangle, inside the envelope).
    pub fn stored(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of nonzeros relative to the full `n × n` matrix, counting
    /// the symmetric mirror (the paper reports 3.59 % for the MAXPLANE H).
    pub fn density(&self) -> f64 {
        let off_diag = self.vals.len() - self.n;
        (2 * off_diag + self.n) as f64 / (self.n as f64 * self.n as f64)
    }

    /// Element `(i, j)`; zero outside the envelope. Symmetric access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        if j < self.jmin[i] {
            return 0.0;
        }
        self.vals[self.start[i] + (j - self.jmin[i])]
    }

    /// Set element `(i, j)` (must lie inside the envelope).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        assert!(j >= self.jmin[i], "({i},{j}) outside the skyline envelope");
        self.vals[self.start[i] + (j - self.jmin[i])] = v;
    }

    /// Symmetric matrix-vector product `y = A·x`.
    pub fn mvp(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let base = self.start[i];
            let jm = self.jmin[i];
            let mut acc = 0.0;
            for j in jm..=i {
                let v = self.vals[base + j - jm];
                acc += v * x[j];
                if j < i {
                    y[j] += v * x[i]; // symmetric mirror
                }
            }
            y[i] += acc;
        }
        y
    }

    /// Generate a symmetric positive-definite skyline matrix with roughly
    /// the `target_density` of the paper's H matrix. The profile mixes a
    /// narrow band with occasional long reaches (the coupling pattern
    /// kinematic constraints produce), then the diagonal is made dominant.
    pub fn generate_spd(n: usize, target_density: f64, seed: u64) -> SkylineMatrix {
        assert!(n >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        // Expected stored off-diagonal fraction: density*n²/2. Mixture:
        // 85% short band, 15% long reach; calibrate mean width.
        let target_stored = (target_density * (n as f64) * (n as f64) / 2.0) as usize;
        let mean_width = (target_stored as f64 / n as f64).max(1.0);
        let short_w = (mean_width * 0.55).max(1.0);
        let long_scale = 6.0 * mean_width;
        let mut jmin = Vec::with_capacity(n);
        for i in 0..n {
            let w = if rng.gen_bool(0.85) {
                (rng.gen_range(0.0..2.0 * short_w)) as usize
            } else {
                (rng.gen_range(0.0..2.0 * long_scale)) as usize
            };
            jmin.push(i.saturating_sub(w));
        }
        let mut m = SkylineMatrix::from_profile(jmin);
        // Fill with small symmetric values; dominant diagonal ⇒ SPD.
        let mut row_sums = vec![0.0f64; n];
        for i in 0..n {
            for j in m.jmin[i]..i {
                let v: f64 = rng.gen_range(-1.0..1.0);
                m.set(i, j, v);
                row_sums[i] += v.abs();
                row_sums[j] += v.abs();
            }
        }
        for i in 0..n {
            m.set(i, i, row_sums[i] + 1.0 + rng.gen_range(0.0..1.0));
        }
        m
    }
}

/// Blocked (block-skyline) storage used by the factorisations: the envelope
/// rounded up to `bs × bs` dense blocks, exactly the `sli` structure of the
/// paper's pseudocode with its `is_empty(m, k)` block-profile query.
pub struct BlockSkyline {
    /// Order (padded internally to a multiple of `bs`).
    pub n: usize,
    /// Block size (the paper's `BS`, best value 88 for Fig. 7).
    pub bs: usize,
    /// Number of block rows.
    pub nbl: usize,
    /// First nonempty block column per block row.
    block_jmin: Vec<usize>,
    /// Offset (in blocks) of each block row in `blocks`.
    row_off: Vec<usize>,
    /// Dense `bs × bs` column-major blocks, rows contiguous.
    blocks: Vec<f64>,
    /// The D of LDLᵀ after factorisation (length `nbl * bs`).
    pub(crate) d: Vec<f64>,
}

impl BlockSkyline {
    /// Build block-skyline storage from a skyline matrix.
    pub fn from_skyline(a: &SkylineMatrix, bs: usize) -> BlockSkyline {
        assert!(bs >= 1);
        let nbl = a.n.div_ceil(bs);
        let mut block_jmin = vec![usize::MAX; nbl];
        for i in 0..a.n {
            let bi = i / bs;
            let bj = a.jmin(i) / bs;
            block_jmin[bi] = block_jmin[bi].min(bj);
        }
        // Monotone envelope not required; keep raw per-row-block minima.
        let mut row_off = Vec::with_capacity(nbl + 1);
        let mut acc = 0usize;
        for m in 0..nbl {
            row_off.push(acc);
            acc += m - block_jmin[m] + 1;
        }
        row_off.push(acc);
        let mut bsk = BlockSkyline {
            n: a.n,
            bs,
            nbl,
            block_jmin,
            row_off,
            blocks: vec![0.0; acc * bs * bs],
            d: Vec::new(),
        };
        for i in 0..a.n {
            for j in a.jmin(i)..=i {
                let v = a.get(i, j);
                if v != 0.0 {
                    *bsk.at_mut(i, j) = v;
                }
            }
        }
        bsk
    }

    /// Is block `(m, k)` outside the block envelope (all zero)?
    pub fn is_empty(&self, m: usize, k: usize) -> bool {
        debug_assert!(k <= m);
        k < self.block_jmin[m]
    }

    /// First nonempty block column of block row `m`.
    pub fn block_jmin(&self, m: usize) -> usize {
        self.block_jmin[m]
    }

    /// Number of stored blocks.
    pub fn stored_blocks(&self) -> usize {
        self.row_off[self.nbl]
    }

    fn block_slot(&self, m: usize, k: usize) -> usize {
        debug_assert!(!self.is_empty(m, k), "block ({m},{k}) outside envelope");
        self.row_off[m] + (k - self.block_jmin[m])
    }

    /// Borrow block `(m, k)`.
    pub fn block(&self, m: usize, k: usize) -> &[f64] {
        let s = self.block_slot(m, k) * self.bs * self.bs;
        &self.blocks[s..s + self.bs * self.bs]
    }

    /// Borrow block `(m, k)` mutably.
    pub fn block_mut(&mut self, m: usize, k: usize) -> &mut [f64] {
        let s = self.block_slot(m, k) * self.bs * self.bs;
        &mut self.blocks[s..s + self.bs * self.bs]
    }

    /// Raw block pointer for the parallel drivers (dependence protocols
    /// guarantee exclusivity).
    pub(crate) fn block_ptr(&self, m: usize, k: usize) -> *mut f64 {
        let s = self.block_slot(m, k) * self.bs * self.bs;
        self.blocks[s..].as_ptr() as *mut f64
    }

    /// Scalar element access inside the envelope (element (i,j), i >= j).
    pub fn at(&self, i: usize, j: usize) -> f64 {
        let (bi, bj) = (i / self.bs, j / self.bs);
        if self.is_empty(bi, bj) {
            return 0.0;
        }
        let (ri, rj) = (i % self.bs, j % self.bs);
        self.block(bi, bj)[ri + rj * self.bs]
    }

    fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        let bs = self.bs;
        let (bi, bj) = (i / bs, j / bs);
        let (ri, rj) = (i % bs, j % bs);
        &mut self.block_mut(bi, bj)[ri + rj * bs]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_roundtrip() {
        let mut m = SkylineMatrix::from_profile(vec![0, 0, 1, 2]);
        m.set(2, 1, 5.0);
        m.set(3, 2, -2.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(1, 2), 5.0); // symmetric view
        assert_eq!(m.get(3, 0), 0.0); // outside envelope
    }

    #[test]
    #[should_panic(expected = "outside the skyline envelope")]
    fn set_outside_envelope_panics() {
        let mut m = SkylineMatrix::from_profile(vec![0, 1, 2, 3]);
        m.set(3, 0, 1.0);
    }

    #[test]
    fn mvp_matches_dense() {
        let m = SkylineMatrix::generate_spd(40, 0.3, 9);
        let x: Vec<f64> = (0..40).map(|i| (i as f64) * 0.1 - 2.0).collect();
        let y = m.mvp(&x);
        for i in 0..40 {
            let mut expect = 0.0;
            for j in 0..40 {
                expect += m.get(i, j) * x[j];
            }
            assert!((y[i] - expect).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn generator_hits_density_ballpark() {
        let target = 0.0359;
        let m = SkylineMatrix::generate_spd(2000, target, 5);
        let d = m.density();
        assert!(
            d > target * 0.5 && d < target * 2.0,
            "density {d} vs target {target}"
        );
    }

    #[test]
    fn block_skyline_roundtrip() {
        let a = SkylineMatrix::generate_spd(100, 0.15, 3);
        let b = BlockSkyline::from_skyline(&a, 8);
        for i in 0..100 {
            for j in 0..=i {
                assert!(
                    (b.at(i, j) - a.get(i, j)).abs() < 1e-15,
                    "element ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn block_profile_respects_envelope() {
        let a = SkylineMatrix::generate_spd(64, 0.1, 7);
        let b = BlockSkyline::from_skyline(&a, 8);
        for m in 0..b.nbl {
            assert!(b.block_jmin(m) <= m);
            // All entries of rows in block m lie at/after the block jmin.
            for i in m * 8..((m + 1) * 8).min(a.n) {
                assert!(a.jmin(i) / 8 >= b.block_jmin(m));
            }
        }
    }

    #[test]
    fn stored_blocks_fraction_reasonable() {
        let a = SkylineMatrix::generate_spd(512, 0.0359, 11);
        let b = BlockSkyline::from_skyline(&a, 32);
        let frac = b.stored_blocks() as f64 / ((b.nbl * (b.nbl + 1) / 2) as f64);
        assert!(frac < 0.9, "block skyline should stay sparse, got {frac}");
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn full_profile_equals_dense_behaviour() {
        // jmin[i] = 0 for all rows: skyline degenerates to dense lower
        // storage; density accounts for the symmetric mirror.
        let n = 24;
        let mut m = SkylineMatrix::from_profile(vec![0; n]);
        for i in 0..n {
            for j in 0..=i {
                m.set(i, j, (i * n + j) as f64);
            }
        }
        assert_eq!(m.stored(), n * (n + 1) / 2);
        assert!((m.density() - 1.0).abs() < 1e-12);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn diagonal_only_profile() {
        let m = SkylineMatrix::from_profile((0..10).collect());
        assert_eq!(m.stored(), 10);
        assert_eq!(m.get(5, 4), 0.0);
    }

    #[test]
    fn block_skyline_single_block() {
        let a = SkylineMatrix::generate_spd(8, 0.9, 1);
        let b = BlockSkyline::from_skyline(&a, 16); // bs > n: one padded block
        assert_eq!(b.nbl, 1);
        assert_eq!(b.stored_blocks(), 1);
        assert!(!b.is_empty(0, 0));
    }

    #[test]
    fn mvp_of_identity_like() {
        let mut m = SkylineMatrix::from_profile((0..6).collect());
        for i in 0..6 {
            m.set(i, i, 2.0);
        }
        let y = m.mvp(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(y, vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
    }
}
