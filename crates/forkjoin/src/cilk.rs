//! "Cilk-like" baseline: a lean child-stealing fork-join pool over the
//! T.H.E. deque. Spawns are stack-allocated job records (no heap allocation
//! on the spawn path), matching the weight class of Intel Cilk+ in the
//! paper's Fig. 1 comparison.

use crate::the_deque::{JobRef, TheDeque};
use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fork-join thread pool with per-worker T.H.E. deques.
pub struct CilkPool {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

type InjectJob = Box<dyn FnOnce(&CilkCtx<'_>) + Send>;

struct Inner {
    deques: Box<[TheDeque]>,
    inject: Mutex<VecDeque<InjectJob>>,
    shutdown: AtomicBool,
    sleepers: AtomicUsize,
    park_mx: Mutex<()>,
    park_cv: Condvar,
    rngs: Box<[AtomicUsize]>,
}

/// Worker context: fork-join entry points.
pub struct CilkCtx<'p> {
    inner: &'p Arc<Inner>,
    widx: usize,
}

const J_PENDING: u8 = 0;
const J_DONE: u8 = 1;
const J_PANIC: u8 = 2;

/// Stack-allocated job record for the forked branch of a join.
struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<R>>,
    panic: UnsafeCell<Option<Box<dyn std::any::Any + Send>>>,
    state: AtomicU8,
    inner: *const Arc<Inner>,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce(&CilkCtx<'_>) -> R + Send,
    R: Send,
{
    fn as_job_ref(&self) -> JobRef {
        unsafe fn exec<F, R>(data: *mut (), widx: usize)
        where
            F: FnOnce(&CilkCtx<'_>) -> R + Send,
            R: Send,
        {
            let job = unsafe { &*(data as *const StackJob<F, R>) };
            let inner = unsafe { &*job.inner };
            let ctx = CilkCtx { inner, widx };
            let f = unsafe { (*job.f.get()).take().expect("job run twice") };
            match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                Ok(v) => {
                    unsafe { *job.result.get() = Some(v) };
                    job.state.store(J_DONE, Ordering::Release);
                }
                Err(p) => {
                    unsafe { *job.panic.get() = Some(p) };
                    job.state.store(J_PANIC, Ordering::Release);
                }
            }
        }
        JobRef {
            data: self as *const Self as *mut (),
            exec: exec::<F, R>,
        }
    }
}

impl CilkPool {
    /// Pool with `n` workers.
    pub fn new(n: usize) -> CilkPool {
        assert!(n >= 1);
        let inner = Arc::new(Inner {
            deques: (0..n).map(|_| TheDeque::new()).collect(),
            inject: Mutex::new(VecDeque::new()),
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            park_mx: Mutex::new(()),
            park_cv: Condvar::new(),
            rngs: (0..n)
                .map(|i| AtomicUsize::new(0x9E3779B9usize ^ (i << 16) ^ 1))
                .collect(),
        });
        let mut threads = Vec::new();
        for i in 0..n {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cilklike-{i}"))
                    .stack_size(16 << 20)
                    .spawn(move || worker_main(inner, i))
                    .unwrap(),
            );
        }
        CilkPool { inner, threads }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.inner.deques.len()
    }

    /// Run `f` on the pool, blocking until it returns.
    pub fn run<R: Send>(&self, f: impl FnOnce(&CilkCtx<'_>) -> R + Send) -> R {
        let done = Mutex::new(false);
        let cv = Condvar::new();
        let mut slot: Option<std::thread::Result<R>> = None;
        struct SendPtr<T>(*mut T);
        unsafe impl<T> Send for SendPtr<T> {}
        let slot_ptr = SendPtr(&mut slot as *mut _);
        let sync = (&done, &cv);
        let job = move |ctx: &CilkCtx<'_>| {
            let slot_ptr = slot_ptr;
            let r = catch_unwind(AssertUnwindSafe(|| f(ctx)));
            unsafe { *slot_ptr.0 = Some(r) };
            let (done, cv) = sync;
            let mut g = done.lock();
            *g = true;
            cv.notify_all();
        };
        let boxed: Box<dyn FnOnce(&CilkCtx<'_>) + Send> = Box::new(job);
        // Safety: we block on the latch until the job ran (scoped erasure).
        let boxed: Box<dyn FnOnce(&CilkCtx<'_>) + Send + 'static> =
            unsafe { std::mem::transmute(boxed) };
        self.inner.inject.lock().push_back(boxed);
        signal(&self.inner);
        let mut g = done.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        match slot.expect("cilk job lost") {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    }
}

impl Drop for CilkPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.park_mx.lock();
            self.inner.park_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn signal(inner: &Arc<Inner>) {
    if inner.sleepers.load(Ordering::SeqCst) > 0 {
        let _g = inner.park_mx.lock();
        inner.park_cv.notify_all();
    }
}

fn next_rand(inner: &Inner, me: usize) -> usize {
    let r = &inner.rngs[me];
    let mut x = r.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    r.store(x, Ordering::Relaxed);
    x
}

fn try_steal(inner: &Inner, me: usize) -> Option<JobRef> {
    let p = inner.deques.len();
    if p < 2 {
        return None;
    }
    // A few probes per call keeps the idle loop simple.
    for _ in 0..2 * p {
        let mut v = next_rand(inner, me) % (p - 1);
        if v >= me {
            v += 1;
        }
        if let Some(j) = inner.deques[v].steal() {
            return Some(j);
        }
    }
    None
}

fn worker_main(inner: Arc<Inner>, me: usize) {
    let mut idle = 0u32;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let injected = inner.inject.lock().pop_front();
        if let Some(f) = injected {
            let ctx = CilkCtx {
                inner: &inner,
                widx: me,
            };
            f(&ctx);
            idle = 0;
            continue;
        }
        if let Some(j) = try_steal(&inner, me) {
            unsafe { j.execute(me) };
            idle = 0;
            continue;
        }
        idle += 1;
        if idle < 16 {
            std::thread::yield_now();
        } else {
            inner.sleepers.fetch_add(1, Ordering::SeqCst);
            let mut g = inner.park_mx.lock();
            if !inner.shutdown.load(Ordering::Acquire) && inner.inject.lock().is_empty() {
                inner.park_cv.wait_for(&mut g, Duration::from_micros(500));
            }
            drop(g);
            inner.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl<'p> CilkCtx<'p> {
    /// Worker index.
    pub fn worker_index(&self) -> usize {
        self.widx
    }

    /// Cilk-style fork-join: `spawn b; a(); sync`.
    ///
    /// `b` goes to the deque (stack job, no allocation); `a` runs inline.
    /// If `b` was not stolen the owner pops and runs it; otherwise the owner
    /// steals elsewhere until `b` completes.
    pub fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&CilkCtx<'_>) -> RA,
        FB: FnOnce(&CilkCtx<'_>) -> RB + Send,
        RB: Send,
    {
        let job = StackJob {
            f: UnsafeCell::new(Some(fb)),
            result: UnsafeCell::new(None),
            panic: UnsafeCell::new(None),
            state: AtomicU8::new(J_PENDING),
            inner: self.inner as *const Arc<Inner>,
        };
        let jref = job.as_job_ref();
        let pushed = self.inner.deques[self.widx].push(jref);
        if !pushed {
            // Deque full: run inline (overflow policy).
            let ra = catch_unwind(AssertUnwindSafe(|| fa(self)));
            unsafe { jref.execute(self.widx) };
            return self.finish_join(ra, job);
        }
        signal(self.inner);
        // Run the continuation; even if it panics we must retire the stack
        // job (it references this stack frame) before unwinding further.
        let ra = catch_unwind(AssertUnwindSafe(|| fa(self)));
        // Try to take our own spawn back (fast path: not stolen).
        if let Some(mine) = self.inner.deques[self.widx].pop() {
            debug_assert!(
                std::ptr::eq(mine.data, jref.data),
                "LIFO discipline violated"
            );
            unsafe { mine.execute(self.widx) };
            return self.finish_join(ra, job);
        }
        // Stolen: work elsewhere until it completes.
        while job.state.load(Ordering::Acquire) == J_PENDING {
            if let Some(j) = try_steal(self.inner, self.widx) {
                unsafe { j.execute(self.widx) };
            } else {
                std::hint::spin_loop();
            }
        }
        self.finish_join(ra, job)
    }

    fn finish_join<RA, RB, F>(
        &self,
        ra: std::thread::Result<RA>,
        job: StackJob<F, RB>,
    ) -> (RA, RB) {
        // Continuation panic takes precedence (it unwinds the join caller).
        let ra = match ra {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        };
        match job.state.load(Ordering::Acquire) {
            J_DONE => {
                let rb = unsafe { (*job.result.get()).take().unwrap() };
                (ra, rb)
            }
            J_PANIC => {
                let p = unsafe { (*job.panic.get()).take().unwrap() };
                resume_unwind(p)
            }
            _ => unreachable!("join finished with pending job"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(ctx: &CilkCtx<'_>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = ctx.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }

    #[test]
    fn fib_single_worker() {
        let pool = CilkPool::new(1);
        assert_eq!(pool.run(|c| fib(c, 18)), 2584);
    }

    #[test]
    fn fib_multi_worker() {
        let pool = CilkPool::new(4);
        assert_eq!(pool.run(|c| fib(c, 22)), 17711);
    }

    #[test]
    fn join_borrows_environment() {
        let pool = CilkPool::new(2);
        let data = [1, 2, 3, 4];
        let (s, l) = pool.run(|c| c.join(|_| data.iter().sum::<i32>(), |_| data.len()));
        assert_eq!((s, l), (10, 4));
    }

    #[test]
    fn panic_in_forked_branch_propagates() {
        let pool = CilkPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|c| c.join(|_| 1, |_| -> i32 { panic!("fork boom") }))
        }));
        assert!(r.is_err());
        // pool still alive
        assert_eq!(pool.run(|c| fib(c, 10)), 55);
    }

    #[test]
    fn sequential_runs_back_to_back() {
        let pool = CilkPool::new(3);
        for i in 0..20u64 {
            assert_eq!(pool.run(move |_| i * 2), i * 2);
        }
    }
}
