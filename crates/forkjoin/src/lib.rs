//! Baseline fork-join runtimes for the paper's Fig. 1 comparison.
//!
//! Two pools in different weight classes, functionally equivalent to the
//! fork-join paradigm of `xkaapi-core`:
//!
//! * [`CilkPool`] — lean, Cilk-5-style: stack-allocated spawn records over a
//!   from-scratch T.H.E. deque ([`the_deque::TheDeque`]);
//! * [`TbbPool`] — TBB-weight: heap-allocated refcounted task objects over
//!   lock-protected per-worker queues.
//!
//! See `DESIGN.md` §1 for why these stand in for the Intel Cilk+ / Intel TBB
//! binaries of the original evaluation.

#![warn(missing_docs)]

pub mod cilk;
pub mod tbb;
pub mod the_deque;

pub use cilk::{CilkCtx, CilkPool};
pub use tbb::{TbbCtx, TbbPool};
