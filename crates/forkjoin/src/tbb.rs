//! "TBB-like" baseline: a fork-join pool in the weight class of Intel TBB's
//! task scheduler — every spawned task is a heap allocation with a
//! reference-counted completion counter, and the per-worker queues are
//! lock-protected. Functionally equivalent to [`crate::cilk::CilkPool`] but
//! with the per-task overheads the paper's Fig. 1 attributes to TBB
//! (slowdown ≈ 26× vs ≈ 11.7× for Cilk+ and ≈ 8× for X-Kaapi at fib(35)).

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

type TaskFn = Box<dyn FnOnce(&TbbCtx<'_>) + Send>;

struct TaskObj {
    f: TaskFn,
    /// Completion counter of the spawning join, decremented when done.
    wait: Arc<WaitGroup>,
}

struct WaitGroup {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl WaitGroup {
    fn new(n: usize) -> Arc<WaitGroup> {
        Arc::new(WaitGroup {
            pending: AtomicUsize::new(n),
            panic: Mutex::new(None),
        })
    }

    fn done(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    fn is_done(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }
}

/// A TBB-weight fork-join pool.
pub struct TbbPool {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

struct Inner {
    queues: Box<[Mutex<VecDeque<TaskObj>>]>,
    inject: Mutex<VecDeque<TaskFn>>,
    shutdown: AtomicBool,
    sleepers: AtomicUsize,
    park_mx: Mutex<()>,
    park_cv: Condvar,
    rngs: Box<[AtomicUsize]>,
}

/// Worker context of a [`TbbPool`].
pub struct TbbCtx<'p> {
    inner: &'p Arc<Inner>,
    widx: usize,
}

impl TbbPool {
    /// Pool with `n` workers.
    pub fn new(n: usize) -> TbbPool {
        assert!(n >= 1);
        let inner = Arc::new(Inner {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            inject: Mutex::new(VecDeque::new()),
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            park_mx: Mutex::new(()),
            park_cv: Condvar::new(),
            rngs: (0..n)
                .map(|i| AtomicUsize::new(0xABCD_1234 ^ (i << 20) ^ 1))
                .collect(),
        });
        let mut threads = Vec::new();
        for i in 0..n {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tbblike-{i}"))
                    .stack_size(16 << 20)
                    .spawn(move || worker_main(inner, i))
                    .unwrap(),
            );
        }
        TbbPool { inner, threads }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// Run `f` on the pool, blocking until it returns.
    pub fn run<R: Send>(&self, f: impl FnOnce(&TbbCtx<'_>) -> R + Send) -> R {
        let done = Mutex::new(false);
        let cv = Condvar::new();
        let mut slot: Option<std::thread::Result<R>> = None;
        struct SendPtr<T>(*mut T);
        unsafe impl<T> Send for SendPtr<T> {}
        let slot_ptr = SendPtr(&mut slot as *mut _);
        let sync = (&done, &cv);
        let job = move |ctx: &TbbCtx<'_>| {
            let slot_ptr = slot_ptr;
            let r = catch_unwind(AssertUnwindSafe(|| f(ctx)));
            unsafe { *slot_ptr.0 = Some(r) };
            let (done, cv) = sync;
            let mut g = done.lock();
            *g = true;
            cv.notify_all();
        };
        let boxed: Box<dyn FnOnce(&TbbCtx<'_>) + Send + '_> = Box::new(job);
        // Safety: blocked on the latch until executed (scoped erasure).
        let boxed: TaskFn = unsafe { std::mem::transmute(boxed) };
        self.inner.inject.lock().push_back(boxed);
        signal(&self.inner);
        let mut g = done.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        match slot.expect("tbb job lost") {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    }
}

impl Drop for TbbPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.park_mx.lock();
            self.inner.park_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn signal(inner: &Arc<Inner>) {
    if inner.sleepers.load(Ordering::SeqCst) > 0 {
        let _g = inner.park_mx.lock();
        inner.park_cv.notify_all();
    }
}

fn next_rand(inner: &Inner, me: usize) -> usize {
    let r = &inner.rngs[me];
    let mut x = r.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    r.store(x, Ordering::Relaxed);
    x
}

fn run_task(inner: &Arc<Inner>, widx: usize, t: TaskObj) {
    let ctx = TbbCtx { inner, widx };
    let res = catch_unwind(AssertUnwindSafe(|| (t.f)(&ctx)));
    if let Err(p) = res {
        let mut slot = t.wait.panic.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
    }
    t.wait.done();
}

fn pop_local(inner: &Inner, me: usize) -> Option<TaskObj> {
    inner.queues[me].lock().pop_back()
}

fn try_steal(inner: &Inner, me: usize) -> Option<TaskObj> {
    let p = inner.queues.len();
    if p < 2 {
        return None;
    }
    for _ in 0..2 * p {
        let mut v = next_rand(inner, me) % (p - 1);
        if v >= me {
            v += 1;
        }
        if let Some(t) = inner.queues[v].lock().pop_front() {
            return Some(t);
        }
    }
    None
}

fn worker_main(inner: Arc<Inner>, me: usize) {
    let mut idle = 0u32;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let injected = inner.inject.lock().pop_front();
        if let Some(f) = injected {
            let wg = WaitGroup::new(1);
            run_task(&inner, me, TaskObj { f, wait: wg });
            idle = 0;
            continue;
        }
        if let Some(t) = pop_local(&inner, me).or_else(|| try_steal(&inner, me)) {
            run_task(&inner, me, t);
            idle = 0;
            continue;
        }
        idle += 1;
        if idle < 16 {
            std::thread::yield_now();
        } else {
            inner.sleepers.fetch_add(1, Ordering::SeqCst);
            let mut g = inner.park_mx.lock();
            if !inner.shutdown.load(Ordering::Acquire) && inner.inject.lock().is_empty() {
                inner.park_cv.wait_for(&mut g, Duration::from_micros(500));
            }
            drop(g);
            inner.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl<'p> TbbCtx<'p> {
    /// Worker index.
    pub fn worker_index(&self) -> usize {
        self.widx
    }

    /// Fork-join with an allocated, refcounted task for the forked branch
    /// (the TBB `spawn` + `wait_for_all` shape).
    pub fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&TbbCtx<'_>) -> RA,
        FB: FnOnce(&TbbCtx<'_>) -> RB + Send,
        RB: Send,
    {
        let wg = WaitGroup::new(1);
        let result: Arc<Mutex<Option<RB>>> = Arc::new(Mutex::new(None));
        {
            let result = Arc::clone(&result);
            let body = move |ctx: &TbbCtx<'_>| {
                let v = fb(ctx);
                *result.lock() = Some(v);
            };
            let boxed: Box<dyn FnOnce(&TbbCtx<'_>) + Send + '_> = Box::new(body);
            // Safety: join blocks until the wait group clears.
            let boxed: TaskFn = unsafe { std::mem::transmute(boxed) };
            self.inner.queues[self.widx].lock().push_back(TaskObj {
                f: boxed,
                wait: Arc::clone(&wg),
            });
        }
        signal(self.inner);
        // Even a panicking continuation must wait for the forked branch:
        // its closure borrows this stack frame.
        let ra = catch_unwind(AssertUnwindSafe(|| fa(self)));
        // Drain own queue / steal until the forked branch completed.
        while !wg.is_done() {
            if let Some(t) =
                pop_local(self.inner, self.widx).or_else(|| try_steal(self.inner, self.widx))
            {
                run_task(self.inner, self.widx, t);
            } else {
                std::hint::spin_loop();
            }
        }
        let ra = match ra {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        };
        if let Some(p) = wg.panic.lock().take() {
            resume_unwind(p);
        }
        let rb = result.lock().take().expect("tbb join lost its result");
        (ra, rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(ctx: &TbbCtx<'_>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = ctx.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }

    #[test]
    fn fib_small() {
        let pool = TbbPool::new(2);
        assert_eq!(pool.run(|c| fib(c, 18)), 2584);
    }

    #[test]
    fn fib_more_workers() {
        let pool = TbbPool::new(4);
        assert_eq!(pool.run(|c| fib(c, 20)), 6765);
    }

    #[test]
    fn panic_propagates() {
        let pool = TbbPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|c| c.join(|_| 0, |_| -> i32 { panic!("tbb boom") }))
        }));
        assert!(r.is_err());
        assert_eq!(pool.run(|c| fib(c, 8)), 21);
    }

    #[test]
    fn borrows_environment() {
        let pool = TbbPool::new(2);
        let v = [5u64; 10];
        let (a, b) = pool.run(|c| c.join(|_| v.iter().sum::<u64>(), |_| v.len()));
        assert_eq!((a, b), (50, 10));
    }
}
