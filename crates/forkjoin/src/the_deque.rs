//! A Cilk-5 style T.H.E. work-stealing deque.
//!
//! The owner pushes and pops at the *tail* without taking the lock (one
//! SeqCst fence on pop); thieves take the lock and advance the *head*. The
//! exceptional case — owner and thief racing for the last job — falls back
//! to the lock, exactly the protocol of "The implementation of the Cilk-5
//! multithreaded language" (Frigo, Leiserson, Randall, PLDI'98) that the
//! paper reuses for victim/thief synchronisation.
//!
//! Entries are type-erased [`JobRef`]s pointing at stack- or heap-allocated
//! job records; the deque never owns them.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicIsize, AtomicPtr, Ordering};

/// Type-erased executor of a stack job record.
pub type ExecFn = unsafe fn(*mut (), usize);

/// A type-erased reference to a job record.
///
/// `data` points at the record, `exec` knows how to run it. The record must
/// outlive its execution (stack jobs guarantee this with a completion latch).
#[derive(Clone, Copy)]
pub struct JobRef {
    /// Pointer to the job record.
    pub data: *mut (),
    /// Executor: runs the record on the given worker index.
    pub exec: ExecFn,
}

unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job on worker `widx`.
    ///
    /// # Safety
    /// `data` must still be valid and not already executed.
    pub unsafe fn execute(self, widx: usize) {
        (self.exec)(self.data, widx)
    }
}

const CAP: usize = 1 << 13;

/// Fixed-capacity T.H.E. deque. `push` reports `false` when full (callers
/// execute the job inline instead — a reasonable overflow policy for
/// depth-bounded fork-join work).
pub struct TheDeque {
    head: AtomicIsize,
    tail: AtomicIsize,
    lock: Mutex<()>,
    buf: Box<[AtomicPtr<()>; CAP]>,
    execs: Box<[std::cell::Cell<Option<ExecFn>>; CAP]>,
}

// Safety: `execs` entries are written by the owner before the tail release
// and read under the thief lock / after the fence protocol.
unsafe impl Sync for TheDeque {}
unsafe impl Send for TheDeque {}

impl Default for TheDeque {
    fn default() -> Self {
        Self::new()
    }
}

impl TheDeque {
    /// Empty deque.
    pub fn new() -> TheDeque {
        let buf: Vec<AtomicPtr<()>> = (0..CAP)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        let execs: Vec<std::cell::Cell<Option<ExecFn>>> =
            (0..CAP).map(|_| std::cell::Cell::new(None)).collect();
        TheDeque {
            head: AtomicIsize::new(0),
            tail: AtomicIsize::new(0),
            lock: Mutex::new(()),
            buf: buf.try_into().map_err(|_| ()).unwrap(),
            execs: execs.try_into().map_err(|_| ()).unwrap(),
        }
    }

    /// Owner: push at the tail. Returns `false` when full.
    #[inline]
    pub fn push(&self, job: JobRef) -> bool {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        if (t - h) as usize >= CAP {
            return false;
        }
        let slot = (t as usize) & (CAP - 1);
        self.execs[slot].set(Some(job.exec));
        self.buf[slot].store(job.data, Ordering::Relaxed);
        // Publish the entry before the new tail becomes visible.
        self.tail.store(t + 1, Ordering::Release);
        true
    }

    /// Owner: pop at the tail (LIFO). The T.H.E. fast path with the
    /// exceptional lock fallback on the last-element race.
    pub fn pop(&self) -> Option<JobRef> {
        let t = self.tail.load(Ordering::Relaxed) - 1;
        self.tail.store(t, Ordering::Relaxed);
        // The famous fence: order the tail decrement before reading head.
        std::sync::atomic::fence(Ordering::SeqCst);
        let h = self.head.load(Ordering::Relaxed);
        if h > t {
            // Possible conflict on the last element: restore and retry
            // under the lock.
            self.tail.store(t + 1, Ordering::Relaxed);
            let _g = self.lock.lock();
            let t = self.tail.load(Ordering::Relaxed) - 1;
            self.tail.store(t, Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::SeqCst);
            let h = self.head.load(Ordering::Relaxed);
            if h > t {
                self.tail.store(t + 1, Ordering::Relaxed);
                return None;
            }
            return Some(self.read_slot(t));
        }
        Some(self.read_slot(t))
    }

    /// Thief: steal from the head (oldest job first, as in Cilk).
    pub fn steal(&self) -> Option<JobRef> {
        let _g = self.lock.lock();
        let h = self.head.load(Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.tail.load(Ordering::Relaxed);
        if h + 1 > t {
            self.head.store(h, Ordering::Relaxed);
            return None;
        }
        Some(self.read_slot(h))
    }

    #[inline]
    fn read_slot(&self, idx: isize) -> JobRef {
        let slot = (idx as usize) & (CAP - 1);
        JobRef {
            data: self.buf[slot].load(Ordering::Relaxed),
            exec: self.execs[slot].get().expect("deque slot without exec fn"),
        }
    }

    /// Racy emptiness hint for victim selection.
    #[inline]
    pub fn is_empty_hint(&self) -> bool {
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Relaxed);
        h >= t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn mk_job(v: &AtomicUsize) -> JobRef {
        unsafe fn exec(data: *mut (), _w: usize) {
            let v = unsafe { &*(data as *const AtomicUsize) };
            v.fetch_add(1, Ordering::Relaxed);
        }
        JobRef {
            data: v as *const AtomicUsize as *mut (),
            exec,
        }
    }

    #[test]
    fn lifo_owner_fifo_thief() {
        let d = TheDeque::new();
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        for h in &hits {
            assert!(d.push(mk_job(h)));
        }
        // thief takes the oldest
        let s = d.steal().unwrap();
        unsafe { s.execute(0) };
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        // owner takes the newest
        let p = d.pop().unwrap();
        unsafe { p.execute(0) };
        assert_eq!(hits[2].load(Ordering::Relaxed), 1);
        let p = d.pop().unwrap();
        unsafe { p.execute(0) };
        assert_eq!(hits[1].load(Ordering::Relaxed), 1);
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
    }

    #[test]
    fn empty_pop_and_steal() {
        let d = TheDeque::new();
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
        assert!(d.is_empty_hint());
    }

    #[test]
    fn concurrent_conservation() {
        // One owner pushing/popping, several thieves stealing: every job
        // executes exactly once.
        const N: usize = 10_000;
        for _ in 0..4 {
            let d = Arc::new(TheDeque::new());
            let count = Arc::new(AtomicUsize::new(0));
            let stop = Arc::new(AtomicUsize::new(0));
            let mut thieves = Vec::new();
            for _ in 0..3 {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                thieves.push(std::thread::spawn(move || {
                    let mut got = 0usize;
                    while stop.load(Ordering::Acquire) == 0 {
                        if let Some(j) = d.steal() {
                            unsafe { j.execute(1) };
                            got += 1;
                        }
                    }
                    // drain remainder
                    while let Some(j) = d.steal() {
                        unsafe { j.execute(1) };
                        got += 1;
                    }
                    got
                }));
            }
            let counts: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
            let mut executed = 0usize;
            for c in &counts {
                let j = JobRef {
                    data: c as *const AtomicUsize as *mut (),
                    exec: {
                        unsafe fn exec(data: *mut (), _w: usize) {
                            let v = unsafe { &*(data as *const AtomicUsize) };
                            v.fetch_add(1, Ordering::Relaxed);
                        }
                        exec
                    },
                };
                if !d.push(j) {
                    unsafe { j.execute(0) };
                    executed += 1;
                }
                if executed.is_multiple_of(3) {
                    if let Some(j) = d.pop() {
                        unsafe { j.execute(0) };
                    }
                }
            }
            while let Some(j) = d.pop() {
                unsafe { j.execute(0) };
            }
            stop.store(1, Ordering::Release);
            for t in thieves {
                t.join().unwrap();
            }
            let total: usize = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
            assert_eq!(total, N);
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            let _ = count;
        }
    }
}
