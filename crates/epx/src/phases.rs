//! The three parallelisable phases of the EPX mini-app, each in three
//! execution modes (sequential / X-Kaapi adaptive loops / OpenMP-style
//! worksharing):
//!
//! * **LOOPELM** — independent loop over finite elements computing nodal
//!   internal forces (memory- or compute-bound depending on the history
//!   length knob), followed by the race-free node-wise gather;
//! * **REPERA** — independent loop sorting candidates for node-to-facet
//!   unilateral contact (compute-bound geometric tests);
//! * **H assembly** — build the condensed skyline H matrix from the
//!   contact candidates (sequential, small).

use crate::model::{element_force, Material, Mesh, State};
use xkaapi_core::Runtime;
use xkaapi_omp::{OmpPool, Schedule};
use xkaapi_skyline::SkylineMatrix;

/// How a phase executes.
pub enum ExecMode<'a> {
    /// Plain sequential loops.
    Seq,
    /// X-Kaapi adaptive `foreach`.
    Xkaapi(&'a Runtime),
    /// OpenMP-style worksharing with the given schedule.
    Omp(&'a OmpPool, Schedule),
}

struct Ptr<T>(*mut T);
// Manual Clone/Copy: the derive would demand `T: Copy` although the field
// is a raw pointer (always copyable).
impl<T> Clone for Ptr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Ptr<T> {}
unsafe impl<T> Send for Ptr<T> {}
unsafe impl<T> Sync for Ptr<T> {}

/// LOOPELM: per-element force computation + node-wise assembly.
pub fn loopelm(mesh: &Mesh, mat: &Material, state: &mut State, mode: &ExecMode<'_>) {
    let ne = mesh.num_elems();
    let nn = mesh.num_nodes();
    // Split state: the element loop writes elem_state[e] / elem_force[e]
    // and reads disp; the node loop writes force[n] reading elem_force.
    let disp: &[[f64; 3]] = &state.disp;
    let elem_state = Ptr(state.elem_state.as_mut_ptr());
    let elem_force = Ptr(state.elem_force.as_mut_ptr());
    let elem_body = |e: usize| {
        let (elem_state, elem_force) = (elem_state, elem_force); // whole-capture the Send wrappers
                                                                 // Safety: distinct `e` → distinct slots; loops hand out disjoint
                                                                 // index ranges.
        let es = unsafe { &mut *elem_state.0.add(e) };
        let out = unsafe { &mut *elem_force.0.add(e) };
        element_force(mesh, mat, disp, es, out, e);
    };
    match mode {
        ExecMode::Seq => (0..ne).for_each(elem_body),
        // Ported to the attribute-carrying builder (DESIGN.md §5): the
        // element loop is the phase's bulk work, lowered with explicit
        // TaskAttrs like every other paradigm front-end.
        ExecMode::Xkaapi(rt) => rt.scope(|ctx| ctx.task().foreach(0..ne, &elem_body)),
        ExecMode::Omp(pool, sched) => pool.parallel_for(0..ne, *sched, elem_body),
    }

    // Node-wise gather (race-free: node n sums its incident contributions).
    let node_elems: &[Vec<(u32, u8)>] = &state.node_elems;
    let elem_force_ro: &[[[f64; 3]; 8]] = &state.elem_force;
    let force = Ptr(state.force.as_mut_ptr());
    let node_body = |n: usize| {
        #[allow(clippy::redundant_locals)] // whole-capture the Send wrapper
        let force = force;
        let f = unsafe { &mut *force.0.add(n) };
        *f = [0.0; 3];
        for &(e, slot) in &node_elems[n] {
            let c = &elem_force_ro[e as usize][slot as usize];
            f[0] += c[0];
            f[1] += c[1];
            f[2] += c[2];
        }
    };
    match mode {
        ExecMode::Seq => (0..nn).for_each(node_body),
        ExecMode::Xkaapi(rt) => rt.scope(|ctx| ctx.task().foreach(0..nn, &node_body)),
        ExecMode::Omp(pool, sched) => pool.parallel_for(0..nn, *sched, node_body),
    }
}

/// A contact candidate: a node close to a facet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Node index.
    pub node: u32,
    /// Facet index.
    pub facet: u32,
    /// Signed gap.
    pub gap: f64,
}

/// REPERA: node-to-facet candidate search. `intensity` repeats the
/// geometric refinement to model the compute-bound nature of the real
/// sorting procedure. Deterministic: output order is by node index.
pub fn repera(
    mesh: &Mesh,
    state: &State,
    intensity: usize,
    threshold: f64,
    mode: &ExecMode<'_>,
) -> Vec<Candidate> {
    let nn = mesh.num_nodes();
    let mut per_node: Vec<Vec<Candidate>> = vec![Vec::new(); nn];
    let per_node_ptr = Ptr(per_node.as_mut_ptr());
    let coords: &[[f64; 3]] = &mesh.coords;
    let disp: &[[f64; 3]] = &state.disp;
    let facets: &[[usize; 4]] = &mesh.facets;

    let body = |n: usize| {
        #[allow(clippy::redundant_locals)] // whole-capture the Send wrapper
        let per_node_ptr = per_node_ptr;
        let out = unsafe { &mut *per_node_ptr.0.add(n) };
        let p = [
            coords[n][0] + disp[n][0],
            coords[n][1] + disp[n][1],
            coords[n][2] + disp[n][2],
        ];
        for (fi, fc) in facets.iter().enumerate() {
            if fc.contains(&n) {
                continue; // own facet
            }
            // Facet geometry (current configuration).
            let mut v = [[0.0f64; 3]; 4];
            for (a, &fn_) in fc.iter().enumerate() {
                v[a] = [
                    coords[fn_][0] + disp[fn_][0],
                    coords[fn_][1] + disp[fn_][1],
                    coords[fn_][2] + disp[fn_][2],
                ];
            }
            // Refinement iterations: normal estimation + projection.
            let mut gap = 0.0;
            let mut inside = false;
            for _ in 0..intensity.max(1) {
                let e1 = [v[1][0] - v[0][0], v[1][1] - v[0][1], v[1][2] - v[0][2]];
                let e2 = [v[3][0] - v[0][0], v[3][1] - v[0][1], v[3][2] - v[0][2]];
                let nvec = [
                    e1[1] * e2[2] - e1[2] * e2[1],
                    e1[2] * e2[0] - e1[0] * e2[2],
                    e1[0] * e2[1] - e1[1] * e2[0],
                ];
                let nl = (nvec[0] * nvec[0] + nvec[1] * nvec[1] + nvec[2] * nvec[2]).sqrt();
                if nl == 0.0 {
                    break;
                }
                let inv = 1.0 / nl;
                let d = [p[0] - v[0][0], p[1] - v[0][1], p[2] - v[0][2]];
                gap = (d[0] * nvec[0] + d[1] * nvec[1] + d[2] * nvec[2]) * inv;
                // in-face test via parametric coordinates (clamped)
                let l1 = (e1[0] * e1[0] + e1[1] * e1[1] + e1[2] * e1[2]).max(1e-30);
                let l2 = (e2[0] * e2[0] + e2[1] * e2[1] + e2[2] * e2[2]).max(1e-30);
                let s = (d[0] * e1[0] + d[1] * e1[1] + d[2] * e1[2]) / l1;
                let t = (d[0] * e2[0] + d[1] * e2[1] + d[2] * e2[2]) / l2;
                inside = (-0.05..=1.05).contains(&s) && (-0.05..=1.05).contains(&t);
            }
            if inside && gap.abs() <= threshold {
                out.push(Candidate {
                    node: n as u32,
                    facet: fi as u32,
                    gap,
                });
            }
        }
    };
    match mode {
        ExecMode::Seq => (0..nn).for_each(body),
        ExecMode::Xkaapi(rt) => rt.scope(|ctx| ctx.task().foreach(0..nn, &body)),
        ExecMode::Omp(pool, sched) => pool.parallel_for(0..nn, *sched, body),
    }
    per_node.into_iter().flatten().collect()
}

/// Assemble the condensed H matrix (one row per Lagrange multiplier =
/// contact candidate): multipliers sharing a facet or node couple, which
/// produces the banded-plus-spikes skyline profile of the real code.
pub fn assemble_h(cands: &[Candidate], min_size: usize) -> SkylineMatrix {
    let n = cands.len().max(min_size).max(2);
    let mut jmin = Vec::with_capacity(n);
    for i in 0..n {
        if i < cands.len() {
            // couple with earlier multipliers on the same facet (long
            // reach) or nearby nodes (band)
            let mut j0 = i.saturating_sub(8);
            for (j, cj) in cands[..i].iter().enumerate() {
                if cj.facet == cands[i].facet {
                    j0 = j0.min(j);
                    break;
                }
            }
            jmin.push(j0);
        } else {
            jmin.push(i.saturating_sub(8));
        }
    }
    let mut h = SkylineMatrix::from_profile(jmin);
    let mut row_abs = vec![0.0f64; n];
    for i in 0..n {
        for j in h.jmin(i)..i {
            let gi = if i < cands.len() {
                cands[i].gap
            } else {
                1e-3 * i as f64
            };
            let gj = if j < cands.len() {
                cands[j].gap
            } else {
                1e-3 * j as f64
            };
            let v = 0.1 * (1.0 + gi * gj) * (1.0 / (1.0 + (i - j) as f64));
            h.set(i, j, v);
            row_abs[i] += v.abs();
            row_abs[j] += v.abs();
        }
    }
    for i in 0..n {
        h.set(i, i, row_abs[i] + 1.0);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Material, Mesh, State};

    fn fixture() -> (Mesh, Material, State) {
        let mesh = Mesh::block(4, 4, 3);
        let mat = Material::default();
        let mut state = State::new(&mesh, 8, 42);
        // some displacement so forces/candidates are non-trivial
        for (i, d) in state.disp.iter_mut().enumerate() {
            d[2] = -0.02 * (i % 11) as f64;
        }
        (mesh, mat, state)
    }

    #[test]
    fn loopelm_modes_agree() {
        let (mesh, mat, mut s_seq) = fixture();
        let (_, _, mut s_rt) = fixture();
        let (_, _, mut s_omp) = fixture();
        loopelm(&mesh, &mat, &mut s_seq, &ExecMode::Seq);
        let rt = Runtime::new(4);
        loopelm(&mesh, &mat, &mut s_rt, &ExecMode::Xkaapi(&rt));
        let pool = OmpPool::new(4);
        loopelm(
            &mesh,
            &mat,
            &mut s_omp,
            &ExecMode::Omp(&pool, Schedule::Dynamic(8)),
        );
        for n in 0..mesh.num_nodes() {
            for c in 0..3 {
                assert!((s_seq.force[n][c] - s_rt.force[n][c]).abs() < 1e-14);
                assert!((s_seq.force[n][c] - s_omp.force[n][c]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn repera_modes_agree() {
        let (mesh, _, s) = fixture();
        let c_seq = repera(&mesh, &s, 2, 2.0, &ExecMode::Seq);
        let rt = Runtime::new(4);
        let c_rt = repera(&mesh, &s, 2, 2.0, &ExecMode::Xkaapi(&rt));
        let pool = OmpPool::new(3);
        let c_omp = repera(&mesh, &s, 2, 2.0, &ExecMode::Omp(&pool, Schedule::Static));
        assert_eq!(c_seq, c_rt);
        assert_eq!(c_seq, c_omp);
        assert!(!c_seq.is_empty(), "fixture should produce candidates");
    }

    #[test]
    fn repera_intensity_changes_work_not_result() {
        let (mesh, _, s) = fixture();
        let c1 = repera(&mesh, &s, 1, 2.0, &ExecMode::Seq);
        let c5 = repera(&mesh, &s, 5, 2.0, &ExecMode::Seq);
        // same candidate set (refinement is idempotent on flat facets)
        assert_eq!(c1.len(), c5.len());
    }

    #[test]
    fn h_matrix_is_spd_like_and_sized() {
        let (mesh, _, s) = fixture();
        let cands = repera(&mesh, &s, 1, 2.0, &ExecMode::Seq);
        let h = assemble_h(&cands, 32);
        assert!(h.n >= 32);
        // diagonal dominance
        for i in 0..h.n {
            let mut off = 0.0;
            for j in 0..h.n {
                if j != i {
                    off += h.get(i, j).abs();
                }
            }
            assert!(h.get(i, i) > off, "row {i} not dominant");
        }
    }

    #[test]
    fn h_assembly_deterministic() {
        let (mesh, _, s) = fixture();
        let cands = repera(&mesh, &s, 1, 2.0, &ExecMode::Seq);
        let h1 = assemble_h(&cands, 16);
        let h2 = assemble_h(&cands, 16);
        for i in 0..h1.n {
            for j in 0..=i {
                assert_eq!(h1.get(i, j), h2.get(i, j));
            }
        }
    }
}
