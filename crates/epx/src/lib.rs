//! EPX mini-app: a behavioural stand-in for EUROPLEXUS, the industrial
//! fast-transient-dynamics code of the paper's case study (Section IV).
//!
//! It reproduces the three algorithmic phases the paper identifies as ~70 %
//! of a typical EPX run — LOOPELM (independent elemental-force loop), REPERA
//! (independent contact-candidate sort) and CHOLESKY (skyline LDLᵀ of the
//! condensed H matrix) — plus the serial remainder, under three execution
//! modes (sequential, X-Kaapi, OpenMP-like). The MEPPEN and MAXPLANE
//! scenario presets mirror the paper's two instances: MEPPEN is dominated
//! by the loops (LOOPELM bandwidth-bound), MAXPLANE by the factorisation.
//!
//! See DESIGN.md §1 for the substitution argument (the real EPX is 600 kLoC
//! of proprietary Fortran).

#![warn(missing_docs)]
// Numeric kernels index several arrays by the same loop variable; iterator
// rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod driver;
pub mod model;
pub mod phases;

pub use driver::{run, PhaseTimes, RunResult, Scenario};
pub use model::{Material, Mesh, State};
pub use phases::{assemble_h, loopelm, repera, Candidate, ExecMode};
