//! The structural model of the EPX mini-app: a hexahedral mesh, nodal
//! kinematic state, per-element material state, and an elastoplastic
//! constitutive update.
//!
//! This is a *behavioural* stand-in for EUROPLEXUS (600 kLoC of Fortran we
//! obviously do not have — see DESIGN.md §1): the mesh/element/material
//! code reproduces the arithmetic intensity and memory-traffic pattern of
//! the LOOPELM nodal-force loop, not the full finite-element machinery.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A hexahedral mesh: `nx × ny × nz` elements on a structured grid.
pub struct Mesh {
    /// Node coordinates.
    pub coords: Vec<[f64; 3]>,
    /// 8-node element connectivity.
    pub elems: Vec<[usize; 8]>,
    /// Surface facets (quads) used by the contact search.
    pub facets: Vec<[usize; 4]>,
    /// Grid dimensions in elements.
    pub dims: (usize, usize, usize),
}

impl Mesh {
    /// Structured hex block of `nx × ny × nz` elements with unit spacing.
    pub fn block(nx: usize, ny: usize, nz: usize) -> Mesh {
        assert!(nx >= 1 && ny >= 1 && nz >= 1);
        let (px, py, pz) = (nx + 1, ny + 1, nz + 1);
        let node = |i: usize, j: usize, k: usize| (k * py + j) * px + i;
        let mut coords = Vec::with_capacity(px * py * pz);
        for k in 0..pz {
            for j in 0..py {
                for i in 0..px {
                    coords.push([i as f64, j as f64, k as f64]);
                }
            }
        }
        let mut elems = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    elems.push([
                        node(i, j, k),
                        node(i + 1, j, k),
                        node(i + 1, j + 1, k),
                        node(i, j + 1, k),
                        node(i, j, k + 1),
                        node(i + 1, j, k + 1),
                        node(i + 1, j + 1, k + 1),
                        node(i, j + 1, k + 1),
                    ]);
                }
            }
        }
        // Surface facets: the two z-extreme faces (the contact surfaces of
        // both scenarios: missile nose / plate plies).
        let mut facets = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                facets.push([
                    node(i, j, 0),
                    node(i + 1, j, 0),
                    node(i + 1, j + 1, 0),
                    node(i, j + 1, 0),
                ]);
                facets.push([
                    node(i, j, nz),
                    node(i + 1, j, nz),
                    node(i + 1, j + 1, nz),
                    node(i, j + 1, nz),
                ]);
            }
        }
        Mesh {
            coords,
            elems,
            facets,
            dims: (nx, ny, nz),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of elements.
    pub fn num_elems(&self) -> usize {
        self.elems.len()
    }
}

/// Elastoplastic material parameters (von-Mises-flavoured, simplified).
#[derive(Clone, Copy, Debug)]
pub struct Material {
    /// Young-like stiffness.
    pub stiffness: f64,
    /// Yield threshold.
    pub yield_stress: f64,
    /// Hardening modulus.
    pub hardening: f64,
    /// Constitutive sub-increments per step (models integration points /
    /// return-mapping iterations; the LOOPELM compute-intensity knob).
    pub subcycles: usize,
}

impl Default for Material {
    fn default() -> Self {
        Material {
            stiffness: 100.0,
            yield_stress: 1.5,
            hardening: 10.0,
            subcycles: 1,
        }
    }
}

/// Per-element state: stress, accumulated plastic strain, plus a history
/// buffer whose length is the **memory-intensity knob**: MEPPEN streams a
/// large history per element (making LOOPELM bandwidth-bound, as the paper
/// observes), MAXPLANE a small one.
pub struct ElemState {
    /// Cauchy-ish stress (6 Voigt components).
    pub stress: [f64; 6],
    /// Accumulated plastic strain.
    pub plastic: f64,
    /// Streamed history variables (internal material state).
    pub history: Box<[f64]>,
}

/// Mutable simulation state.
pub struct State {
    /// Nodal displacements.
    pub disp: Vec<[f64; 3]>,
    /// Nodal velocities.
    pub vel: Vec<[f64; 3]>,
    /// Assembled nodal forces (output of LOOPELM).
    pub force: Vec<[f64; 3]>,
    /// Per-element scatter buffer (written element-wise, race-free).
    pub elem_force: Vec<[[f64; 3]; 8]>,
    /// Per-element material state.
    pub elem_state: Vec<ElemState>,
    /// Node → incident elements (for the race-free gather).
    pub node_elems: Vec<Vec<(u32, u8)>>,
}

impl State {
    /// Initial state with an impact-like velocity field.
    pub fn new(mesh: &Mesh, history_len: usize, seed: u64) -> State {
        let nn = mesh.num_nodes();
        let ne = mesh.num_elems();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut node_elems = vec![Vec::new(); nn];
        for (e, conn) in mesh.elems.iter().enumerate() {
            for (slot, &n) in conn.iter().enumerate() {
                node_elems[n].push((e as u32, slot as u8));
            }
        }
        State {
            disp: vec![[0.0; 3]; nn],
            vel: (0..nn)
                .map(|i| {
                    let z = mesh.coords[i][2];
                    [
                        rng.gen_range(-0.01..0.01),
                        rng.gen_range(-0.01..0.01),
                        -0.5 - 0.01 * z,
                    ]
                })
                .collect(),
            force: vec![[0.0; 3]; nn],
            elem_force: vec![[[0.0; 3]; 8]; ne],
            elem_state: (0..ne)
                .map(|_| ElemState {
                    stress: [0.0; 6],
                    plastic: 0.0,
                    history: vec![0.0; history_len].into_boxed_slice(),
                })
                .collect(),
            node_elems,
        }
    }

    /// Deterministic checksum over displacements (cross-mode validation).
    pub fn checksum(&self) -> f64 {
        let mut acc = 0.0f64;
        for (i, d) in self.disp.iter().enumerate() {
            let w = 1.0 + (i % 97) as f64 * 1e-3;
            acc += w * (d[0] + 2.0 * d[1] + 3.0 * d[2]);
        }
        acc
    }
}

/// The per-element constitutive update: gather kinematics, elastic trial,
/// plastic correction, history streaming, scatter of the 8 nodal force
/// contributions. This is the body of the LOOPELM loop.
///
/// Safe to run concurrently for distinct `e` (writes only `elem_force[e]`,
/// `elem_state[e]`).
#[allow(clippy::too_many_arguments)]
pub fn element_force(
    mesh: &Mesh,
    mat: &Material,
    disp: &[[f64; 3]],
    es: &mut ElemState,
    out: &mut [[f64; 3]; 8],
    e: usize,
) {
    let conn = &mesh.elems[e];
    // Gather (memory traffic: coordinates + displacements of 8 nodes).
    let mut x = [[0.0f64; 3]; 8];
    let mut u = [[0.0f64; 3]; 8];
    for (a, &n) in conn.iter().enumerate() {
        x[a] = mesh.coords[n];
        u[a] = disp[n];
    }
    // Strain proxy: mean edge elongation tensor (6 Voigt components).
    let mut strain = [0.0f64; 6];
    const EDGES: [(usize, usize); 12] = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4),
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
    ];
    for &(a, b) in &EDGES {
        let dx = [x[b][0] - x[a][0], x[b][1] - x[a][1], x[b][2] - x[a][2]];
        let du = [u[b][0] - u[a][0], u[b][1] - u[a][1], u[b][2] - u[a][2]];
        let len2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
        let inv = 1.0 / len2;
        strain[0] += du[0] * dx[0] * inv;
        strain[1] += du[1] * dx[1] * inv;
        strain[2] += du[2] * dx[2] * inv;
        strain[3] += 0.5 * (du[0] * dx[1] + du[1] * dx[0]) * inv;
        strain[4] += 0.5 * (du[1] * dx[2] + du[2] * dx[1]) * inv;
        strain[5] += 0.5 * (du[0] * dx[2] + du[2] * dx[0]) * inv;
    }
    for s in &mut strain {
        *s /= 12.0;
    }
    // Elastic trial + radial-return-flavoured plastic correction, applied
    // in `subcycles` sub-increments (integration-point loop).
    let sub = mat.subcycles.max(1);
    let inv_sub = 1.0 / sub as f64;
    let mut trial = es.stress;
    for _ in 0..sub {
        for c in 0..6 {
            trial[c] += mat.stiffness * strain[c] * inv_sub;
        }
        let mises = (trial[0] * trial[0]
            + trial[1] * trial[1]
            + trial[2] * trial[2]
            + 2.0 * (trial[3] * trial[3] + trial[4] * trial[4] + trial[5] * trial[5]))
            .sqrt();
        let yield_now = mat.yield_stress + mat.hardening * es.plastic;
        if mises > yield_now && mises > 0.0 {
            let scale = yield_now / mises;
            for t in &mut trial {
                *t *= scale;
            }
            es.plastic += (mises - yield_now) / (mat.stiffness + mat.hardening);
        }
    }
    es.stress = trial;
    // History streaming: the bandwidth knob (read-modify-write the buffer).
    let h = &mut es.history;
    if !h.is_empty() {
        let blend = 1e-3 * (trial[0] + trial[1] + trial[2]);
        for (i, v) in h.iter_mut().enumerate() {
            *v = 0.999 * *v + blend + (i & 7) as f64 * 1e-9;
        }
    }
    // Scatter: equal-and-opposite nodal contributions from the stress.
    let f = [
        trial[0] + trial[3] + trial[5],
        trial[1] + trial[3] + trial[4],
        trial[2] + trial[4] + trial[5],
    ];
    for (a, o) in out.iter_mut().enumerate() {
        let sign = if a % 2 == 0 { 1.0 } else { -1.0 };
        let w = 0.125 * sign;
        o[0] = -w * f[0];
        o[1] = -w * f[1];
        o[2] = -w * f[2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mesh_counts() {
        let m = Mesh::block(3, 2, 4);
        assert_eq!(m.num_elems(), 24);
        assert_eq!(m.num_nodes(), 4 * 3 * 5);
        assert_eq!(m.facets.len(), 2 * 3 * 2);
        for e in &m.elems {
            assert!(e.iter().all(|&n| n < m.num_nodes()));
        }
    }

    #[test]
    fn node_elems_inverse_of_connectivity() {
        let m = Mesh::block(2, 2, 2);
        let s = State::new(&m, 0, 1);
        for (n, incid) in s.node_elems.iter().enumerate() {
            for &(e, slot) in incid {
                assert_eq!(m.elems[e as usize][slot as usize], n);
            }
        }
        let total: usize = s.node_elems.iter().map(|v| v.len()).sum();
        assert_eq!(total, m.num_elems() * 8);
    }

    #[test]
    fn element_force_is_deterministic() {
        let m = Mesh::block(2, 2, 2);
        let mat = Material::default();
        let mut s1 = State::new(&m, 16, 7);
        let mut s2 = State::new(&m, 16, 7);
        for e in 0..m.num_elems() {
            let disp1 = s1.disp.clone();
            let disp2 = s2.disp.clone();
            let (es1, out1) = (&mut s1.elem_state[e], &mut s1.elem_force[e]);
            let (es2, out2) = (&mut s2.elem_state[e], &mut s2.elem_force[e]);
            element_force(&m, &mat, &disp1, es1, out1, e);
            element_force(&m, &mat, &disp2, es2, out2, e);
            assert_eq!(out1, out2);
        }
    }

    #[test]
    fn plasticity_accumulates_under_load() {
        let m = Mesh::block(1, 1, 1);
        let mat = Material {
            stiffness: 100.0,
            yield_stress: 0.01,
            hardening: 1.0,
            subcycles: 1,
        };
        let mut s = State::new(&m, 0, 3);
        // big displacement gradient
        for (i, d) in s.disp.iter_mut().enumerate() {
            d[2] = i as f64 * 0.5;
        }
        let disp = s.disp.clone();
        element_force(
            &m,
            &mat,
            &disp,
            &mut s.elem_state[0],
            &mut s.elem_force[0],
            0,
        );
        assert!(s.elem_state[0].plastic > 0.0);
    }

    #[test]
    fn checksum_sensitive_to_state() {
        let m = Mesh::block(2, 2, 2);
        let mut s = State::new(&m, 0, 1);
        let c0 = s.checksum();
        s.disp[5][1] += 1e-3;
        assert_ne!(c0, s.checksum());
    }
}
