//! The EPX time-stepping driver and the two scenario presets.
//!
//! Each step runs the paper's phase sequence — LOOPELM, REPERA, H
//! assembly + CHOLESKY (skyline LDLᵀ) + solve, then the serial "other"
//! part (central-difference integration and bookkeeping, the ≈30 % the
//! paper leaves unparallelised) — and accumulates per-phase wall time, the
//! numbers behind Fig. 6 and Fig. 8.

use crate::model::{Material, Mesh, State};
use crate::phases::{assemble_h, loopelm, repera, ExecMode};
use std::time::Instant;
use xkaapi_skyline::{ldlt_omp, ldlt_seq, ldlt_xkaapi, solve, BlockSkyline};

/// Scenario preset: mesh size, knobs, and the phase-weight profile.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// Mesh dimensions in elements.
    pub mesh: (usize, usize, usize),
    /// Time steps to run.
    pub steps: usize,
    /// Per-element history length (memory-bandwidth knob of LOOPELM).
    pub history_len: usize,
    /// Constitutive sub-increments per element (LOOPELM compute knob).
    pub elem_subcycles: usize,
    /// REPERA refinement repetitions (compute knob).
    pub repera_intensity: usize,
    /// Contact gap threshold.
    pub gap_threshold: f64,
    /// Minimum H-matrix size (the condensed system of multipliers).
    pub h_min_size: usize,
    /// Maximum number of contact candidates kept as multipliers (the
    /// active set of the real code).
    pub h_max_size: usize,
    /// Block size of the skyline factorisation (paper: BS = 88).
    pub h_block_size: usize,
    /// Serial "other" work per step, in synthetic iterations.
    pub other_work: usize,
}

impl Scenario {
    /// MEPPEN: missile crash — LOOPELM (memory-bound) + REPERA dominate,
    /// small H matrix (few multipliers), per the paper's description.
    pub fn meppen(scale: usize) -> Scenario {
        let s = scale.max(1);
        Scenario {
            name: "MEPPEN",
            mesh: (10 * s, 10 * s, 3 * s),
            steps: 4,
            history_len: 256, // stream a lot of state: bandwidth-bound
            elem_subcycles: 3000,
            repera_intensity: 1,
            gap_threshold: 2.5,
            h_min_size: 48,
            h_max_size: 64,
            h_block_size: 16,
            other_work: 10_000_000 * s,
        }
    }

    /// MAXPLANE: ice impact on a composite plate — the condensed system is
    /// nearly dense in its envelope and CHOLESKY dominates (≈60 %).
    pub fn maxplane(scale: usize) -> Scenario {
        let s = scale.max(1);
        Scenario {
            name: "MAXPLANE",
            mesh: (6 * s, 6 * s, 2 * s),
            steps: 3,
            history_len: 16, // moderate arithmetic intensity
            elem_subcycles: 12,
            repera_intensity: 2,
            gap_threshold: 2.5,
            h_min_size: 300 * s, // large condensed system
            h_max_size: 4096 * s,
            h_block_size: 24,
            other_work: 20_000_000 * s,
        }
    }
}

/// Accumulated per-phase wall-clock times (seconds) — the Fig. 8 bars.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Nodal-force loop.
    pub loopelm: f64,
    /// Contact-candidate sort.
    pub repera: f64,
    /// Skyline factorisation + solve.
    pub cholesky: f64,
    /// Serial remainder.
    pub other: f64,
}

impl PhaseTimes {
    /// Total time.
    pub fn total(&self) -> f64 {
        self.loopelm + self.repera + self.cholesky + self.other
    }
}

/// Result of a simulation run.
pub struct RunResult {
    /// Final-state checksum (must agree across execution modes).
    pub checksum: f64,
    /// Per-phase times.
    pub times: PhaseTimes,
    /// Candidates found in the last step (sanity/reporting).
    pub last_candidates: usize,
    /// H-matrix order factored in the last step.
    pub h_order: usize,
}

/// Run `scenario` under the given execution mode.
pub fn run(scenario: &Scenario, mode: &ExecMode<'_>) -> RunResult {
    let (nx, ny, nz) = scenario.mesh;
    let mesh = Mesh::block(nx, ny, nz);
    let mat = Material {
        subcycles: scenario.elem_subcycles,
        ..Material::default()
    };
    let mut state = State::new(&mesh, scenario.history_len, 0xEBF);
    let mut times = PhaseTimes::default();
    let mut last_candidates = 0;
    let mut h_order = 0;
    let dt = 1e-3;

    for _step in 0..scenario.steps {
        // LOOPELM
        let t0 = Instant::now();
        loopelm(&mesh, &mat, &mut state, mode);
        times.loopelm += t0.elapsed().as_secs_f64();

        // REPERA
        let t0 = Instant::now();
        let cands = repera(
            &mesh,
            &state,
            scenario.repera_intensity,
            scenario.gap_threshold,
            mode,
        );
        times.repera += t0.elapsed().as_secs_f64();
        last_candidates = cands.len();

        // H assembly + CHOLESKY + solve
        let t0 = Instant::now();
        let active = &cands[..cands.len().min(scenario.h_max_size)];
        let h = assemble_h(active, scenario.h_min_size);
        h_order = h.n;
        let bsk = BlockSkyline::from_skyline(&h, scenario.h_block_size);
        let factored = match mode {
            ExecMode::Seq => {
                let mut b = bsk;
                ldlt_seq(&mut b);
                b
            }
            ExecMode::Xkaapi(rt) => ldlt_xkaapi(rt, bsk),
            ExecMode::Omp(pool, _) => {
                let mut b = bsk;
                ldlt_omp(pool, &mut b);
                b
            }
        };
        let rhs: Vec<f64> = (0..h.n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
        let lambda = solve(&factored, &rhs);
        times.cholesky += t0.elapsed().as_secs_f64();

        // "Other": serial central-difference update + link-force feedback.
        let t0 = Instant::now();
        let lambda_sum: f64 = lambda.iter().sum::<f64>() / lambda.len().max(1) as f64;
        for n in 0..mesh.num_nodes() {
            for c in 0..3 {
                state.vel[n][c] += dt * (state.force[n][c] - 1e-4 * lambda_sum);
                state.disp[n][c] += dt * state.vel[n][c];
            }
        }
        // synthetic serial bookkeeping (energy audit, I/O preparation …)
        let mut acc = 0.0f64;
        for i in 0..scenario.other_work {
            acc += ((i % 1013) as f64).sqrt();
        }
        std::hint::black_box(acc);
        times.other += t0.elapsed().as_secs_f64();
    }

    RunResult {
        checksum: state.checksum(),
        times,
        last_candidates,
        h_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xkaapi_core::Runtime;
    use xkaapi_omp::{OmpPool, Schedule};

    fn small(name: &str) -> Scenario {
        let mut s = if name == "MEPPEN" {
            Scenario::meppen(1)
        } else {
            Scenario::maxplane(1)
        };
        s.steps = 2;
        s.other_work = 1000;
        s
    }

    #[test]
    fn runs_meppen_sequentially() {
        let r = run(&small("MEPPEN"), &ExecMode::Seq);
        assert!(r.checksum.is_finite());
        assert!(r.times.total() > 0.0);
        assert!(r.h_order >= 48);
    }

    #[test]
    fn modes_produce_identical_physics() {
        for name in ["MEPPEN", "MAXPLANE"] {
            let sc = small(name);
            let r_seq = run(&sc, &ExecMode::Seq);
            let rt = Runtime::new(4);
            let r_rt = run(&sc, &ExecMode::Xkaapi(&rt));
            let pool = OmpPool::new(3);
            let r_omp = run(&sc, &ExecMode::Omp(&pool, Schedule::Dynamic(16)));
            assert!(
                (r_seq.checksum - r_rt.checksum).abs() < 1e-9,
                "{name}: seq {} vs xkaapi {}",
                r_seq.checksum,
                r_rt.checksum
            );
            assert!(
                (r_seq.checksum - r_omp.checksum).abs() < 1e-9,
                "{name}: seq {} vs omp {}",
                r_seq.checksum,
                r_omp.checksum
            );
            assert_eq!(r_seq.last_candidates, r_rt.last_candidates);
        }
    }

    #[test]
    fn maxplane_is_cholesky_heavy_relative_to_meppen() {
        // The scenario knobs must reproduce the paper's time distribution:
        // CHOLESKY share larger on MAXPLANE than on MEPPEN.
        let r_mep = run(&small("MEPPEN"), &ExecMode::Seq);
        let r_max = run(&small("MAXPLANE"), &ExecMode::Seq);
        let share_mep = r_mep.times.cholesky / r_mep.times.total();
        let share_max = r_max.times.cholesky / r_max.times.total();
        assert!(
            share_max > share_mep,
            "cholesky share: MAXPLANE {share_max:.3} vs MEPPEN {share_mep:.3}"
        );
    }

    #[test]
    fn scenario_presets_scale() {
        let s1 = Scenario::meppen(1);
        let s2 = Scenario::meppen(2);
        assert!(s2.mesh.0 > s1.mesh.0);
        let m1 = Scenario::maxplane(1);
        let m2 = Scenario::maxplane(2);
        assert!(m2.h_min_size > m1.h_min_size);
    }
}
