//! Frames: per-parent task sequences over the versioned data-flow core,
//! with the ready-list ("graph mode") acceleration.
//!
//! A frame holds the children one task (or one scope) spawned, in program
//! order. Pushing a task *binds* it into the frame's [`DataflowEngine`]
//! (version chains, see [`crate::dataflow`]): this records its predecessor
//! set and its version-slot routing once, and both execution strategies
//! read that single source of truth:
//!
//! * the owner executes FIFO without consulting dependencies at all
//!   (work-first: program order is always valid);
//! * a thief proves a task ready with an incremental check — every recorded
//!   predecessor completed (replacing the seed's O(n²) pairwise conflict
//!   scan);
//! * when steal scans become frequent the frame is *promoted*: a dependency
//!   graph with per-task predecessor counts and a ready list is derived
//!   from the same predecessor sets, then updated incrementally on
//!   push/completion, and steals degrade to a near-constant-time pop — the
//!   paper's "accelerating data structure for steal operations".

use crate::attrs::{NORMAL_BAND, PRIORITY_BANDS};
use crate::dataflow::DataflowEngine;
use crate::policy::RenamePolicy;
use crate::smallvec::InlineVec;
use crate::task::{Task, ST_INIT, ST_STOLEN};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Knobs controlling promotion to graph mode; part of the runtime tunables
/// so ablation benchmarks can disable the optimisation.
#[derive(Clone, Copy, Debug)]
pub struct PromotionPolicy {
    /// Promote when a steal scan visits a frame with at least this many tasks.
    pub promote_len: usize,
    /// Promote after this many steal scans of the same frame.
    pub promote_scans: usize,
    /// Master switch; `false` forces O(n²) scan-based steals forever.
    pub enabled: bool,
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        PromotionPolicy {
            promote_len: 16,
            promote_scans: 4,
            enabled: true,
        }
    }
}

/// The promoted dependency graph of a frame.
///
/// A thin readiness-propagation layer (`npred` counters, successor lists,
/// a ready list) over the predecessor sets the frame's [`DataflowEngine`]
/// computed at push time — the graph holds no dependency logic of its own,
/// so it can never disagree with the scan path.
pub(crate) struct DepGraph {
    npred: Vec<usize>,
    /// Successor lists; inline capacity covers the typical fan-out so
    /// integrating a task allocates nothing in the common case.
    succ: Vec<InlineVec<usize, 4>>,
    /// Completion already propagated (or task was done at promotion time).
    accounted: Vec<bool>,
    /// Indices of tasks believed ready (state `ST_INIT`, `npred == 0`),
    /// one list per priority band — thieves drain high bands first, FIFO
    /// within a band (the default band reproduces the unbanded order).
    /// May contain stale entries (claimed by the owner FIFO path); poppers
    /// re-validate with the claim CAS.
    ready: [VecDeque<usize>; PRIORITY_BANDS],
}

impl DepGraph {
    fn new() -> Self {
        DepGraph {
            npred: Vec::new(),
            succ: Vec::new(),
            accounted: Vec::new(),
            ready: std::array::from_fn(|_| VecDeque::new()),
        }
    }

    /// Integrate task `idx` with the predecessor set the version-chain
    /// engine recorded for it (must be called in program order). `band` is
    /// the task's priority band (ready-list routing).
    fn integrate(&mut self, idx: usize, preds: &[u32], already_done: bool, band: u8) {
        debug_assert_eq!(self.npred.len(), idx);
        self.npred.push(0);
        self.succ.push(InlineVec::new());
        self.accounted.push(already_done);
        let mut np = 0;
        for &p in preds {
            let p = p as usize;
            debug_assert!(p < idx);
            if !self.accounted[p] {
                self.succ[p].push(idx);
                np += 1;
            }
        }
        self.npred[idx] = np;
        if np == 0 && !already_done {
            self.ready[band as usize].push_back(idx);
        }
    }

    /// Propagate the completion of task `idx`.
    fn on_complete(&mut self, idx: usize, tasks: &[Arc<Task>]) {
        if idx >= self.accounted.len() || self.accounted[idx] {
            return;
        }
        self.accounted[idx] = true;
        let succs = std::mem::take(&mut self.succ[idx]);
        for &s in succs.as_slice() {
            self.npred[s] -= 1;
            if self.npred[s] == 0 && tasks[s].state() == ST_INIT {
                self.ready[tasks[s].band() as usize].push_back(s);
            }
        }
    }

    /// Pop a ready task index whose claim CAS succeeds for a thief,
    /// highest priority band first. `banded` is the frame's lazy
    /// band-activation flag: while false, only the default band's deque
    /// can hold entries, so the pop touches exactly one list.
    fn pop_ready_claimed(&mut self, tasks: &[Arc<Task>], banded: bool) -> Option<usize> {
        if !banded {
            let band = &mut self.ready[NORMAL_BAND as usize];
            while let Some(idx) = band.pop_front() {
                if tasks[idx].try_claim(ST_STOLEN) {
                    return Some(idx);
                }
            }
            return None;
        }
        for band in self.ready.iter_mut() {
            while let Some(idx) = band.pop_front() {
                if tasks[idx].try_claim(ST_STOLEN) {
                    return Some(idx);
                }
            }
        }
        None
    }
}

struct FrameInner {
    tasks: Vec<Arc<Task>>,
    graph: Option<DepGraph>,
    /// The single dependency implementation both modes read: version
    /// chains, predecessor sets, slot routing — filled at push time.
    engine: DataflowEngine,
    /// Any pushed task outside the default priority band? When false the
    /// scan path stays single-pass (the hot default); when true scans run
    /// one pass per band, highest first.
    banded: bool,
    /// Per-task failure record (panicked, or poisoned by a failed
    /// predecessor). Lazily sized: stays empty until the first failure, so
    /// the push fast path never touches it.
    failed: Vec<bool>,
}

/// What `Frame::push` tells the caller.
pub(crate) struct PushOutcome {
    /// Frame index of the pushed task.
    pub(crate) idx: usize,
    /// Accesses of the task that were renamed (fresh version slots).
    pub(crate) renames: u32,
}

/// A frame: the ordered children of one parent task (or scope).
pub(crate) struct Frame {
    inner: Mutex<FrameInner>,
    /// Mirror of `inner.tasks.len()` readable without the lock.
    len: AtomicUsize,
    /// Tasks created minus tasks completed.
    pending: AtomicUsize,
    /// Owner's FIFO position; only the owner advances it.
    cursor: AtomicUsize,
    /// Set (under the lock, `SeqCst`) when the frame has been promoted.
    graph_on: AtomicBool,
    /// Steal scans observed, for the promotion heuristic.
    scans: AtomicUsize,
    /// Lock-free "a panic is recorded" hint (fast path of `take_panic`).
    has_panic: AtomicBool,
    /// First panic raised by a child, rethrown at the owner's sync.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Lock-free "some task failed" hint: the fast path of
    /// `has_failed_pred`, so the un-poisoned common case stays one relaxed
    /// load per executed task.
    any_failed: AtomicBool,
}

impl Frame {
    pub(crate) fn new() -> Arc<Frame> {
        Arc::new(Frame {
            inner: Mutex::new(FrameInner {
                tasks: Vec::new(),
                graph: None,
                engine: DataflowEngine::new(),
                banded: false,
                failed: Vec::new(),
            }),
            len: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            graph_on: AtomicBool::new(false),
            scans: AtomicUsize::new(0),
            has_panic: AtomicBool::new(false),
            panic: Mutex::new(None),
            any_failed: AtomicBool::new(false),
        })
    }

    /// Number of pushed tasks (racy snapshot).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Owner FIFO cursor.
    #[inline]
    pub(crate) fn cursor(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn advance_cursor(&self) {
        self.cursor.fetch_add(1, Ordering::Relaxed);
    }

    /// Owner only: skip the FIFO cursor past all tasks (they are all done).
    #[inline]
    pub(crate) fn skip_cursor_to_len(&self) {
        self.cursor
            .store(self.len.load(Ordering::Acquire), Ordering::Relaxed);
    }

    /// Append a task (owner only): bind it into the version-chain engine
    /// (recording its predecessor set and slot routing), then publish it.
    pub(crate) fn push(&self, task: Arc<Task>, rename: &RenamePolicy) -> PushOutcome {
        self.pending.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let FrameInner {
            tasks,
            graph,
            engine,
            banded,
            ..
        } = &mut *inner;
        let idx = tasks.len();
        let binding = engine.bind(&task.accesses, rename);
        debug_assert_eq!(binding.index, idx);
        let renames = binding.renames;
        // Safety: the task only becomes reachable by claimants through
        // `tasks` below; the frame lock publishes the binding first.
        unsafe { task.set_binding(binding.slots) };
        if task.band() != NORMAL_BAND {
            *banded = true;
        }
        if let Some(g) = graph.as_mut() {
            // Graph already promoted: integrate incrementally. The task was
            // just created, it cannot be done.
            g.integrate(idx, engine.preds(idx), false, task.band());
        }
        tasks.push(task);
        self.len.store(tasks.len(), Ordering::Release);
        PushOutcome { idx, renames }
    }

    /// Clone of the task at `idx`.
    #[cfg(test)]
    pub(crate) fn task(&self, idx: usize) -> Arc<Task> {
        Arc::clone(&self.inner.lock().tasks[idx])
    }

    /// Clone every task from `start` to the current end into `out` under
    /// one lock acquisition. The owner's sync loop batches its task lookups
    /// through this instead of paying one frame lock per task; indices are
    /// stable (the tasks Vec is append-only until `reset`).
    pub(crate) fn tasks_from(&self, start: usize, out: &mut Vec<Arc<Task>>) {
        let inner = self.inner.lock();
        out.extend(inner.tasks[start.min(inner.tasks.len())..].iter().cloned());
    }

    /// Record completion of the task at `idx` (claimant side, after the
    /// task's `complete()`). Propagates readiness if the frame is promoted
    /// and releases the task's version slots if it holds any. Tasks bound
    /// only to slot 0 skip the lock entirely in scan mode — the owner's
    /// hot completion path stays lock-free even in frames that rename.
    pub(crate) fn complete_task(&self, idx: usize, task: &Task) {
        let holds_slots = task.binding().iter().any(|b| b.slot != 0);
        if self.graph_on.load(Ordering::SeqCst) || holds_slots {
            let mut inner = self.inner.lock();
            let FrameInner {
                tasks,
                graph,
                engine,
                ..
            } = &mut *inner;
            if let Some(g) = graph.as_mut() {
                g.on_complete(idx, tasks);
            }
            engine.complete(idx);
        }
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// Store the first child panic.
    pub(crate) fn set_panic(&self, p: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
        drop(slot);
        self.has_panic.store(true, Ordering::Release);
    }

    /// Take a recorded panic, if any (lock-free when none was recorded).
    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        if !self.has_panic.load(Ordering::Acquire) {
            return None;
        }
        self.panic.lock().take()
    }

    /// Record that task `idx` failed: it panicked, or it was
    /// completed-as-failed because a predecessor did (`DESIGN.md` §8).
    ///
    /// Must be called *before* the task's `complete()` so that any claimant
    /// that later observes the task done also observes the failure record
    /// (the SeqCst completion swap orders the two stores).
    pub(crate) fn mark_failed(&self, idx: usize) {
        let mut inner = self.inner.lock();
        let n = inner.tasks.len();
        if inner.failed.len() < n {
            inner.failed.resize(n, false);
        }
        inner.failed[idx] = true;
        drop(inner);
        self.any_failed.store(true, Ordering::Release);
    }

    /// Did any dataflow predecessor of task `idx` fail? The poison check
    /// run before every claimed execution; the healthy fast path is one
    /// relaxed flag load, the poisoned path walks the recorded predecessor
    /// set under the frame lock.
    pub(crate) fn has_failed_pred(&self, idx: usize) -> bool {
        if !self.any_failed.load(Ordering::Acquire) {
            return false;
        }
        let inner = self.inner.lock();
        inner
            .engine
            .preds(idx)
            .iter()
            .any(|&p| inner.failed.get(p as usize).copied().unwrap_or(false))
    }

    /// Steal scan: claim up to `max` ready tasks for thieves.
    ///
    /// Applies the promotion policy: scan-based readiness while the frame is
    /// small/rarely scanned, ready-list pops afterwards. Appends claimed
    /// `(frame-index, task)` pairs — the `Arc<Task>` is cloned here, under
    /// the lock already held, so callers never re-lock the frame to look a
    /// claimed task up again.
    ///
    /// `promotions` is bumped when this call performs the promotion.
    pub(crate) fn steal_scan(
        &self,
        max: usize,
        policy: &PromotionPolicy,
        out: &mut Vec<(usize, Arc<Task>)>,
        promotions: &mut u64,
    ) {
        if max == 0 || self.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        let scans = self.scans.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.inner.lock();
        let promote = policy.enabled
            && inner.graph.is_none()
            && (inner.tasks.len() >= policy.promote_len || scans >= policy.promote_scans);
        if promote {
            *promotions += 1;
            // Derive the graph from the predecessor sets the engine
            // recorded at push time (one source of truth for both modes).
            let mut g = DepGraph::new();
            let FrameInner { tasks, engine, .. } = &mut *inner;
            for (idx, task) in tasks.iter().enumerate() {
                g.integrate(idx, engine.preds(idx), false, task.band());
            }
            // SeqCst promotion protocol: publish `graph_on` *before*
            // reading task states for done-accounting, so any completion
            // not observed here will observe `graph_on == true` and take
            // the lock (see `Task::complete` + `complete_task`).
            self.graph_on.store(true, Ordering::SeqCst);
            let done: Vec<usize> = tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_done())
                .map(|(i, _)| i)
                .collect();
            inner.graph = Some(g);
            let FrameInner { tasks, graph, .. } = &mut *inner;
            let g = graph.as_mut().unwrap();
            for idx in done {
                g.on_complete(idx, tasks);
            }
        }

        let FrameInner {
            tasks,
            graph,
            engine,
            banded,
            ..
        } = &mut *inner;
        if let Some(g) = graph.as_mut() {
            while out.len() < max {
                match g.pop_ready_claimed(tasks, *banded) {
                    Some(idx) => out.push((idx, Arc::clone(&tasks[idx]))),
                    None => break,
                }
            }
            return;
        }

        // Scan mode: oldest-first incremental readiness against the version
        // chains — a task is ready when every predecessor the engine
        // recorded for it has completed (same edges graph mode uses). The
        // band check is hoisted out of the loop: a frame that never saw a
        // non-default band (the hot case) runs one branch-free oldest-first
        // pass; only banded frames pay one pass per band (highest first) so
        // high-priority ready tasks are claimed before low-priority ones.
        let n = tasks.len();
        if !*banded {
            for i in 0..n {
                if out.len() >= max {
                    break;
                }
                let t = &tasks[i];
                if t.state() != ST_INIT {
                    continue;
                }
                if !engine.preds(i).iter().all(|&p| tasks[p as usize].is_done()) {
                    continue;
                }
                if t.try_claim(ST_STOLEN) {
                    out.push((i, Arc::clone(t)));
                }
            }
            return;
        }
        for pass in 0..PRIORITY_BANDS {
            if out.len() >= max {
                break;
            }
            for i in 0..n {
                if out.len() >= max {
                    break;
                }
                let t = &tasks[i];
                if t.band() as usize != pass {
                    continue;
                }
                if t.state() != ST_INIT {
                    continue;
                }
                if !engine.preds(i).iter().all(|&p| tasks[p as usize].is_done()) {
                    continue;
                }
                if t.try_claim(ST_STOLEN) {
                    out.push((i, Arc::clone(t)));
                }
            }
        }
    }

    /// Reset a quiescent frame for reuse (worker-local frame pool). Caller
    /// guarantees exclusivity (`Arc::strong_count == 1`) and quiescence
    /// (`pending == 0`).
    pub(crate) fn reset(&self) {
        debug_assert_eq!(self.pending.load(Ordering::Relaxed), 0);
        let mut inner = self.inner.lock();
        inner.tasks.clear(); // keeps the Vec capacity
        inner.graph = None;
        inner.engine.clear();
        inner.banded = false;
        inner.failed.clear();
        drop(inner);
        self.len.store(0, Ordering::Relaxed);
        self.cursor.store(0, Ordering::Relaxed);
        self.graph_on.store(false, Ordering::Relaxed);
        self.scans.store(0, Ordering::Relaxed);
        self.has_panic.store(false, Ordering::Relaxed);
        self.any_failed.store(false, Ordering::Relaxed);
        debug_assert!(self.panic.lock().is_none());
    }

    /// Owner-side ready pop (used while the owner is suspended on a stolen
    /// task): only available in graph mode, claims as `ST_STOLEN`. Returns
    /// the claimed index together with its task (cloned under the same
    /// lock, saving the caller a re-lock).
    pub(crate) fn pop_ready_owner(&self) -> Option<(usize, Arc<Task>)> {
        if !self.graph_on.load(Ordering::Acquire) {
            return None;
        }
        let mut inner = self.inner.lock();
        let FrameInner {
            tasks,
            graph,
            banded,
            ..
        } = &mut *inner;
        graph
            .as_mut()
            .and_then(|g| g.pop_ready_claimed(tasks, *banded))
            .map(|idx| (idx, Arc::clone(&tasks[idx])))
    }

    #[cfg(test)]
    pub(crate) fn is_promoted(&self) -> bool {
        self.graph_on.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessMode, HandleId, Region};
    use crate::task::{Task, ST_OWNER};

    fn task_with(accs: &[Access]) -> Arc<Task> {
        Arc::new(Task::new(
            Box::new(|_| {}),
            accs.to_vec().into_boxed_slice(),
            crate::attrs::TaskAttrs::default(),
        ))
    }

    /// Push with default renaming knobs (renaming applies only to accesses
    /// flagged renameable, so plain tests are unaffected).
    fn push(f: &Frame, accs: &[Access]) {
        f.push(task_with(accs), &RenamePolicy::default());
    }

    fn acc(h: u64, mode: AccessMode) -> Access {
        Access::new(HandleId(h), Region::All, mode)
    }

    /// Steal-scan returning claimed indices only (tests compare index sets;
    /// the carried `Arc<Task>`s are exercised by the engine paths).
    fn scan(f: &Frame, max: usize, pol: &PromotionPolicy, promos: &mut u64) -> Vec<usize> {
        let mut out = Vec::new();
        f.steal_scan(max, pol, &mut out, promos);
        out.into_iter().map(|(idx, _)| idx).collect()
    }

    #[test]
    fn fifo_indices_in_program_order() {
        let f = Frame::new();
        for _ in 0..4 {
            push(&f, &[]);
        }
        assert_eq!(f.len(), 4);
        assert_eq!(f.pending(), 4);
    }

    #[test]
    fn scan_finds_independent_tasks_ready() {
        let f = Frame::new();
        push(&f, &[]);
        push(&f, &[]);
        let mut promos = 0;
        let out = scan(
            &f,
            8,
            &PromotionPolicy {
                enabled: false,
                ..Default::default()
            },
            &mut promos,
        );
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn scan_respects_raw_dependency() {
        let f = Frame::new();
        let w = acc(9, AccessMode::Write);
        let r = acc(9, AccessMode::Read);
        push(&f, &[w]);
        push(&f, &[r]);
        let pol = PromotionPolicy {
            enabled: false,
            ..Default::default()
        };
        let mut promos = 0;
        // only the writer is ready
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![0]);
        // finish the writer; now the reader becomes ready
        let t0 = f.task(0);
        let _ = t0.take_body();
        t0.complete();
        f.complete_task(0, &t0);
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![1]);
    }

    #[test]
    fn readers_run_concurrently_writers_serialize() {
        let f = Frame::new();
        push(&f, &[acc(1, AccessMode::Write)]);
        push(&f, &[acc(1, AccessMode::Read)]);
        push(&f, &[acc(1, AccessMode::Read)]);
        push(&f, &[acc(1, AccessMode::Write)]);
        let pol = PromotionPolicy {
            enabled: false,
            ..Default::default()
        };
        let mut promos = 0;
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![0]);
        finish(&f, 0);
        // both readers, not the second writer
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![1, 2]);
    }

    fn finish(f: &Frame, idx: usize) {
        let t = f.task(idx);
        let _ = t.take_body();
        t.complete();
        f.complete_task(idx, &t);
    }

    #[test]
    fn promotion_builds_equivalent_ready_set() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        push(&f, &[acc(1, AccessMode::Write)]);
        push(&f, &[acc(1, AccessMode::Read)]);
        push(&f, &[acc(2, AccessMode::Write)]);
        let mut promos = 0;
        let mut out = scan(&f, 8, &pol, &mut promos);
        assert_eq!(promos, 1);
        assert!(f.is_promoted());
        out.sort_unstable();
        assert_eq!(out, vec![0, 2]); // h1 writer + h2 writer; reader blocked
        finish(&f, 0);
        finish(&f, 2);
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![1]);
        assert_eq!(promos, 1); // promoted once only
    }

    #[test]
    fn promotion_accounts_already_done_tasks() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        push(&f, &[acc(1, AccessMode::Write)]);
        push(&f, &[acc(1, AccessMode::Read)]);
        // Owner runs task 0 before any steal.
        let t0 = f.task(0);
        assert!(t0.try_claim(ST_OWNER));
        let _ = t0.take_body();
        t0.complete();
        f.complete_task(0, &t0);
        let mut promos = 0;
        // reader ready because writer already done
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![1]);
    }

    #[test]
    fn graph_mode_incremental_push() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        push(&f, &[acc(1, AccessMode::Write)]);
        let mut promos = 0;
        // max=0: no-op (pending>0, but max==0 short-circuits)
        assert!(scan(&f, 0, &pol, &mut promos).is_empty());
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![0]);
        // push after promotion: dependency on in-flight task 0
        push(&f, &[acc(1, AccessMode::Read)]);
        assert!(scan(&f, 8, &pol, &mut promos).is_empty());
        finish(&f, 0);
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![1]);
    }

    #[test]
    fn cumulative_writes_commute() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        push(&f, &[acc(3, AccessMode::CumulWrite)]);
        push(&f, &[acc(3, AccessMode::CumulWrite)]);
        push(&f, &[acc(3, AccessMode::Read)]);
        let mut promos = 0;
        let mut out = scan(&f, 8, &pol, &mut promos);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]); // both reductions concurrent, reader waits
        finish(&f, 0);
        finish(&f, 1);
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![2]);
    }

    #[test]
    fn keyed_regions_independent() {
        let f = Frame::new();
        let p = |i, j, m| Access::new(HandleId(7), Region::key2(i, j), m);
        push(&f, &[p(0, 0, AccessMode::Write)]);
        push(&f, &[p(1, 1, AccessMode::Write)]);
        push(&f, &[p(0, 0, AccessMode::Read), p(1, 1, AccessMode::Write)]);
        for pol in [
            PromotionPolicy {
                enabled: false,
                ..Default::default()
            },
            PromotionPolicy {
                promote_len: 1,
                promote_scans: 1,
                enabled: true,
            },
        ] {
            let f2 = Frame::new();
            push(&f2, &[p(0, 0, AccessMode::Write)]);
            push(&f2, &[p(1, 1, AccessMode::Write)]);
            push(
                &f2,
                &[p(0, 0, AccessMode::Read), p(1, 1, AccessMode::Write)],
            );
            let mut promos = 0;
            let mut out = scan(&f2, 8, &pol, &mut promos);
            out.sort_unstable();
            assert_eq!(out, vec![0, 1], "policy {pol:?}");
        }
        let _ = f;
    }

    #[test]
    fn whole_object_write_orders_after_tiles() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        let p = |i, j, m| Access::new(HandleId(7), Region::key2(i, j), m);
        push(&f, &[p(0, 0, AccessMode::Write)]);
        push(
            &f,
            &[Access::new(HandleId(7), Region::All, AccessMode::Write)],
        );
        push(&f, &[p(5, 5, AccessMode::Write)]);
        let mut promos = 0;
        // All-write waits; later tile waits on All-write
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![0]);
        finish(&f, 0);
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![1]);
        finish(&f, 1);
        assert_eq!(scan(&f, 8, &pol, &mut promos), vec![2]);
    }

    #[test]
    fn panic_slot_keeps_first() {
        let f = Frame::new();
        f.set_panic(Box::new("first"));
        f.set_panic(Box::new("second"));
        let p = f.take_panic().unwrap();
        assert_eq!(*p.downcast_ref::<&str>().unwrap(), "first");
        assert!(f.take_panic().is_none());
    }

    #[test]
    fn renaming_widens_scan_ready_set() {
        // w r w r: with renaming the second write-only access is renamed,
        // so both writers are ready at once; without it the chain
        // serializes.
        let w = acc(11, AccessMode::Write).with_renaming();
        let r = acc(11, AccessMode::Read);
        let pol = PromotionPolicy {
            enabled: false,
            ..Default::default()
        };
        for (enabled, expect) in [(true, vec![0, 2]), (false, vec![0])] {
            let rp = RenamePolicy {
                enabled,
                ..Default::default()
            };
            let f = Frame::new();
            for a in [w, r, w, r] {
                f.push(task_with(&[a]), &rp);
            }
            let mut promos = 0;
            let mut out = scan(&f, 8, &pol, &mut promos);
            out.sort_unstable();
            assert_eq!(out, expect, "renaming enabled={enabled}");
        }
    }

    /// Property: scan mode and graph mode claim identical ready sets on
    /// random access programs, with renaming both on and off — they share
    /// one dependency engine, so they cannot disagree.
    #[test]
    fn scan_and_graph_readiness_agree_on_random_programs() {
        // splitmix64, as in tests/properties.rs (dependency-free).
        struct Rng(u64);
        impl Rng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
            fn below(&mut self, n: u64) -> u64 {
                self.next() % n
            }
        }
        let scan_pol = PromotionPolicy {
            enabled: false,
            ..Default::default()
        };
        let graph_pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let mut rng = Rng(0x5CA9);
        for case in 0..40 {
            let rp = RenamePolicy {
                enabled: case % 2 == 0,
                max_live_slots: 1 + (case % 5) as u32,
            };
            let ntasks = 1 + rng.below(40) as usize;
            let tasks: Vec<Vec<Access>> = (0..ntasks)
                .map(|_| {
                    (0..1 + rng.below(3))
                        .map(|_| {
                            let h = 1 + rng.below(4);
                            let region = match rng.below(4) {
                                0 => Region::All,
                                1 => Region::key2(rng.below(2) as usize, rng.below(2) as usize),
                                2 => {
                                    let s = rng.below(8) as usize;
                                    Region::Range {
                                        start: s,
                                        end: s + rng.below(8) as usize,
                                    }
                                }
                                _ => Region::All,
                            };
                            let (mode, ren) = match rng.below(5) {
                                0 | 1 => (AccessMode::Read, false),
                                2 => (AccessMode::Write, true),
                                3 => (AccessMode::Exclusive, false),
                                _ => (AccessMode::CumulWrite, false),
                            };
                            let a = Access::new(HandleId(h), region, mode);
                            if ren {
                                a.with_renaming()
                            } else {
                                a
                            }
                        })
                        .collect()
                })
                .collect();
            let fs = Frame::new();
            let fg = Frame::new();
            for accs in &tasks {
                fs.push(task_with(accs), &rp);
                fg.push(task_with(accs), &rp);
            }
            let mut promos = 0;
            let mut done = 0usize;
            while done < ntasks {
                let mut s = scan(&fs, usize::MAX, &scan_pol, &mut promos);
                let mut g = scan(&fg, usize::MAX, &graph_pol, &mut promos);
                s.sort_unstable();
                g.sort_unstable();
                assert_eq!(s, g, "case {case}: ready sets diverge after {done} done");
                assert!(!s.is_empty(), "case {case}: no progress ({done}/{ntasks})");
                for idx in s {
                    finish(&fs, idx);
                    finish(&fg, idx);
                    done += 1;
                }
            }
        }
    }
}
