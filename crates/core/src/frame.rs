//! Frames: per-parent task sequences with lazy dependency computation and
//! the ready-list ("graph mode") acceleration.
//!
//! A frame holds the children one task (or one scope) spawned, in program
//! order. The owner executes them FIFO without ever computing dependencies
//! (work-first). A thief proves a task ready by scanning the frame from the
//! oldest task: every earlier, not-yet-completed task must be non-conflicting.
//!
//! When steal scans become expensive the frame is *promoted*: a dependency
//! graph with per-task predecessor counts and a ready list is built once,
//! then updated incrementally on push/completion, and steals degrade to a
//! near-constant-time pop — this is the paper's "accelerating data structure
//! for steal operations".

use crate::access::{tasks_conflict, Access, AccessMode, HandleId, Region};
use crate::task::{Task, ST_INIT, ST_STOLEN};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Knobs controlling promotion to graph mode; part of the runtime tunables
/// so ablation benchmarks can disable the optimisation.
#[derive(Clone, Copy, Debug)]
pub struct PromotionPolicy {
    /// Promote when a steal scan visits a frame with at least this many tasks.
    pub promote_len: usize,
    /// Promote after this many steal scans of the same frame.
    pub promote_scans: usize,
    /// Master switch; `false` forces O(n²) scan-based steals forever.
    pub enabled: bool,
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        PromotionPolicy {
            promote_len: 16,
            promote_scans: 4,
            enabled: true,
        }
    }
}

/// Dependency tracking for one region of one handle.
#[derive(Default)]
struct TrackEntry {
    last_writer: Option<usize>,
    readers: Vec<usize>,
    cumuls: Vec<usize>,
}

/// All tracks of one handle, split by region shape for fast exact matches.
#[derive(Default)]
struct HandleTracks {
    all: Option<TrackEntry>,
    keys: HashMap<u64, TrackEntry>,
    ranges: Vec<(usize, usize, TrackEntry)>,
}

/// The promoted dependency graph of a frame.
pub(crate) struct DepGraph {
    npred: Vec<usize>,
    succ: Vec<Vec<usize>>,
    /// Completion already propagated (or task was done at promotion time).
    accounted: Vec<bool>,
    /// Indices of tasks believed ready (state `ST_INIT`, `npred == 0`).
    /// May contain stale entries (claimed by the owner FIFO path); poppers
    /// re-validate with the claim CAS.
    ready: VecDeque<usize>,
    tracks: HashMap<HandleId, HandleTracks>,
}

impl DepGraph {
    fn new() -> Self {
        DepGraph {
            npred: Vec::new(),
            succ: Vec::new(),
            accounted: Vec::new(),
            ready: VecDeque::new(),
            tracks: HashMap::new(),
        }
    }

    /// Integrate task `idx` (must be called in program order).
    fn integrate(&mut self, idx: usize, accesses: &[Access], already_done: bool) {
        debug_assert_eq!(self.npred.len(), idx);
        self.npred.push(0);
        self.succ.push(Vec::new());
        self.accounted.push(already_done);

        // Collect predecessor edges from the per-region tracks.
        let mut preds: Vec<usize> = Vec::new();
        for a in accesses {
            if a.region.is_empty() {
                continue;
            }
            let ht = self.tracks.entry(a.handle).or_default();
            // `All` region of this handle always overlaps.
            let visit = |e: &TrackEntry, preds: &mut Vec<usize>| match a.mode {
                AccessMode::Read => {
                    preds.extend(e.last_writer);
                    preds.extend(e.cumuls.iter().copied());
                }
                AccessMode::Write | AccessMode::Exclusive => {
                    preds.extend(e.last_writer);
                    preds.extend(e.readers.iter().copied());
                    preds.extend(e.cumuls.iter().copied());
                }
                AccessMode::CumulWrite => {
                    preds.extend(e.last_writer);
                    preds.extend(e.readers.iter().copied());
                }
            };
            match a.region {
                Region::All => {
                    if let Some(e) = &ht.all {
                        visit(e, &mut preds);
                    }
                    for e in ht.keys.values() {
                        visit(e, &mut preds);
                    }
                    for (_, _, e) in &ht.ranges {
                        visit(e, &mut preds);
                    }
                }
                Region::Key(k) => {
                    if let Some(e) = &ht.all {
                        visit(e, &mut preds);
                    }
                    if let Some(e) = ht.keys.get(&k) {
                        visit(e, &mut preds);
                    }
                    // Mixed Key/Range on a handle is conservative aliasing.
                    for (_, _, e) in &ht.ranges {
                        visit(e, &mut preds);
                    }
                }
                Region::Range { start, end } => {
                    if let Some(e) = &ht.all {
                        visit(e, &mut preds);
                    }
                    for e in ht.keys.values() {
                        visit(e, &mut preds);
                    }
                    for (s, t, e) in &ht.ranges {
                        if *s < end && start < *t {
                            visit(e, &mut preds);
                        }
                    }
                }
            }

            // Record this access into its exact-shape track.
            let entry: &mut TrackEntry = match a.region {
                Region::All => ht.all.get_or_insert_with(Default::default),
                Region::Key(k) => ht.keys.entry(k).or_default(),
                Region::Range { start, end } => {
                    if let Some(pos) = ht
                        .ranges
                        .iter()
                        .position(|(s, t, _)| *s == start && *t == end)
                    {
                        &mut ht.ranges[pos].2
                    } else {
                        ht.ranges.push((start, end, TrackEntry::default()));
                        let last = ht.ranges.len() - 1;
                        &mut ht.ranges[last].2
                    }
                }
            };
            match a.mode {
                AccessMode::Read => entry.readers.push(idx),
                AccessMode::Write | AccessMode::Exclusive => {
                    entry.last_writer = Some(idx);
                    entry.readers.clear();
                    entry.cumuls.clear();
                }
                AccessMode::CumulWrite => entry.cumuls.push(idx),
            }
            // A whole-object write absorbs every finer-grained track.
            if matches!(a.mode, AccessMode::Write | AccessMode::Exclusive)
                && matches!(a.region, Region::All)
            {
                ht.keys.clear();
                ht.ranges.clear();
            }
        }

        preds.sort_unstable();
        preds.dedup();
        let mut np = 0;
        for p in preds {
            debug_assert!(p < idx);
            if !self.accounted[p] {
                self.succ[p].push(idx);
                np += 1;
            }
        }
        self.npred[idx] = np;
        if np == 0 && !already_done {
            self.ready.push_back(idx);
        }
    }

    /// Propagate the completion of task `idx`.
    fn on_complete(&mut self, idx: usize, tasks: &[Arc<Task>]) {
        if idx >= self.accounted.len() || self.accounted[idx] {
            return;
        }
        self.accounted[idx] = true;
        let succs = std::mem::take(&mut self.succ[idx]);
        for s in succs {
            self.npred[s] -= 1;
            if self.npred[s] == 0 && tasks[s].state() == ST_INIT {
                self.ready.push_back(s);
            }
        }
    }

    /// Pop a ready task index whose claim CAS succeeds for a thief.
    fn pop_ready_claimed(&mut self, tasks: &[Arc<Task>]) -> Option<usize> {
        while let Some(idx) = self.ready.pop_front() {
            if tasks[idx].try_claim(ST_STOLEN) {
                return Some(idx);
            }
        }
        None
    }
}

struct FrameInner {
    tasks: Vec<Arc<Task>>,
    graph: Option<DepGraph>,
}

/// A frame: the ordered children of one parent task (or scope).
pub(crate) struct Frame {
    inner: Mutex<FrameInner>,
    /// Mirror of `inner.tasks.len()` readable without the lock.
    len: AtomicUsize,
    /// Tasks created minus tasks completed.
    pending: AtomicUsize,
    /// Owner's FIFO position; only the owner advances it.
    cursor: AtomicUsize,
    /// Set (under the lock, `SeqCst`) when the frame has been promoted.
    graph_on: AtomicBool,
    /// Steal scans observed, for the promotion heuristic.
    scans: AtomicUsize,
    /// Lock-free "a panic is recorded" hint (fast path of `take_panic`).
    has_panic: AtomicBool,
    /// First panic raised by a child, rethrown at the owner's sync.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Frame {
    pub(crate) fn new() -> Arc<Frame> {
        Arc::new(Frame {
            inner: Mutex::new(FrameInner {
                tasks: Vec::new(),
                graph: None,
            }),
            len: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            graph_on: AtomicBool::new(false),
            scans: AtomicUsize::new(0),
            has_panic: AtomicBool::new(false),
            panic: Mutex::new(None),
        })
    }

    /// Number of pushed tasks (racy snapshot).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Owner FIFO cursor.
    #[inline]
    pub(crate) fn cursor(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn advance_cursor(&self) {
        self.cursor.fetch_add(1, Ordering::Relaxed);
    }

    /// Owner only: skip the FIFO cursor past all tasks (they are all done).
    #[inline]
    pub(crate) fn skip_cursor_to_len(&self) {
        self.cursor
            .store(self.len.load(Ordering::Acquire), Ordering::Relaxed);
    }

    /// Append a task (owner only). Returns its index.
    pub(crate) fn push(&self, task: Arc<Task>) -> usize {
        self.pending.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let idx = inner.tasks.len();
        let accesses: &[Access] = &task.accesses;
        if let Some(g) = inner.graph.as_mut() {
            // Graph already promoted: integrate incrementally. The task was
            // just created, it cannot be done.
            let accesses = accesses.to_vec();
            g.integrate(idx, &accesses, false);
        }
        inner.tasks.push(task);
        self.len.store(inner.tasks.len(), Ordering::Release);
        idx
    }

    /// Clone of the task at `idx`.
    pub(crate) fn task(&self, idx: usize) -> Arc<Task> {
        Arc::clone(&self.inner.lock().tasks[idx])
    }

    /// Record completion of the task at `idx` (claimant side, after the
    /// task's `complete()`). Propagates readiness if the frame is promoted.
    pub(crate) fn complete_task(&self, idx: usize) {
        if self.graph_on.load(Ordering::SeqCst) {
            let mut inner = self.inner.lock();
            let FrameInner { tasks, graph } = &mut *inner;
            if let Some(g) = graph.as_mut() {
                g.on_complete(idx, tasks);
            }
        }
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// Store the first child panic.
    pub(crate) fn set_panic(&self, p: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
        drop(slot);
        self.has_panic.store(true, Ordering::Release);
    }

    /// Take a recorded panic, if any (lock-free when none was recorded).
    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        if !self.has_panic.load(Ordering::Acquire) {
            return None;
        }
        self.panic.lock().take()
    }

    /// Steal scan: claim up to `max` ready tasks for thieves.
    ///
    /// Applies the promotion policy: scan-based readiness while the frame is
    /// small/rarely scanned, ready-list pops afterwards. Returns claimed
    /// `(frame-index)` values; the caller executes them.
    ///
    /// `promotions` is bumped when this call performs the promotion.
    pub(crate) fn steal_scan(
        &self,
        max: usize,
        policy: &PromotionPolicy,
        out: &mut Vec<usize>,
        promotions: &mut u64,
    ) {
        if max == 0 || self.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        let scans = self.scans.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.inner.lock();
        let promote = policy.enabled
            && inner.graph.is_none()
            && (inner.tasks.len() >= policy.promote_len || scans >= policy.promote_scans);
        if promote {
            *promotions += 1;
            let mut g = DepGraph::new();
            for (idx, t) in inner.tasks.iter().enumerate() {
                // SeqCst promotion protocol: `graph_on` is set before the
                // states are read, so any completion not observed here will
                // observe `graph_on == true` and take the lock (see
                // `Task::complete` + `complete_task`).
                let accesses = t.accesses.to_vec();
                g.integrate(idx, &accesses, false);
                // Mark already-done tasks by propagating their completion.
                // (`graph_on` was published first; see below.)
                let _ = idx;
            }
            // Publish *before* reading task states for done-accounting.
            self.graph_on.store(true, Ordering::SeqCst);
            let done: Vec<usize> = inner
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_done())
                .map(|(i, _)| i)
                .collect();
            let FrameInner { tasks, graph } = &mut *inner;
            *graph = Some(g);
            let g = graph.as_mut().unwrap();
            for idx in done {
                g.on_complete(idx, tasks);
            }
        }

        let FrameInner { tasks, graph } = &mut *inner;
        if let Some(g) = graph.as_mut() {
            while out.len() < max {
                match g.pop_ready_claimed(tasks) {
                    Some(idx) => out.push(idx),
                    None => break,
                }
            }
            return;
        }

        // Scan mode: oldest-first readiness by pairwise conflict checks
        // against earlier incomplete tasks (the paper's baseline steal).
        let n = tasks.len();
        'cand: for i in 0..n {
            if out.len() >= max {
                break;
            }
            let t = &tasks[i];
            if t.state() != ST_INIT {
                continue;
            }
            for u in tasks.iter().take(i) {
                if !u.is_done() && tasks_conflict(&u.accesses, &t.accesses) {
                    continue 'cand;
                }
            }
            if t.try_claim(ST_STOLEN) {
                out.push(i);
            }
        }
    }

    /// Reset a quiescent frame for reuse (worker-local frame pool). Caller
    /// guarantees exclusivity (`Arc::strong_count == 1`) and quiescence
    /// (`pending == 0`).
    pub(crate) fn reset(&self) {
        debug_assert_eq!(self.pending.load(Ordering::Relaxed), 0);
        let mut inner = self.inner.lock();
        inner.tasks.clear(); // keeps the Vec capacity
        inner.graph = None;
        drop(inner);
        self.len.store(0, Ordering::Relaxed);
        self.cursor.store(0, Ordering::Relaxed);
        self.graph_on.store(false, Ordering::Relaxed);
        self.scans.store(0, Ordering::Relaxed);
        self.has_panic.store(false, Ordering::Relaxed);
        debug_assert!(self.panic.lock().is_none());
    }

    /// Owner-side ready pop (used while the owner is suspended on a stolen
    /// task): only available in graph mode, claims as `ST_STOLEN`.
    pub(crate) fn pop_ready_owner(&self) -> Option<usize> {
        if !self.graph_on.load(Ordering::Acquire) {
            return None;
        }
        let mut inner = self.inner.lock();
        let FrameInner { tasks, graph } = &mut *inner;
        graph.as_mut().and_then(|g| g.pop_ready_claimed(tasks))
    }

    #[cfg(test)]
    pub(crate) fn is_promoted(&self) -> bool {
        self.graph_on.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessMode, Region};
    use crate::task::{Task, ST_OWNER};

    fn task_with(accs: &[Access]) -> Arc<Task> {
        Arc::new(Task::new(
            Box::new(|_| {}),
            accs.to_vec().into_boxed_slice(),
        ))
    }

    fn acc(h: u64, mode: AccessMode) -> Access {
        Access::new(HandleId(h), Region::All, mode)
    }

    #[test]
    fn fifo_indices_in_program_order() {
        let f = Frame::new();
        for _ in 0..4 {
            f.push(task_with(&[]));
        }
        assert_eq!(f.len(), 4);
        assert_eq!(f.pending(), 4);
    }

    #[test]
    fn scan_finds_independent_tasks_ready() {
        let f = Frame::new();
        f.push(task_with(&[]));
        f.push(task_with(&[]));
        let mut out = Vec::new();
        let mut promos = 0;
        f.steal_scan(
            8,
            &PromotionPolicy {
                enabled: false,
                ..Default::default()
            },
            &mut out,
            &mut promos,
        );
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn scan_respects_raw_dependency() {
        let f = Frame::new();
        let w = acc(9, AccessMode::Write);
        let r = acc(9, AccessMode::Read);
        f.push(task_with(&[w]));
        f.push(task_with(&[r]));
        let pol = PromotionPolicy {
            enabled: false,
            ..Default::default()
        };
        let mut out = Vec::new();
        let mut promos = 0;
        f.steal_scan(8, &pol, &mut out, &mut promos);
        // only the writer is ready
        assert_eq!(out, vec![0]);
        // finish the writer; now the reader becomes ready
        let t0 = f.task(0);
        let _ = t0.take_body();
        t0.complete();
        f.complete_task(0);
        let mut out2 = Vec::new();
        f.steal_scan(8, &pol, &mut out2, &mut promos);
        assert_eq!(out2, vec![1]);
    }

    #[test]
    fn readers_run_concurrently_writers_serialize() {
        let f = Frame::new();
        f.push(task_with(&[acc(1, AccessMode::Write)]));
        f.push(task_with(&[acc(1, AccessMode::Read)]));
        f.push(task_with(&[acc(1, AccessMode::Read)]));
        f.push(task_with(&[acc(1, AccessMode::Write)]));
        let pol = PromotionPolicy {
            enabled: false,
            ..Default::default()
        };
        let mut out = Vec::new();
        let mut promos = 0;
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(out, vec![0]);
        finish(&f, 0);
        let mut out = Vec::new();
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(out, vec![1, 2]); // both readers, not the second writer
    }

    fn finish(f: &Frame, idx: usize) {
        let t = f.task(idx);
        let _ = t.take_body();
        t.complete();
        f.complete_task(idx);
    }

    #[test]
    fn promotion_builds_equivalent_ready_set() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        f.push(task_with(&[acc(1, AccessMode::Write)]));
        f.push(task_with(&[acc(1, AccessMode::Read)]));
        f.push(task_with(&[acc(2, AccessMode::Write)]));
        let mut out = Vec::new();
        let mut promos = 0;
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(promos, 1);
        assert!(f.is_promoted());
        out.sort_unstable();
        assert_eq!(out, vec![0, 2]); // h1 writer + h2 writer; reader blocked
        finish(&f, 0);
        finish(&f, 2);
        let mut out = Vec::new();
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(out, vec![1]);
        assert_eq!(promos, 1); // promoted once only
    }

    #[test]
    fn promotion_accounts_already_done_tasks() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        f.push(task_with(&[acc(1, AccessMode::Write)]));
        f.push(task_with(&[acc(1, AccessMode::Read)]));
        // Owner runs task 0 before any steal.
        let t0 = f.task(0);
        assert!(t0.try_claim(ST_OWNER));
        let _ = t0.take_body();
        t0.complete();
        f.complete_task(0);
        let mut out = Vec::new();
        let mut promos = 0;
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(out, vec![1]); // reader ready because writer already done
    }

    #[test]
    fn graph_mode_incremental_push() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        f.push(task_with(&[acc(1, AccessMode::Write)]));
        let mut out = Vec::new();
        let mut promos = 0;
        f.steal_scan(0, &pol, &mut out, &mut promos); // max=0: no-op (pending>0, but max==0 short-circuits)
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(out, vec![0]);
        // push after promotion: dependency on in-flight task 0
        f.push(task_with(&[acc(1, AccessMode::Read)]));
        let mut out2 = Vec::new();
        f.steal_scan(8, &pol, &mut out2, &mut promos);
        assert!(out2.is_empty());
        finish(&f, 0);
        let mut out3 = Vec::new();
        f.steal_scan(8, &pol, &mut out3, &mut promos);
        assert_eq!(out3, vec![1]);
    }

    #[test]
    fn cumulative_writes_commute() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        f.push(task_with(&[acc(3, AccessMode::CumulWrite)]));
        f.push(task_with(&[acc(3, AccessMode::CumulWrite)]));
        f.push(task_with(&[acc(3, AccessMode::Read)]));
        let mut out = Vec::new();
        let mut promos = 0;
        f.steal_scan(8, &pol, &mut out, &mut promos);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]); // both reductions concurrent, reader waits
        finish(&f, 0);
        finish(&f, 1);
        let mut out = Vec::new();
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn keyed_regions_independent() {
        let f = Frame::new();
        let p = |i, j, m| Access::new(HandleId(7), Region::key2(i, j), m);
        f.push(task_with(&[p(0, 0, AccessMode::Write)]));
        f.push(task_with(&[p(1, 1, AccessMode::Write)]));
        f.push(task_with(&[
            p(0, 0, AccessMode::Read),
            p(1, 1, AccessMode::Write),
        ]));
        for pol in [
            PromotionPolicy {
                enabled: false,
                ..Default::default()
            },
            PromotionPolicy {
                promote_len: 1,
                promote_scans: 1,
                enabled: true,
            },
        ] {
            let f2 = Frame::new();
            f2.push(task_with(&[p(0, 0, AccessMode::Write)]));
            f2.push(task_with(&[p(1, 1, AccessMode::Write)]));
            f2.push(task_with(&[
                p(0, 0, AccessMode::Read),
                p(1, 1, AccessMode::Write),
            ]));
            let mut out = Vec::new();
            let mut promos = 0;
            f2.steal_scan(8, &pol, &mut out, &mut promos);
            out.sort_unstable();
            assert_eq!(out, vec![0, 1], "policy {pol:?}");
        }
        let _ = f;
    }

    #[test]
    fn whole_object_write_orders_after_tiles() {
        let pol = PromotionPolicy {
            promote_len: 1,
            promote_scans: 1,
            enabled: true,
        };
        let f = Frame::new();
        let p = |i, j, m| Access::new(HandleId(7), Region::key2(i, j), m);
        f.push(task_with(&[p(0, 0, AccessMode::Write)]));
        f.push(task_with(&[Access::new(
            HandleId(7),
            Region::All,
            AccessMode::Write,
        )]));
        f.push(task_with(&[p(5, 5, AccessMode::Write)]));
        let mut out = Vec::new();
        let mut promos = 0;
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(out, vec![0]); // All-write waits; later tile waits on All-write
        finish(&f, 0);
        let mut out = Vec::new();
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(out, vec![1]);
        finish(&f, 1);
        let mut out = Vec::new();
        f.steal_scan(8, &pol, &mut out, &mut promos);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn panic_slot_keeps_first() {
        let f = Frame::new();
        f.set_panic(Box::new("first"));
        f.set_panic(Box::new("second"));
        let p = f.take_panic().unwrap();
        assert_eq!(*p.downcast_ref::<&str>().unwrap(), "first");
        assert!(f.take_panic().is_none());
    }
}
