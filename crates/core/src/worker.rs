//! The worker layer: per-worker state and the idle loop.
//!
//! One OS thread per configured worker ("one thread per core" in the
//! paper). Each [`Worker`] owns the engine-side state thieves interact
//! with — active frames, adaptive-work registry, the steal point (request
//! stack + combiner lock) and statistics. The idle loop
//! ([`worker_main`]) is the engine's outermost layer:
//!
//! ```text
//! queue.pop → injected root jobs → steal (policy-driven) → park
//! ```
//!
//! Parking is centralized in [`ParkLot`]: a worker whose *steal fail
//! streak* (consecutive failed acquisition attempts, tracked on the
//! [`Worker`] so the steal policy sees it too) reaches
//! `Tunables::steal_rounds_before_park` blocks on the lot's condvar with a
//! `Tunables::park_timeout_us` timeout (bounding lost wake-up races), and
//! producers call [`ParkLot::signal`] — one relaxed load when nobody
//! sleeps.

use crate::adaptive::Adaptive;
use crate::ctx::RawCtx;
use crate::frame::Frame;
use crate::runtime::RtInner;
use crate::stats::WorkerStats;
use crate::steal::{run_grab, try_steal_once, Request};
use crate::telemetry::{self, EventKind, WorkerTelemetry};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One worker: its frames (stealable task stacks), adaptive-work registry,
/// steal point (request stack + combiner lock) and statistics.
pub(crate) struct Worker {
    #[allow(dead_code)] // identity, useful in debugging/traces
    pub(crate) idx: usize,
    /// Active frames on this worker, oldest first (thieves scan from the
    /// oldest, as in the paper's victim-stack traversal).
    pub(crate) frames: Mutex<Vec<Arc<Frame>>>,
    /// Adaptive (splittable) work currently running on this worker.
    pub(crate) adaptives: Mutex<Vec<Arc<dyn Adaptive>>>,
    /// Combiner election: the thief holding this lock serves the victim's
    /// pending steal requests.
    pub(crate) steal_lock: Mutex<()>,
    /// Treiber stack of posted steal requests.
    pub(crate) req_head: AtomicPtr<Request>,
    /// This worker's own request node, posted to victims when idle.
    pub(crate) req: Request,
    pub(crate) stats: WorkerStats,
    /// Telemetry bundle: this worker's SPSC event ring and banded latency
    /// histograms (`DESIGN.md` §9). Allocated here, at construction, so
    /// enabling tracing later never allocates; the owning worker thread
    /// is the ring's only producer.
    pub(crate) tele: WorkerTelemetry,
    /// Consecutive failed steal attempts (reset on any acquired work).
    /// Read by the steal policy for victim escalation and by the idle loop
    /// for the park decision. Only the owning worker thread writes it, so
    /// plain load/store suffices.
    fail_streak: AtomicU32,
    /// Recycled quiescent frames.
    frame_pool: Mutex<Vec<Arc<Frame>>>,
    rng: AtomicU64,
}

impl Worker {
    pub(crate) fn new(idx: usize) -> Worker {
        Worker {
            idx,
            frames: Mutex::new(Vec::new()),
            adaptives: Mutex::new(Vec::new()),
            steal_lock: Mutex::new(()),
            req_head: AtomicPtr::new(std::ptr::null_mut()),
            req: Request::new(idx),
            stats: WorkerStats::default(),
            tele: WorkerTelemetry::new(),
            fail_streak: AtomicU32::new(0),
            frame_pool: Mutex::new(Vec::new()),
            rng: AtomicU64::new(0x9E37_79B9_7F4A_7C15 ^ ((idx as u64 + 1) << 17)),
        }
    }

    /// Current steal fail streak (consecutive failed attempts).
    #[inline]
    pub(crate) fn fail_streak(&self) -> u32 {
        self.fail_streak.load(Ordering::Relaxed)
    }

    /// Record one more failed steal attempt (saturating).
    #[inline]
    pub(crate) fn note_steal_failure(&self) {
        let s = self.fail_streak.load(Ordering::Relaxed);
        if s < u32::MAX {
            self.fail_streak.store(s + 1, Ordering::Relaxed);
        }
    }

    /// Reset the fail streak (work was acquired somewhere).
    #[inline]
    pub(crate) fn reset_fail_streak(&self) {
        self.fail_streak.store(0, Ordering::Relaxed);
    }

    /// xorshift64* victim selector (relaxed: statistical quality only).
    pub(crate) fn next_rand(&self) -> u64 {
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        x
    }

    pub(crate) fn register_frame(&self, f: Arc<Frame>) {
        self.frames.lock().push(f);
    }

    pub(crate) fn deregister_frame(&self, f: &Arc<Frame>) {
        let mut frames = self.frames.lock();
        if let Some(pos) = frames.iter().rposition(|x| Arc::ptr_eq(x, f)) {
            frames.remove(pos);
        }
    }

    /// Take a recycled frame, if any.
    pub(crate) fn pop_pooled_frame(&self) -> Option<Arc<Frame>> {
        self.frame_pool.lock().pop()
    }

    /// Recycle `f` if we are its only owner and it is quiescent.
    pub(crate) fn recycle_frame(&self, f: Arc<Frame>) {
        if Arc::strong_count(&f) == 1 && f.pending() == 0 {
            f.reset();
            let mut pool = self.frame_pool.lock();
            if pool.len() < 64 {
                pool.push(f);
            }
        }
    }

    pub(crate) fn register_adaptive(&self, a: Arc<dyn Adaptive>) {
        self.adaptives.lock().push(a);
    }

    pub(crate) fn deregister_adaptive(&self, a: &Arc<dyn Adaptive>) {
        let mut ads = self.adaptives.lock();
        if let Some(pos) = ads.iter().rposition(|x| Arc::ptr_eq(x, a)) {
            ads.remove(pos);
        }
    }
}

/// The parking place idle workers block in, and producers signal.
pub(crate) struct ParkLot {
    mx: Mutex<()>,
    cv: Condvar,
    sleepers: AtomicUsize,
}

impl ParkLot {
    pub(crate) fn new() -> ParkLot {
        ParkLot {
            mx: Mutex::new(()),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    /// Wake parked workers because new work appeared. Cheap when nobody
    /// sleeps (one relaxed load).
    #[inline]
    pub(crate) fn signal(&self) {
        // Relaxed: a missed wake-up is repaired by the park timeout.
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.mx.lock();
            self.cv.notify_all();
        }
    }

    /// Wake everyone unconditionally (shutdown).
    pub(crate) fn signal_all(&self) {
        let _g = self.mx.lock();
        self.cv.notify_all();
    }

    /// Park unless `should_stay_awake` already holds; bounded by `timeout`
    /// (`Tunables::park_timeout_us`) so a lost wake-up race costs at most
    /// one period.
    pub(crate) fn park(&self, timeout: Duration, should_stay_awake: impl Fn() -> bool) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut g = self.mx.lock();
        if !should_stay_awake() {
            self.cv.wait_for(&mut g, timeout);
        }
        drop(g);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Thread-local identity: which runtime/worker is this thread?

thread_local! {
    static CURRENT: std::cell::Cell<(usize, usize)> =
        const { std::cell::Cell::new((0, usize::MAX)) };
}

pub(crate) fn set_current(rt: &Arc<RtInner>, widx: usize) {
    CURRENT.with(|c| c.set((Arc::as_ptr(rt) as usize, widx)));
}

/// If the current thread is a worker of `rt`, its index.
pub(crate) fn current_worker_of(rt: &Arc<RtInner>) -> Option<usize> {
    let (ptr, idx) = CURRENT.with(|c| c.get());
    (ptr == Arc::as_ptr(rt) as usize && idx != usize::MAX).then_some(idx)
}

// ---------------------------------------------------------------------------

/// Acquire one injected root job for worker `idx` — own node's lane first,
/// then remote lanes in ascending distance order — and run it. Any lane
/// drain (own *or* remote) resets the steal fail streak: acquired work is
/// acquired work, wherever the lane sat; the drain is classified under
/// `inject_own_lane` / `inject_remote_lane` so the locality of the
/// injection path stays observable.
pub(crate) fn try_drain_inject(rt: &Arc<RtInner>, idx: usize) -> bool {
    #[cfg(feature = "fault-injection")]
    crate::fault::on_worker_boundary(rt, idx);
    let node = rt.topo.node_of(idx);
    let Some((job, lane)) = rt.inject.pop_for(node) else {
        return false;
    };
    let my = &rt.workers[idx];
    if lane == node {
        WorkerStats::bump(&my.stats.inject_own_lane, 1);
    } else {
        WorkerStats::bump(&my.stats.inject_remote_lane, 1);
    }
    my.reset_fail_streak();
    let mut raw = RawCtx::new(Arc::clone(rt), idx);
    if rt.telemetry.enabled() {
        // Traced job span (`DESIGN.md` §9): drain instant + B/E pair, the
        // submit→start delta (stamped at submission) into the band's
        // queueing histogram and the body wall time into the service one.
        let band = job.band.min(crate::attrs::PRIORITY_BANDS as u8 - 1);
        let t0 = telemetry::tick();
        my.tele.emit(t0, EventKind::InjectDrain, band, lane as u32);
        if job.submit_tick != 0 {
            my.tele.submit_to_start[band as usize].record(t0.saturating_sub(job.submit_tick));
        }
        my.tele.emit(t0, EventKind::JobBegin, band, lane as u32);
        (job.run)(&mut raw);
        let t1 = telemetry::tick();
        my.tele.emit(t1, EventKind::JobEnd, band, lane as u32);
        my.tele.start_to_done[band as usize].record(t1.saturating_sub(t0));
    } else {
        (job.run)(&mut raw);
    }
    true
}

/// Run one queued/injected/stolen piece of work for worker `idx`. Returns
/// `false` when no work could be acquired anywhere.
pub(crate) fn acquire_and_run(rt: &Arc<RtInner>, idx: usize) -> bool {
    // 1. Queue layer: own lane (distributed) or the shared pool (central).
    if let Some(item) = rt.queue.pop(idx) {
        run_grab(rt, idx, item.into_grab());
        return true;
    }
    // 2. Injection layer: root jobs from outside the pool, nearest lane
    //    first.
    if try_drain_inject(rt, idx) {
        return true;
    }
    // 3. Steal layer: policy-driven victim probing.
    if let Some(grab) = try_steal_once(rt, idx) {
        run_grab(rt, idx, grab);
        return true;
    }
    false
}

/// The worker idle loop: acquire work, else spin briefly, else park.
///
/// The park decision rides the worker's steal *fail streak* (maintained by
/// the steal layer, reset on any acquired work): the same signal the steal
/// policy uses to escalate from near victims to far ones, so a worker
/// first exhausts its local node, then the remote ones, then blocks.
pub(crate) fn worker_main(rt: Arc<RtInner>, idx: usize) {
    set_current(&rt, idx);
    let my = &rt.workers[idx];
    if rt.tun.pin_workers {
        // Best-effort pinning to the topology's core (the detected or
        // declared machine shape). Failure keeps the nominal mapping; the
        // counter records how many workers actually stuck.
        if crate::pin::pin_current_thread(rt.topo.core_of(idx)) {
            WorkerStats::bump(&my.stats.workers_pinned, 1);
        }
    }
    let park_timeout = Duration::from_micros(rt.tun.park_timeout_us);
    loop {
        if rt.shutdown.load(Ordering::Acquire) {
            break;
        }
        if acquire_and_run(&rt, idx) {
            my.reset_fail_streak();
            continue;
        }
        let streak = my.fail_streak();
        if streak < rt.tun.steal_rounds_before_park {
            std::hint::spin_loop();
            if streak.is_multiple_of(8) {
                std::thread::yield_now();
            }
        } else {
            // Park/unpark span events are emitted here — on the worker
            // thread, the ring's single producer — not inside ParkLot,
            // which has no worker identity.
            telemetry::emit_current(&rt, idx, EventKind::Park, 0, streak);
            let rt2 = &rt;
            rt.park_lot.park(park_timeout, || {
                rt2.shutdown.load(Ordering::Acquire)
                    || rt2.inject.has_pending_hint()
                    || !rt2.queue.is_empty_hint(idx)
            });
            telemetry::emit_current(&rt, idx, EventKind::Unpark, 0, 0);
        }
    }
}
