//! Runtime-level tests: whole-scheduler behaviours with real threads.

use crate::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn rt(n: usize) -> Runtime {
    Runtime::new(n)
}

#[test]
fn scope_returns_value() {
    let rt = rt(2);
    let v = rt.scope(|_| 41 + 1);
    assert_eq!(v, 42);
}

#[test]
fn spawn_runs_every_task() {
    let rt = rt(4);
    let count = AtomicUsize::new(0);
    rt.scope(|ctx| {
        for _ in 0..100 {
            ctx.spawn([], |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 100);
}

#[test]
fn single_worker_runs_fifo() {
    let rt = rt(1);
    let order = parking_lot::Mutex::new(Vec::new());
    rt.scope(|ctx| {
        for i in 0..10 {
            ctx.spawn([], move |_| {}); // keep spawn cheap
            order.lock().push(i);
        }
    });
    assert_eq!(*order.lock(), (0..10).collect::<Vec<_>>());
}

#[test]
fn dataflow_raw_dependency_ordering() {
    let rt = rt(4);
    for _ in 0..50 {
        let h = Shared::new(Vec::<u32>::new());
        rt.scope(|ctx| {
            for i in 0..8u32 {
                let hw = h.clone();
                ctx.spawn([h.exclusive()], move |t| t.write(&hw).push(i));
            }
        });
        // exclusive accesses serialize in program order
        assert_eq!(*h.get(), (0..8).collect::<Vec<_>>());
    }
}

#[test]
fn dataflow_readers_see_writer_value() {
    let rt = rt(4);
    for _ in 0..50 {
        let h = Shared::new(0u64);
        let sum = Arc::new(AtomicUsize::new(0));
        rt.scope(|ctx| {
            let hw = h.clone();
            ctx.spawn([h.write()], move |t| *t.write(&hw) = 7);
            for _ in 0..6 {
                let hr = h.clone();
                let s = Arc::clone(&sum);
                ctx.spawn([h.read()], move |t| {
                    s.fetch_add(*t.read(&hr) as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 42);
    }
}

#[test]
fn sequential_semantics_chain() {
    // x = 1; y = x + 1; x = y * 2; z = x + y  — all through handles.
    let rt = rt(4);
    for _ in 0..30 {
        let x = Shared::new(0i64);
        let y = Shared::new(0i64);
        let z = Shared::new(0i64);
        rt.scope(|ctx| {
            let (x1, x2, x3, x4) = (x.clone(), x.clone(), x.clone(), x.clone());
            let (y1, y2, y3) = (y.clone(), y.clone(), y.clone());
            let z1 = z.clone();
            ctx.spawn([x.write()], move |t| *t.write(&x1) = 1);
            ctx.spawn([x.read(), y.write()], move |t| {
                *t.write(&y1) = *t.read(&x2) + 1;
            });
            ctx.spawn([y.read(), x.exclusive()], move |t| {
                let v = *t.read(&y2) * 2;
                *t.write(&x3) = v;
            });
            ctx.spawn([x.read(), y.read(), z.write()], move |t| {
                *t.write(&z1) = *t.read(&x4) + *t.read(&y3);
            });
        });
        assert_eq!(*z.get(), 4 + 2);
    }
}

#[test]
fn nested_tasks_recursive_creation() {
    // Recursive task creation — the capability the paper contrasts against
    // QUARK/StarPU/SMPSs (which only allow a flat task graph).
    let rt = rt(4);
    fn rec(ctx: &mut Ctx<'_>, depth: usize, count: &AtomicUsize) {
        count.fetch_add(1, Ordering::Relaxed);
        if depth == 0 {
            return;
        }
        // plain references survive: nested scope syncs before returning
        ctx.scope(|c| {
            c.spawn([], move |c2| rec(c2, depth - 1, count));
            c.spawn([], move |c2| rec(c2, depth - 1, count));
        });
    }
    let count = AtomicUsize::new(0);
    rt.scope(|ctx| rec(ctx, 6, &count));
    assert_eq!(count.load(Ordering::Relaxed), (1 << 7) - 1);
}

#[test]
fn join_computes_fib() {
    let rt = rt(4);
    fn fib(ctx: &mut Ctx<'_>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = ctx.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }
    let v = rt.scope(|ctx| fib(ctx, 20));
    assert_eq!(v, 6765);
}

#[test]
fn join_borrows_locals() {
    let rt = rt(2);
    let data = vec![1u64, 2, 3];
    let (a, b) = rt.scope(|ctx| {
        let r = &data;
        ctx.join(|_| r.iter().sum::<u64>(), |_| r.len() as u64)
    });
    assert_eq!((a, b), (6, 3));
}

#[test]
fn sync_then_more_tasks() {
    let rt = rt(4);
    let h = Shared::new(0u64);
    rt.scope(|ctx| {
        let h1 = h.clone();
        ctx.spawn([h.write()], move |t| *t.write(&h1) = 5);
        ctx.sync();
        let h2 = h.clone();
        ctx.spawn([h.exclusive()], move |t| *t.write(&h2) *= 3);
    });
    assert_eq!(*h.get(), 15);
}

#[test]
fn reduction_cumulative_writes() {
    let rt = rt(4);
    let red = Reduction::with_slots(0u64, 4, || 0u64, |a, b| *a += b);
    let out = Shared::new(0u64);
    rt.scope(|ctx| {
        for i in 1..=100u64 {
            let r = red.clone();
            ctx.spawn([red.cumul()], move |t| t.fold(&r, |acc| *acc += i));
        }
        let (r, o) = (red.clone(), out.clone());
        ctx.spawn([red.read(), out.write()], move |t| {
            *t.write(&o) = *t.read_reduced(&r);
        });
    });
    assert_eq!(*out.get(), 5050);
}

#[test]
fn foreach_covers_all_indices() {
    let rt = rt(4);
    for n in [0usize, 1, 7, 100, 10_000] {
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        rt.foreach(0..n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "n={n}");
    }
}

#[test]
fn foreach_chunks_partition() {
    let rt = rt(3);
    let total = AtomicUsize::new(0);
    rt.foreach_chunks(0..1000, Some(64), |r| {
        total.fetch_add(r.len(), Ordering::Relaxed);
    });
    assert_eq!(total.load(Ordering::Relaxed), 1000);
}

#[test]
fn foreach_reduce_sum() {
    let rt = rt(4);
    let s = rt.foreach_reduce(
        0..100_000,
        None,
        || 0u64,
        |a, i| *a += i as u64,
        |a, b| a + b,
    );
    assert_eq!(s, 100_000u64 * 99_999 / 2);
}

#[test]
fn foreach_inside_task() {
    let rt = rt(4);
    let n = 5000;
    let v = rt.scope(|ctx| {
        ctx.foreach_reduce(0..n, None, &|| 0u64, &|a, i| *a += i as u64, &|a, b| a + b)
    });
    assert_eq!(v, (n as u64 - 1) * n as u64 / 2);
}

#[test]
fn task_panic_propagates_after_siblings() {
    let rt = rt(4);
    let done = Arc::new(AtomicUsize::new(0));
    let d2 = Arc::clone(&done);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.scope(|ctx| {
            let d = Arc::clone(&d2);
            ctx.spawn([], move |_| {
                d.fetch_add(1, Ordering::Relaxed);
            });
            ctx.spawn([], |_| panic!("boom"));
            let d = Arc::clone(&d2);
            ctx.spawn([], move |_| {
                d.fetch_add(1, Ordering::Relaxed);
            });
        });
    }));
    assert!(r.is_err());
    assert_eq!(done.load(Ordering::Relaxed), 2, "siblings still ran");
}

#[test]
fn foreach_body_panic_propagates() {
    let rt = rt(4);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.foreach(0..1000, |i| {
            if i == 500 {
                panic!("loop boom");
            }
        });
    }));
    assert!(r.is_err());
    // runtime still usable
    let s = rt.foreach_reduce(0..10, None, || 0usize, |a, _| *a += 1, |a, b| a + b);
    assert_eq!(s, 10);
}

#[test]
fn scope_body_panic_waits_children() {
    let rt = rt(4);
    let done = Arc::new(AtomicUsize::new(0));
    let d2 = Arc::clone(&done);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.scope(move |ctx| {
            for _ in 0..10 {
                let d = Arc::clone(&d2);
                ctx.spawn([], move |_| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
            panic!("scope body boom");
        });
    }));
    assert!(r.is_err());
    assert_eq!(done.load(Ordering::Relaxed), 10);
}

#[test]
fn stats_count_tasks() {
    let rt = rt(2);
    rt.reset_stats();
    rt.scope(|ctx| {
        for _ in 0..50 {
            ctx.spawn([], |_| {});
        }
    });
    let s = rt.stats();
    assert_eq!(s.tasks_spawned, 50);
    assert_eq!(s.tasks_executed(), 50);
}

#[test]
fn stealing_happens_under_load() {
    // On a heavily time-sliced host the owner can drain small task sets
    // before any thief wakes; retry with long-enough tasks until a steal
    // is observed (it must eventually be, with 4 workers and 1 ms tasks).
    let rt = rt(4);
    for round in 0..10 {
        rt.reset_stats();
        rt.scope(|ctx| {
            for _ in 0..64 {
                ctx.spawn([], |_| {
                    std::thread::sleep(std::time::Duration::from_micros(500));
                });
            }
        });
        let s = rt.stats();
        assert_eq!(s.tasks_executed(), 64);
        if s.tasks_executed_stolen > 0 {
            return;
        }
        eprintln!("round {round}: no steals yet ({s:?})");
    }
    panic!("no steals observed in 10 rounds");
}

#[test]
fn promotion_triggers_on_wide_dataflow() {
    // Timing-sensitive on a single-core host: retry until a thief scan
    // actually promoted the frame (tasks sleep so the owner cannot drain
    // the frame before thieves wake).
    let rt = Runtime::builder()
        .workers(4)
        .promotion(PromotionPolicy {
            promote_len: 8,
            promote_scans: 2,
            enabled: true,
        })
        .build();
    for round in 0..10 {
        rt.reset_stats();
        let handles: Vec<Shared<u64>> = (0..64).map(|_| Shared::new(0)).collect();
        rt.scope(|ctx| {
            for h in &handles {
                let hw = h.clone();
                ctx.spawn([h.write()], move |t| {
                    *t.write(&hw) += 1;
                    std::thread::sleep(std::time::Duration::from_micros(300));
                });
            }
        });
        assert!(handles.iter().all(|h| *h.get() == 1));
        let s = rt.stats();
        if s.promotions >= 1 {
            return;
        }
        eprintln!("round {round}: no promotion yet ({s:?})");
    }
    panic!("no graph-mode promotion observed in 10 rounds");
}

#[test]
fn multiple_scopes_sequential() {
    let rt = rt(3);
    for round in 0..20 {
        let h = Shared::new(round);
        rt.scope(|ctx| {
            let hw = h.clone();
            ctx.spawn([h.exclusive()], move |t| *t.write(&hw) += 1);
        });
        assert_eq!(*h.get(), round + 1);
    }
}

#[test]
fn concurrent_external_scopes() {
    let rt = Arc::new(rt(4));
    let mut handles = Vec::new();
    for t in 0..4 {
        let rt = Arc::clone(&rt);
        handles.push(std::thread::spawn(move || {
            rt.foreach_reduce(
                0..10_000,
                None,
                || 0u64,
                |a, i| *a += (i + t) as u64,
                |a, b| a + b,
            )
        }));
    }
    for (t, h) in handles.into_iter().enumerate() {
        let expected: u64 = (0..10_000u64).map(|i| i + t as u64).sum();
        assert_eq!(h.join().unwrap(), expected);
    }
}

#[test]
fn independent_writers_parallel_disjoint_handles() {
    let rt = rt(4);
    let handles: Vec<Shared<u64>> = (0..32).map(|_| Shared::new(0)).collect();
    rt.scope(|ctx| {
        for (i, h) in handles.iter().enumerate() {
            let hw = h.clone();
            ctx.spawn([h.write()], move |t| *t.write(&hw) = i as u64);
        }
    });
    for (i, h) in handles.iter().enumerate() {
        assert_eq!(*h.get(), i as u64);
    }
}

#[test]
fn partitioned_keyed_tiles() {
    // Two writers on disjoint tiles run unordered; a reader of both tiles
    // runs after both. Uses the raw Partitioned API the way linalg does.
    let rt = rt(4);
    let p = Partitioned::new(vec![0u64; 2]);
    let done = Arc::new(AtomicUsize::new(0));
    rt.scope(|ctx| {
        for i in 0..2usize {
            let ph = p.clone();
            ctx.spawn(
                [p.access(Region::key2(i, 0), AccessMode::Write)],
                move |_| {
                    // Safety: disjoint keyed regions, serialized with the reader.
                    unsafe { (&mut *ph.view())[i] = (i + 1) as u64 }
                },
            );
        }
        let ph = p.clone();
        let d = Arc::clone(&done);
        ctx.spawn(
            [
                p.access(Region::key2(0, 0), AccessMode::Read),
                p.access(Region::key2(1, 0), AccessMode::Read),
            ],
            move |_| {
                let v = unsafe { &*ph.view() };
                assert_eq!(v, &vec![1, 2]);
                d.fetch_add(1, Ordering::Relaxed);
            },
        );
    });
    assert_eq!(done.load(Ordering::Relaxed), 1);
}

#[test]
fn aggregation_can_be_disabled() {
    let rt = Runtime::builder().workers(4).aggregation(false).build();
    let s = rt.foreach_reduce(
        0..50_000,
        Some(16),
        || 0u64,
        |a, i| *a += i as u64,
        |a, b| a + b,
    );
    assert_eq!(s, 50_000u64 * 49_999 / 2);
}

#[test]
fn deep_recursion_fib_dataflow_style() {
    // The paper's Fig. 1 program shape: task + inline call + sync, with a
    // write-mode declared result, here at small n.
    let rt = rt(4);
    fn fib(ctx: &mut Ctx<'_>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let r1 = Shared::new(0u64);
        let r1c = r1.clone();
        ctx.scope(|c| {
            c.spawn([r1c.write()], move |t| {
                let v = fib_inner(t, 0);
                let _ = v;
                let n1 = n - 1;
                let mut w = t.write(&r1c);
                *w = 0; // placeholder; recompute below
                drop(w);
                let v = fib_rec(t, n1);
                *t.write(&r1c) = v;
            });
        });
        fn fib_inner(_: &mut Ctx<'_>, v: u64) -> u64 {
            v
        }
        fn fib_rec(ctx: &mut Ctx<'_>, n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                let (a, b) = ctx.join(|c| fib_rec(c, n - 1), |c| fib_rec(c, n - 2));
                a + b
            }
        }
        let r2 = fib_rec(ctx, n - 2);
        *r1.get() + r2
    }
    let v = rt.scope(|ctx| fib(ctx, 15));
    assert_eq!(v, 610);
}

#[test]
fn range_regions_partition_a_vector() {
    // Disjoint 1-D ranges of one handle run unordered; an overlapping
    // reader is ordered after both writers.
    use crate::{AccessMode, Region};
    let rt = rt(4);
    let p = Partitioned::new(vec![0u32; 100]);
    let done = Arc::new(AtomicUsize::new(0));
    rt.scope(|ctx| {
        for (start, end) in [(0usize, 50usize), (50, 100)] {
            let ph = p.clone();
            ctx.spawn(
                [p.access(Region::Range { start, end }, AccessMode::Write)],
                move |_| {
                    // Safety: disjoint declared ranges.
                    let v = unsafe { &mut *ph.view() };
                    for x in &mut v[start..end] {
                        *x = 7;
                    }
                },
            );
        }
        let ph = p.clone();
        let d = Arc::clone(&done);
        ctx.spawn(
            [p.access(Region::Range { start: 25, end: 75 }, AccessMode::Read)],
            move |_| {
                let v = unsafe { &*ph.view() };
                assert!(v[25..75].iter().all(|&x| x == 7), "reader saw both writers");
                d.fetch_add(1, Ordering::Relaxed);
            },
        );
    });
    assert_eq!(done.load(Ordering::Relaxed), 1);
    assert!(p.into_inner().iter().all(|&x| x == 7));
}

#[test]
fn foreach_worker_chunks_reports_valid_worker() {
    let rt = rt(3);
    let seen = parking_lot::Mutex::new(std::collections::HashSet::new());
    rt.scope(|ctx| {
        ctx.foreach_worker_chunks(0..5_000, Some(64), &|r, w| {
            assert!(w < 3);
            assert!(!r.is_empty());
            seen.lock().insert(w);
        });
    });
    assert!(!seen.lock().is_empty());
}

#[test]
fn join_panic_in_continuation_still_retires_fork() {
    // fa panics; fb (which borrows join's stack) must still complete
    // before the unwind propagates.
    let rt = rt(4);
    let fork_ran = Arc::new(AtomicUsize::new(0));
    let f2 = Arc::clone(&fork_ran);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.scope(|ctx| {
            ctx.join(
                |_| -> () { panic!("continuation boom") },
                move |_| {
                    f2.fetch_add(1, Ordering::Relaxed);
                },
            )
        });
    }));
    assert!(r.is_err());
    assert_eq!(fork_ran.load(Ordering::Relaxed), 1);
}

#[test]
fn deeply_nested_scopes() {
    let rt = rt(2);
    fn nest(ctx: &mut Ctx<'_>, depth: usize) -> usize {
        if depth == 0 {
            return 1;
        }
        ctx.scope(|c| nest(c, depth - 1)) + 1
    }
    let d = rt.scope(|ctx| nest(ctx, 64));
    assert_eq!(d, 65);
}

#[test]
fn builder_exposes_tunables() {
    let rt = Runtime::builder()
        .workers(2)
        .aggregation(false)
        .grain_factor(4)
        .promotion(PromotionPolicy {
            enabled: false,
            promote_len: 5,
            promote_scans: 9,
        })
        .stack_size(4 << 20)
        .build();
    let t = rt.tunables();
    assert!(!t.aggregation);
    assert_eq!(t.grain_factor, 4);
    assert!(!t.promotion.enabled);
    assert_eq!(t.promotion.promote_len, 5);
    assert_eq!(rt.num_workers(), 2);
    // still functional
    assert_eq!(rt.scope(|ctx| ctx.join(|_| 1, |_| 2)), (1, 2));
}

#[test]
fn reduction_reused_across_scopes() {
    let rt = rt(3);
    let red = Reduction::with_slots(0u64, 3, || 0, |a, b| *a += b);
    for round in 1..=3u64 {
        rt.scope(|ctx| {
            for _ in 0..10 {
                let r = red.clone();
                ctx.spawn([red.cumul()], move |t| t.fold(&r, |acc| *acc += round));
            }
        });
        // quiescent merge between scopes
        assert_eq!(*red.get(), (1..=round).map(|r| r * 10).sum::<u64>());
    }
}

#[test]
fn renaming_preserves_final_value() {
    // Repeated whole-object overwrites on a renameable handle: renaming
    // eliminates the WAR/WAW chain, yet the last write must win.
    for workers in [1, 4] {
        let rt = Runtime::new(workers);
        rt.reset_stats();
        let h = Shared::renameable(0u64);
        rt.scope(|ctx| {
            for i in 0..40u64 {
                let hw = h.clone();
                ctx.spawn([h.write()], move |t| *t.write(&hw) = i);
                let hr = h.clone();
                ctx.spawn([h.read()], move |t| {
                    assert_eq!(*t.read(&hr), i, "reader must see its version");
                });
            }
        });
        assert_eq!(*h.get(), 39);
        assert!(
            rt.stats().renames > 0,
            "war-chain on {workers} workers should rename"
        );
        assert_eq!(h.into_inner(), 39);
    }
}

#[test]
fn renaming_ablation_identical_checksums() {
    // The same program under renaming on/off yields identical results.
    let run = |renaming: bool| -> u64 {
        let rt = Runtime::builder().workers(4).renaming(renaming).build();
        // NB: `renameable_with`, not `renameable` — fresh buffers must have
        // the same shape as the initial value (`Vec::default()` is empty).
        let h = Shared::renameable_with(vec![0u64; 64], || vec![0u64; 64]);
        let sum = Arc::new(AtomicUsize::new(0));
        rt.scope(|ctx| {
            for round in 0..24u64 {
                let hw = h.clone();
                ctx.spawn([h.write()], move |t| {
                    let mut g = t.write(&hw);
                    for (i, x) in g.iter_mut().enumerate() {
                        *x = round * 31 + i as u64;
                    }
                });
                for _ in 0..3 {
                    let hr = h.clone();
                    let s = Arc::clone(&sum);
                    ctx.spawn([h.read()], move |t| {
                        let v: u64 = t.read(&hr).iter().sum();
                        s.fetch_add(v as usize, Ordering::Relaxed);
                    });
                }
            }
        });
        let tail: u64 = h.get().iter().sum();
        sum.load(Ordering::Relaxed) as u64 + tail
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn renaming_mixed_with_exclusive_and_regions() {
    // Exclusive writes interleaved with renamed write-only ones follow the
    // committed slot lineage.
    let rt = rt(4);
    for _ in 0..20 {
        let h = Shared::renameable(0u64);
        rt.scope(|ctx| {
            let h1 = h.clone();
            ctx.spawn([h.write()], move |t| *t.write(&h1) = 10);
            let h2 = h.clone();
            ctx.spawn([h.exclusive()], move |t| *t.write(&h2) += 1);
            let h3 = h.clone();
            ctx.spawn([h.write()], move |t| *t.write(&h3) = 100);
            let h4 = h.clone();
            ctx.spawn([h.exclusive()], move |t| *t.write(&h4) += 5);
        });
        assert_eq!(*h.get(), 105);
    }
}

#[test]
fn renaming_across_scopes_follows_committed_lineage() {
    // Each scope gets a fresh frame (fresh engine): the chain state must be
    // seeded from the handle's committed version, or scope 2 would read
    // stale slot-0 data and its commits would lose the sequence CAS.
    let rt = rt(4);
    let h = Shared::renameable(0u64);
    rt.scope(|ctx| {
        for i in 1..=3u64 {
            let hw = h.clone();
            ctx.spawn([h.write()], move |t| *t.write(&hw) = i);
            let hr = h.clone();
            ctx.spawn([h.read()], move |t| assert_eq!(*t.read(&hr), i));
        }
    });
    assert_eq!(*h.get(), 3);
    // Scope 2: exclusive read-modify-write must see scope 1's result.
    rt.scope(|ctx| {
        let hw = h.clone();
        ctx.spawn([h.exclusive()], move |t| *t.write(&hw) += 10);
    });
    assert_eq!(*h.get(), 13);
    // Scope 3: renamed writes must commit over scope 1's sequence numbers.
    rt.scope(|ctx| {
        for i in [100u64, 101] {
            let hw = h.clone();
            ctx.spawn([h.write()], move |t| *t.write(&hw) = i);
            let hr = h.clone();
            ctx.spawn([h.read()], move |t| assert_eq!(*t.read(&hr), i));
        }
    });
    assert_eq!(*h.get(), 101);
    // Many more scopes: lineage stays coherent indefinitely.
    for round in 0..20u64 {
        rt.scope(|ctx| {
            let hw = h.clone();
            ctx.spawn([h.write()], move |t| *t.write(&hw) = round);
            let hw2 = h.clone();
            ctx.spawn([h.write()], move |t| *t.write(&hw2) = round + 1000);
        });
        assert_eq!(*h.get(), round + 1000, "scope round {round}");
    }
    assert_eq!(h.into_inner(), 19 + 1000);
}

#[test]
fn partitioned_renameable_whole_object_writes() {
    let rt = rt(4);
    let p = Partitioned::renameable_with(vec![0u64; 8], || vec![0u64; 8]);
    let sum = Arc::new(AtomicUsize::new(0));
    rt.scope(|ctx| {
        for round in 1..=10u64 {
            let pw = p.clone();
            ctx.spawn([p.write_all()], move |t| {
                let v = t.view_of(&pw);
                // Safety: whole-object write-only access was declared.
                let buf = unsafe { &mut *v.ptr() };
                buf.iter_mut().for_each(|x| *x = round);
            });
            let pr = p.clone();
            let s = Arc::clone(&sum);
            ctx.spawn([p.access(Region::All, AccessMode::Read)], move |t| {
                let v = t.view_of(&pr);
                // Safety: read access granted; writer of this version done.
                let buf = unsafe { &*v.ptr() };
                assert!(buf.iter().all(|&x| x == round));
                s.fetch_add(buf[0] as usize, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(sum.load(Ordering::Relaxed), (1..=10usize).sum::<usize>());
    assert!(p.get().iter().all(|&x| x == 10));
}

#[test]
fn mixed_fastlane_and_dataflow_in_one_scope() {
    // joins (fast lane) interleaved with dataflow chains must both respect
    // their own ordering rules.
    let rt = rt(4);
    let h = Shared::new(0u64);
    let total = rt.scope(|ctx| {
        let mut acc = 0u64;
        for i in 0..20u64 {
            let hw = h.clone();
            ctx.spawn([h.exclusive()], move |t| *t.write(&hw) += i);
            let (a, b) = ctx.join(|_| i, |_| i * 2);
            acc += a + b;
        }
        ctx.sync();
        acc
    });
    assert_eq!(total, (0..20).map(|i| 3 * i).sum::<u64>());
    assert_eq!(*h.get(), (0..20).sum::<u64>());
}
