//! The versioned data-flow core: one dependency engine for every mode.
//!
//! Every handle a frame's tasks touch is represented by **version chains**:
//! each write-class access *opens a new version* of its region, readers
//! *attach* to the current version. Binding a task into the chains (in
//! program order) yields its predecessor set — the edges of the data-flow
//! graph — and its **slot routing** (which buffer of the handle each access
//! must touch).
//!
//! Both execution strategies of [`crate::frame::Frame`] are built on this
//! one engine, so they can never disagree:
//!
//! * **scan mode** answers "is task *i* ready?" by checking that every
//!   recorded predecessor completed — an incremental check that replaced
//!   the seed's O(n²) pairwise `tasks_conflict` scan;
//! * **graph mode** (the promoted ready-list) derives its `npred`/`succ`
//!   counters from the same predecessor sets.
//!
//! On top of the chains the engine implements **renaming** (`DESIGN.md` §2):
//! a write-only access on a full version of a renameable handle is granted a
//! fresh *version slot* instead of being ordered behind earlier readers and
//! writers — the WAR/WAW edges of the sequential program vanish and repeated
//! overwrites pipeline. Slots are bounded by [`RenamePolicy::max_live_slots`]
//! and recycled once every task bound to them completed.

use crate::access::{Access, AccessMode, HandleId, Region};
use crate::policy::RenamePolicy;
use std::collections::HashMap;

/// Slot ids are packed into 16 bits next to the commit sequence number
/// (see `handle.rs`), so at most this many extra buffers can exist.
const MAX_SLOT: u32 = u16::MAX as u32 - 1;

/// Where one declared access of a bound task must look for its data.
///
/// Slot `0` is the handle's original buffer; slots `> 0` are version
/// buffers grown by renaming. The binding is pinned when the task is bound
/// (pushed into its frame), so concurrent renames can never redirect a
/// running task.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotBinding {
    /// Version slot of the handle this access is routed to.
    pub slot: u32,
    /// Commit sequence number (renamed writers only): completing the write
    /// publishes `(seq, slot)` as the handle's current data if no newer
    /// version committed first.
    pub seq: u64,
    /// This access was renamed: it writes a fresh buffer and must commit.
    pub renamed: bool,
}

/// Result of binding one task into the version chains.
#[derive(Debug)]
pub struct Binding {
    /// Index of the bound task (program order, dense from 0).
    pub index: usize,
    /// Per-access slot routing, parallel to the task's access list —
    /// **or empty** when every access routes to the default binding
    /// (slot 0, no rename): the all-default sentinel that lets the hot
    /// spawn path skip the per-task slot allocation. Use
    /// [`Binding::slot`] to read through the sentinel.
    pub slots: Box<[SlotBinding]>,
    /// How many of the task's accesses were renamed.
    pub renames: u32,
}

impl Binding {
    /// Slot routing of access `i`, reading through the all-default
    /// sentinel (an empty `slots` means every access gets the default
    /// binding).
    pub fn slot(&self, i: usize) -> SlotBinding {
        self.slots.get(i).copied().unwrap_or_default()
    }
}

/// Head of one version chain: the open version of one region track.
///
/// Older versions are fully ordered behind the head (their tasks appear in
/// predecessor sets of the tasks recorded here), so only the head is needed
/// to extend the chain.
#[derive(Default)]
struct Version {
    /// Task that opened this version (the write-class access), if any.
    writer: Option<u32>,
    /// Readers attached to this version.
    readers: Vec<u32>,
    /// Cumulative writers attached to this version.
    cumuls: Vec<u32>,
}

impl Version {
    /// Predecessor edges an access of `mode` by task `idx` takes from this
    /// version. `idx` itself is skipped: a task with several accesses to
    /// one handle (e.g. read + write) must not depend on itself.
    fn preds_into(&self, idx: u32, mode: AccessMode, preds: &mut Vec<u32>) {
        let mut push = |p: u32| {
            if p != idx {
                preds.push(p);
            }
        };
        match mode {
            AccessMode::Read => {
                self.writer.iter().copied().for_each(&mut push);
                self.cumuls.iter().copied().for_each(&mut push);
            }
            AccessMode::Write | AccessMode::Exclusive => {
                self.writer.iter().copied().for_each(&mut push);
                self.readers.iter().copied().for_each(&mut push);
                self.cumuls.iter().copied().for_each(&mut push);
            }
            AccessMode::CumulWrite => {
                self.writer.iter().copied().for_each(&mut push);
                self.readers.iter().copied().for_each(&mut push);
            }
        }
    }
}

/// All version chains and the slot lineage of one handle.
struct HandleState {
    /// Whole-object chain.
    all: Option<Version>,
    /// One chain per keyed region.
    keys: HashMap<u64, Version>,
    /// One chain per exact 1-D range `(start, end)`.
    ranges: Vec<(usize, usize, Version)>,
    /// Slot holding the handle's logical data at this point of the program
    /// order; every access binds to it (renamed writers move it).
    cur_slot: u32,
    /// Next never-used slot id.
    next_slot: u32,
    /// Next commit sequence number (1-based; 0 = "initial value").
    next_seq: u64,
    /// Recycled slots (all bound tasks completed, superseded).
    free: Vec<u32>,
    /// Live version slots (allocated minus recycled), for the policy cap.
    live_slots: u32,
    /// Not-yet-completed bound tasks per slot (slots `> 0` only).
    pending: HashMap<u32, u32>,
    /// Slot currently holding each keyed region's data, for keys whose
    /// writes were renamed into a dedicated tile slot (per-tile renaming,
    /// `DESIGN.md` §7). Absent keys route to `cur_slot`.
    key_slots: HashMap<u64, u32>,
    /// Tasks whose WAR/WAW edges a *keyed* rename erased and whose chain
    /// entry the renamed write replaced. Coarse (`All`/`Range`) accesses —
    /// the merge points that rewrite the whole-object slot — must still
    /// order behind them, so their indices are stashed here until a
    /// whole-object write absorbs them transitively.
    renamed_away: Vec<u32>,
}

impl HandleState {
    /// Fresh handle state, seeded from the handle's committed-version
    /// snapshot (`(seq << 16) | slot`, zero for plain handles and untouched
    /// renameable ones).
    ///
    /// A frame's engine starts empty, but the handle may carry committed
    /// state from a previous scope: the chains must continue on the
    /// committed slot (not slot 0), commit sequence numbers must stay
    /// monotonic (or later commits would lose the max-CAS against the old
    /// ones), and the slot ids a previous scope used below the committed
    /// one are dead — quiescent between scopes — so they are recycled here
    /// rather than leaked. Renamed writers factory-reset their buffer, so
    /// reusing an id that held old data is safe.
    fn seeded(lineage: u64, tile_slots: bool) -> Self {
        let slot = (lineage & 0xFFFF) as u32;
        let seq = lineage >> 16;
        if tile_slots {
            // Per-tile renamed handle: `lineage` is the handle's *tile-slot
            // watermark*, not a committed whole-object slot. The logical
            // whole-object data stays in slot 0 (main, merged on demand);
            // slots up to the watermark may hold committed, un-merged tiles
            // from previous scopes, so they are neither current nor
            // recyclable here — allocation starts past them and the commit
            // sequence continues past the watermark sequence.
            return HandleState {
                all: None,
                keys: HashMap::new(),
                ranges: Vec::new(),
                cur_slot: 0,
                next_slot: slot + 1,
                next_seq: seq + 1,
                free: Vec::new(),
                live_slots: slot,
                pending: HashMap::new(),
                key_slots: HashMap::new(),
                renamed_away: Vec::new(),
            };
        }
        HandleState {
            all: None,
            keys: HashMap::new(),
            ranges: Vec::new(),
            cur_slot: slot,
            next_slot: slot + 1,
            next_seq: seq + 1,
            free: (1..slot).collect(),
            live_slots: slot,
            pending: HashMap::new(),
            key_slots: HashMap::new(),
            renamed_away: Vec::new(),
        }
    }
    /// Can a fresh version slot be opened under `policy`?
    fn can_open_slot(&self, policy: &RenamePolicy) -> bool {
        !self.free.is_empty() || self.live_slots < policy.max_live_slots.min(MAX_SLOT)
    }

    /// Open a fresh (or recycled) version slot and make it current.
    fn open_slot(&mut self) -> (u32, u64) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.live_slots += 1;
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        // The slot this one supersedes may already be fully drained (its
        // recycling is otherwise triggered by the last completion).
        self.maybe_recycle(self.cur_slot, slot);
        self.cur_slot = slot;
        let seq = self.next_seq;
        self.next_seq += 1;
        (slot, seq)
    }

    /// Open a fresh (or recycled) version slot for keyed region `k`
    /// without moving the whole-object current slot (per-tile renaming).
    fn open_slot_for_key(&mut self, k: u64) -> (u32, u64) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.live_slots += 1;
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        if let Some(prev) = self.key_slots.insert(k, slot) {
            self.maybe_recycle(prev, slot);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        (slot, seq)
    }

    /// Recycle `slot` if it is drained and superseded by `new_cur`.
    fn maybe_recycle(&mut self, slot: u32, new_cur: u32) {
        if slot != 0
            && slot != new_cur
            && self.pending.get(&slot) == Some(&0)
            // Never recycle a slot still holding some key's current data:
            // a same-key rename re-receiving it would hand the new writer
            // the very buffer its erased-WAR readers are reading.
            && !self.key_slots.values().any(|&s| s == slot)
        {
            self.pending.remove(&slot);
            self.free.push(slot);
        }
    }
}

/// Per-task record kept by the engine: two ranges into the engine's
/// append-only arenas. Binding a task appends to the arena tails instead
/// of boxing fresh per-task slices — the spawn path's allocation count no
/// longer grows with the task count (arenas amortize like a `Vec`).
struct TaskEntry {
    /// Range of `preds_arena` holding the predecessor task indices
    /// (sorted, deduplicated, all `< index`).
    preds_start: u32,
    preds_len: u32,
    /// Range of `holds_arena` holding `(handle, slot)` pairs with
    /// `slot > 0`, for slot reclamation.
    holds_start: u32,
    holds_len: u32,
    /// `complete` was called for this task.
    done: bool,
}

/// The versioned data-flow engine of one frame (or of a standalone probe).
///
/// Tasks are bound in program order; the engine records, per task, the
/// predecessor set and the slot routing. It is a plain data structure — the
/// frame layer provides the locking and maps engine indices to real tasks.
///
/// The engine is public so benchmarks and tests can measure scheduling
/// properties (e.g. ready-set width with renaming on vs off) without
/// running a scheduler:
///
/// ```
/// use xkaapi_core::dataflow::DataflowEngine;
/// use xkaapi_core::{RenamePolicy, Shared};
///
/// let h = Shared::renameable(0u64);
/// let policy = RenamePolicy::default();
/// let mut eng = DataflowEngine::new();
/// eng.bind(&[h.write()], &policy); // first version: no predecessors
/// eng.bind(&[h.read()], &policy); // waits for the writer
/// eng.bind(&[h.write()], &policy); // renamed: WAR edge eliminated
/// assert_eq!(eng.preds(1), &[0]);
/// assert_eq!(eng.preds(2), &[] as &[u32]);
/// assert_eq!(eng.ready_width(), 2);
/// ```
#[derive(Default)]
pub struct DataflowEngine {
    handles: HashMap<HandleId, HandleState>,
    tasks: Vec<TaskEntry>,
    /// Arena backing every task's predecessor set (see [`TaskEntry`]).
    preds_arena: Vec<u32>,
    /// Arena backing every task's held `(handle, slot)` pairs.
    holds_arena: Vec<(HandleId, u32)>,
    /// Per-bind scratch for the slot routing; reused across binds so a
    /// task whose routing is all-default allocates nothing.
    slot_scratch: Vec<SlotBinding>,
}

impl DataflowEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bound tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// No task bound yet?
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Bind the next task (program order) with the given declared accesses.
    ///
    /// Returns the task's dense index, its per-access slot routing and how
    /// many accesses were renamed. Predecessors are queryable afterwards
    /// through [`DataflowEngine::preds`].
    pub fn bind(&mut self, accesses: &[Access], policy: &RenamePolicy) -> Binding {
        let Self {
            handles,
            tasks,
            preds_arena,
            holds_arena,
            slot_scratch,
        } = self;
        let index = tasks.len();
        debug_assert!(index < u32::MAX as usize, "frame task index overflow");
        let idx = index as u32;
        // Predecessors and held slots go straight onto the arena tails —
        // no per-task Vec, no boxed slice. Slot routing accumulates in the
        // reusable scratch and is only boxed when something is non-default.
        let preds_start = preds_arena.len();
        let holds_start = holds_arena.len();
        slot_scratch.clear();
        let preds = preds_arena;
        let mut renames = 0u32;

        for a in accesses {
            if a.region.is_empty() {
                slot_scratch.push(SlotBinding::default());
                continue;
            }
            let hs = handles
                .entry(a.handle)
                .or_insert_with(|| HandleState::seeded(a.lineage, a.tile_slots));

            // 1. Collect predecessor edges from every overlapping chain.
            let before = preds.len();
            match a.region {
                Region::All => {
                    if let Some(v) = &hs.all {
                        v.preds_into(idx, a.mode, preds);
                    }
                    for v in hs.keys.values() {
                        v.preds_into(idx, a.mode, preds);
                    }
                    for (_, _, v) in &hs.ranges {
                        v.preds_into(idx, a.mode, preds);
                    }
                }
                Region::Key(k) => {
                    if let Some(v) = &hs.all {
                        v.preds_into(idx, a.mode, preds);
                    }
                    if let Some(v) = hs.keys.get(&k) {
                        v.preds_into(idx, a.mode, preds);
                    }
                    // Mixed Key/Range on a handle aliases conservatively.
                    for (_, _, v) in &hs.ranges {
                        v.preds_into(idx, a.mode, preds);
                    }
                }
                Region::Range { start, end } => {
                    if let Some(v) = &hs.all {
                        v.preds_into(idx, a.mode, preds);
                    }
                    for v in hs.keys.values() {
                        v.preds_into(idx, a.mode, preds);
                    }
                    for (s, t, v) in &hs.ranges {
                        if *s < end && start < *t {
                            v.preds_into(idx, a.mode, preds);
                        }
                    }
                }
            }

            // 2. Renaming: a write-only access covering the whole object
            // (or one keyed tile of a per-tile renamed handle) reads
            // nothing, so *all* its edges are WAR/WAW — eliminable by
            // giving the writer a fresh version slot. Skipped when there is
            // nothing to eliminate or the slot cap is reached.

            // Where this access routes without a rename: keyed regions
            // follow their tile's slot, everything else the whole-object
            // current slot.
            let routed_before = match a.region {
                Region::Key(k) => hs.key_slots.get(&k).copied().unwrap_or(hs.cur_slot),
                _ => hs.cur_slot,
            };
            // Coarse accesses rewrite (or merge into) the whole-object
            // slot, so they must also order behind tasks keyed renames
            // erased from their chains (see `renamed_away`).
            if !matches!(a.region, Region::Key(_)) && !hs.renamed_away.is_empty() {
                for &p in &hs.renamed_away {
                    if p != idx {
                        preds.push(p);
                    }
                }
            }
            let rename = policy.enabled
                && a.can_rename()
                && preds.len() > before
                && hs.can_open_slot(policy)
                // Keyed renames require exact tile identity: range chains
                // alias keys conservatively, so serialize instead.
                && (matches!(a.region, Region::All) || hs.ranges.is_empty());
            let routed = if rename {
                renames += 1;
                let (slot, seq) = match a.region {
                    Region::Key(k) => {
                        // Stash the erased edges for later coarse accesses
                        // before dropping them from this task's set.
                        hs.renamed_away.extend_from_slice(&preds[before..]);
                        preds.truncate(before);
                        hs.open_slot_for_key(k)
                    }
                    _ => {
                        preds.truncate(before);
                        hs.open_slot()
                    }
                };
                slot_scratch.push(SlotBinding {
                    slot,
                    seq,
                    renamed: true,
                });
                slot
            } else {
                slot_scratch.push(SlotBinding {
                    slot: routed_before,
                    seq: 0,
                    renamed: false,
                });
                routed_before
            };
            if routed != 0 {
                *hs.pending.entry(routed).or_insert(0) += 1;
                holds_arena.push((a.handle, routed));
            }

            // 3. Record the access into its exact-shape chain: write-class
            // accesses open a new version, readers/cumuls attach.
            let head: &mut Version = match a.region {
                Region::All => hs.all.get_or_insert_with(Default::default),
                Region::Key(k) => hs.keys.entry(k).or_default(),
                Region::Range { start, end } => {
                    if let Some(pos) = hs
                        .ranges
                        .iter()
                        .position(|(s, t, _)| *s == start && *t == end)
                    {
                        &mut hs.ranges[pos].2
                    } else {
                        hs.ranges.push((start, end, Version::default()));
                        let last = hs.ranges.len() - 1;
                        &mut hs.ranges[last].2
                    }
                }
            };
            match a.mode {
                AccessMode::Read => head.readers.push(idx),
                AccessMode::Write | AccessMode::Exclusive => {
                    *head = Version {
                        writer: Some(idx),
                        readers: Vec::new(),
                        cumuls: Vec::new(),
                    };
                }
                AccessMode::CumulWrite => head.cumuls.push(idx),
            }
            // A whole-object write absorbs every finer-grained chain.
            if matches!(a.mode, AccessMode::Write | AccessMode::Exclusive)
                && matches!(a.region, Region::All)
            {
                hs.keys.clear();
                hs.ranges.clear();
                // It also supersedes every keyed tile slot: later keyed
                // accesses route back to the whole-object slot, and
                // drained tile slots are recycled.
                if !hs.key_slots.is_empty() {
                    let stale: Vec<u32> = hs.key_slots.drain().map(|(_, s)| s).collect();
                    for s in stale {
                        hs.maybe_recycle(s, hs.cur_slot);
                    }
                }
                // A non-renamed absorbing write just took edges to every
                // erased-WAR task, so later coarse accesses are ordered
                // behind them transitively.
                if !rename {
                    hs.renamed_away.clear();
                }
            }
        }

        // Sort + dedup this task's tail of the arena in place.
        let tail = &mut preds[preds_start..];
        tail.sort_unstable();
        let mut uniq = 0usize;
        for i in 0..tail.len() {
            if uniq == 0 || tail[i] != tail[uniq - 1] {
                tail[uniq] = tail[i];
                uniq += 1;
            }
        }
        preds.truncate(preds_start + uniq);
        debug_assert!(preds[preds_start..].iter().all(|&p| p < idx));

        // All-default sentinel: when nothing renamed and every access
        // routes to slot 0, hand back an empty binding (`Box<[]>` does not
        // allocate) — readers reconstruct `SlotBinding::default()`.
        let slots_box: Box<[SlotBinding]> =
            if slot_scratch.iter().all(|b| *b == SlotBinding::default()) {
                Box::new([])
            } else {
                slot_scratch.as_slice().into()
            };
        tasks.push(TaskEntry {
            preds_start: preds_start as u32,
            preds_len: uniq as u32,
            holds_start: holds_start as u32,
            holds_len: (holds_arena.len() - holds_start) as u32,
            done: false,
        });
        Binding {
            index,
            slots: slots_box,
            renames,
        }
    }

    /// Predecessor set of task `idx` (sorted, deduplicated program-order
    /// indices, all smaller than `idx`).
    pub fn preds(&self, idx: usize) -> &[u32] {
        let t = &self.tasks[idx];
        let start = t.preds_start as usize;
        &self.preds_arena[start..start + t.preds_len as usize]
    }

    /// Record the completion of task `idx`: releases its hold on version
    /// slots (recycling drained, superseded ones) and updates readiness.
    /// Idempotent; unknown indices are ignored.
    pub fn complete(&mut self, idx: usize) {
        let Self {
            handles,
            tasks,
            holds_arena,
            ..
        } = self;
        let Some(entry) = tasks.get_mut(idx) else {
            return;
        };
        if entry.done {
            return;
        }
        entry.done = true;
        let start = entry.holds_start as usize;
        for (h, s) in &holds_arena[start..start + entry.holds_len as usize] {
            if let Some(hs) = handles.get_mut(h) {
                if let Some(p) = hs.pending.get_mut(s) {
                    *p -= 1;
                    if *p == 0 {
                        hs.maybe_recycle(*s, hs.cur_slot);
                    }
                }
            }
        }
    }

    /// Was `complete` called for task `idx`?
    pub fn is_done(&self, idx: usize) -> bool {
        self.tasks.get(idx).is_some_and(|t| t.done)
    }

    /// Is task `idx` ready by the engine's own completion records (not done
    /// and every predecessor done)? Probe use only: the frame layer checks
    /// readiness against authoritative task states instead.
    pub fn is_ready(&self, idx: usize) -> bool {
        !self.tasks[idx].done && self.preds(idx).iter().all(|&p| self.tasks[p as usize].done)
    }

    /// Indices of all currently-ready tasks (probe use).
    pub fn ready_indices(&self) -> Vec<usize> {
        (0..self.tasks.len())
            .filter(|&i| self.is_ready(i))
            .collect()
    }

    /// Width of the current ready set: how many bound, incomplete tasks
    /// could run concurrently right now.
    pub fn ready_width(&self) -> usize {
        (0..self.tasks.len()).filter(|&i| self.is_ready(i)).count()
    }

    /// Drop all bindings and chains (frame reset / reuse). Keeps arena
    /// capacity: a recycled frame's next scope binds allocation-free once
    /// the arenas warmed up.
    pub fn clear(&mut self) {
        self.handles.clear();
        self.tasks.clear();
        self.preds_arena.clear();
        self.holds_arena.clear();
        self.slot_scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u64) -> HandleId {
        HandleId(n)
    }

    fn w(id: u64) -> Access {
        Access::new(h(id), Region::All, AccessMode::Write).with_renaming()
    }

    fn wx(id: u64) -> Access {
        Access::new(h(id), Region::All, AccessMode::Exclusive)
    }

    fn r(id: u64) -> Access {
        Access::new(h(id), Region::All, AccessMode::Read)
    }

    const ON: RenamePolicy = RenamePolicy {
        enabled: true,
        max_live_slots: 8,
    };
    const OFF: RenamePolicy = RenamePolicy {
        enabled: false,
        max_live_slots: 8,
    };

    #[test]
    fn raw_dependency_always_kept() {
        for pol in [ON, OFF] {
            let mut e = DataflowEngine::new();
            e.bind(&[w(1)], &pol);
            e.bind(&[r(1)], &pol);
            assert_eq!(e.preds(0), &[] as &[u32]);
            assert_eq!(e.preds(1), &[0], "RAW edge survives renaming");
        }
    }

    #[test]
    fn renaming_erases_war_waw() {
        let mut e = DataflowEngine::new();
        e.bind(&[w(1)], &ON); // v0 writer
        e.bind(&[r(1)], &ON); // reader of v0
        let b = e.bind(&[w(1)], &ON); // write-only again: renamed
        assert_eq!(b.renames, 1);
        assert!(b.slots[0].renamed);
        assert!(b.slots[0].slot > 0);
        assert_eq!(e.preds(2), &[] as &[u32], "WAR/WAW eliminated");
        // Reader of the renamed version depends only on its writer.
        e.bind(&[r(1)], &ON);
        assert_eq!(e.preds(3), &[2]);
    }

    #[test]
    fn renaming_off_serializes() {
        let mut e = DataflowEngine::new();
        e.bind(&[w(1)], &OFF);
        e.bind(&[r(1)], &OFF);
        let b = e.bind(&[w(1)], &OFF);
        assert_eq!(b.renames, 0);
        assert_eq!(b.slot(0).slot, 0);
        assert!(b.slots.is_empty(), "all-default binding takes the sentinel");
        assert_eq!(e.preds(2), &[0, 1]);
    }

    #[test]
    fn exclusive_never_renames() {
        let mut e = DataflowEngine::new();
        e.bind(&[wx(1)], &ON);
        e.bind(&[r(1)], &ON);
        let b = e.bind(&[wx(1)], &ON);
        assert_eq!(b.renames, 0);
        assert_eq!(e.preds(2), &[0, 1]);
    }

    #[test]
    fn first_write_needs_no_slot() {
        let mut e = DataflowEngine::new();
        let b = e.bind(&[w(1)], &ON);
        assert_eq!(b.renames, 0, "nothing to eliminate on the first version");
        assert_eq!(b.slot(0).slot, 0);
    }

    #[test]
    fn slot_cap_falls_back_to_serializing() {
        let pol = RenamePolicy {
            enabled: true,
            max_live_slots: 1,
        };
        let mut e = DataflowEngine::new();
        e.bind(&[w(1)], &pol); // slot 0
        let b1 = e.bind(&[w(1)], &pol); // renamed into the only extra slot
        assert_eq!(b1.renames, 1);
        let b2 = e.bind(&[w(1)], &pol); // cap reached: serializes
        assert_eq!(b2.renames, 0);
        assert_eq!(e.preds(2), &[1]);
    }

    #[test]
    fn slots_recycled_after_completion() {
        let pol = RenamePolicy {
            enabled: true,
            max_live_slots: 2,
        };
        let mut e = DataflowEngine::new();
        e.bind(&[w(1)], &pol); // slot 0
        let b1 = e.bind(&[w(1)], &pol); // renamed -> slot 1
        let b2 = e.bind(&[w(1)], &pol); // renamed -> slot 2 (supersedes 1)
        assert!(b1.slots[0].renamed && b2.slots[0].renamed);
        let s1 = b1.slots[0].slot;
        // Cap reached and nothing drained yet: the next write serializes.
        let b3 = e.bind(&[w(1)], &pol);
        assert_eq!(b3.renames, 0, "no slot available under the cap");
        // Slot 1 is superseded; once its writer completes it is recycled.
        e.complete(1);
        let b4 = e.bind(&[w(1)], &pol);
        assert_eq!(b4.renames, 1);
        assert_eq!(b4.slots[0].slot, s1, "drained superseded slot recycled");
    }

    #[test]
    fn ready_width_grows_with_renaming() {
        let mk = |pol: &RenamePolicy| {
            let mut e = DataflowEngine::new();
            for _ in 0..6 {
                e.bind(&[w(1)], pol);
                e.bind(&[r(1)], pol);
                e.bind(&[r(1)], pol);
            }
            e.ready_width()
        };
        let on = mk(&ON);
        let off = mk(&OFF);
        assert!(
            on > off,
            "renaming must widen the ready set ({on} vs {off})"
        );
        assert_eq!(off, 1, "serialized chain: only the first writer ready");
    }

    #[test]
    fn keyed_chains_are_independent() {
        let mut e = DataflowEngine::new();
        let p = |i, j, m| Access::new(h(7), Region::key2(i, j), m);
        e.bind(&[p(0, 0, AccessMode::Write)], &ON);
        e.bind(&[p(1, 1, AccessMode::Write)], &ON);
        e.bind(
            &[p(0, 0, AccessMode::Read), p(1, 1, AccessMode::Write)],
            &ON,
        );
        assert_eq!(e.preds(1), &[] as &[u32]);
        assert_eq!(e.preds(2), &[0, 1]);
    }

    #[test]
    fn whole_object_write_absorbs_tiles() {
        let mut e = DataflowEngine::new();
        let p = |i, j, m| Access::new(h(7), Region::key2(i, j), m);
        e.bind(&[p(0, 0, AccessMode::Write)], &ON);
        e.bind(
            &[Access::new(h(7), Region::All, AccessMode::Exclusive)],
            &ON,
        );
        e.bind(&[p(5, 5, AccessMode::Write)], &ON);
        assert_eq!(e.preds(1), &[0]);
        assert_eq!(e.preds(2), &[1], "later tile ordered after the All-write");
    }

    #[test]
    fn cross_shape_accesses_follow_slot_lineage() {
        // A renamed whole-object write moves the handle's data to a fresh
        // slot; a later keyed access must be routed to that slot and
        // ordered after the renamed writer.
        let mut e = DataflowEngine::new();
        e.bind(&[w(1)], &ON);
        e.bind(&[r(1)], &ON);
        let bw = e.bind(&[w(1)], &ON);
        assert!(bw.slots[0].renamed);
        let bk = e.bind(
            &[Access::new(h(1), Region::key2(0, 0), AccessMode::Write)],
            &ON,
        );
        assert_eq!(bk.slots[0].slot, bw.slots[0].slot);
        assert_eq!(e.preds(3), &[2]);
    }

    #[test]
    fn cumulative_writes_commute() {
        let mut e = DataflowEngine::new();
        let c = |id| Access::new(h(id), Region::All, AccessMode::CumulWrite);
        e.bind(&[c(3)], &ON);
        e.bind(&[c(3)], &ON);
        e.bind(&[r(3)], &ON);
        assert_eq!(e.preds(1), &[] as &[u32]);
        assert_eq!(e.preds(2), &[0, 1]);
    }

    #[test]
    fn seeds_chain_state_from_handle_lineage() {
        // A later scope's engine must pick up the slot and sequence the
        // previous scope committed (lineage = (seq << 16) | slot).
        let lineage = (5u64 << 16) | 2;
        let mut e = DataflowEngine::new();
        // Non-renamed first access binds the committed slot, not slot 0.
        let b0 = e.bind(&[wx(1).with_lineage(lineage)], &ON);
        assert_eq!(b0.slots[0].slot, 2);
        // A renamed write continues the committed sequence numbers.
        let b1 = e.bind(&[w(1).with_lineage(lineage)], &ON);
        assert!(b1.slots[0].renamed);
        assert_eq!(b1.slots[0].seq, 6, "seq monotonic across scopes");
        assert_ne!(b1.slots[0].slot, 2, "committed slot never reallocated");
        // Dead prior-scope slots (below the committed one) are recycled.
        assert_eq!(b1.slots[0].slot, 1);
    }

    fn tw(id: u64, i: usize, j: usize) -> Access {
        Access::new(h(id), Region::key2(i, j), AccessMode::Write).with_renaming()
    }

    fn tr(id: u64, i: usize, j: usize) -> Access {
        Access::new(h(id), Region::key2(i, j), AccessMode::Read)
    }

    #[test]
    fn keyed_rename_erases_war_waw() {
        let mut e = DataflowEngine::new();
        e.bind(&[tw(1, 0, 0)], &ON); // first tile version: no rename needed
        e.bind(&[tr(1, 0, 0)], &ON); // reader of it
        let b = e.bind(&[tw(1, 0, 0)], &ON); // write-only again: renamed
        assert_eq!(b.renames, 1);
        assert!(b.slots[0].renamed);
        assert!(b.slots[0].slot > 0);
        assert_eq!(e.preds(2), &[] as &[u32], "tile WAR/WAW eliminated");
        // A later reader of the tile routes to the renamed slot and
        // depends only on its writer.
        let br = e.bind(&[tr(1, 0, 0)], &ON);
        assert_eq!(br.slot(0).slot, b.slots[0].slot);
        assert_eq!(e.preds(3), &[2]);
    }

    #[test]
    fn keyed_renames_keep_tiles_independent() {
        let mut e = DataflowEngine::new();
        e.bind(&[tw(1, 0, 0)], &ON);
        e.bind(&[tw(1, 1, 1)], &ON);
        let b0 = e.bind(&[tw(1, 0, 0)], &ON); // renamed
        let b1 = e.bind(&[tw(1, 1, 1)], &ON); // renamed
        assert!(b0.slots[0].renamed && b1.slots[0].renamed);
        assert_ne!(b0.slots[0].slot, b1.slots[0].slot, "one slot per tile");
        assert_eq!(e.preds(2), &[] as &[u32]);
        assert_eq!(e.preds(3), &[] as &[u32]);
    }

    #[test]
    fn coarse_access_orders_behind_erased_readers() {
        let mut e = DataflowEngine::new();
        e.bind(&[tw(1, 0, 0)], &ON); // 0: writes main's tile region
        e.bind(&[tr(1, 0, 0)], &ON); // 1: reads main's tile region
        let b = e.bind(&[tw(1, 0, 0)], &ON); // 2: renamed (edges to 0,1 erased)
        assert!(b.slots[0].renamed);
        // A whole-object access (a merge point: it rewrites main) must
        // order behind the erased reader/writer, not just the tile head.
        e.bind(&[r(1)], &ON); // 3
        assert_eq!(e.preds(3), &[0, 1, 2]);
    }

    #[test]
    fn key_current_slot_never_recycled() {
        let mut e = DataflowEngine::new();
        e.bind(&[tw(1, 0, 0)], &ON); // 0
        e.bind(&[tr(1, 0, 0)], &ON); // 1
        let b2 = e.bind(&[tw(1, 0, 0)], &ON); // 2: renamed -> s
        let s = b2.slots[0].slot;
        e.complete(0);
        e.complete(1);
        e.complete(2);
        // s is drained but still holds the tile's current data: a reader
        // routes to it, and a same-tile rename must NOT re-receive it
        // (the new writer would share the erased-WAR reader's buffer).
        let b3 = e.bind(&[tr(1, 0, 0)], &ON); // 3
        assert_eq!(b3.slot(0).slot, s);
        e.complete(3);
        let b4 = e.bind(&[tw(1, 0, 0)], &ON); // 4: renamed again
        assert!(b4.slots[0].renamed);
        assert_ne!(b4.slots[0].slot, s);
    }

    #[test]
    fn whole_object_write_resets_key_routing() {
        let mut e = DataflowEngine::new();
        e.bind(&[tw(1, 0, 0)], &ON); // 0
        e.bind(&[tr(1, 0, 0)], &ON); // 1
        e.bind(&[tw(1, 0, 0)], &ON); // 2: renamed
        e.bind(&[wx(1)], &ON); // 3: absorbs tiles and key routing
        let b4 = e.bind(&[tr(1, 0, 0)], &ON); // 4
        assert_eq!(b4.slot(0).slot, 0, "keyed routing reset to main");
        assert_eq!(e.preds(4), &[3]);
    }

    #[test]
    fn tile_lineage_seeds_watermark() {
        // A per-tile renamed handle carries a slot/sequence watermark, not
        // a committed whole-object slot: the logical data stays in main,
        // watermark slots (possibly holding un-merged committed tiles) are
        // neither current nor free, and allocation continues past them.
        let lineage = (7u64 << 16) | 3;
        let a = |m| {
            Access::new(h(1), Region::key2(0, 0), m)
                .with_lineage(lineage)
                .with_tile_slots()
        };
        let mut e = DataflowEngine::new();
        let b0 = e.bind(&[a(AccessMode::Write).with_renaming()], &ON);
        assert_eq!(b0.slot(0).slot, 0, "whole-object data stays in main");
        e.bind(&[a(AccessMode::Read)], &ON);
        let b2 = e.bind(&[a(AccessMode::Write).with_renaming()], &ON);
        assert!(b2.slots[0].renamed);
        assert_eq!(b2.slots[0].slot, 4, "allocates past the watermark");
        assert_eq!(b2.slots[0].seq, 8, "sequence continues past the watermark");
    }

    #[test]
    fn keyed_rename_refused_with_range_chains() {
        let mut e = DataflowEngine::new();
        e.bind(
            &[Access::new(
                h(1),
                Region::Range { start: 0, end: 8 },
                AccessMode::Write,
            )],
            &ON,
        );
        e.bind(&[tw(1, 0, 0)], &ON); // aliases the range conservatively
        let b = e.bind(&[tw(1, 0, 0)], &ON);
        assert_eq!(b.renames, 0, "ranges alias keys: serialize, don't rename");
        assert_eq!(e.preds(2), &[0, 1]);
    }

    #[test]
    fn empty_regions_bind_to_nothing() {
        let mut e = DataflowEngine::new();
        let empty = Access::new(h(1), Region::Range { start: 3, end: 3 }, AccessMode::Write);
        e.bind(&[empty], &ON);
        e.bind(&[w(1)], &ON);
        assert_eq!(e.preds(1), &[] as &[u32]);
    }
}
