//! Shared data handles: the objects data-flow tasks declare accesses on.
//!
//! A [`Shared<T>`] owns one value. Tasks never hold Rust references across
//! suspension points; instead they declare `(handle, region, mode)` triples
//! at spawn time and obtain short-lived references through the task context
//! once the scheduler has guaranteed exclusivity (conflicting tasks are never
//! concurrent, so handing out `&mut T` to the single running writer is
//! sound).
//!
//! Handles created through [`Shared::renameable`] /
//! [`Partitioned::renameable_with`] additionally grow **version slots**
//! (`DESIGN.md` §2): when the data-flow engine *renames* a write-only
//! access, the writing task is routed to a freshly allocated buffer instead
//! of serializing behind earlier readers and writers. Completing the write
//! *commits* the slot — publishes it as the handle's current value unless a
//! newer version committed first — and drained, superseded slots are
//! recycled by the engine. Tasks are pinned to their slot when they are
//! spawned, so concurrent commits can never redirect a running task.
//!
//! [`Reduction<T>`] implements the cumulative-write mode: concurrent tasks
//! fold into per-worker accumulators, merged lazily on the next read/write
//! access (which the data-flow edges order after the whole reduction group).

use crate::access::{fresh_handle_id, Access, AccessMode, HandleId, Region};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Dynamic borrow state: 0 = free, `u32::MAX` = writer, else reader count.
/// A second line of defence under the scheduler's exclusivity guarantee —
/// mis-declared accesses surface as a panic instead of aliasing UB.
const WRITER: u32 = u32::MAX;

/// One buffer of a handle — the original value or a version slot — with its
/// own dynamic borrow word (tasks on different slots must not interfere).
struct Slot<T: ?Sized> {
    borrows: AtomicU32,
    cell: UnsafeCell<T>,
}

impl<T> Slot<T> {
    fn new(value: T) -> Slot<T> {
        Slot {
            borrows: AtomicU32::new(0),
            cell: UnsafeCell::new(value),
        }
    }
}

/// One entry of the version-slot table: the buffer plus the commit
/// sequence number it was last factory-reset for (a renamed writer must
/// see fresh contents exactly once per version, even if it re-borrows, and
/// even when the slot id is recycled from an older version).
struct SlotEntry<T: ?Sized> {
    reset_seq: u64,
    buf: Option<Box<Slot<T>>>,
}

/// Tile-merge callback of a per-tile renamed handle: copies one keyed
/// region from a committed tile buffer back into main —
/// `merge(dst_main, src_slot, key)`.
type TileMerge<T> = Box<dyn Fn(&mut T, &T, u64) + Send + Sync>;

/// Version-slot table of a renameable handle (`DESIGN.md` §2).
struct RenameState<T: ?Sized> {
    /// `(commit_seq << 16) | slot` of the youngest committed write-only
    /// version; quiescent readers ([`Shared::get`], [`Shared::into_inner`])
    /// resolve the handle's logical value here. Slot ids fit 16 bits (the
    /// engine caps them), sequence numbers take the upper 48.
    committed: AtomicU64,
    /// Buffers of slots `>= 1`, indexed by `slot - 1`, grown on demand.
    /// Boxes give the buffers stable addresses; entries are never removed
    /// while the handle is alive (recycled slots are factory-reset by the
    /// next renamed writer).
    slots: Mutex<Vec<SlotEntry<T>>>,
    /// Fresh-buffer factory for renamed writers.
    alloc: Box<dyn Fn() -> Box<Slot<T>> + Send + Sync>,
    /// Per-tile commits (`DESIGN.md` §7): `key -> (commit_seq << 16) | slot`
    /// of the youngest committed version of that keyed region. Only
    /// populated on handles built with
    /// [`Partitioned::renameable_tiles`]; folded back into main by
    /// [`Partitioned::merge_tiles`] (whole merge under this mutex).
    tiles: Mutex<HashMap<u64, u64>>,
    /// `Some` marks a per-tile renamed handle (see [`TileMerge`]).
    merge: Option<TileMerge<T>>,
    /// High-water marks of tile commits (sequence / slot id), reset by
    /// `merge_tiles`. They seed the data-flow engine's per-frame state:
    /// watermark slots may hold un-merged committed tiles, so new frames
    /// allocate and number past them.
    tile_seq_hw: AtomicU64,
    tile_slot_hw: AtomicU32,
}

impl<T> RenameState<T> {
    /// Whole-object renaming state (no per-tile commits).
    fn whole(alloc: Box<dyn Fn() -> Box<Slot<T>> + Send + Sync>) -> Self {
        RenameState {
            committed: AtomicU64::new(0),
            slots: Mutex::new(Vec::new()),
            alloc,
            tiles: Mutex::new(HashMap::new()),
            merge: None,
            tile_seq_hw: AtomicU64::new(0),
            tile_slot_hw: AtomicU32::new(0),
        }
    }
}

struct SharedInner<T: ?Sized> {
    id: HandleId,
    /// NUMA node owning this handle's data (`u32::MAX` = unknown). Set
    /// explicitly ([`Shared::set_home`]) or by first-touch (the node of
    /// the first worker that wrote through the handle); stamped into
    /// access descriptors so `Affinity::Auto` can steer placement.
    home: AtomicU32,
    /// `Some` iff the handle supports renaming.
    rename: Option<RenameState<T>>,
    main: Slot<T>,
}

// Safety: the runtime serialises conflicting accesses; only tasks whose
// declared accesses were granted touch the slot cells, each slot has its own
// borrow word, and at most one task may hold a mutable borrow of a slot at
// a time.
unsafe impl<T: Send + ?Sized> Send for SharedInner<T> {}
unsafe impl<T: Send + ?Sized> Sync for SharedInner<T> {}

impl<T: ?Sized> SharedInner<T> {
    /// Slot currently holding the handle's committed (logical) value.
    fn committed_slot(&self) -> u32 {
        match &self.rename {
            None => 0,
            Some(rs) => (rs.committed.load(Ordering::Acquire) & 0xFFFF) as u32,
        }
    }

    /// Borrow word and value pointer of `slot`, creating the buffer on
    /// demand. Slot 0 is the original value.
    ///
    /// `fresh_for` carries a renamed writer's commit sequence number: the
    /// buffer is then replaced with factory-fresh contents once per
    /// version — a renamed writer never observes data from a recycled
    /// slot's previous life, and its own re-borrows keep its writes.
    fn slot_raw(&self, slot: u32, fresh_for: Option<u64>) -> (*const AtomicU32, *mut T) {
        if slot == 0 {
            return (&self.main.borrows as *const _, self.main.cell.get());
        }
        let rs = self.rename.as_ref().expect(
            "xkaapi: version-slot binding on a handle without renaming support \
             (Access::with_renaming on a plain handle?)",
        );
        let mut slots = rs.slots.lock();
        let i = (slot - 1) as usize;
        if slots.len() <= i {
            slots.resize_with(i + 1, || SlotEntry {
                reset_seq: 0,
                buf: None,
            });
        }
        let entry = &mut slots[i];
        if let Some(seq) = fresh_for {
            if entry.reset_seq != seq {
                // No live borrow can exist here: a renamed slot is either
                // brand new or recycled after every bound task completed.
                entry.reset_seq = seq;
                entry.buf = Some((rs.alloc)());
            }
        }
        let b = entry.buf.get_or_insert_with(|| (rs.alloc)());
        (&b.borrows as *const _, b.cell.get())
    }

    /// Committed-version snapshot stamped into access descriptors (zero
    /// for plain handles).
    fn lineage(&self) -> u64 {
        match &self.rename {
            None => 0,
            Some(rs) => rs.committed.load(Ordering::Acquire),
        }
    }

    /// Home-node snapshot stamped into access descriptors.
    #[inline]
    fn home_u32(&self) -> u32 {
        self.home.load(Ordering::Relaxed)
    }

    /// First-touch: record `node` as the handle's home unless one is
    /// already known (one relaxed CAS, won exactly once per handle).
    #[inline]
    fn note_first_touch(&self, node: usize) {
        if self.home.load(Ordering::Relaxed) == u32::MAX {
            let _ = self.home.compare_exchange(
                u32::MAX,
                node as u32,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }
}

/// Commit-on-completion guard of a renamed write: dropping it publishes
/// `(seq, slot)` as the handle's current value unless a newer write-only
/// version already committed (sequence numbers are program-order).
pub(crate) struct CommitOnDrop<'a> {
    cell: &'a AtomicU64,
    seq: u64,
    slot: u32,
}

impl Drop for CommitOnDrop<'_> {
    fn drop(&mut self) {
        let packed = (self.seq << 16) | self.slot as u64;
        let mut cur = self.cell.load(Ordering::Relaxed);
        while (cur >> 16) < self.seq {
            match self
                .cell
                .compare_exchange_weak(cur, packed, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }
}

/// A runtime-managed shared value that data-flow tasks access by declaration.
///
/// Cloning a `Shared<T>` clones the *handle* (an `Arc`), not the value.
///
/// ```
/// use xkaapi_core::{Runtime, AccessMode};
/// let rt = Runtime::new(2);
/// let h = xkaapi_core::Shared::new(0u64);
/// rt.scope(|ctx| {
///     let h2 = h.clone();
///     ctx.spawn([h.write()], move |t| *t.write(&h2) = 42);
///     let h3 = h.clone();
///     ctx.spawn([h.read()], move |t| assert_eq!(*t.read(&h3), 42));
/// });
/// assert_eq!(h.into_inner(), 42);
/// ```
pub struct Shared<T: ?Sized> {
    inner: Arc<SharedInner<T>>,
}

impl<T: ?Sized> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Shared<T> {
    /// Wrap a value into a fresh handle (no renaming support; write-only
    /// accesses serialize like exclusive ones).
    pub fn new(value: T) -> Self {
        Shared {
            inner: Arc::new(SharedInner {
                id: fresh_handle_id(),
                home: AtomicU32::new(u32::MAX),
                rename: None,
                main: Slot::new(value),
            }),
        }
    }

    /// Recover the value. Panics if other clones of the handle still exist.
    pub fn into_inner(self) -> T {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                let slot = match &inner.rename {
                    None => 0,
                    Some(rs) => (rs.committed.load(Ordering::Acquire) & 0xFFFF) as u32,
                };
                if slot == 0 {
                    inner.main.cell.into_inner()
                } else {
                    let rs = inner.rename.expect("slot > 0 implies renaming support");
                    let mut slots = rs.slots.into_inner();
                    let b = slots[(slot - 1) as usize]
                        .buf
                        .take()
                        .expect("committed version slot has a buffer");
                    b.cell.into_inner()
                }
            }
            Err(_) => panic!("Shared::into_inner: handle still has outstanding clones"),
        }
    }

    /// Read the value from outside any task. The caller asserts no task that
    /// writes this handle is in flight (e.g. after the owning scope ended).
    pub fn get(&self) -> &T {
        let slot = self.inner.committed_slot();
        // Safety: caller contract — quiescent handle.
        unsafe { &*self.inner.slot_raw(slot, None).1 }
    }

    /// Mutate the value from outside any task; same quiescence contract as
    /// [`Shared::get`], plus uniqueness of the borrow is the caller's duty.
    pub fn get_mut(&mut self) -> &mut T {
        let slot = self.inner.committed_slot();
        // Safety: `&mut self` gives uniqueness of this handle clone; the
        // caller asserts no task is in flight.
        unsafe { &mut *self.inner.slot_raw(slot, None).1 }
    }
}

impl<T: Send + Default + 'static> Shared<T> {
    /// Wrap a value into a handle that supports **renaming**: write-only
    /// accesses may be granted a fresh `T::default()` buffer instead of
    /// serializing behind earlier readers/writers (`DESIGN.md` §2).
    ///
    /// A renamed writer receives the fresh buffer, *not* the previous
    /// value, so `T::default()` must be interchangeable with it under the
    /// task's write pattern. For containers that is usually wrong
    /// (`Vec::default()` is empty — an `iter_mut` overwrite would touch
    /// nothing): use [`Shared::renameable_with`] with a factory producing
    /// same-shape buffers (e.g. `|| vec![0; n]`).
    ///
    /// ```
    /// use xkaapi_core::{Runtime, Shared};
    /// let rt = Runtime::new(2);
    /// let h = Shared::renameable(0u64);
    /// rt.scope(|ctx| {
    ///     for i in 0..4u64 {
    ///         let hw = h.clone();
    ///         // Repeated whole-object overwrites: WAR/WAW edges eliminated.
    ///         ctx.spawn([h.write()], move |t| *t.write(&hw) = i);
    ///     }
    /// });
    /// assert_eq!(h.into_inner(), 3);
    /// ```
    pub fn renameable(value: T) -> Self {
        Self::renameable_with(value, T::default)
    }
}

impl<T: Send + 'static> Shared<T> {
    /// Like [`Shared::renameable`], with an explicit fresh-buffer factory
    /// for types without a (cheap) `Default`.
    pub fn renameable_with(value: T, fresh: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Shared {
            inner: Arc::new(SharedInner {
                id: fresh_handle_id(),
                home: AtomicU32::new(u32::MAX),
                rename: Some(RenameState::whole(Box::new(move || {
                    Box::new(Slot::new(fresh()))
                }))),
                main: Slot::new(value),
            }),
        }
    }
}

impl<T: ?Sized> Shared<T> {
    /// This handle's identifier.
    #[inline]
    pub fn id(&self) -> HandleId {
        self.inner.id
    }

    /// Does this handle support write-only renaming?
    #[inline]
    pub fn is_renameable(&self) -> bool {
        self.inner.rename.is_some()
    }

    /// NUMA node owning this handle's data, if known (explicit
    /// [`Shared::set_home`] or first-touch by a writing task).
    #[inline]
    pub fn home_node(&self) -> Option<usize> {
        let h = self.inner.home_u32();
        (h != u32::MAX).then_some(h as usize)
    }

    /// Declare which NUMA node owns this handle's data. Subsequent access
    /// declarations carry the stamp, so tasks and root jobs built with
    /// [`Affinity::Auto`](crate::Affinity::Auto) are steered toward this
    /// node's workers.
    #[inline]
    pub fn set_home(&self, node: usize) {
        self.inner.home.store(node as u32, Ordering::Relaxed);
    }

    /// First-touch home recording (context layer: called on task writes).
    #[inline]
    pub(crate) fn note_first_touch(&self, node: usize) {
        self.inner.note_first_touch(node);
    }

    /// Declare a whole-object read access.
    #[inline]
    pub fn read(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::Read)
            .with_lineage(self.inner.lineage())
            .with_home(self.inner.home_u32())
    }

    /// Declare a whole-object write-only access. On a renameable handle the
    /// engine may rename it (fresh version slot, no WAR/WAW edges); on a
    /// plain handle it serializes like [`Shared::exclusive`].
    #[inline]
    pub fn write(&self) -> Access {
        let a = Access::new(self.id(), Region::All, AccessMode::Write)
            .with_lineage(self.inner.lineage())
            .with_home(self.inner.home_u32());
        if self.is_renameable() {
            a.with_renaming()
        } else {
            a
        }
    }

    /// Declare a whole-object exclusive read-write access.
    #[inline]
    pub fn exclusive(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::Exclusive)
            .with_lineage(self.inner.lineage())
            .with_home(self.inner.home_u32())
    }

    /// Declare a read access to a sub-region.
    #[inline]
    pub fn read_region(&self, region: Region) -> Access {
        Access::new(self.id(), region, AccessMode::Read)
            .with_lineage(self.inner.lineage())
            .with_home(self.inner.home_u32())
    }

    /// Declare a write access to a sub-region (partial writes are never
    /// renamed — the untouched part must come from the previous version).
    #[inline]
    pub fn write_region(&self, region: Region) -> Access {
        Access::new(self.id(), region, AccessMode::Write)
            .with_lineage(self.inner.lineage())
            .with_home(self.inner.home_u32())
    }

    /// Slot currently holding the committed value (fallback routing for
    /// accesses without a task binding).
    #[inline]
    pub(crate) fn committed_slot(&self) -> u32 {
        self.inner.committed_slot()
    }

    /// Acquire a shared borrow of slot 0 (task context, after the scheduler
    /// granted a read). Panics on a live writer — a mis-declared access.
    pub(crate) fn borrow(&self) -> Ref<'_, T> {
        self.borrow_slot(0)
    }

    /// Acquire a shared borrow of version slot `slot`.
    pub(crate) fn borrow_slot(&self, slot: u32) -> Ref<'_, T> {
        let (b_ptr, val) = self.inner.slot_raw(slot, None);
        // Safety: the slot lives as long as `self.inner` (never removed).
        let b = unsafe { &*b_ptr };
        loop {
            let cur = b.load(Ordering::Acquire);
            assert_ne!(
                cur, WRITER,
                "xkaapi: read access while a writer is live (mis-declared task accesses?)"
            );
            if b.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        // Safety: reader count held; writers excluded.
        Ref {
            val: unsafe { &*val },
            borrows: b,
        }
    }

    /// Acquire an exclusive borrow of slot 0 (task context, after the
    /// scheduler granted a write). Panics on any live borrow.
    pub(crate) fn borrow_mut(&self) -> RefMut<'_, T> {
        self.borrow_slot_mut(0, None)
    }

    /// Acquire an exclusive borrow of version slot `slot`. For a renamed
    /// write, `commit_seq` carries the version's sequence number: dropping
    /// the borrow commits the slot as the handle's current value.
    pub(crate) fn borrow_slot_mut(&self, slot: u32, commit_seq: Option<u64>) -> RefMut<'_, T> {
        let (b_ptr, val) = self.inner.slot_raw(slot, commit_seq);
        // Safety: the slot lives as long as `self.inner`.
        let b = unsafe { &*b_ptr };
        assert!(
            b.compare_exchange(0, WRITER, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            "xkaapi: write access while other borrows are live (mis-declared task accesses?)"
        );
        let commit = commit_seq.map(|seq| CommitOnDrop {
            cell: &self
                .inner
                .rename
                .as_ref()
                .expect("commit sequence on a non-renameable handle")
                .committed,
            seq,
            slot,
        });
        // Safety: exclusive flag held.
        RefMut {
            val: unsafe { &mut *val },
            borrows: b,
            _commit: commit,
        }
    }
}

/// Shared borrow of a [`Shared<T>`] value, granted to a running task.
pub struct Ref<'a, T: ?Sized> {
    val: &'a T,
    borrows: &'a AtomicU32,
}

impl<T: ?Sized> std::ops::Deref for Ref<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.val
    }
}

impl<T: ?Sized> Drop for Ref<'_, T> {
    fn drop(&mut self) {
        self.borrows.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exclusive borrow of a [`Shared<T>`] value, granted to a running task.
///
/// For a renamed write-only access, dropping the borrow also commits the
/// version slot (publishes it as the handle's current value).
pub struct RefMut<'a, T: ?Sized> {
    val: &'a mut T,
    borrows: &'a AtomicU32,
    _commit: Option<CommitOnDrop<'a>>,
}

impl<T: ?Sized> std::ops::Deref for RefMut<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.val
    }
}

impl<T: ?Sized> std::ops::DerefMut for RefMut<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.val
    }
}

impl<T: ?Sized> Drop for RefMut<'_, T> {
    fn drop(&mut self) {
        self.borrows.store(0, Ordering::Release);
        // `_commit` (if any) drops after this body: the commit publishes
        // the slot only once the borrow is released.
    }
}

/// Commit-on-completion guard of a renamed *tile* write: dropping it
/// publishes `(seq, slot)` as tile `key`'s current version unless a newer
/// version of the same tile committed first, and advances the handle's
/// tile watermarks.
pub(crate) struct KeyCommitOnDrop<'a, T: ?Sized> {
    rs: &'a RenameState<T>,
    key: u64,
    slot: u32,
    seq: u64,
}

impl<T: ?Sized> Drop for KeyCommitOnDrop<'_, T> {
    fn drop(&mut self) {
        let packed = (self.seq << 16) | self.slot as u64;
        {
            let mut tiles = self.rs.tiles.lock();
            let e = tiles.entry(self.key).or_insert(0);
            if (*e >> 16) < self.seq {
                *e = packed;
            }
        }
        // Relaxed is enough: readers of the watermarks (access stamping in
        // later scopes) are synchronized by the scope join.
        self.rs.tile_seq_hw.fetch_max(self.seq, Ordering::Relaxed);
        self.rs.tile_slot_hw.fetch_max(self.slot, Ordering::Relaxed);
    }
}

/// Raw, slot-routed view of a [`Partitioned<T>`] granted to a running task
/// by [`Ctx::view_of`](crate::Ctx::view_of). Dropping the view commits the
/// version slot when the access was a renamed write (whole-object or tile).
pub struct PartView<'a, T: ?Sized> {
    ptr: *mut T,
    _commit: Option<CommitOnDrop<'a>>,
    _kcommit: Option<KeyCommitOnDrop<'a, T>>,
}

impl<T: ?Sized> PartView<'_, T> {
    /// The buffer this task's declared access is bound to.
    ///
    /// # Safety of use
    /// Same contract as [`Partitioned::view`]: only touch the part of the
    /// value corresponding to a region the task declared.
    #[inline]
    pub fn ptr(&self) -> *mut T {
        self.ptr
    }
}

/// A shared value accessed through *disjoint regions* by concurrent tasks.
///
/// Unlike [`Shared<T>`], several tasks may run concurrently on a
/// `Partitioned<T>` as long as their declared regions do not overlap: the
/// data-flow scheduler orders the ones that do. Region-typed projections are
/// the user's responsibility (`view` hands out raw mutable access), which is
/// why construction is explicit — it is the building block the dense tiled
/// and sparse skyline matrices use.
pub struct Partitioned<T> {
    inner: Arc<SharedInner<T>>,
}

impl<T> Clone for Partitioned<T> {
    fn clone(&self) -> Self {
        Partitioned {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static> Partitioned<T> {
    /// Wrap a value whose whole-object write-only accesses
    /// ([`Partitioned::write_all`]) may be renamed; `fresh` allocates the
    /// version buffers (`DESIGN.md` §2). Renamed tasks must resolve their
    /// buffer through [`Ctx::view_of`](crate::Ctx::view_of).
    pub fn renameable_with(value: T, fresh: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Partitioned {
            inner: Arc::new(SharedInner {
                id: fresh_handle_id(),
                home: AtomicU32::new(u32::MAX),
                rename: Some(RenameState::whole(Box::new(move || {
                    Box::new(Slot::new(fresh()))
                }))),
                main: Slot::new(value),
            }),
        }
    }

    /// Wrap a value whose **keyed tile writes** may be renamed
    /// (`DESIGN.md` §7): a write-only [`Region::Key`] access may be granted
    /// a fresh buffer from `fresh` instead of serializing behind earlier
    /// readers and writers of that tile — per-tile WAR/WAW elimination, the
    /// building block tiled kernels (and the recorder) use.
    ///
    /// Completed tile writes *commit* `key -> slot`; the handle's logical
    /// value is main with every committed tile folded in, materialized
    /// lazily by whole-object accesses, [`Partitioned::get`] and
    /// [`Partitioned::into_inner`] through `merge`:
    /// `merge(main, slot_buffer, key)` must copy exactly the keyed region
    /// named by `key` from the slot buffer into main.
    ///
    /// Tasks resolve their tile buffers through
    /// [`Ctx::view_of`](crate::Ctx::view_of) /
    /// [`Ctx::view_of_key`](crate::Ctx::view_of_key). Restrictions:
    /// [`Region::Range`] accesses on such a handle serialize conservatively
    /// and disable tile renaming while present, and whole-object write
    /// accesses are never renamed (main stays authoritative).
    pub fn renameable_tiles(
        value: T,
        fresh: impl Fn() -> T + Send + Sync + 'static,
        merge: impl Fn(&mut T, &T, u64) + Send + Sync + 'static,
    ) -> Self {
        let mut rs = RenameState::whole(Box::new(move || Box::new(Slot::new(fresh()))));
        rs.merge = Some(Box::new(merge));
        Partitioned {
            inner: Arc::new(SharedInner {
                id: fresh_handle_id(),
                home: AtomicU32::new(u32::MAX),
                rename: Some(rs),
                main: Slot::new(value),
            }),
        }
    }
}

impl<T: Send> Partitioned<T> {
    /// Wrap a value to be accessed through disjoint regions.
    pub fn new(value: T) -> Self {
        Partitioned {
            inner: Arc::new(SharedInner {
                id: fresh_handle_id(),
                home: AtomicU32::new(u32::MAX),
                rename: None,
                main: Slot::new(value),
            }),
        }
    }

    /// This handle's identifier.
    #[inline]
    pub fn id(&self) -> HandleId {
        self.inner.id
    }

    /// Does this handle support write-only renaming?
    #[inline]
    pub fn is_renameable(&self) -> bool {
        self.inner.rename.is_some()
    }

    /// Does this handle rename **per tile** (built with
    /// [`Partitioned::renameable_tiles`])?
    #[inline]
    pub fn is_tile_renameable(&self) -> bool {
        self.tile_rename().is_some()
    }

    /// The rename state iff this is a per-tile renamed handle.
    #[inline]
    fn tile_rename(&self) -> Option<&RenameState<T>> {
        self.inner.rename.as_ref().filter(|rs| rs.merge.is_some())
    }

    /// NUMA node owning this handle's data, if known.
    #[inline]
    pub fn home_node(&self) -> Option<usize> {
        let h = self.inner.home_u32();
        (h != u32::MAX).then_some(h as usize)
    }

    /// Declare which NUMA node owns this handle's data (see
    /// [`Shared::set_home`]).
    #[inline]
    pub fn set_home(&self, node: usize) {
        self.inner.home.store(node as u32, Ordering::Relaxed);
    }

    /// First-touch home recording (context layer).
    #[inline]
    pub(crate) fn note_first_touch(&self, node: usize) {
        self.inner.note_first_touch(node);
    }

    /// Declare an access to `region` with `mode`.
    ///
    /// On a per-tile renamed handle ([`Partitioned::renameable_tiles`]),
    /// write-only [`Region::Key`] accesses carry the renaming capability
    /// and every access carries the handle's tile-slot watermark so the
    /// data-flow engine numbers new versions past committed, un-merged
    /// tiles.
    #[inline]
    pub fn access(&self, region: Region, mode: AccessMode) -> Access {
        if let Some(rs) = self.tile_rename() {
            let lineage = (rs.tile_seq_hw.load(Ordering::Relaxed) << 16)
                | rs.tile_slot_hw.load(Ordering::Relaxed) as u64;
            let a = Access::new(self.id(), region, mode)
                .with_lineage(lineage)
                .with_tile_slots()
                .with_home(self.inner.home_u32());
            return if mode == AccessMode::Write && matches!(region, Region::Key(_)) {
                a.with_renaming()
            } else {
                a
            };
        }
        Access::new(self.id(), region, mode)
            .with_lineage(self.inner.lineage())
            .with_home(self.inner.home_u32())
    }

    /// Declare a whole-object write-only access (renameable on handles
    /// built with [`Partitioned::renameable_with`]; on per-tile handles it
    /// serializes — main stays authoritative).
    #[inline]
    pub fn write_all(&self) -> Access {
        if self.is_tile_renameable() {
            return self.access(Region::All, AccessMode::Write);
        }
        let a = Access::new(self.id(), Region::All, AccessMode::Write)
            .with_lineage(self.inner.lineage())
            .with_home(self.inner.home_u32());
        if self.is_renameable() {
            a.with_renaming()
        } else {
            a
        }
    }

    /// Raw access to the underlying value (slot 0 — the original buffer).
    ///
    /// On a renameable handle a task must use
    /// [`Ctx::view_of`](crate::Ctx::view_of) instead, which resolves the
    /// version slot its access was bound to.
    ///
    /// # Safety
    /// The caller must only touch the part of the value corresponding to a
    /// region its task declared; the scheduler guarantees tasks with
    /// overlapping regions are not concurrent, nothing guards disjoint ones.
    #[inline]
    pub unsafe fn view(&self) -> *mut T {
        self.inner.main.cell.get()
    }

    /// Slot-routed view with an optional commit guard (context layer).
    pub(crate) fn part_view(&self, slot: u32, commit_seq: Option<u64>) -> PartView<'_, T> {
        let (_, ptr) = self.inner.slot_raw(slot, commit_seq);
        let commit = commit_seq.map(|seq| CommitOnDrop {
            cell: &self
                .inner
                .rename
                .as_ref()
                .expect("commit sequence on a non-renameable handle")
                .committed,
            seq,
            slot,
        });
        PartView {
            ptr,
            _commit: commit,
            _kcommit: None,
        }
    }

    /// Tile-routed view with a per-tile commit guard (context layer): the
    /// buffer of version `(slot, seq)` of tile `key`. Tile buffers are
    /// **never factory-reset** — a recycled slot may hold other tiles'
    /// committed data, and the write-only contract covers only the
    /// declared tile's region.
    pub(crate) fn part_view_key(&self, slot: u32, seq: u64, key: u64) -> PartView<'_, T> {
        let (_, ptr) = self.inner.slot_raw(slot, None);
        let rs = self
            .inner
            .rename
            .as_ref()
            .expect("tile commit on a handle without renaming support");
        PartView {
            ptr,
            _commit: None,
            _kcommit: Some(KeyCommitOnDrop { rs, key, slot, seq }),
        }
    }

    /// Slot holding tile `key`'s committed data, if a renamed tile write
    /// committed one that has not been merged back into main yet (fallback
    /// routing for default-bound tile accesses, possibly across scopes).
    pub(crate) fn tile_slot_of(&self, key: u64) -> Option<u32> {
        let rs = self.inner.rename.as_ref()?;
        rs.tiles.lock().get(&key).map(|&p| (p & 0xFFFF) as u32)
    }

    /// Fold every committed tile slot back into main and clear the tile
    /// commits (no-op on handles without per-tile renaming).
    ///
    /// Sound only when the caller is ordered after every tile writer — a
    /// granted whole-object access (the data-flow engine keeps those edges,
    /// see `renamed_away` in `dataflow.rs`) or quiescence
    /// ([`Partitioned::get`] / [`Partitioned::into_inner`]). The whole
    /// merge runs under the tiles mutex: a concurrent second caller blocks,
    /// then observes the emptied map with main fully merged.
    pub(crate) fn merge_tiles(&self) {
        let Some(rs) = self.inner.rename.as_ref() else {
            return;
        };
        let Some(merge) = rs.merge.as_ref() else {
            return;
        };
        let mut tiles = rs.tiles.lock();
        if tiles.is_empty() {
            return;
        }
        let main = self.inner.main.cell.get();
        {
            let slots = rs.slots.lock();
            for (&key, &packed) in tiles.iter() {
                let slot = (packed & 0xFFFF) as u32;
                if slot == 0 {
                    continue;
                }
                let Some(buf) = slots.get((slot - 1) as usize).and_then(|e| e.buf.as_ref()) else {
                    continue;
                };
                // Safety: ordered after every tile writer (caller
                // contract), and distinct keys name disjoint regions.
                unsafe { merge(&mut *main, &*buf.cell.get(), key) };
            }
        }
        tiles.clear();
        // Main is authoritative again: later scopes may number and
        // allocate tile versions from scratch.
        rs.tile_seq_hw.store(0, Ordering::Relaxed);
        rs.tile_slot_hw.store(0, Ordering::Relaxed);
    }

    /// Slot currently holding the committed value.
    #[inline]
    pub(crate) fn committed_slot(&self) -> u32 {
        self.inner.committed_slot()
    }

    /// Recover the value. Panics if other clones of the handle still exist.
    pub fn into_inner(self) -> T {
        self.merge_tiles();
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                let slot = match &inner.rename {
                    None => 0,
                    Some(rs) => (rs.committed.load(Ordering::Acquire) & 0xFFFF) as u32,
                };
                if slot == 0 {
                    inner.main.cell.into_inner()
                } else {
                    let rs = inner.rename.expect("slot > 0 implies renaming support");
                    let mut slots = rs.slots.into_inner();
                    let b = slots[(slot - 1) as usize]
                        .buf
                        .take()
                        .expect("committed version slot has a buffer");
                    b.cell.into_inner()
                }
            }
            Err(_) => panic!("Partitioned::into_inner: handle still has outstanding clones"),
        }
    }

    /// Read-only borrow from outside any task (quiescence contract). On a
    /// per-tile renamed handle this first folds committed tiles into main.
    pub fn get(&self) -> &T {
        self.merge_tiles();
        let slot = self.inner.committed_slot();
        unsafe { &*self.inner.slot_raw(slot, None).1 }
    }
}

type CombineFn<T> = dyn Fn(&mut T, T) + Send + Sync;
type IdentityFn<T> = dyn Fn() -> T + Send + Sync;

struct ReductionInner<T> {
    id: HandleId,
    main: UnsafeCell<T>,
    /// One lazily-initialised accumulator per worker, cache-padded to avoid
    /// false sharing between concurrently folding workers.
    slots: Box<[crossbeam_utils::CachePadded<UnsafeCell<Option<T>>>]>,
    dirty: AtomicBool,
    identity: Box<IdentityFn<T>>,
    combine: Box<CombineFn<T>>,
}

unsafe impl<T: Send> Send for ReductionInner<T> {}
unsafe impl<T: Send> Sync for ReductionInner<T> {}

/// A reduction variable for the cumulative-write access mode.
///
/// Tasks declaring [`Reduction::cumul`] run concurrently, each folding into a
/// per-worker accumulator obtained from the task context. The next task that
/// declares a read or write access is ordered after the whole group by the
/// data-flow engine, and the merge of the accumulators happens then.
pub struct Reduction<T> {
    inner: Arc<ReductionInner<T>>,
}

impl<T> Clone for Reduction<T> {
    fn clone(&self) -> Self {
        Reduction {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> Reduction<T> {
    /// Create a reduction with `nworkers` accumulator slots.
    ///
    /// `identity` produces the neutral element, `combine` folds a slot into
    /// the main value; both must make `combine` associative for the result
    /// to be deterministic up to floating-point reassociation.
    pub fn with_slots(
        initial: T,
        nworkers: usize,
        identity: impl Fn() -> T + Send + Sync + 'static,
        combine: impl Fn(&mut T, T) + Send + Sync + 'static,
    ) -> Self {
        let slots = (0..nworkers)
            .map(|_| crossbeam_utils::CachePadded::new(UnsafeCell::new(None)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Reduction {
            inner: Arc::new(ReductionInner {
                id: fresh_handle_id(),
                main: UnsafeCell::new(initial),
                slots,
                dirty: AtomicBool::new(false),
                identity: Box::new(identity),
                combine: Box::new(combine),
            }),
        }
    }

    /// Handle identifier (shared by all access declarations on this value).
    #[inline]
    pub fn id(&self) -> HandleId {
        self.inner.id
    }

    /// Declare a cumulative-write access (commutes with other `cumul`s).
    #[inline]
    pub fn cumul(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::CumulWrite)
    }

    /// Declare a read access (ordered after any pending cumulative writes).
    #[inline]
    pub fn read(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::Read)
    }

    /// Declare an exclusive access.
    #[inline]
    pub fn exclusive(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::Exclusive)
    }

    /// Per-worker accumulator for a task granted `cumul` access.
    ///
    /// # Safety (internal)
    /// Called by the task context with the executing worker's index; two
    /// tasks on the same worker are never concurrent so the slot borrow is
    /// unique.
    #[allow(clippy::mut_from_ref)] // uniqueness per worker: see Safety above
    pub(crate) fn slot_for(&self, worker: usize) -> &mut T {
        self.inner.dirty.store(true, Ordering::Release);
        let slot = unsafe { &mut *self.inner.slots[worker].get() };
        slot.get_or_insert_with(|| (self.inner.identity)())
    }

    /// Merge pending per-worker accumulators into the main value.
    ///
    /// Sound only once the data-flow engine has ordered the caller after the
    /// cumulative-write group (i.e. from a task with read/write access, or
    /// outside any scope).
    pub(crate) fn merge_pending(&self) {
        if !self.inner.dirty.swap(false, Ordering::AcqRel) {
            return;
        }
        let main = unsafe { &mut *self.inner.main.get() };
        for slot in self.inner.slots.iter() {
            let slot = unsafe { &mut *slot.get() };
            if let Some(v) = slot.take() {
                (self.inner.combine)(main, v);
            }
        }
    }

    /// Merged value, viewed from outside any task (quiescence contract).
    pub fn get(&self) -> &T {
        self.merge_pending();
        unsafe { &*self.inner.main.get() }
    }

    /// Pointer to the main value, for granted read/write task accesses.
    pub(crate) fn data_ptr(&self) -> *mut T {
        self.inner.main.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_roundtrip() {
        let h = Shared::new(vec![1, 2, 3]);
        assert_eq!(h.get().len(), 3);
        let h2 = h.clone();
        assert_eq!(h.id(), h2.id());
        drop(h2);
        assert_eq!(h.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "outstanding clones")]
    fn shared_into_inner_with_clones_panics() {
        let h = Shared::new(5);
        let _h2 = h.clone();
        let _ = h.into_inner();
    }

    #[test]
    fn distinct_handles_distinct_ids() {
        let a = Shared::new(0);
        let b = Shared::new(0);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn access_constructors() {
        let h = Shared::new(0u8);
        assert_eq!(h.read().mode, AccessMode::Read);
        assert_eq!(h.write().mode, AccessMode::Write);
        assert_eq!(h.exclusive().mode, AccessMode::Exclusive);
        assert!(h.read().conflicts_with(&h.write()));
        assert!(!h.write().can_rename(), "plain handle: no renaming");
    }

    #[test]
    fn renameable_write_access_carries_capability() {
        let h = Shared::renameable(0u64);
        assert!(h.is_renameable());
        assert!(h.write().can_rename());
        assert!(!h.read().can_rename());
        assert!(!h.exclusive().can_rename());
    }

    #[test]
    fn version_slots_commit_in_sequence_order() {
        let h = Shared::renameable(0u64);
        // Simulate two renamed writers completing out of order.
        {
            let mut w2 = h.borrow_slot_mut(2, Some(2));
            *w2 = 22;
        } // commits (seq 2, slot 2)
        {
            let mut w1 = h.borrow_slot_mut(1, Some(1));
            *w1 = 11;
        } // older version: must NOT take over
        assert_eq!(*h.get(), 22);
        assert_eq!(h.into_inner(), 22);
    }

    #[test]
    fn slots_have_independent_borrow_words() {
        let h = Shared::renameable(0u32);
        // Reader on slot 0 concurrent with a renamed writer on slot 1.
        let r = h.borrow_slot(0);
        let mut w = h.borrow_slot_mut(1, Some(1));
        *w = 5;
        assert_eq!(*r, 0);
        drop(w);
        drop(r);
        assert_eq!(*h.get(), 5);
    }

    #[test]
    fn renameable_with_custom_factory() {
        let h = Shared::renameable_with(vec![1u8, 2], || Vec::with_capacity(8));
        {
            let mut w = h.borrow_slot_mut(1, Some(1));
            w.push(9);
        }
        assert_eq!(*h.get(), vec![9]);
    }

    #[test]
    fn recycled_slot_is_factory_fresh_per_version() {
        let h = Shared::renameable_with(vec![0u8; 0], Vec::new);
        {
            let mut w = h.borrow_slot_mut(1, Some(1));
            w.push(9);
            drop(w);
            // Same version re-borrows: keeps its own writes.
            let mut w = h.borrow_slot_mut(1, Some(1));
            assert_eq!(*w, vec![9]);
            w.push(10);
        }
        // The slot id is recycled for a newer version: the old contents
        // must not leak into the fresh buffer.
        {
            let mut w = h.borrow_slot_mut(1, Some(3));
            assert!(w.is_empty(), "recycled slot must be factory-fresh");
            w.push(7);
        }
        assert_eq!(*h.get(), vec![7]);
    }

    #[test]
    fn reduction_merges_slots() {
        let red = Reduction::with_slots(0u64, 4, || 0u64, |a, b| *a += b);
        *red.slot_for(0) += 5;
        *red.slot_for(2) += 7;
        assert_eq!(*red.get(), 12);
        // idempotent once merged
        assert_eq!(*red.get(), 12);
        *red.slot_for(1) += 1;
        assert_eq!(*red.get(), 13);
    }

    #[test]
    fn partitioned_region_accesses() {
        let p = Partitioned::new(vec![0f64; 16]);
        let a = p.access(Region::key2(0, 0), AccessMode::Write);
        let b = p.access(Region::key2(0, 1), AccessMode::Write);
        assert!(!a.conflicts_with(&b));
        let c = p.access(Region::key2(0, 0), AccessMode::Read);
        assert!(a.conflicts_with(&c));
        assert_eq!(p.into_inner().len(), 16);
    }

    #[test]
    fn tiled_renaming_commits_and_merges() {
        let p = Partitioned::renameable_tiles(
            vec![0u8; 4],
            || vec![0u8; 4],
            |dst: &mut Vec<u8>, src: &Vec<u8>, key| dst[key as usize] = src[key as usize],
        );
        assert!(p.is_tile_renameable());
        assert!(p.access(Region::Key(1), AccessMode::Write).can_rename());
        assert!(!p.access(Region::Key(1), AccessMode::Read).can_rename());
        assert!(!p.write_all().can_rename(), "main stays authoritative");
        {
            let v = p.part_view_key(1, 1, 1);
            unsafe { (&mut *v.ptr())[1] = 7 };
        } // commit tile 1 -> slot 1 on drop
        {
            let v = p.part_view_key(2, 2, 3);
            unsafe { (&mut *v.ptr())[3] = 9 };
        }
        assert_eq!(p.tile_slot_of(1), Some(1));
        assert_eq!(p.tile_slot_of(3), Some(2));
        {
            let g = p.get(); // folds committed tiles into main
            assert_eq!(g[1], 7);
            assert_eq!(g[3], 9);
            assert_eq!(g[0], 0);
        }
        assert_eq!(p.tile_slot_of(1), None, "merge clears the tile commits");
        // Watermarks reset: new accesses seed the engine from scratch.
        assert_eq!(p.access(Region::Key(1), AccessMode::Read).lineage, 0);
        assert_eq!(p.into_inner(), vec![0, 7, 0, 9]);
    }

    #[test]
    fn tile_commits_take_newest_sequence() {
        let p = Partitioned::renameable_tiles(
            vec![0u8; 2],
            || vec![0u8; 2],
            |dst: &mut Vec<u8>, src: &Vec<u8>, key| dst[key as usize] = src[key as usize],
        );
        // The newer tile version commits first; the older one (completing
        // late, e.g. stolen) must not take over.
        {
            let v = p.part_view_key(2, 5, 0);
            unsafe { (&mut *v.ptr())[0] = 50 };
        }
        {
            let v = p.part_view_key(1, 3, 0);
            unsafe { (&mut *v.ptr())[0] = 30 };
        }
        assert_eq!(p.get()[0], 50);
    }

    #[test]
    fn tile_watermarks_stamp_accesses() {
        let p = Partitioned::renameable_tiles(
            vec![0u8; 4],
            || vec![0u8; 4],
            |dst: &mut Vec<u8>, src: &Vec<u8>, key| dst[key as usize] = src[key as usize],
        );
        {
            let v = p.part_view_key(3, 4, 2);
            unsafe { (&mut *v.ptr())[2] = 1 };
        }
        let a = p.access(Region::Key(2), AccessMode::Write);
        assert_eq!(a.lineage, (4u64 << 16) | 3, "watermark lineage");
        // Un-merged tile data survives until a merge point: a fresh read
        // falls back to the committed tile slot.
        assert_eq!(p.tile_slot_of(2), Some(3));
    }

    #[test]
    fn partitioned_renameable_slots() {
        let p = Partitioned::renameable_with(vec![0u8; 4], || vec![0u8; 4]);
        assert!(p.write_all().can_rename());
        {
            let v = p.part_view(1, Some(1));
            unsafe { (&mut *v.ptr())[0] = 7 };
        } // commit on drop
        assert_eq!(p.get()[0], 7);
        assert_eq!(p.into_inner()[0], 7);
    }
}
