//! Shared data handles: the objects data-flow tasks declare accesses on.
//!
//! A [`Shared<T>`] owns one value. Tasks never hold Rust references across
//! suspension points; instead they declare `(handle, region, mode)` triples
//! at spawn time and obtain short-lived references through the task context
//! once the scheduler has guaranteed exclusivity (conflicting tasks are never
//! concurrent, so handing out `&mut T` to the single running writer is
//! sound).
//!
//! [`Reduction<T>`] implements the cumulative-write mode: concurrent tasks
//! fold into per-worker accumulators, merged lazily on the next read/write
//! access (which the data-flow edges order after the whole reduction group).

use crate::access::{fresh_handle_id, Access, AccessMode, HandleId, Region};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Dynamic borrow state: 0 = free, `u32::MAX` = writer, else reader count.
/// A second line of defence under the scheduler's exclusivity guarantee —
/// mis-declared accesses surface as a panic instead of aliasing UB.
const WRITER: u32 = u32::MAX;

struct SharedInner<T: ?Sized> {
    id: HandleId,
    borrows: std::sync::atomic::AtomicU32,
    cell: UnsafeCell<T>,
}

// Safety: the runtime serialises conflicting accesses; only tasks whose
// declared accesses were granted touch `cell`, and at most one of them may
// hold a mutable borrow at a time.
unsafe impl<T: Send + ?Sized> Send for SharedInner<T> {}
unsafe impl<T: Send + ?Sized> Sync for SharedInner<T> {}

/// A runtime-managed shared value that data-flow tasks access by declaration.
///
/// Cloning a `Shared<T>` clones the *handle* (an `Arc`), not the value.
///
/// ```
/// use xkaapi_core::{Runtime, AccessMode};
/// let rt = Runtime::new(2);
/// let h = xkaapi_core::Shared::new(0u64);
/// rt.scope(|ctx| {
///     let h2 = h.clone();
///     ctx.spawn([h.write()], move |t| *t.write(&h2) = 42);
///     let h3 = h.clone();
///     ctx.spawn([h.read()], move |t| assert_eq!(*t.read(&h3), 42));
/// });
/// assert_eq!(h.into_inner(), 42);
/// ```
pub struct Shared<T: ?Sized> {
    inner: Arc<SharedInner<T>>,
}

impl<T: ?Sized> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Shared<T> {
    /// Wrap a value into a fresh handle.
    pub fn new(value: T) -> Self {
        Shared {
            inner: Arc::new(SharedInner {
                id: fresh_handle_id(),
                borrows: std::sync::atomic::AtomicU32::new(0),
                cell: UnsafeCell::new(value),
            }),
        }
    }

    /// Recover the value. Panics if other clones of the handle still exist.
    pub fn into_inner(self) -> T {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.cell.into_inner(),
            Err(_) => panic!("Shared::into_inner: handle still has outstanding clones"),
        }
    }

    /// Read the value from outside any task. The caller asserts no task that
    /// writes this handle is in flight (e.g. after the owning scope ended).
    pub fn get(&self) -> &T {
        // Safety: caller contract — quiescent handle.
        unsafe { &*self.inner.cell.get() }
    }

    /// Mutate the value from outside any task; same quiescence contract as
    /// [`Shared::get`], plus uniqueness of the borrow is the caller's duty.
    pub fn get_mut(&mut self) -> &mut T {
        // Safety: `&mut self` gives uniqueness of this handle clone; the
        // caller asserts no task is in flight.
        unsafe { &mut *self.inner.cell.get() }
    }
}

impl<T: ?Sized> Shared<T> {
    /// This handle's identifier.
    #[inline]
    pub fn id(&self) -> HandleId {
        self.inner.id
    }

    /// Declare a whole-object read access.
    #[inline]
    pub fn read(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::Read)
    }

    /// Declare a whole-object write access (exclusive, no renaming).
    #[inline]
    pub fn write(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::Write)
    }

    /// Declare a whole-object exclusive read-write access.
    #[inline]
    pub fn exclusive(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::Exclusive)
    }

    /// Declare a read access to a sub-region.
    #[inline]
    pub fn read_region(&self, region: Region) -> Access {
        Access::new(self.id(), region, AccessMode::Read)
    }

    /// Declare a write access to a sub-region.
    #[inline]
    pub fn write_region(&self, region: Region) -> Access {
        Access::new(self.id(), region, AccessMode::Write)
    }

    /// Acquire a shared borrow (task context, after the scheduler granted a
    /// read). Panics on a live writer — i.e. on a mis-declared access.
    pub(crate) fn borrow(&self) -> Ref<'_, T> {
        let b = &self.inner.borrows;
        loop {
            let cur = b.load(Ordering::Acquire);
            assert_ne!(
                cur, WRITER,
                "xkaapi: read access while a writer is live (mis-declared task accesses?)"
            );
            if b.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        // Safety: reader count held; writers excluded.
        Ref {
            val: unsafe { &*self.inner.cell.get() },
            borrows: b,
        }
    }

    /// Acquire an exclusive borrow (task context, after the scheduler
    /// granted a write). Panics on any live borrow.
    pub(crate) fn borrow_mut(&self) -> RefMut<'_, T> {
        let b = &self.inner.borrows;
        assert!(
            b.compare_exchange(0, WRITER, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            "xkaapi: write access while other borrows are live (mis-declared task accesses?)"
        );
        // Safety: exclusive flag held.
        RefMut {
            val: unsafe { &mut *self.inner.cell.get() },
            borrows: b,
        }
    }
}

/// Shared borrow of a [`Shared<T>`] value, granted to a running task.
pub struct Ref<'a, T: ?Sized> {
    val: &'a T,
    borrows: &'a std::sync::atomic::AtomicU32,
}

impl<T: ?Sized> std::ops::Deref for Ref<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.val
    }
}

impl<T: ?Sized> Drop for Ref<'_, T> {
    fn drop(&mut self) {
        self.borrows.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exclusive borrow of a [`Shared<T>`] value, granted to a running task.
pub struct RefMut<'a, T: ?Sized> {
    val: &'a mut T,
    borrows: &'a std::sync::atomic::AtomicU32,
}

impl<T: ?Sized> std::ops::Deref for RefMut<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.val
    }
}

impl<T: ?Sized> std::ops::DerefMut for RefMut<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.val
    }
}

impl<T: ?Sized> Drop for RefMut<'_, T> {
    fn drop(&mut self) {
        self.borrows.store(0, Ordering::Release);
    }
}

/// A shared value accessed through *disjoint regions* by concurrent tasks.
///
/// Unlike [`Shared<T>`], several tasks may run concurrently on a
/// `Partitioned<T>` as long as their declared regions do not overlap: the
/// data-flow scheduler orders the ones that do. Region-typed projections are
/// the user's responsibility (`view` hands out raw mutable access), which is
/// why construction is explicit — it is the building block the dense tiled
/// and sparse skyline matrices use.
pub struct Partitioned<T> {
    inner: Arc<SharedInner<T>>,
}

impl<T> Clone for Partitioned<T> {
    fn clone(&self) -> Self {
        Partitioned {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> Partitioned<T> {
    /// Wrap a value to be accessed through disjoint regions.
    pub fn new(value: T) -> Self {
        Partitioned {
            inner: Arc::new(SharedInner {
                id: fresh_handle_id(),
                borrows: std::sync::atomic::AtomicU32::new(0),
                cell: UnsafeCell::new(value),
            }),
        }
    }

    /// This handle's identifier.
    #[inline]
    pub fn id(&self) -> HandleId {
        self.inner.id
    }

    /// Declare an access to `region` with `mode`.
    #[inline]
    pub fn access(&self, region: Region, mode: AccessMode) -> Access {
        Access::new(self.id(), region, mode)
    }

    /// Raw access to the underlying value.
    ///
    /// # Safety
    /// The caller must only touch the part of the value corresponding to a
    /// region its task declared; the scheduler guarantees tasks with
    /// overlapping regions are not concurrent, nothing guards disjoint ones.
    #[inline]
    pub unsafe fn view(&self) -> *mut T {
        self.inner.cell.get()
    }

    /// Recover the value. Panics if other clones of the handle still exist.
    pub fn into_inner(self) -> T {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.cell.into_inner(),
            Err(_) => panic!("Partitioned::into_inner: handle still has outstanding clones"),
        }
    }

    /// Read-only borrow from outside any task (quiescence contract).
    pub fn get(&self) -> &T {
        unsafe { &*self.inner.cell.get() }
    }
}

type CombineFn<T> = dyn Fn(&mut T, T) + Send + Sync;
type IdentityFn<T> = dyn Fn() -> T + Send + Sync;

struct ReductionInner<T> {
    id: HandleId,
    main: UnsafeCell<T>,
    /// One lazily-initialised accumulator per worker, cache-padded to avoid
    /// false sharing between concurrently folding workers.
    slots: Box<[crossbeam_utils::CachePadded<UnsafeCell<Option<T>>>]>,
    dirty: AtomicBool,
    identity: Box<IdentityFn<T>>,
    combine: Box<CombineFn<T>>,
}

unsafe impl<T: Send> Send for ReductionInner<T> {}
unsafe impl<T: Send> Sync for ReductionInner<T> {}

/// A reduction variable for the cumulative-write access mode.
///
/// Tasks declaring [`Reduction::cumul`] run concurrently, each folding into a
/// per-worker accumulator obtained from the task context. The next task that
/// declares a read or write access is ordered after the whole group by the
/// data-flow engine, and the merge of the accumulators happens then.
pub struct Reduction<T> {
    inner: Arc<ReductionInner<T>>,
}

impl<T> Clone for Reduction<T> {
    fn clone(&self) -> Self {
        Reduction {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> Reduction<T> {
    /// Create a reduction with `nworkers` accumulator slots.
    ///
    /// `identity` produces the neutral element, `combine` folds a slot into
    /// the main value; both must make `combine` associative for the result
    /// to be deterministic up to floating-point reassociation.
    pub fn with_slots(
        initial: T,
        nworkers: usize,
        identity: impl Fn() -> T + Send + Sync + 'static,
        combine: impl Fn(&mut T, T) + Send + Sync + 'static,
    ) -> Self {
        let slots = (0..nworkers)
            .map(|_| crossbeam_utils::CachePadded::new(UnsafeCell::new(None)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Reduction {
            inner: Arc::new(ReductionInner {
                id: fresh_handle_id(),
                main: UnsafeCell::new(initial),
                slots,
                dirty: AtomicBool::new(false),
                identity: Box::new(identity),
                combine: Box::new(combine),
            }),
        }
    }

    /// Handle identifier (shared by all access declarations on this value).
    #[inline]
    pub fn id(&self) -> HandleId {
        self.inner.id
    }

    /// Declare a cumulative-write access (commutes with other `cumul`s).
    #[inline]
    pub fn cumul(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::CumulWrite)
    }

    /// Declare a read access (ordered after any pending cumulative writes).
    #[inline]
    pub fn read(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::Read)
    }

    /// Declare an exclusive access.
    #[inline]
    pub fn exclusive(&self) -> Access {
        Access::new(self.id(), Region::All, AccessMode::Exclusive)
    }

    /// Per-worker accumulator for a task granted `cumul` access.
    ///
    /// # Safety (internal)
    /// Called by the task context with the executing worker's index; two
    /// tasks on the same worker are never concurrent so the slot borrow is
    /// unique.
    #[allow(clippy::mut_from_ref)] // uniqueness per worker: see Safety above
    pub(crate) fn slot_for(&self, worker: usize) -> &mut T {
        self.inner.dirty.store(true, Ordering::Release);
        let slot = unsafe { &mut *self.inner.slots[worker].get() };
        slot.get_or_insert_with(|| (self.inner.identity)())
    }

    /// Merge pending per-worker accumulators into the main value.
    ///
    /// Sound only once the data-flow engine has ordered the caller after the
    /// cumulative-write group (i.e. from a task with read/write access, or
    /// outside any scope).
    pub(crate) fn merge_pending(&self) {
        if !self.inner.dirty.swap(false, Ordering::AcqRel) {
            return;
        }
        let main = unsafe { &mut *self.inner.main.get() };
        for slot in self.inner.slots.iter() {
            let slot = unsafe { &mut *slot.get() };
            if let Some(v) = slot.take() {
                (self.inner.combine)(main, v);
            }
        }
    }

    /// Merged value, viewed from outside any task (quiescence contract).
    pub fn get(&self) -> &T {
        self.merge_pending();
        unsafe { &*self.inner.main.get() }
    }

    /// Pointer to the main value, for granted read/write task accesses.
    pub(crate) fn data_ptr(&self) -> *mut T {
        self.inner.main.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_roundtrip() {
        let h = Shared::new(vec![1, 2, 3]);
        assert_eq!(h.get().len(), 3);
        let h2 = h.clone();
        assert_eq!(h.id(), h2.id());
        drop(h2);
        assert_eq!(h.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "outstanding clones")]
    fn shared_into_inner_with_clones_panics() {
        let h = Shared::new(5);
        let _h2 = h.clone();
        let _ = h.into_inner();
    }

    #[test]
    fn distinct_handles_distinct_ids() {
        let a = Shared::new(0);
        let b = Shared::new(0);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn access_constructors() {
        let h = Shared::new(0u8);
        assert_eq!(h.read().mode, AccessMode::Read);
        assert_eq!(h.write().mode, AccessMode::Write);
        assert_eq!(h.exclusive().mode, AccessMode::Exclusive);
        assert!(h.read().conflicts_with(&h.write()));
    }

    #[test]
    fn reduction_merges_slots() {
        let red = Reduction::with_slots(0u64, 4, || 0u64, |a, b| *a += b);
        *red.slot_for(0) += 5;
        *red.slot_for(2) += 7;
        assert_eq!(*red.get(), 12);
        // idempotent once merged
        assert_eq!(*red.get(), 12);
        *red.slot_for(1) += 1;
        assert_eq!(*red.get(), 13);
    }

    #[test]
    fn partitioned_region_accesses() {
        let p = Partitioned::new(vec![0f64; 16]);
        let a = p.access(Region::key2(0, 0), AccessMode::Write);
        let b = p.access(Region::key2(0, 1), AccessMode::Write);
        assert!(!a.conflicts_with(&b));
        let c = p.access(Region::key2(0, 0), AccessMode::Read);
        assert!(a.conflicts_with(&c));
        assert_eq!(p.into_inner().len(), 16);
    }
}
