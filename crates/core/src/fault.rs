//! Deterministic fault injection for chaos testing (`DESIGN.md` §8).
//!
//! A [`FaultPlan`] is a small, *seeded* description of the faults one test
//! run should experience: "panic the k-th task body", "delay worker `w` by
//! `d` at its steal/drain boundaries", "cancel token `t` once `n` task
//! bodies have started". The plan is installed at build time
//! ([`crate::Builder::fault_plan`]) and fired from three hooks compiled
//! into the scheduler only under the `fault-injection` feature:
//!
//! * **task execute** — every task body start (data-flow tasks and the
//!   fork-join fast lane) steps a global counter; the plan's `panic_nth`
//!   and `cancel_at` triggers key off that counter, so one seed names one
//!   victim task per run;
//! * **worker boundary** — entered on every steal attempt and inject
//!   drain; the plan's `delay_worker` sleeps the matching worker there,
//!   modelling a straggler / descheduled core without touching task code.
//!
//! Determinism contract: with one worker the step counter is a program
//! counter and two runs of the same seed produce identical schedules and
//! stats; with many workers the *triggers* still fire at the same global
//! step, and the chaos suite asserts schedule-independent invariants
//! (no hang, no lost join, workers alive) rather than exact traces.

use crate::attrs::CancelToken;
use crate::runtime::RtInner;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One run's worth of planned faults. `Default` is the empty plan (no
/// faults); [`FaultPlan::from_seed`] derives a pseudo-random plan
/// deterministically from a seed.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Panic the body of the `n`-th task to start executing (1-based
    /// global step count across all workers).
    pub panic_nth: Option<u64>,
    /// Sleep worker `w` for the duration at each of its steal/drain
    /// boundaries (a deterministic straggler).
    pub delay_worker: Option<(usize, Duration)>,
    /// Cancel the token once the global step counter reaches `n`.
    pub cancel_at: Option<(u64, CancelToken)>,
}

/// `splitmix64` — tiny, seedable, good enough to scatter plan parameters.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derive a plan from `seed`: a panic somewhere in the first ~200 task
    /// steps and a sub-millisecond straggler delay on one of the first 8
    /// workers (both always present — a chaos run should always inject
    /// *something*). Cancellation is test-driven, not seeded: tests attach
    /// their own token via [`FaultPlan::cancel_at`] so they can observe it.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        let panic_nth = 1 + splitmix64(&mut s) % 200;
        let worker = (splitmix64(&mut s) % 8) as usize;
        let delay_us = 50 + splitmix64(&mut s) % 500;
        FaultPlan {
            panic_nth: Some(panic_nth),
            delay_worker: Some((worker, Duration::from_micros(delay_us))),
            cancel_at: None,
        }
    }

    /// Panic the `n`-th task body (1-based).
    pub fn panic_nth(mut self, n: u64) -> Self {
        self.panic_nth = Some(n);
        self
    }

    /// Delay worker `w` by `d` at each of its steal/drain boundaries.
    pub fn delay_worker(mut self, w: usize, d: Duration) -> Self {
        self.delay_worker = Some((w, d));
        self
    }

    /// Cancel `token` once `n` task bodies have started.
    pub fn cancel_at(mut self, n: u64, token: CancelToken) -> Self {
        self.cancel_at = Some((n, token));
        self
    }
}

/// Live state of an installed plan: the plan plus the global step counter.
pub(crate) struct FaultState {
    plan: FaultPlan,
    steps: AtomicU64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            steps: AtomicU64::new(0),
        }
    }
}

/// Task-execute hook: called at the start of every task body (inside the
/// isolation `catch_unwind`, so a planned panic is indistinguishable from
/// a user panic to the rest of the engine).
pub(crate) fn on_task_execute(rt: &Arc<RtInner>) {
    let Some(st) = rt.fault.as_ref() else { return };
    let step = st.steps.fetch_add(1, Ordering::AcqRel) + 1;
    if let Some((at, token)) = &st.plan.cancel_at {
        if step >= *at {
            token.cancel();
        }
    }
    if st.plan.panic_nth == Some(step) {
        panic!("fault-injection: planned panic at task step {step}");
    }
}

/// Worker-boundary hook: called on every steal attempt and inject drain.
pub(crate) fn on_worker_boundary(rt: &Arc<RtInner>, widx: usize) {
    let Some(st) = rt.fault.as_ref() else { return };
    if let Some((w, d)) = st.plan.delay_worker {
        if w == widx {
            std::thread::sleep(d);
        }
    }
}
