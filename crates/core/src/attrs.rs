//! Task scheduling attributes: the typed descriptor every front door
//! lowers to (`DESIGN.md` §5).
//!
//! Historically the runtime had several task front doors — `Ctx::spawn`,
//! `Ctx::join`, `Runtime::submit`, the QUARK insertion API — and none of
//! them could express *how* a task wants to be scheduled. [`TaskAttrs`] is
//! the one descriptor they all construct now: a [`Priority`] band consumed
//! by the queue layer (banded push/pop), the injection layer (per-priority
//! admission) and the dependency layer (banded ready lists), plus an
//! [`Affinity`] consumed by the injection layer (lane targeting) and the
//! steal layer (grab-to-thief matching).
//!
//! Users reach it through the builders — [`Ctx::task`](crate::Ctx::task)
//! for in-scope tasks, [`Runtime::task`](crate::Runtime::task) for root
//! jobs — while the legacy entry points delegate with
//! [`TaskAttrs::default`], which reproduces the pre-attribute behaviour
//! exactly (Normal band, no affinity).

use crate::access::Access;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Number of priority bands the scheduling layers maintain. Small and
/// fixed: every banded structure (queue lanes, ready lists, inject lanes)
/// holds one sub-queue per band.
pub const PRIORITY_BANDS: usize = 3;

/// Band index of [`Priority::Normal`] — the band whose behaviour is
/// exactly the pre-attribute scheduler (LIFO/FIFO order preserved).
pub(crate) const NORMAL_BAND: u8 = 1;

/// Scheduling priority of a task or root job.
///
/// Priorities are *bands*, not a total order over tasks: within one band
/// every queue keeps its historical order (owner LIFO / thief FIFO for the
/// distributed lanes, FIFO for the centralized pools and inject lanes), and
/// higher bands are always drained before lower ones. The default
/// [`Priority::Normal`] band reproduces the pre-attribute behaviour
/// exactly.
///
/// At the injection admission cap, shedding is priority-ordered: [`Low`]
/// submissions are rejected while headroom is still reserved for the
/// higher bands, so a high-priority job is never shed before a
/// low-priority one (see
/// [`InjectPolicy`](crate::InjectPolicy)).
///
/// No `Ord` is exposed: declaration order is *band* order (High first),
/// which would make `High < Low` under a derived comparison — compare
/// [`Priority::band`] values explicitly instead.
///
/// [`Low`]: Priority::Low
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Drained before everything else (critical-path tasks).
    High,
    /// The default band: today's LIFO/FIFO behaviour, unchanged.
    #[default]
    Normal,
    /// Drained last; first to be shed under admission pressure.
    Low,
}

impl Priority {
    /// All priorities, highest first (band order).
    pub const ALL: [Priority; PRIORITY_BANDS] = [Priority::High, Priority::Normal, Priority::Low];

    /// Band index: 0 = high … [`PRIORITY_BANDS`]`- 1` = low. Banded
    /// structures are drained in ascending band order.
    #[inline]
    pub fn band(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Table label (bench harnesses).
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Data-affinity request of a task or root job: which NUMA node the work
/// would like to start on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Affinity {
    /// No placement preference (the default): root jobs hash to the
    /// submitter's lane, spawned tasks stay on the spawning worker.
    #[default]
    None,
    /// Derive the target node from the declared accesses' handles: the
    /// home node of the first *writing* access whose handle has a known
    /// home (explicit [`Shared::set_home`](crate::Shared::set_home) or
    /// first-touch), falling back to any access with a known home. When no
    /// access resolves, behaves like [`Affinity::None`].
    Auto,
    /// Target an explicit NUMA node (ignored when the node does not exist
    /// in the runtime's topology).
    Node(usize),
}

/// Execution track of a task or root job: which engine runs its body
/// (`DESIGN.md` §10).
///
/// The CPU worker pool is one track among several. The **offload** track
/// models an accelerator — explicit H2D/D2H transfer steps synthesized per
/// handle access, a batched kernel-launch queue with configurable launch
/// latency, and an asynchronous completion stream; successors of an
/// offloaded task become ready when its completion *drains* back into the
/// pool, not when the body returns. The **I/O** track runs bodies that
/// block on external events on a small dedicated thread set so they never
/// occupy a CPU worker. Routing is an attribute like [`Priority`] and
/// [`Affinity`]: `ctx.task().track(Track::Offload)` /
/// `rt.task().track(Track::Io)`, with the default [`Track::Cpu`] lowering
/// to exactly the pre-track behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Track {
    /// The CPU worker pool (the default): unchanged pre-track behaviour.
    #[default]
    Cpu,
    /// The modelled-accelerator engine: batched launches, synthesized
    /// H2D/D2H transfers, asynchronous completions (`OffloadEngine`).
    Offload,
    /// The blocking-I/O thread set: bodies that wait on external events
    /// (`IoEngine`); see also the `wait_external` builder sugar.
    Io,
}

impl Track {
    /// Table label (bench harnesses, trace lanes).
    pub fn label(self) -> &'static str {
        match self {
            Track::Cpu => "cpu",
            Track::Offload => "offload",
            Track::Io => "io",
        }
    }
}

/// A shared cancellation flag, cooperatively checked by the scheduler.
///
/// Cloning a token shares the flag: cancelling any clone cancels them all.
/// Tokens ride in [`TaskAttrs`] and are inherited by every task spawned
/// inside a carrying scope, so cancelling the token at the root cancels the
/// whole dependency cone. Cancellation is *cooperative*: tasks already
/// running keep running (poll [`Ctx::is_cancelled`](crate::Ctx::is_cancelled)
/// to bail early), while tasks not yet started skip their body but still
/// satisfy every dataflow obligation — countdowns drain, joins return, and
/// nothing deadlocks (`DESIGN.md` §8).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancel every task carrying (a clone of) this token. Idempotent;
    /// returns `true` the first time, `false` if already cancelled.
    pub fn cancel(&self) -> bool {
        !self.inner.swap(true, Ordering::Release)
    }

    /// Has this token been cancelled?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.load(Ordering::Acquire)
    }

    /// Same underlying flag? (Token identity, used by `TaskAttrs` equality.)
    pub(crate) fn same_as(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// The attribute block of one task: what the [`TaskBuilder`] and
/// [`JobBuilder`] accumulate and every scheduling layer consumes.
///
/// [`TaskBuilder`]: crate::TaskBuilder
/// [`JobBuilder`]: crate::JobBuilder
#[derive(Clone, Debug, Default)]
pub struct TaskAttrs {
    /// Priority band (queue pop order, ready-list order, inject drain
    /// order, admission shed order).
    pub priority: Priority,
    /// Data-affinity request (inject lane targeting, steal-serve
    /// grab-to-thief matching).
    pub affinity: Affinity,
    /// Cooperative cancellation token, if the task belongs to a cancellable
    /// cone. Inherited by child spawns (`DESIGN.md` §8).
    pub cancel: Option<CancelToken>,
    /// Execution track: which engine runs the body (`DESIGN.md` §10). The
    /// default [`Track::Cpu`] is the worker pool; non-CPU tracks are
    /// dispatched at the point the task would otherwise execute.
    pub track: Track,
}

impl PartialEq for TaskAttrs {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
            && self.affinity == other.affinity
            && self.track == other.track
            && match (&self.cancel, &other.cancel) {
                (None, None) => true,
                (Some(a), Some(b)) => a.same_as(b),
                _ => false,
            }
    }
}

impl Eq for TaskAttrs {}

impl TaskAttrs {
    /// Band index shorthand.
    #[inline]
    pub(crate) fn band(&self) -> u8 {
        self.priority.band() as u8
    }

    /// True when every field is the default (Normal band, no affinity, no
    /// cancel token, CPU track).
    ///
    /// The spawn path monomorphizes on this: a default spawn takes the
    /// `#[inline]` fast lowering identical to the pre-attribute runtime,
    /// while anything else falls to the `#[cold]` attributed path. Keeping
    /// the check a few flag comparisons keeps it free after inlining.
    #[inline]
    pub(crate) fn is_default(&self) -> bool {
        matches!(self.priority, Priority::Normal)
            && matches!(self.affinity, Affinity::None)
            && self.cancel.is_none()
            && matches!(self.track, Track::Cpu)
    }

    /// Is this task's cancel token (if any) cancelled?
    #[inline]
    pub(crate) fn is_cancelled(&self) -> bool {
        match &self.cancel {
            None => false,
            Some(t) => t.is_cancelled(),
        }
    }

    /// Resolve the affinity against a set of declared accesses and a
    /// topology with `nodes` NUMA nodes. `None` means "no placement
    /// preference" (hash/stay local, as before).
    pub(crate) fn resolve_node(&self, accesses: &[Access], nodes: usize) -> Option<usize> {
        match self.affinity {
            Affinity::None => None,
            Affinity::Node(n) => (n < nodes).then_some(n),
            Affinity::Auto => {
                let home_of = |a: &Access| a.home_node().filter(|&n| n < nodes);
                accesses
                    .iter()
                    .filter(|a| a.mode.writes())
                    .find_map(home_of)
                    .or_else(|| accesses.iter().find_map(home_of))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMode, HandleId, Region};

    fn acc(h: u64, mode: AccessMode, home: Option<usize>) -> Access {
        let a = Access::new(HandleId(h), Region::All, mode);
        match home {
            Some(n) => a.with_home(n as u32),
            None => a,
        }
    }

    #[test]
    fn bands_are_ordered_high_first() {
        assert_eq!(Priority::High.band(), 0);
        assert_eq!(Priority::Normal.band(), 1);
        assert_eq!(Priority::Low.band(), 2);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::ALL.map(Priority::band), [0, 1, 2]);
    }

    #[test]
    fn resolve_none_and_explicit_node() {
        let attrs = TaskAttrs::default();
        assert_eq!(attrs.resolve_node(&[], 4), None);
        let attrs = TaskAttrs {
            affinity: Affinity::Node(2),
            ..Default::default()
        };
        assert_eq!(attrs.resolve_node(&[], 4), Some(2));
        // A node outside the topology is ignored, not clamped.
        assert_eq!(attrs.resolve_node(&[], 2), None);
    }

    #[test]
    fn resolve_auto_prefers_writing_access() {
        let attrs = TaskAttrs {
            affinity: Affinity::Auto,
            ..Default::default()
        };
        let accs = [
            acc(1, AccessMode::Read, Some(0)),
            acc(2, AccessMode::Exclusive, Some(1)),
        ];
        assert_eq!(attrs.resolve_node(&accs, 2), Some(1), "writer wins");
        let readers_only = [acc(1, AccessMode::Read, Some(0))];
        assert_eq!(attrs.resolve_node(&readers_only, 2), Some(0));
        let unhomed = [acc(1, AccessMode::Write, None)];
        assert_eq!(attrs.resolve_node(&unhomed, 2), None);
        // A home outside the topology cannot be targeted.
        let far = [acc(1, AccessMode::Write, Some(7))];
        assert_eq!(attrs.resolve_node(&far, 2), None);
    }
}
