//! # xkaapi-core — a multi-paradigm task runtime for multicore machines
//!
//! Rust reproduction of the runtime described in *“X-Kaapi: a Multi Paradigm
//! Runtime for Multicore Architectures”* (Gautier, Lementec, Faucher,
//! Raffin — ICPP 2013 workshop P2S2). The runtime unifies three parallel
//! paradigms over one work-stealing scheduler:
//!
//! * **data-flow tasks** — tasks declare `(handle, region, mode)` accesses;
//!   the runtime derives dependencies and runs independent tasks in
//!   parallel, with sequential semantics ([`Ctx::spawn`]);
//! * **fork-join tasks** — Cilk-style `spawn`/`sync` and [`Ctx::join`];
//! * **adaptive parallel loops** — [`Ctx::foreach`] /
//!   [`Runtime::foreach`], loops that split on demand when workers go idle.
//!
//! Scheduling follows the paper's design decisions:
//!
//! * **work-first**: the owner executes children in FIFO (program) order and
//!   never computes dependencies on the local fast path;
//! * **lazy readiness**: a thief proves a task ready by scanning the victim
//!   frame from the oldest task;
//! * **ready-list acceleration**: frames whose scans get expensive are
//!   promoted to a dependency graph with a ready list — steals become pops;
//! * **one dependency engine**: scan-mode readiness and the promoted graph
//!   are both derived from the same versioned data-flow core
//!   ([`dataflow`]), so the two modes can never disagree;
//! * **renaming**: a write-only access on a renameable handle gets a fresh
//!   version of the data instead of serializing behind earlier
//!   readers/writers — WAR/WAW elimination (`DESIGN.md` §2,
//!   [`Shared::renameable`]);
//! * **request aggregation**: `N` concurrent steal requests to one victim
//!   are served by a single elected combiner thief;
//! * **topology-aware stealing**: victim selection is a policy over the
//!   machine [`Topology`] (worker→node map + distance matrix, shared with
//!   the simulator's platform model) — uniform, hierarchical
//!   (same-node-first with fail-streak escalation) or locality-first
//!   (distance-ranked), with bounded near-first combiner batches
//!   (`DESIGN.md` §3);
//! * **adaptive tasks**: running tasks publish splitters invoked under the
//!   victim's steal lock (at most one concurrent splitter per victim);
//! * **non-blocking injection**: [`Runtime::submit`] enqueues a root job
//!   into sharded per-NUMA-node inject lanes and returns a [`JoinHandle`]
//!   immediately (wait / poll / `on_complete` callback, and an
//!   `impl Future` behind the default-on `future` feature), with an
//!   [`InjectPolicy`] admission layer that throttles or sheds a flood of
//!   submissions (`DESIGN.md` §4); [`Runtime::scope`] is submit + wait;
//! * **task attributes**: every front door lowers to one [`TaskAttrs`]
//!   descriptor via the [`Ctx::task`] / [`Runtime::task`] builders
//!   (`DESIGN.md` §5) — [`Priority`] bands order queue pops, ready lists,
//!   steal scans and inject drains (low is shed before high at the
//!   admission cap), and [`Affinity`] steers work toward the NUMA node
//!   owning its data (lane targeting on submit, affine grab matching in
//!   the steal combiner, handle homes from `set_home` or first-touch).
//!
//! ## Quickstart
//!
//! ```
//! use xkaapi_core::{Runtime, Shared};
//!
//! let rt = Runtime::new(4);
//!
//! // Data-flow: b waits for a (read-after-write on `h`), c is independent.
//! let h = Shared::new(0u64);
//! let c = Shared::new(0u64);
//! rt.scope(|ctx| {
//!     let (h1, h2, c1) = (h.clone(), h.clone(), c.clone());
//!     ctx.spawn([h.write()], move |t| *t.write(&h1) = 21);
//!     ctx.spawn([h.read(), c.write()], move |t| {
//!         *t.write(&c1) = 2 * *t.read(&h2);
//!     });
//! });
//! assert_eq!(*c.get(), 42);
//!
//! // Fork-join:
//! let (a, b) = rt.scope(|ctx| ctx.join(|_| 1 + 1, |_| 20 + 1));
//! assert_eq!(a * b, 42);
//!
//! // Adaptive parallel loop:
//! let sum = rt.foreach_reduce(0..1000, None, || 0u64, |s, i| *s += i as u64, |a, b| a + b);
//! assert_eq!(sum, 499_500);
//! ```

#![warn(missing_docs)]

mod access;
mod adaptive;
pub mod attrs;
mod ctx;
pub mod dataflow;
mod fastlane;
#[cfg(feature = "fault-injection")]
pub mod fault;
mod foreach;
mod frame;
mod handle;
mod inject;
mod pin;
mod policy;
mod queue;
pub mod record;
mod runtime;
mod smallvec;
mod stats;
mod steal;
mod task;
pub mod telemetry;
pub mod topology;
pub mod track;
mod worker;

pub use access::{Access, AccessMode, HandleId, Region};
pub use adaptive::{split_even, IntervalCell};
pub use attrs::{Affinity, CancelToken, Priority, TaskAttrs, Track, PRIORITY_BANDS};
pub use ctx::{with_runtime_ctx, Ctx, TaskBuilder};
pub use dataflow::DataflowEngine;
#[cfg(feature = "fault-injection")]
pub use fault::FaultPlan;
pub use frame::PromotionPolicy;
pub use handle::{PartView, Partitioned, Reduction, Ref, RefMut, Shared};
pub use inject::{InjectLaneStats, InjectPolicy, JoinHandle, OnFull, SubmitError};
pub use policy::{
    uniform_victim, AggregatedStealing, HierarchicalVictim, LocalityFirst, PerThiefStealing,
    RenamePolicy, StealPolicy, UniformVictim, VictimChoice,
};
pub use queue::{DistributedLanes, TaskQueue, WorkItem};
pub use record::{RecCtx, RecTaskBuilder, RecordStats, RecordedDag, ReplayTrace, TraceEvent};
pub use runtime::{Builder, JobBuilder, Runtime, Tunables};
pub use stats::StatsSnapshot;
pub use telemetry::{
    EventKind, HistogramSnapshot, LatencyBands, MetricsRegistry, Quantiles, TelemetryEvent,
    TraceSession,
};
pub use topology::{DistanceMatrix, Topology};
pub use track::{OffloadTunables, TrackEngine};

#[cfg(test)]
mod tests;
