//! Work stealing with request aggregation (flat combining).
//!
//! An idle worker posts a request node onto the victim's Treiber stack, then
//! races to acquire the victim's *steal lock*. The winner — the **elected
//! combiner thief** — drains every pending request and serves all of them in
//! a single traversal of the victim's work: N pending requests are handled
//! by one ready-task detection, the paper's reduction of steal overhead
//! ([Hendler et al.] flat combining, [Tchiboukdjian et al.] analysis).
//!
//! The combiner first scans the victim's frames from the oldest for ready
//! data-flow tasks (claiming them with the task-state CAS), then invokes the
//! splitters of the victim's adaptive tasks. Because splitters only run
//! under the victim's steal lock, at most one thief splits any adaptive task
//! at a time — the synchronisation contract the adaptive model relies on.

use crate::ctx::execute_task_at;
use crate::frame::Frame;
use crate::queue::WorkItem;
use crate::runtime::RtInner;
use crate::stats::WorkerStats;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicPtr, AtomicU8, Ordering};
use std::sync::Arc;

/// Boxed closure a thief executes (typically a stolen adaptive-loop slice).
pub(crate) type RunFn = Box<dyn FnOnce(&Arc<RtInner>, usize) + Send>;

/// Work handed to a thief.
pub(crate) enum Grab {
    /// A stack job stolen from the fork-join fast lane.
    Fast(crate::fastlane::FastJob),
    /// A claimed data-flow task (state already `ST_STOLEN`).
    Task { frame: Arc<Frame>, idx: usize },
    /// A closure to run (typically a stolen slice of an adaptive loop).
    Run(RunFn),
}

pub(crate) const REQ_FREE: u8 = 0;
pub(crate) const REQ_POSTED: u8 = 1;
pub(crate) const REQ_SERVED: u8 = 2;
pub(crate) const REQ_EMPTY: u8 = 3;

/// A steal request. Each worker owns exactly one, re-posted serially.
pub(crate) struct Request {
    next: AtomicPtr<Request>,
    status: AtomicU8,
    /// Index of the requesting (thief) worker.
    pub(crate) thief: usize,
    grab: UnsafeCell<Option<Grab>>,
}

// Safety: `grab` is written by the combiner before the `Release` store of
// `status = SERVED`, and read by the owning thief after an `Acquire` load.
unsafe impl Sync for Request {}
unsafe impl Send for Request {}

impl Request {
    pub(crate) fn new(thief: usize) -> Request {
        Request {
            next: AtomicPtr::new(std::ptr::null_mut()),
            status: AtomicU8::new(REQ_FREE),
            thief,
            grab: UnsafeCell::new(None),
        }
    }
}

/// Push `req` onto `victim`'s request stack.
fn post_request(victim: &crate::worker::Worker, req: &Request) {
    req.status.store(REQ_POSTED, Ordering::Relaxed);
    let req_ptr = req as *const Request as *mut Request;
    let mut head = victim.req_head.load(Ordering::Relaxed);
    loop {
        req.next.store(head, Ordering::Relaxed);
        match victim.req_head.compare_exchange_weak(
            head,
            req_ptr,
            Ordering::Release,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(h) => head = h,
        }
    }
}

/// Drain all posted requests from `victim` (combiner side).
fn drain_requests(victim: &crate::worker::Worker) -> Vec<&Request> {
    let mut head = victim
        .req_head
        .swap(std::ptr::null_mut(), Ordering::Acquire);
    let mut out = Vec::new();
    while !head.is_null() {
        // Safety: request nodes live inside `Arc<Worker>`s owned by the
        // runtime; a node stays valid for the runtime's lifetime, and the
        // posting thief spins until we publish an answer.
        let req: &Request = unsafe { &*head };
        head = req.next.load(Ordering::Relaxed);
        out.push(req);
    }
    out
}

/// Serve `reqs` against `victim`: claim ready tasks (frames, oldest first),
/// then split adaptive work. Returns grabs (≤ `reqs.len()`), in an order
/// matching `reqs` as far as it goes.
fn serve(
    rt: &Arc<RtInner>,
    victim_idx: usize,
    reqs: &[&Request],
    my_stats: &WorkerStats,
) -> Vec<Grab> {
    let victim = &rt.workers[victim_idx];
    let k = reqs.len();
    let mut grabs: Vec<Grab> = Vec::with_capacity(k);

    // 0. Queue layer: the victim's share of the ready-work store (fork-join
    // lane under DistributedLanes, the shared pool under a central queue).
    while grabs.len() < k {
        match rt.queue.steal(reqs[grabs.len()].thief, victim_idx) {
            Some(item) => grabs.push(item.into_grab()),
            None => break,
        }
    }

    // 1. Ready data-flow tasks from the victim's frames.
    let frames: Vec<Arc<Frame>> = victim.frames.lock().clone();
    let mut promotions = 0u64;
    for f in frames {
        if grabs.len() >= k {
            break;
        }
        let mut idxs = Vec::new();
        f.steal_scan(
            k - grabs.len(),
            &rt.tun.promotion,
            &mut idxs,
            &mut promotions,
        );
        for idx in idxs {
            grabs.push(Grab::Task {
                frame: Arc::clone(&f),
                idx,
            });
        }
    }
    if promotions > 0 {
        WorkerStats::bump(&my_stats.promotions, promotions);
    }

    // 2. Adaptive tasks: invoke splitters for the still-unserved thieves.
    if grabs.len() < k {
        let ads: Vec<Arc<dyn crate::adaptive::Adaptive>> = victim.adaptives.lock().clone();
        for ad in ads {
            if grabs.len() >= k {
                break;
            }
            let thieves: Vec<usize> = reqs[grabs.len()..].iter().map(|r| r.thief).collect();
            let before = grabs.len();
            ad.split(&thieves, &mut grabs);
            debug_assert!(grabs.len() - before <= thieves.len());
            if grabs.len() > before {
                WorkerStats::bump(&my_stats.splits, 1);
            }
        }
    }
    grabs
}

/// Answer `reqs` with `grabs` (missing ones get `REQ_EMPTY`).
fn distribute(reqs: Vec<&Request>, grabs: Vec<Grab>) {
    let mut grabs = grabs.into_iter();
    for req in reqs {
        match grabs.next() {
            Some(g) => {
                // Safety: we own the drained request until we publish status.
                unsafe {
                    *req.grab.get() = Some(g);
                }
                req.status.store(REQ_SERVED, Ordering::Release);
            }
            None => req.status.store(REQ_EMPTY, Ordering::Release),
        }
    }
}

/// One steal attempt by worker `me`: pick a random victim, post a request,
/// participate in combining until answered. Returns work, or `None`.
pub(crate) fn try_steal_once(rt: &Arc<RtInner>, me: usize) -> Option<Grab> {
    let p = rt.num_workers();
    if p < 2 {
        return None;
    }
    let my = &rt.workers[me];
    // Random victim != me.
    let mut v = (my.next_rand() % (p as u64 - 1)) as usize;
    if v >= me {
        v += 1;
    }
    let victim = &rt.workers[v];
    WorkerStats::bump(&my.stats.steal_attempts, 1);
    post_request(victim, &my.req);

    loop {
        match my.req.status.load(Ordering::Acquire) {
            REQ_SERVED => {
                my.req.status.store(REQ_FREE, Ordering::Relaxed);
                // Safety: combiner wrote the grab before the Release store.
                let grab = unsafe { (*my.req.grab.get()).take() };
                WorkerStats::bump(&my.stats.steal_hits, 1);
                return grab;
            }
            REQ_EMPTY => {
                my.req.status.store(REQ_FREE, Ordering::Relaxed);
                return None;
            }
            _ => {}
        }
        if let Some(_guard) = victim.steal_lock.try_lock() {
            // Elected combiner: serve a policy-sized batch of the pending
            // requests in one pass (all of them under aggregation).
            let reqs = drain_requests(victim);
            if !reqs.is_empty() {
                let k = rt.steal_pol.serve_batch(reqs.len()).max(1);
                let (serve_now, fail_now) = reqs.split_at(k.min(reqs.len()));
                let grabs = serve(rt, v, serve_now, &my.stats);
                WorkerStats::bump(&my.stats.combine_batches, 1);
                WorkerStats::bump(&my.stats.combine_served, serve_now.len() as u64);
                if serve_now.len() >= 2 {
                    WorkerStats::bump(&my.stats.aggregated_requests, serve_now.len() as u64);
                }
                distribute(serve_now.to_vec(), grabs);
                for req in fail_now {
                    req.status.store(REQ_EMPTY, Ordering::Release);
                }
            }
            continue; // re-check own status (we were among the drained)
        }
        std::hint::spin_loop();
    }
}

/// Centralized-queue mode: claim every currently-ready task of `frame` and
/// publish it into the shared queue (insertion-time scheduling, the
/// QUARK/libGOMP model). Called by the engine on spawn and on completion;
/// a no-op under distributed queues (thieves discover frames lazily).
pub(crate) fn publish_ready(rt: &Arc<RtInner>, me: usize, frame: &Arc<Frame>) {
    debug_assert!(rt.queue.centralized());
    let mut idxs = Vec::new();
    let mut promotions = 0u64;
    frame.steal_scan(usize::MAX, &rt.tun.promotion, &mut idxs, &mut promotions);
    if promotions > 0 {
        WorkerStats::bump(&rt.workers[me].stats.promotions, promotions);
    }
    if idxs.is_empty() {
        return;
    }
    for idx in idxs {
        let item = WorkItem::task(Arc::clone(frame), idx);
        if let Err(item) = rt.queue.push(me, item) {
            // The queue refused the task; it is already claimed, so it must
            // run now or never.
            run_grab(rt, me, item.into_grab());
        }
    }
    rt.signal_work();
}

/// Execute stolen work on worker `me`.
pub(crate) fn run_grab(rt: &Arc<RtInner>, me: usize, grab: Grab) {
    match grab {
        Grab::Fast(job) => {
            WorkerStats::bump(&rt.workers[me].stats.tasks_executed_stolen, 1);
            // Safety: the job's join does not return before the terminal
            // state we are about to set; the record is alive.
            unsafe { job.execute(rt, me) };
        }
        Grab::Task { frame, idx } => {
            let task = frame.task(idx);
            execute_task_at(rt, me, &frame, idx, task, /*stolen=*/ true);
        }
        Grab::Run(f) => f(rt, me),
    }
}
