//! Work stealing with request aggregation (flat combining).
//!
//! An idle worker posts a request node onto the victim's Treiber stack, then
//! races to acquire the victim's *steal lock*. The winner — the **elected
//! combiner thief** — drains every pending request and serves all of them in
//! a single traversal of the victim's work: N pending requests are handled
//! by one ready-task detection, the paper's reduction of steal overhead
//! ([Hendler et al.] flat combining, [Tchiboukdjian et al.] analysis).
//!
//! The combiner first scans the victim's frames from the oldest for ready
//! data-flow tasks (claiming them with the task-state CAS), then invokes the
//! splitters of the victim's adaptive tasks. Because splitters only run
//! under the victim's steal lock, at most one thief splits any adaptive task
//! at a time — the synchronisation contract the adaptive model relies on.
//!
//! *Which* victim a thief probes, how many drained requests a combiner
//! serves per pass and in what order are all delegated to the
//! [`StealPolicy`](crate::StealPolicy) (topology-aware victim selection,
//! bounded near-first batches — DESIGN.md §3); requests beyond a bounded
//! batch are re-queued onto the victim's stack while it still has work.

use crate::ctx::execute_task_at;
use crate::frame::Frame;
use crate::queue::WorkItem;
use crate::runtime::RtInner;
use crate::stats::WorkerStats;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU8, Ordering};
use std::sync::Arc;

/// Boxed closure a thief executes (typically a stolen adaptive-loop slice).
pub(crate) type RunFn = Box<dyn FnOnce(&Arc<RtInner>, usize) + Send>;

/// Work handed to a thief.
pub(crate) enum Grab {
    /// A stack job stolen from the fork-join fast lane.
    Fast(crate::fastlane::FastJob),
    /// A claimed data-flow task (state already `ST_STOLEN`). Carries the
    /// `Arc<Task>` so downstream inspection (band, affinity) and execution
    /// never re-lock the frame to look the task up again.
    Task {
        frame: Arc<Frame>,
        idx: usize,
        task: Arc<crate::task::Task>,
    },
    /// A closure to run (typically a stolen slice of an adaptive loop).
    Run(RunFn),
}

pub(crate) const REQ_FREE: u8 = 0;
pub(crate) const REQ_POSTED: u8 = 1;
pub(crate) const REQ_SERVED: u8 = 2;
pub(crate) const REQ_EMPTY: u8 = 3;

/// A steal request. Each worker owns exactly one, re-posted serially.
pub(crate) struct Request {
    next: AtomicPtr<Request>,
    status: AtomicU8,
    /// Index of the requesting (thief) worker.
    pub(crate) thief: usize,
    /// Set when a bounded combiner batch re-queued this request instead of
    /// answering it; a request is re-queued at most once per post, bounding
    /// how long a thief can be held inside one steal attempt.
    requeued: AtomicBool,
    grab: UnsafeCell<Option<Grab>>,
}

// Safety: `grab` is written by the combiner before the `Release` store of
// `status = SERVED`, and read by the owning thief after an `Acquire` load.
unsafe impl Sync for Request {}
unsafe impl Send for Request {}

impl Request {
    pub(crate) fn new(thief: usize) -> Request {
        Request {
            next: AtomicPtr::new(std::ptr::null_mut()),
            status: AtomicU8::new(REQ_FREE),
            thief,
            requeued: AtomicBool::new(false),
            grab: UnsafeCell::new(None),
        }
    }
}

/// Push a (already `REQ_POSTED`) node onto `victim`'s request stack.
/// Used both for fresh posts and for re-queueing requests a bounded
/// combiner batch could not serve this pass.
fn push_node(victim: &crate::worker::Worker, req: &Request) {
    let req_ptr = req as *const Request as *mut Request;
    let mut head = victim.req_head.load(Ordering::Relaxed);
    loop {
        req.next.store(head, Ordering::Relaxed);
        match victim.req_head.compare_exchange_weak(
            head,
            req_ptr,
            Ordering::Release,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(h) => head = h,
        }
    }
}

/// Push `req` onto `victim`'s request stack.
fn post_request(victim: &crate::worker::Worker, req: &Request) {
    req.status.store(REQ_POSTED, Ordering::Relaxed);
    req.requeued.store(false, Ordering::Relaxed);
    push_node(victim, req);
}

/// Drain all posted requests from `victim` (combiner side).
fn drain_requests(victim: &crate::worker::Worker) -> Vec<&Request> {
    let mut head = victim
        .req_head
        .swap(std::ptr::null_mut(), Ordering::Acquire);
    let mut out = Vec::new();
    while !head.is_null() {
        // Safety: request nodes live inside `Arc<Worker>`s owned by the
        // runtime; a node stays valid for the runtime's lifetime, and the
        // posting thief spins until we publish an answer.
        let req: &Request = unsafe { &*head };
        head = req.next.load(Ordering::Relaxed);
        out.push(req);
    }
    out
}

/// Serve `reqs` against `victim`: claim ready tasks (frames, oldest first),
/// then split adaptive work. Returns grabs (≤ `reqs.len()`), in an order
/// matching `reqs` as far as it goes.
fn serve(
    rt: &Arc<RtInner>,
    me: usize,
    victim_idx: usize,
    reqs: &[&Request],
    my_stats: &WorkerStats,
) -> Vec<Grab> {
    let victim = &rt.workers[victim_idx];
    let k = reqs.len();
    let mut grabs: Vec<Grab> = Vec::with_capacity(k);

    // 0. Queue layer: the victim's share of the ready-work store (fork-join
    // lane under DistributedLanes, the shared pool under a central queue).
    while grabs.len() < k {
        match rt.queue.steal(reqs[grabs.len()].thief, victim_idx) {
            Some(item) => grabs.push(item.into_grab()),
            None => break,
        }
    }

    // 1. Ready data-flow tasks from the victim's frames. One scratch Vec
    // for the whole pass — cleared per frame, not reallocated.
    let frames: Vec<Arc<Frame>> = victim.frames.lock().clone();
    let mut promotions = 0u64;
    let mut claimed: Vec<(usize, Arc<crate::task::Task>)> = Vec::new();
    for f in frames {
        if grabs.len() >= k {
            break;
        }
        claimed.clear();
        f.steal_scan(
            k - grabs.len(),
            &rt.tun.promotion,
            &mut claimed,
            &mut promotions,
        );
        for (idx, task) in claimed.drain(..) {
            if task.attrs.is_cancelled() {
                // Steal-grab cancellation boundary: a cancelled task is
                // never worth shipping to a thief. Retire it on the
                // combiner instead (body skipped, countdowns drained) and
                // keep the grab slot for live work.
                execute_task_at(rt, me, &f, idx, task, /*stolen=*/ true);
                continue;
            }
            grabs.push(Grab::Task {
                frame: Arc::clone(&f),
                idx,
                task,
            });
        }
    }
    if promotions > 0 {
        WorkerStats::bump(&my_stats.promotions, promotions);
    }

    // 2. Adaptive tasks: invoke splitters for the still-unserved thieves,
    //    higher-priority adaptives first (stable: registration order within
    //    one band — attribute-free loops keep the historical order).
    if grabs.len() < k {
        let mut ads: Vec<Arc<dyn crate::adaptive::Adaptive>> = victim.adaptives.lock().clone();
        ads.sort_by_key(|a| a.band());
        for ad in ads {
            if grabs.len() >= k {
                break;
            }
            let thieves: Vec<usize> = reqs[grabs.len()..].iter().map(|r| r.thief).collect();
            let before = grabs.len();
            ad.split(&thieves, &mut grabs);
            debug_assert!(grabs.len() - before <= thieves.len());
            if grabs.len() > before {
                WorkerStats::bump(&my_stats.splits, 1);
            }
        }
    }
    grabs
}

/// Data-affine grab assignment (the placement half of `DESIGN.md` §5):
/// `distribute` hands `grabs[i]` to `reqs[i]`, so before it runs, reorder
/// the grabs so a claimed task whose [`Affinity`](crate::Affinity)
/// resolves to a NUMA node lands on a thief of that node when one is in
/// the served batch. Best-effort single pass: a swap never displaces a
/// grab that was itself affine-matched to its thief.
fn place_affine(rt: &Arc<RtInner>, reqs: &[&Request], grabs: &mut [Grab], my_stats: &WorkerStats) {
    if rt.topo.is_flat() || grabs.is_empty() {
        return;
    }
    let nodes = rt.topo.nodes();
    let target_of = |g: &Grab| -> Option<usize> {
        match g {
            Grab::Task { task, .. } => task.target_node(nodes),
            _ => None,
        }
    };
    let mut targets: Vec<Option<usize>> = grabs.iter().map(target_of).collect();
    if targets.iter().all(Option::is_none) {
        return; // attribute-free batch: nothing to place
    }
    let thief_node = |j: usize| rt.topo.node_of(reqs[j].thief);
    let mut placed = 0u64;
    for i in 0..grabs.len() {
        let Some(target) = targets[i] else { continue };
        if thief_node(i) == target {
            placed += 1;
            continue;
        }
        let better = (0..grabs.len()).find(|&j| {
            j != i && thief_node(j) == target && targets[j].is_none_or(|t| t != thief_node(j))
        });
        if let Some(j) = better {
            grabs.swap(i, j);
            targets.swap(i, j);
            placed += 1;
        }
    }
    if placed > 0 {
        WorkerStats::bump(&my_stats.affine_placements, placed);
    }
}

/// Answer `reqs` with `grabs` (missing ones get `REQ_EMPTY`).
fn distribute(reqs: Vec<&Request>, grabs: Vec<Grab>) {
    let mut grabs = grabs.into_iter();
    for req in reqs {
        match grabs.next() {
            Some(g) => {
                // Safety: we own the drained request until we publish status.
                unsafe {
                    *req.grab.get() = Some(g);
                }
                req.status.store(REQ_SERVED, Ordering::Release);
            }
            None => req.status.store(REQ_EMPTY, Ordering::Release),
        }
    }
}

/// One steal attempt by worker `me`: ask the steal policy for a victim
/// (topology- and fail-streak-aware), post a request, participate in
/// combining until answered. Returns work, or `None`.
///
/// The thief's *fail streak* (consecutive answered-empty attempts, kept on
/// the [`Worker`](crate::worker::Worker)) feeds the policy's victim
/// escalation and the idle loop's park decision; it is reset here on a
/// successful grab and by the idle loop on any acquired work.
pub(crate) fn try_steal_once(rt: &Arc<RtInner>, me: usize) -> Option<Grab> {
    #[cfg(feature = "fault-injection")]
    crate::fault::on_worker_boundary(rt, me);
    let p = rt.num_workers();
    let my = &rt.workers[me];
    if p < 2 {
        // No victims; still count the failure so a lone worker waiting for
        // injected work escalates to parking.
        my.note_steal_failure();
        return None;
    }
    let choice = {
        let mut rng = || my.next_rand();
        rt.steal_pol
            .choose_victim(me, &mut rng, &rt.topo, my.fail_streak())
    };
    let v = if choice.victim == me || choice.victim >= p {
        // Defensive against misbehaving external policies: fall back to a
        // uniform legal victim rather than stealing from ourselves.
        debug_assert!(false, "policy chose an invalid victim {}", choice.victim);
        crate::policy::uniform_victim(me, p, &mut || my.next_rand())
    } else {
        choice.victim
    };
    if choice.escalated {
        WorkerStats::bump(&my.stats.victim_escalations, 1);
    }
    let victim = &rt.workers[v];
    WorkerStats::bump(&my.stats.steal_attempts, 1);
    crate::telemetry::emit_current(
        rt,
        me,
        crate::telemetry::EventKind::StealAttempt,
        0,
        v as u32,
    );
    post_request(victim, &my.req);

    loop {
        match my.req.status.load(Ordering::Acquire) {
            REQ_SERVED => {
                my.req.status.store(REQ_FREE, Ordering::Relaxed);
                // Safety: combiner wrote the grab before the Release store.
                let grab = unsafe { (*my.req.grab.get()).take() };
                WorkerStats::bump(&my.stats.steal_hits, 1);
                let local = rt.topo.same_node(me, v);
                if local {
                    WorkerStats::bump(&my.stats.steals_local_node, 1);
                } else {
                    WorkerStats::bump(&my.stats.steals_remote_node, 1);
                }
                // Telemetry distance class rides the band byte: 0 = the
                // victim shared the thief's NUMA node, 1 = remote.
                crate::telemetry::emit_current(
                    rt,
                    me,
                    crate::telemetry::EventKind::StealHit,
                    u8::from(!local),
                    v as u32,
                );
                my.reset_fail_streak();
                return grab;
            }
            REQ_EMPTY => {
                my.req.status.store(REQ_FREE, Ordering::Relaxed);
                crate::telemetry::emit_current(
                    rt,
                    me,
                    crate::telemetry::EventKind::StealFail,
                    0,
                    v as u32,
                );
                my.note_steal_failure();
                return None;
            }
            _ => {}
        }
        if let Some(_guard) = victim.steal_lock.try_lock() {
            // Elected combiner: serve a policy-sized batch of the pending
            // requests in one pass (all of them under full aggregation).
            let mut reqs = drain_requests(victim);
            if !reqs.is_empty() {
                // Distance-aware service order: near thieves get the grabs
                // first. The default policy keys everything 0, and the sort
                // is stable, so arrival order is preserved there.
                reqs.sort_by_key(|r| rt.steal_pol.thief_priority(v, r.thief, &rt.topo));
                let k = rt.steal_pol.serve_batch(reqs.len()).max(1).min(reqs.len());
                // Liveness: the combiner's own request must be in the batch
                // it serves — otherwise a bounded batch could re-queue us
                // forever while we keep doing everyone else's work.
                if let Some(pos) = reqs[k..].iter().position(|r| r.thief == me) {
                    reqs.swap(k - 1, k + pos);
                }
                let (serve_now, overflow) = reqs.split_at(k);
                let mut grabs = serve(rt, me, v, serve_now, &my.stats);
                place_affine(rt, serve_now, &mut grabs, &my.stats);
                WorkerStats::bump(&my.stats.combine_batches, 1);
                WorkerStats::bump(&my.stats.combine_served, serve_now.len() as u64);
                if serve_now.len() >= 2 {
                    WorkerStats::bump(&my.stats.aggregated_requests, serve_now.len() as u64);
                }
                let exhausted = grabs.len() < serve_now.len();
                distribute(serve_now.to_vec(), grabs);
                // Fairness: requests beyond the batch bound are *not*
                // failed while the victim still has work (the full batch
                // got grabs) — re-queue them so the next combiner pass
                // serves them. Once the victim ran dry mid-batch, answer
                // the rest empty so those thieves move on. Each request is
                // re-queued at most once per post: a thief in a join-wait
                // help loop must get back to re-checking its wait condition
                // within a bounded number of combiner passes, not be held
                // captive for the victim's whole work stream.
                for req in overflow {
                    if exhausted || req.requeued.swap(true, Ordering::Relaxed) {
                        req.status.store(REQ_EMPTY, Ordering::Release);
                    } else {
                        push_node(victim, req);
                    }
                }
            }
            continue; // re-check own status (we were among the drained)
        }
        std::hint::spin_loop();
    }
}

/// Centralized-queue mode: claim every currently-ready task of `frame` and
/// publish it into the shared queue (insertion-time scheduling, the
/// QUARK/libGOMP model). Called by the engine on spawn and on completion;
/// a no-op under distributed queues (thieves discover frames lazily).
pub(crate) fn publish_ready(rt: &Arc<RtInner>, me: usize, frame: &Arc<Frame>) {
    debug_assert!(rt.queue.centralized());
    let mut claimed: Vec<(usize, Arc<crate::task::Task>)> = Vec::new();
    let mut promotions = 0u64;
    frame.steal_scan(usize::MAX, &rt.tun.promotion, &mut claimed, &mut promotions);
    if promotions > 0 {
        WorkerStats::bump(&rt.workers[me].stats.promotions, promotions);
    }
    if claimed.is_empty() {
        return;
    }
    for (idx, task) in claimed {
        let item = WorkItem::task(Arc::clone(frame), idx, task);
        if let Err(item) = rt.queue.push(me, item) {
            // The queue refused the task; it is already claimed, so it must
            // run now or never.
            run_grab(rt, me, item.into_grab());
        }
    }
    rt.signal_work();
}

/// Execute stolen work on worker `me`.
pub(crate) fn run_grab(rt: &Arc<RtInner>, me: usize, grab: Grab) {
    match grab {
        Grab::Fast(job) => {
            WorkerStats::bump(&rt.workers[me].stats.tasks_executed_stolen, 1);
            // Safety: the job's join does not return before the terminal
            // state we are about to set; the record is alive.
            unsafe { job.execute(rt, me) };
        }
        Grab::Task { frame, idx, task } => {
            execute_task_at(rt, me, &frame, idx, task, /*stolen=*/ true);
        }
        Grab::Run(f) => f(rt, me),
    }
}
