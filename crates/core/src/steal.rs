//! Work stealing with request aggregation (flat combining).
//!
//! An idle worker posts a request node onto the victim's Treiber stack, then
//! races to acquire the victim's *steal lock*. The winner — the **elected
//! combiner thief** — drains every pending request and serves all of them in
//! a single traversal of the victim's work: N pending requests are handled
//! by one ready-task detection, the paper's reduction of steal overhead
//! ([Hendler et al.] flat combining, [Tchiboukdjian et al.] analysis).
//!
//! The combiner first scans the victim's frames from the oldest for ready
//! data-flow tasks (claiming them with the task-state CAS), then invokes the
//! splitters of the victim's adaptive tasks. Because splitters only run
//! under the victim's steal lock, at most one thief splits any adaptive task
//! at a time — the synchronisation contract the adaptive model relies on.

use crate::ctx::execute_task_at;
use crate::frame::Frame;
use crate::runtime::RtInner;
use crate::stats::WorkerStats;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicPtr, AtomicU8, Ordering};
use std::sync::Arc;

/// Work handed to a thief.
pub(crate) enum Grab {
    /// A stack job stolen from the fork-join fast lane.
    Fast(crate::fastlane::FastJob),
    /// A claimed data-flow task (state already `ST_STOLEN`).
    Task { frame: Arc<Frame>, idx: usize },
    /// A closure to run (typically a stolen slice of an adaptive loop).
    Run(Box<dyn FnOnce(&Arc<RtInner>, usize) + Send>),
}

pub(crate) const REQ_FREE: u8 = 0;
pub(crate) const REQ_POSTED: u8 = 1;
pub(crate) const REQ_SERVED: u8 = 2;
pub(crate) const REQ_EMPTY: u8 = 3;

/// A steal request. Each worker owns exactly one, re-posted serially.
pub(crate) struct Request {
    next: AtomicPtr<Request>,
    status: AtomicU8,
    /// Index of the requesting (thief) worker.
    pub(crate) thief: usize,
    grab: UnsafeCell<Option<Grab>>,
}

// Safety: `grab` is written by the combiner before the `Release` store of
// `status = SERVED`, and read by the owning thief after an `Acquire` load.
unsafe impl Sync for Request {}
unsafe impl Send for Request {}

impl Request {
    pub(crate) fn new(thief: usize) -> Request {
        Request {
            next: AtomicPtr::new(std::ptr::null_mut()),
            status: AtomicU8::new(REQ_FREE),
            thief,
            grab: UnsafeCell::new(None),
        }
    }
}

/// Push `req` onto `victim`'s request stack.
fn post_request(victim: &crate::runtime::Worker, req: &Request) {
    req.status.store(REQ_POSTED, Ordering::Relaxed);
    let req_ptr = req as *const Request as *mut Request;
    let mut head = victim.req_head.load(Ordering::Relaxed);
    loop {
        req.next.store(head, Ordering::Relaxed);
        match victim.req_head.compare_exchange_weak(
            head,
            req_ptr,
            Ordering::Release,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(h) => head = h,
        }
    }
}

/// Drain all posted requests from `victim` (combiner side).
fn drain_requests(victim: &crate::runtime::Worker) -> Vec<&Request> {
    let mut head = victim.req_head.swap(std::ptr::null_mut(), Ordering::Acquire);
    let mut out = Vec::new();
    while !head.is_null() {
        // Safety: request nodes live inside `Arc<Worker>`s owned by the
        // runtime; a node stays valid for the runtime's lifetime, and the
        // posting thief spins until we publish an answer.
        let req: &Request = unsafe { &*head };
        head = req.next.load(Ordering::Relaxed);
        out.push(req);
    }
    out
}

/// Serve `reqs` against `victim`: claim ready tasks (frames, oldest first),
/// then split adaptive work. Returns grabs (≤ `reqs.len()`), in an order
/// matching `reqs` as far as it goes.
fn serve(
    rt: &Arc<RtInner>,
    victim: &crate::runtime::Worker,
    reqs: &[&Request],
    my_stats: &WorkerStats,
) -> Vec<Grab> {
    let k = reqs.len();
    let mut grabs: Vec<Grab> = Vec::with_capacity(k);

    // 0. Fork-join fast lane (the Cilk-like stack of independent tasks).
    while grabs.len() < k {
        match victim.fast_lane.steal() {
            Some(j) => grabs.push(Grab::Fast(j)),
            None => break,
        }
    }

    // 1. Ready data-flow tasks from the victim's frames.
    let frames: Vec<Arc<Frame>> = victim.frames.lock().clone();
    let mut promotions = 0u64;
    for f in frames {
        if grabs.len() >= k {
            break;
        }
        let mut idxs = Vec::new();
        f.steal_scan(k - grabs.len(), &rt.tun.promotion, &mut idxs, &mut promotions);
        for idx in idxs {
            grabs.push(Grab::Task { frame: Arc::clone(&f), idx });
        }
    }
    if promotions > 0 {
        WorkerStats::bump(&my_stats.promotions, promotions);
    }

    // 2. Adaptive tasks: invoke splitters for the still-unserved thieves.
    if grabs.len() < k {
        let ads: Vec<Arc<dyn crate::adaptive::Adaptive>> = victim.adaptives.lock().clone();
        for ad in ads {
            if grabs.len() >= k {
                break;
            }
            let thieves: Vec<usize> =
                reqs[grabs.len()..].iter().map(|r| r.thief).collect();
            let before = grabs.len();
            ad.split(&thieves, &mut grabs);
            debug_assert!(grabs.len() - before <= thieves.len());
            if grabs.len() > before {
                WorkerStats::bump(&my_stats.splits, 1);
            }
        }
    }
    grabs
}

/// Answer `reqs` with `grabs` (missing ones get `REQ_EMPTY`).
fn distribute(reqs: Vec<&Request>, grabs: Vec<Grab>) {
    let mut grabs = grabs.into_iter();
    for req in reqs {
        match grabs.next() {
            Some(g) => {
                // Safety: we own the drained request until we publish status.
                unsafe {
                    *req.grab.get() = Some(g);
                }
                req.status.store(REQ_SERVED, Ordering::Release);
            }
            None => req.status.store(REQ_EMPTY, Ordering::Release),
        }
    }
}

/// One steal attempt by worker `me`: pick a random victim, post a request,
/// participate in combining until answered. Returns work, or `None`.
pub(crate) fn try_steal_once(rt: &Arc<RtInner>, me: usize) -> Option<Grab> {
    let p = rt.num_workers();
    if p < 2 {
        return None;
    }
    let my = &rt.workers[me];
    // Random victim != me.
    let mut v = (my.next_rand() % (p as u64 - 1)) as usize;
    if v >= me {
        v += 1;
    }
    let victim = &rt.workers[v];
    WorkerStats::bump(&my.stats.steal_attempts, 1);
    post_request(victim, &my.req);

    loop {
        match my.req.status.load(Ordering::Acquire) {
            REQ_SERVED => {
                my.req.status.store(REQ_FREE, Ordering::Relaxed);
                // Safety: combiner wrote the grab before the Release store.
                let grab = unsafe { (*my.req.grab.get()).take() };
                WorkerStats::bump(&my.stats.steal_hits, 1);
                return grab;
            }
            REQ_EMPTY => {
                my.req.status.store(REQ_FREE, Ordering::Relaxed);
                return None;
            }
            _ => {}
        }
        if let Some(_guard) = victim.steal_lock.try_lock() {
            // Elected combiner: serve every pending request in one pass.
            let reqs = drain_requests(victim);
            if !reqs.is_empty() {
                let k = if rt.tun.aggregation { reqs.len() } else { 1 };
                let (serve_now, fail_now) = reqs.split_at(k.min(reqs.len()));
                let grabs = serve(rt, victim, serve_now, &my.stats);
                WorkerStats::bump(&my.stats.combine_batches, 1);
                WorkerStats::bump(&my.stats.combine_served, serve_now.len() as u64);
                if serve_now.len() >= 2 {
                    WorkerStats::bump(&my.stats.aggregated_requests, serve_now.len() as u64);
                }
                distribute(serve_now.to_vec(), grabs);
                for req in fail_now {
                    req.status.store(REQ_EMPTY, Ordering::Release);
                }
            }
            continue; // re-check own status (we were among the drained)
        }
        std::hint::spin_loop();
    }
}

/// Execute stolen work on worker `me`.
pub(crate) fn run_grab(rt: &Arc<RtInner>, me: usize, grab: Grab) {
    match grab {
        Grab::Fast(job) => {
            WorkerStats::bump(&rt.workers[me].stats.tasks_executed_stolen, 1);
            // Safety: the job's join does not return before the terminal
            // state we are about to set; the record is alive.
            unsafe { job.execute(rt, me) };
        }
        Grab::Task { frame, idx } => {
            let task = frame.task(idx);
            execute_task_at(rt, me, &frame, idx, task, /*stolen=*/ true);
        }
        Grab::Run(f) => f(rt, me),
    }
}
