//! Best-effort worker pinning (`sched_setaffinity`) — the topology
//! follow-up that turns the worker→core map from nominal into real.
//!
//! The workspace is built offline (no `libc` crate available), so the
//! Linux syscall is issued directly with inline assembly on the
//! architectures we run on. Everything is **best effort** by contract:
//! a missing platform, a core id outside the process's cpuset, or a
//! denied syscall simply leaves the thread unpinned and the mapping
//! nominal — [`Builder::pin_workers`](crate::Builder::pin_workers)
//! documents exactly that fallback.

/// `cpu_set_t` is 1024 bits in the kernel ABI.
const CPU_SET_BITS: usize = 1024;
const CPU_SET_WORDS: usize = CPU_SET_BITS / 64;

/// Pin the calling thread to `core` (a kernel cpu id). Returns `true` on
/// success, `false` on any failure or on unsupported platforms — callers
/// must treat `false` as "keep the nominal mapping", never as an error.
pub(crate) fn pin_current_thread(core: usize) -> bool {
    if core >= CPU_SET_BITS {
        return false;
    }
    let mut mask = [0u64; CPU_SET_WORDS];
    mask[core / 64] = 1u64 << (core % 64);
    sched_setaffinity_self(&mask)
}

/// `sched_setaffinity(0, sizeof mask, mask)` for the calling thread.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sched_setaffinity_self(mask: &[u64; CPU_SET_WORDS]) -> bool {
    const SYS_SCHED_SETAFFINITY: i64 = 203;
    let ret: i64;
    // Safety: the syscall reads `mask` (never writes), the pointer and
    // length describe a live buffer, and pid 0 means "calling thread".
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0usize,                       // pid 0 = current thread
            in("rsi") CPU_SET_WORDS * 8,            // mask size in bytes
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// `sched_setaffinity(0, sizeof mask, mask)` for the calling thread.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sched_setaffinity_self(mask: &[u64; CPU_SET_WORDS]) -> bool {
    const SYS_SCHED_SETAFFINITY: i64 = 122;
    let ret: i64;
    // Safety: see the x86_64 variant.
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") SYS_SCHED_SETAFFINITY,
            inlateout("x0") 0usize => ret,
            in("x1") CPU_SET_WORDS * 8,
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

/// Unsupported platform: no pinning, nominal mapping kept.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sched_setaffinity_self(_mask: &[u64; CPU_SET_WORDS]) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_core_is_refused() {
        assert!(!pin_current_thread(CPU_SET_BITS));
        assert!(!pin_current_thread(usize::MAX));
    }

    #[test]
    fn pinning_is_best_effort_and_does_not_crash() {
        // On Linux this usually succeeds for cpu 0; elsewhere (or in a
        // restricted cpuset) it returns false. Either way the thread keeps
        // running — which is the whole contract.
        let _ = pin_current_thread(0);
        let _ = pin_current_thread(9999);
        assert_eq!(1 + 1, 2);
    }
}
