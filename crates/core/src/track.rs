//! Heterogeneous execution tracks (`DESIGN.md` §10): engines with
//! different execution properties sitting beside the CPU worker pool.
//!
//! The data-flow core computes *when* a task may run; a track decides
//! *where and how*. [`Track::Cpu`](crate::attrs::Track) is today's worker
//! pool (wrapped as [`CpuTrack`] for uniformity). [`OffloadEngine`] models
//! an accelerator the way GPU frame-graph runtimes type their passes:
//! explicit H2D/D2H transfer steps synthesized per handle access (first
//! device use uploads, written handles download at commit), a batched
//! kernel-launch queue paying a configurable launch latency per batch,
//! a bounded number of in-flight batches, and an asynchronous completion
//! stream. [`IoEngine`] runs bodies that block on external events on a
//! small dedicated thread set so they never occupy a CPU worker.
//!
//! The load-bearing inversion: an offloaded task's successors become
//! ready when its **completion drains**, not when its body returns. The
//! engine never runs user code — it models the device timeline on its own
//! thread, then injects a completion job through the existing inject
//! lanes; a CPU worker drains that job, runs the body, and only then
//! publishes the task's completion into the frame (releasing the
//! version-chain successors). Cancellation and panic poisoning therefore
//! cross the track boundary through the exact machinery of §8: the
//! completion job re-checks the token, and a fault at the launch boundary
//! poisons every task of the batch *before* any completion publishes.
//!
//! Track threads are not workers: they own no T.H.E. deque, no steal
//! `Request` node and no worker telemetry ring. Code that executes on
//! them runs under a *detached* [`RawCtx`] (syncs spin-wait instead of
//! stealing, fork-joins run inline) and emits to the track's own
//! telemetry lane via the thread-local registered in
//! [`crate::telemetry::set_track_lane`].

use crate::access::HandleId;
use crate::attrs::{Track, NORMAL_BAND, PRIORITY_BANDS};
use crate::ctx::{complete_and_publish, run_claimed_body, RawCtx};
use crate::frame::Frame;
use crate::runtime::{Job, RtInner};
use crate::stats::WorkerStats;
use crate::task::Task;
use crate::telemetry::{self, EventKind, WorkerTelemetry};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

/// How long engine threads sleep between shutdown-flag checks while idle.
const IDLE_WAIT: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// Tunables

/// Configuration of the non-CPU tracks (`Tunables::offload`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OffloadTunables {
    /// Modelled kernel-launch latency paid once per batch, in µs
    /// (`XKAAPI_OFFLOAD_LATENCY_US`).
    pub launch_latency_us: u64,
    /// Maximum tasks fused into one kernel launch.
    pub batch: usize,
    /// Maximum launched-but-undrained batches the device pipelines.
    pub max_inflight: usize,
    /// Modelled cost of one H2D/D2H transfer step, in µs (0 = stamp the
    /// transfer events but pay nothing).
    pub transfer_cost_us: u64,
    /// Dedicated blocking-I/O threads (`XKAAPI_IO_THREADS`).
    pub io_threads: usize,
}

impl Default for OffloadTunables {
    fn default() -> OffloadTunables {
        OffloadTunables {
            launch_latency_us: 20,
            batch: 8,
            max_inflight: 4,
            transfer_cost_us: 0,
            io_threads: 2,
        }
    }
}

// ---------------------------------------------------------------------------
// The track abstraction

/// A dataflow-ready task handed to a track engine. The engine owns the
/// claim: it (or a completion job it emits) must eventually run or skip
/// the body and publish the completion into the frame.
pub struct ReadyTask {
    pub(crate) frame: Arc<Frame>,
    pub(crate) idx: usize,
    pub(crate) task: Arc<Task>,
}

/// An execution engine tasks can be routed to by [`Track`] attribute.
///
/// `submit_ready` receives tasks whose dependencies are satisfied;
/// `poll_completions` drains any pending completion records back into
/// dataflow readiness and returns how many it drained; `quiesce` blocks
/// until every submitted task's completion has retired. `quiesce` (and
/// `poll_completions` for [`OffloadEngine`]) must be called from outside
/// the worker pool: completions retire on CPU workers.
pub trait TrackEngine: Send + Sync {
    /// Short stable name (also the engine's Perfetto lane prefix).
    fn name(&self) -> &'static str;
    /// Accept a dependency-satisfied task for execution on this engine.
    fn submit_ready(&self, t: ReadyTask);
    /// Push pending completion records toward the pool; returns drained.
    fn poll_completions(&self) -> usize;
    /// Block until every submitted task has fully retired.
    fn quiesce(&self);
}

/// Route a ready task to its engine. Returns `false` when the task should
/// execute inline on the CPU (the default track, a track thread running
/// nested work, or a runtime already shutting down).
#[inline]
pub(crate) fn dispatch(
    rt: &Arc<RtInner>,
    widx: usize,
    frame: &Arc<Frame>,
    idx: usize,
    task: &Arc<Task>,
) -> bool {
    if matches!(task.attrs.track, Track::Cpu) {
        return false;
    }
    // Nested track work runs inline on the current track thread (an io
    // task submitting another io task must not wait for its own thread),
    // and a draining runtime stops feeding its engines.
    if telemetry::on_track_thread() || rt.shutdown.load(Ordering::Acquire) {
        return false;
    }
    let ready = ReadyTask {
        frame: Arc::clone(frame),
        idx,
        task: Arc::clone(task),
    };
    match task.attrs.track {
        Track::Cpu => unreachable!(),
        Track::Offload => {
            WorkerStats::bump(&rt.workers[widx].stats.tasks_offloaded, 1);
            rt.tracks.offload.submit_ready(ready);
        }
        Track::Io => {
            rt.tracks.io.submit_ready(ready);
        }
    }
    true
}

// ---------------------------------------------------------------------------
// CpuTrack: the worker pool, wearing the trait

/// The existing CPU worker pool wrapped as a [`TrackEngine`]: submission
/// executes inline (the pool's readiness hand-off *is* its queue), so
/// completions are always already drained.
pub struct CpuTrack {
    rt: OnceLock<Weak<RtInner>>,
}

impl CpuTrack {
    fn new() -> CpuTrack {
        CpuTrack {
            rt: OnceLock::new(),
        }
    }
}

impl TrackEngine for CpuTrack {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn submit_ready(&self, t: ReadyTask) {
        let Some(rt) = self.rt.get().and_then(Weak::upgrade) else {
            return;
        };
        let widx = crate::worker::current_worker_of(&rt).unwrap_or(0);
        run_claimed_body(&rt, widx, &t.frame, t.idx, t.task);
    }

    fn poll_completions(&self) -> usize {
        0
    }

    fn quiesce(&self) {}
}

// ---------------------------------------------------------------------------
// OffloadEngine: the modelled accelerator

struct Completion {
    t: ReadyTask,
    /// The launch boundary faulted: the failure is already recorded in
    /// the frame; the completion job skips the body and publishes.
    prefailed: bool,
    /// Tasks of this batch whose completion has not yet retired; the last
    /// one frees the batch's in-flight slot.
    remaining: Arc<AtomicUsize>,
}

struct OffloadShared {
    queue: VecDeque<ReadyTask>,
    /// Handles already uploaded to the modelled device (first use pays
    /// the H2D step, later uses hit device memory).
    resident: HashSet<HandleId>,
    completions: VecDeque<Completion>,
    /// Launched batches whose completions have not all retired.
    inflight: usize,
    submitted: u64,
    retired: u64,
    shutdown: bool,
}

/// The modelled accelerator engine (`Track::Offload`).
///
/// One device thread batches submitted tasks into kernel launches:
/// per batch it synthesizes H2D transfer steps for handles not yet
/// device-resident, pays the launch latency, synthesizes D2H steps for
/// written handles (commit-on-completion download), then emits one
/// completion record per task. Completions are injected as root jobs; a
/// CPU worker drains each, runs the task body, and publishes into the
/// frame — the successor-release point. At most `max_inflight` batches
/// may be launched-but-undrained; the device stalls beyond that.
pub struct OffloadEngine {
    tun: OffloadTunables,
    state: Mutex<OffloadShared>,
    cv: Condvar,
    pub(crate) tele: WorkerTelemetry,
    pub(crate) stats: WorkerStats,
    rt: OnceLock<Weak<RtInner>>,
}

impl OffloadEngine {
    fn new(tun: OffloadTunables) -> OffloadEngine {
        OffloadEngine {
            tun,
            state: Mutex::new(OffloadShared {
                queue: VecDeque::new(),
                resident: HashSet::new(),
                completions: VecDeque::new(),
                inflight: 0,
                submitted: 0,
                retired: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            tele: WorkerTelemetry::new(),
            stats: WorkerStats::default(),
            rt: OnceLock::new(),
        }
    }

    /// One H2D (`dir == 0`) or D2H (`dir == 1`) transfer step: a traced
    /// span (the direction rides the event's band field) plus the
    /// modelled cost.
    fn transfer(&self, tracing: bool, dir: u8, handle: u32) {
        if tracing {
            self.tele
                .emit(telemetry::tick(), EventKind::TransferB, dir, handle);
        }
        if self.tun.transfer_cost_us > 0 {
            std::thread::sleep(Duration::from_micros(self.tun.transfer_cost_us));
        }
        if tracing {
            self.tele
                .emit(telemetry::tick(), EventKind::TransferE, dir, handle);
        }
    }

    /// Model one kernel launch for `batch` on the device thread.
    fn run_batch(&self, rt: &Arc<RtInner>, batch: Vec<ReadyTask>) {
        let tracing = rt.telemetry.enabled();

        // Launch-boundary fault hook (chaos testing): a planned panic
        // here poisons the whole batch — the device "lost" the launch —
        // but completions still flow, so the cone drains poisoned
        // instead of hanging.
        #[cfg_attr(not(feature = "fault-injection"), allow(unused_mut))]
        let mut fault: Option<Box<dyn std::any::Any + Send>> = None;
        #[cfg(feature = "fault-injection")]
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| crate::fault::on_task_execute(rt))) {
            fault = Some(p);
        }

        // H2D: first device use of a handle uploads it.
        let uploads: Vec<HandleId> = {
            let mut st = self.state.lock();
            batch
                .iter()
                .flat_map(|r| r.task.accesses.iter())
                .filter(|a| st.resident.insert(a.handle))
                .map(|a| a.handle)
                .collect()
        };
        for h in &uploads {
            self.transfer(tracing, 0, h.0 as u32);
        }
        WorkerStats::bump(&self.stats.offload_h2d, uploads.len() as u64);

        // The batched kernel launch itself.
        if tracing {
            self.tele.emit(
                telemetry::tick(),
                EventKind::LaunchB,
                NORMAL_BAND,
                batch.len() as u32,
            );
        }
        if self.tun.launch_latency_us > 0 {
            std::thread::sleep(Duration::from_micros(self.tun.launch_latency_us));
        }
        if tracing {
            self.tele.emit(
                telemetry::tick(),
                EventKind::LaunchE,
                NORMAL_BAND,
                batch.len() as u32,
            );
        }
        WorkerStats::bump(&self.stats.offload_batches, 1);

        let prefailed = fault.is_some();
        if let Some(p) = fault {
            // Poison-before-complete (`DESIGN.md` §8): record the failure
            // in every affected frame before any completion publishes.
            if tracing {
                self.tele.emit(
                    telemetry::tick(),
                    EventKind::Panic,
                    NORMAL_BAND,
                    batch.len() as u32,
                );
            }
            WorkerStats::bump(&self.stats.tasks_panicked, 1);
            let mut payload = Some(p);
            for r in &batch {
                r.frame.mark_failed(r.idx);
                let p = payload
                    .take()
                    .unwrap_or_else(|| Box::new("offload launch fault"));
                r.frame.set_panic(p);
            }
        }

        // D2H: commit-on-completion download of every written handle
        // (it stays resident — the device copy is still current).
        let downloads: Vec<HandleId> = batch
            .iter()
            .flat_map(|r| r.task.accesses.iter())
            .filter(|a| a.mode.writes())
            .map(|a| a.handle)
            .collect();
        for h in &downloads {
            self.transfer(tracing, 1, h.0 as u32);
        }
        WorkerStats::bump(&self.stats.offload_d2h, downloads.len() as u64);

        // Emit one completion record per task of the batch.
        let remaining = Arc::new(AtomicUsize::new(batch.len()));
        if tracing {
            for r in &batch {
                self.tele.emit(
                    telemetry::tick(),
                    EventKind::OffloadComplete,
                    NORMAL_BAND,
                    r.idx as u32,
                );
            }
        }
        let mut st = self.state.lock();
        for t in batch {
            st.completions.push_back(Completion {
                t,
                prefailed,
                remaining: Arc::clone(&remaining),
            });
        }
    }

    /// Inject every pending completion record as a root job. The drained
    /// job runs the task body on a CPU worker and publishes into the
    /// frame — *this* is where successors of an offloaded task become
    /// ready. Returns how many records were flushed.
    fn flush(&self, rt: &Arc<RtInner>) -> usize {
        let mut n = 0;
        loop {
            let c = {
                let mut st = self.state.lock();
                if st.shutdown {
                    // Teardown: undrained completions are dropped. Their
                    // claimed tasks never publish — acceptable, nothing
                    // can be waiting on them once the pool is gone.
                    return n;
                }
                st.completions.pop_front()
            };
            let Some(c) = c else { break };
            if !self.inject_completion(rt, c) {
                return n;
            }
            n += 1;
        }
        if n > 0 {
            rt.signal_work();
        }
        n
    }

    /// Returns `false` when teardown raced the injection (the record is
    /// dropped, never published).
    fn inject_completion(&self, rt: &Arc<RtInner>, c: Completion) -> bool {
        let Completion {
            t: ReadyTask { frame, idx, task },
            prefailed,
            remaining,
        } = c;
        // The closure runs inside `try_drain_inject`, which runs jobs
        // bare: it must never unwind. `run_claimed_body` catches
        // internally; the prefailed arm only drops the unused body.
        let run = Box::new(move |raw: &mut RawCtx| {
            let rt = Arc::clone(&raw.rt);
            let widx = raw.widx;
            if prefailed {
                let _ = catch_unwind(AssertUnwindSafe(|| drop(task.take_body())));
                WorkerStats::bump(&rt.workers[widx].stats.tasks_poisoned, 1);
                complete_and_publish(&rt, widx, &frame, idx, &task);
            } else {
                run_claimed_body(&rt, widx, &frame, idx, Arc::clone(&task));
            }
            let eng = &rt.tracks.offload;
            WorkerStats::bump(&eng.stats.offload_completions, 1);
            let mut st = eng.state.lock();
            st.retired += 1;
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last completion of the batch: free its in-flight slot.
                st.inflight = st.inflight.saturating_sub(1);
            }
            drop(st);
            eng.cv.notify_all();
        });
        let mut job = Job::new(run);
        // Stamped at injection: the drainer's submit→start histogram for
        // the Normal band therefore *is* the completion-drain latency.
        if rt.telemetry.enabled() {
            job.submit_tick = telemetry::tick();
        }
        // Shutdown-aware admission: `admit_blocking` could strand the
        // device thread forever once the workers (the only drainers) are
        // gone, so poll instead and bail out at teardown.
        let adm = loop {
            if let Some(a) = rt.inject.try_admit(NORMAL_BAND) {
                break a;
            }
            if self.state.lock().shutdown || rt.shutdown.load(Ordering::Acquire) {
                return false; // dropped at teardown, like queued inject jobs
            }
            rt.signal_work();
            std::thread::sleep(Duration::from_micros(200));
        };
        let lane = rt.inject.lane_of_submitter();
        rt.inject.push(adm, lane, NORMAL_BAND, job);
        true
    }

    fn upgrade(&self) -> Option<Arc<RtInner>> {
        self.rt.get().and_then(Weak::upgrade)
    }
}

impl TrackEngine for OffloadEngine {
    fn name(&self) -> &'static str {
        "offload"
    }

    fn submit_ready(&self, t: ReadyTask) {
        let mut st = self.state.lock();
        st.submitted += 1;
        st.queue.push_back(t);
        drop(st);
        self.cv.notify_all();
    }

    fn poll_completions(&self) -> usize {
        match self.upgrade() {
            Some(rt) => self.flush(&rt),
            None => 0,
        }
    }

    fn quiesce(&self) {
        let mut st = self.state.lock();
        while !(st.shutdown
            || st.retired >= st.submitted
                && st.queue.is_empty()
                && st.completions.is_empty()
                && st.inflight == 0)
        {
            self.cv.wait_for(&mut st, IDLE_WAIT);
        }
    }
}

/// The device thread: batch, launch, flush, repeat.
fn offload_main(rt: Arc<RtInner>) {
    let eng = &rt.tracks.offload;
    telemetry::set_track_lane(&eng.tele);
    loop {
        let batch: Vec<ReadyTask> = {
            let mut st = eng.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if !st.queue.is_empty() && st.inflight < eng.tun.max_inflight.max(1) {
                    break;
                }
                eng.cv.wait_for(&mut st, IDLE_WAIT);
            }
            let n = eng.tun.batch.max(1).min(st.queue.len());
            st.inflight += 1;
            st.queue.drain(..n).collect()
        };
        eng.run_batch(&rt, batch);
        eng.flush(&rt);
    }
}

// ---------------------------------------------------------------------------
// IoEngine: the dedicated blocking thread set

enum IoWork {
    /// A dataflow task routed by `Track::Io`.
    Task(ReadyTask),
    /// A root job routed by `JobBuilder::track(Io)` / `wait_external`.
    Job(Job),
}

struct IoShared {
    queue: VecDeque<IoWork>,
    submitted: u64,
    retired: u64,
    shutdown: bool,
}

/// The blocking-I/O engine (`Track::Io`): a small dedicated thread set
/// that runs bodies which block on external events, so a blocked body
/// never occupies a CPU worker. Bodies run under a detached context —
/// children they spawn are ordinary stealable CPU tasks.
pub struct IoEngine {
    nthreads: usize,
    nworkers: usize,
    state: Mutex<IoShared>,
    cv: Condvar,
    pub(crate) tele: Box<[WorkerTelemetry]>,
    pub(crate) stats: WorkerStats,
    rt: OnceLock<Weak<RtInner>>,
}

impl IoEngine {
    fn new(nthreads: usize, nworkers: usize) -> IoEngine {
        let nthreads = nthreads.max(1);
        IoEngine {
            nthreads,
            nworkers: nworkers.max(1),
            state: Mutex::new(IoShared {
                queue: VecDeque::new(),
                submitted: 0,
                retired: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            tele: (0..nthreads).map(|_| WorkerTelemetry::new()).collect(),
            stats: WorkerStats::default(),
            rt: OnceLock::new(),
        }
    }

    fn enqueue(&self, w: IoWork) {
        let mut st = self.state.lock();
        st.submitted += 1;
        st.queue.push_back(w);
        drop(st);
        self.cv.notify_all();
    }

    /// Route a root job (`JobBuilder::wait_external`) to the io threads.
    /// Unlike lane submissions this queue is unbounded: blocking jobs
    /// must not consume admission slots sized for CPU throughput.
    pub(crate) fn submit_job(&self, job: Job) {
        self.enqueue(IoWork::Job(job));
    }
}

impl TrackEngine for IoEngine {
    fn name(&self) -> &'static str {
        "io"
    }

    fn submit_ready(&self, t: ReadyTask) {
        self.enqueue(IoWork::Task(t));
    }

    fn poll_completions(&self) -> usize {
        // Io completions publish directly from the io thread; there is
        // no deferred stream to drain.
        0
    }

    fn quiesce(&self) {
        let mut st = self.state.lock();
        while st.retired < st.submitted && !st.shutdown {
            self.cv.wait_for(&mut st, IDLE_WAIT);
        }
    }
}

/// One io thread: pop blocking work, run it detached, account it.
fn io_main(rt: Arc<RtInner>, k: usize) {
    let eng = &rt.tracks.io;
    telemetry::set_track_lane(&eng.tele[k]);
    // Borrowed worker identity for frame registration and NUMA lookups;
    // spread across the pool so detached frames don't pile on worker 0.
    let widx = k % eng.nworkers.min(rt.num_workers()).max(1);
    loop {
        let w = {
            let mut st = eng.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(w) = st.queue.pop_front() {
                    break w;
                }
                eng.cv.wait_for(&mut st, IDLE_WAIT);
            }
        };
        let tracing = rt.telemetry.enabled();
        let tele = &eng.tele[k];
        if tracing {
            tele.emit(
                telemetry::tick(),
                EventKind::IoBlockB,
                NORMAL_BAND,
                k as u32,
            );
        }
        match w {
            IoWork::Task(t) => {
                run_claimed_body(&rt, widx, &t.frame, t.idx, t.task);
            }
            IoWork::Job(job) => {
                let mut raw = RawCtx::new(Arc::clone(&rt), widx);
                if tracing {
                    let band = job.band.min(PRIORITY_BANDS as u8 - 1);
                    let t0 = telemetry::tick();
                    if job.submit_tick != 0 {
                        tele.submit_to_start[band as usize]
                            .record(t0.saturating_sub(job.submit_tick));
                    }
                    tele.emit(t0, EventKind::JobBegin, band, k as u32);
                    (job.run)(&mut raw);
                    let t1 = telemetry::tick();
                    tele.emit(t1, EventKind::JobEnd, band, k as u32);
                    tele.start_to_done[band as usize].record(t1.saturating_sub(t0));
                } else {
                    (job.run)(&mut raw);
                }
            }
        }
        if tracing {
            tele.emit(
                telemetry::tick(),
                EventKind::IoBlockE,
                NORMAL_BAND,
                k as u32,
            );
        }
        WorkerStats::bump(&eng.stats.tasks_io, 1);
        let mut st = eng.state.lock();
        st.retired += 1;
        drop(st);
        eng.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Aggregate

/// All track engines of one runtime plus their thread handles.
pub(crate) struct Tracks {
    pub(crate) cpu: CpuTrack,
    pub(crate) offload: OffloadEngine,
    pub(crate) io: IoEngine,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Tracks {
    pub(crate) fn new(tun: OffloadTunables, nworkers: usize) -> Tracks {
        Tracks {
            cpu: CpuTrack::new(),
            offload: OffloadEngine::new(tun),
            io: IoEngine::new(tun.io_threads, nworkers),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Perfetto lane names for the track threads, in the order
    /// [`Tracks::tele_refs`] yields their bundles (appended after the
    /// worker lanes).
    pub(crate) fn lane_names(&self) -> Vec<String> {
        let mut v = Vec::with_capacity(1 + self.io.nthreads);
        v.push("offload".to_string());
        for k in 0..self.io.nthreads {
            v.push(format!("io-{k}"));
        }
        v
    }

    /// Track telemetry bundles, parallel to [`Tracks::lane_names`].
    pub(crate) fn tele_refs(&self) -> impl Iterator<Item = &WorkerTelemetry> {
        std::iter::once(&self.offload.tele).chain(self.io.tele.iter())
    }

    /// Track stats bundles (merged into the single stats path).
    pub(crate) fn stats_refs(&self) -> impl Iterator<Item = &WorkerStats> {
        [&self.offload.stats, &self.io.stats].into_iter()
    }

    /// Attach the runtime and spawn the engine threads. Called once,
    /// right after `Arc::new(RtInner)`.
    pub(crate) fn start(&self, inner: &Arc<RtInner>) {
        let _ = self.cpu.rt.set(Arc::downgrade(inner));
        let _ = self.offload.rt.set(Arc::downgrade(inner));
        let _ = self.io.rt.set(Arc::downgrade(inner));
        let mut threads = self.threads.lock();
        {
            let rt = Arc::clone(inner);
            threads.push(
                std::thread::Builder::new()
                    .name("xkaapi-offload".into())
                    .spawn(move || offload_main(rt))
                    .expect("spawn offload engine thread"),
            );
        }
        for k in 0..self.io.nthreads {
            let rt = Arc::clone(inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("xkaapi-io-{k}"))
                    .spawn(move || io_main(rt, k))
                    .expect("spawn io engine thread"),
            );
        }
    }

    /// Stop and join every engine thread (runtime teardown, after the CPU
    /// workers have been joined). Queued-but-unstarted track work is
    /// dropped, like still-queued inject jobs on a plain `drop`.
    pub(crate) fn stop(&self) {
        {
            let mut st = self.offload.state.lock();
            st.shutdown = true;
        }
        self.offload.cv.notify_all();
        {
            let mut st = self.io.state.lock();
            st.shutdown = true;
        }
        self.io.cv.notify_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tunable_defaults() {
        let t = OffloadTunables::default();
        assert_eq!(t.launch_latency_us, 20);
        assert_eq!(t.batch, 8);
        assert_eq!(t.max_inflight, 4);
        assert_eq!(t.transfer_cost_us, 0);
        assert_eq!(t.io_threads, 2);
    }

    #[test]
    fn lane_names_parallel_tele_refs() {
        let tracks = Tracks::new(OffloadTunables::default(), 4);
        let names = tracks.lane_names();
        assert_eq!(names[0], "offload");
        assert_eq!(names[1], "io-0");
        assert_eq!(names[2], "io-1");
        assert_eq!(names.len(), tracks.tele_refs().count());
    }

    #[test]
    fn engine_names() {
        let tracks = Tracks::new(OffloadTunables::default(), 1);
        assert_eq!(tracks.cpu.name(), "cpu");
        assert_eq!(tracks.offload.name(), "offload");
        assert_eq!(tracks.io.name(), "io");
    }
}
