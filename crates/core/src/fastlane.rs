//! The fork-join fast lane: a Cilk-5 T.H.E. deque of stack-allocated jobs.
//!
//! The paper's §II-C: "X-KAAPI and Cilk show similar overheads for the
//! execution of independent tasks" — independent tasks skip the data-flow
//! machinery entirely. This module is that fast path: [`Ctx::join`]
//! pushes a job record living *on the joining stack frame* (no allocation)
//! into the worker's T.H.E. deque; the owner pops LIFO with one fence,
//! thieves steal FIFO under the lane lock, and the elected combiner serves
//! steal requests from this lane before scanning data-flow frames.
//!
//! Soundness of the stack storage: a join never returns before its job
//! reached a terminal state, and a terminal state is the executor's last
//! access — so the record outlives every access.
//!
//! [`Ctx::join`]: crate::ctx::Ctx::join

use crate::runtime::RtInner;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Arc;

/// Type-erased reference to a stack job.
#[derive(Clone, Copy)]
pub(crate) struct FastJob {
    pub(crate) data: *mut (),
    pub(crate) exec: unsafe fn(*mut (), &Arc<RtInner>, usize),
}

unsafe impl Send for FastJob {}

impl FastJob {
    /// # Safety
    /// The job record must still be alive and not yet executed.
    pub(crate) unsafe fn execute(self, rt: &Arc<RtInner>, widx: usize) {
        unsafe { (self.exec)(self.data, rt, widx) }
    }
}

const CAP: usize = 1 << 13;

/// Fixed-capacity T.H.E. deque of [`FastJob`]s. `push` returns `false`
/// when full (the caller runs the job inline).
pub(crate) struct FastLane {
    head: AtomicIsize,
    tail: AtomicIsize,
    lock: Mutex<()>,
    slots: Box<[std::cell::Cell<Option<FastJob>>]>,
}

// Safety: slots are written by the owner before the tail Release store and
// read by thieves under the lock / after the fence protocol.
unsafe impl Sync for FastLane {}
unsafe impl Send for FastLane {}

impl FastLane {
    pub(crate) fn new() -> FastLane {
        FastLane {
            head: AtomicIsize::new(0),
            tail: AtomicIsize::new(0),
            lock: Mutex::new(()),
            slots: (0..CAP).map(|_| std::cell::Cell::new(None)).collect(),
        }
    }

    /// Owner: push at the tail. `false` when full.
    #[inline]
    pub(crate) fn push(&self, job: FastJob) -> bool {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        if (t - h) as usize >= CAP {
            return false;
        }
        self.slots[(t as usize) & (CAP - 1)].set(Some(job));
        self.tail.store(t + 1, Ordering::Release);
        true
    }

    /// Owner: pop at the tail (LIFO), T.H.E. protocol.
    pub(crate) fn pop(&self) -> Option<FastJob> {
        let t = self.tail.load(Ordering::Relaxed) - 1;
        self.tail.store(t, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let h = self.head.load(Ordering::Relaxed);
        if h > t {
            // Possible conflict on the last job: retry under the lock.
            self.tail.store(t + 1, Ordering::Relaxed);
            let _g = self.lock.lock();
            let t = self.tail.load(Ordering::Relaxed) - 1;
            self.tail.store(t, Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::SeqCst);
            let h = self.head.load(Ordering::Relaxed);
            if h > t {
                self.tail.store(t + 1, Ordering::Relaxed);
                return None;
            }
            return self.slots[(t as usize) & (CAP - 1)].get();
        }
        self.slots[(t as usize) & (CAP - 1)].get()
    }

    /// Thief: steal from the head (oldest first).
    pub(crate) fn steal(&self) -> Option<FastJob> {
        if self.is_empty_hint() {
            return None;
        }
        let _g = self.lock.lock();
        let h = self.head.load(Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.tail.load(Ordering::Relaxed);
        if h + 1 > t {
            self.head.store(h, Ordering::Relaxed);
            return None;
        }
        self.slots[(h as usize) & (CAP - 1)].get()
    }

    #[inline]
    pub(crate) fn is_empty_hint(&self) -> bool {
        self.head.load(Ordering::Relaxed) >= self.tail.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static HITS: AtomicUsize = AtomicUsize::new(0);

    fn job() -> FastJob {
        unsafe fn exec(_d: *mut (), _rt: &Arc<RtInner>, _w: usize) {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        FastJob {
            data: std::ptr::null_mut(),
            exec,
        }
    }

    #[test]
    fn lifo_fifo_discipline() {
        let lane = FastLane::new();
        assert!(lane.pop().is_none());
        assert!(lane.steal().is_none());
        assert!(lane.push(job()));
        assert!(lane.push(job()));
        assert!(lane.steal().is_some()); // oldest
        assert!(lane.pop().is_some()); // newest
        assert!(lane.pop().is_none());
        assert!(lane.is_empty_hint());
    }
}
