//! Always-on runtime telemetry (`DESIGN.md` §9): per-worker lock-free
//! event rings, banded latency histograms, and a unified metrics registry
//! with live chrome-trace (Perfetto) export.
//!
//! Three pieces, one discipline:
//!
//! * **event rings** — every worker owns a fixed-capacity SPSC ring of
//!   16-byte typed events ([`EventKind`]): task/job run spans, steal
//!   protocol outcomes, park/unpark, inject drains, replay groups and the
//!   PR 8 shed paths (panic/cancel/expire). The owning worker thread is
//!   the *only* producer; draining (the consumer side) is serialized by
//!   the session lock in [`TelemetryState`]. A full ring drops the newest
//!   event and counts the drop — recording never blocks and never
//!   allocates.
//! * **banded latency histograms** — HDR-style fixed 64-bucket
//!   power-of-two histograms per worker × priority band × direction
//!   (submit→start and start→done), merged at snapshot time (bucket-wise
//!   addition, associative by construction) into the
//!   [`LatencyBands`] quantiles of
//!   [`StatsSnapshot`](crate::StatsSnapshot).
//! * **metrics registry** — [`MetricsRegistry`] is the single merge path
//!   for every layer's counters (worker stats, inject-lane globals,
//!   telemetry event/drop counts, latency quantiles), serialized as one
//!   JSON blob.
//!
//! Tracing is compiled in unconditionally but gated by one relaxed-load
//! [`AtomicBool`]: a disabled instrumentation point is a single load and a
//! predictable branch — no tick is taken, no event is built. The
//! `tests/alloc_counter.rs` zero-alloc gate and the `smoke --check` perf
//! gate both run with tracing compiled-but-off to keep that claim honest.
//!
//! Timestamps are raw TSC-style ticks (`rdtsc` on x86_64, `cntvct_el0` on
//! aarch64, a monotonic-clock fallback elsewhere), calibrated against
//! [`Instant`] over the session's real duration at drain time, so the hot
//! path pays one register read instead of a `clock_gettime`.

use crate::attrs::PRIORITY_BANDS;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Clock

/// Read the cheap monotonic tick counter (raw, uncalibrated units).
///
/// x86_64 `rdtsc` / aarch64 `cntvct_el0` are global, monotonic-enough
/// counters on the hardware this runtime targets (invariant TSC); other
/// architectures fall back to a process-epoch `Instant`, making ticks
/// nanoseconds (calibration then measures ~1.0 ns/tick).
#[inline(always)]
pub(crate) fn tick() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(target_arch = "aarch64")]
    {
        let v: u64;
        unsafe { core::arch::asm!("mrs {v}, cntvct_el0", v = out(reg) v) };
        v
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

// ---------------------------------------------------------------------------
// Events

/// Typed telemetry event recorded in a worker's ring.
///
/// Span kinds come in begin/end pairs ([`EventKind::span`]); the rest are
/// instants. The `band` byte carries the priority band for task/job
/// events and the distance class (0 = same NUMA node, 1 = remote) for
/// steal outcomes; `arg` carries the kind-specific operand (task sequence
/// number, victim worker, inject lane, replay group…).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A claimed task body starts running (`arg` = frame slot).
    TaskBegin = 0,
    /// The matching end of [`EventKind::TaskBegin`].
    TaskEnd = 1,
    /// A root job drained from the inject lanes starts (`arg` = lane).
    JobBegin = 2,
    /// The matching end of [`EventKind::JobBegin`].
    JobEnd = 3,
    /// A steal request was posted to a victim (`arg` = victim worker).
    StealAttempt = 4,
    /// A steal request was served with work (`arg` = victim worker,
    /// `band` = distance class: 0 same-node, 1 remote).
    StealHit = 5,
    /// A steal request found the victim empty (`arg` = victim worker).
    StealFail = 6,
    /// The worker is about to park (begin of a `park` span).
    Park = 7,
    /// The worker woke from parking (end of the `park` span).
    Unpark = 8,
    /// A root job was taken out of inject lane `arg`.
    InjectDrain = 9,
    /// A recorded-DAG replay group started (`arg` = group index).
    ReplayGroup = 10,
    /// A task body panicked (contained; `arg` = frame slot).
    Panic = 11,
    /// A task or job was elided by cooperative cancellation.
    Cancel = 12,
    /// A job was shed at drain time (deadline expired or cancelled).
    Shed = 13,
    /// An offload-track transfer step started (`band` = direction:
    /// 0 host→device, 1 device→host; `arg` = handle id).
    TransferB = 14,
    /// The matching end of [`EventKind::TransferB`].
    TransferE = 15,
    /// A batched kernel launch started on the offload track (`arg` =
    /// batch size).
    LaunchB = 16,
    /// The matching end of [`EventKind::LaunchB`].
    LaunchE = 17,
    /// An offload completion record was produced — the point successors
    /// become releasable, not the body return (`arg` = frame slot).
    OffloadComplete = 18,
    /// An I/O-track body started blocking on its external event
    /// (`arg` = io thread index).
    IoBlockB = 19,
    /// The matching end of [`EventKind::IoBlockB`].
    IoBlockE = 20,
}

impl EventKind {
    /// Decode the ring's raw `u8` back into a kind (drain side).
    fn from_u8(v: u8) -> EventKind {
        match v {
            0 => EventKind::TaskBegin,
            1 => EventKind::TaskEnd,
            2 => EventKind::JobBegin,
            3 => EventKind::JobEnd,
            4 => EventKind::StealAttempt,
            5 => EventKind::StealHit,
            6 => EventKind::StealFail,
            7 => EventKind::Park,
            8 => EventKind::Unpark,
            9 => EventKind::InjectDrain,
            10 => EventKind::ReplayGroup,
            11 => EventKind::Panic,
            12 => EventKind::Cancel,
            14 => EventKind::TransferB,
            15 => EventKind::TransferE,
            16 => EventKind::LaunchB,
            17 => EventKind::LaunchE,
            18 => EventKind::OffloadComplete,
            19 => EventKind::IoBlockB,
            20 => EventKind::IoBlockE,
            _ => EventKind::Shed,
        }
    }

    /// Short stable label used in the chrome trace and metrics JSON.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::TaskBegin | EventKind::TaskEnd => "task",
            EventKind::JobBegin | EventKind::JobEnd => "job",
            EventKind::StealAttempt => "steal_attempt",
            EventKind::StealHit => "steal_hit",
            EventKind::StealFail => "steal_fail",
            EventKind::Park | EventKind::Unpark => "park",
            EventKind::InjectDrain => "inject_drain",
            EventKind::ReplayGroup => "replay_group",
            EventKind::Panic => "panic",
            EventKind::Cancel => "cancel",
            EventKind::Shed => "shed",
            EventKind::TransferB | EventKind::TransferE => "transfer",
            EventKind::LaunchB | EventKind::LaunchE => "launch",
            EventKind::OffloadComplete => "offload_complete",
            EventKind::IoBlockB | EventKind::IoBlockE => "io_block",
        }
    }

    /// Span classification: `Some((name, is_begin))` for begin/end pairs
    /// (`task`, `job`, `park`), `None` for instant events.
    pub fn span(self) -> Option<(&'static str, bool)> {
        match self {
            EventKind::TaskBegin => Some(("task", true)),
            EventKind::TaskEnd => Some(("task", false)),
            EventKind::JobBegin => Some(("job", true)),
            EventKind::JobEnd => Some(("job", false)),
            EventKind::Park => Some(("park", true)),
            EventKind::Unpark => Some(("park", false)),
            EventKind::TransferB => Some(("transfer", true)),
            EventKind::TransferE => Some(("transfer", false)),
            EventKind::LaunchB => Some(("launch", true)),
            EventKind::LaunchE => Some(("launch", false)),
            EventKind::IoBlockB => Some(("io_block", true)),
            EventKind::IoBlockE => Some(("io_block", false)),
            _ => None,
        }
    }
}

/// The 16-byte packed form events take inside the ring.
#[derive(Clone, Copy)]
pub(crate) struct RawEvent {
    ts: u64,
    kind: u8,
    band: u8,
    arg: u32,
}

const ZERO_EVENT: RawEvent = RawEvent {
    ts: 0,
    kind: 0,
    band: 0,
    arg: 0,
};

/// A drained telemetry event with its timestamp converted to nanoseconds
/// since the runtime's construction.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryEvent {
    /// Nanoseconds since the runtime was built (calibrated ticks).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Priority band (task/job events) or distance class (steal events).
    pub band: u8,
    /// Kind-specific operand (victim, lane, frame slot, group…).
    pub arg: u32,
}

// ---------------------------------------------------------------------------
// SPSC event ring

/// Events a worker's ring can hold before it starts dropping (and
/// counting) the newest ones. 4096 × 16 B = 64 KiB per worker, allocated
/// once at worker construction so enabling tracing never allocates.
pub(crate) const RING_CAP: usize = 4096;

/// Fixed-capacity single-producer single-consumer event ring.
///
/// Producer: the owning worker thread only (`push`). Consumer: whoever
/// holds the [`TelemetryState`] session lock (`drain`). `head`/`tail` are
/// monotonic u64 positions (never wrapped), so `head - tail` is the live
/// count and `head` doubles as the lifetime accepted-event counter.
pub(crate) struct EventRing {
    slots: Box<[UnsafeCell<RawEvent>]>,
    /// Next write position (producer-owned, Release on publish).
    head: AtomicU64,
    /// Next read position (consumer-owned, Release after reading).
    tail: AtomicU64,
    /// Events rejected because the ring was full (drop-newest).
    dropped: AtomicU64,
}

// Soundness: slot `head % cap` is written only by the producer, and only
// after checking `head - tail < cap`; the consumer reads only slots in
// `tail..head`. The two index ranges are disjoint, and the Acquire/Release
// pairs on `head`/`tail` order the slot accesses.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    pub(crate) fn new(cap: usize) -> EventRing {
        EventRing {
            slots: (0..cap).map(|_| UnsafeCell::new(ZERO_EVENT)).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record one event (producer side; owning worker thread only).
    /// Never blocks, never allocates; a full ring drops the event and
    /// bumps `dropped`.
    #[inline]
    pub(crate) fn push(&self, ts: u64, kind: EventKind, band: u8, arg: u32) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head - tail >= self.slots.len() as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = self.slots[(head % self.slots.len() as u64) as usize].get();
        unsafe {
            *slot = RawEvent {
                ts,
                kind: kind as u8,
                band,
                arg,
            };
        }
        self.head.store(head + 1, Ordering::Release);
    }

    /// Move every pending event into `out` (consumer side; callers hold
    /// the session lock).
    pub(crate) fn drain(&self, out: &mut Vec<RawEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail < head {
            let slot = self.slots[(tail % self.slots.len() as u64) as usize].get();
            out.push(unsafe { *slot });
            tail += 1;
        }
        self.tail.store(tail, Ordering::Release);
    }

    /// Lifetime count of accepted events (the monotonic head position).
    pub(crate) fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Lifetime count of events dropped on a full ring.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discard pending events and zero the drop counter (stats reset;
    /// consumer side).
    pub(crate) fn reset(&self) {
        let head = self.head.load(Ordering::Acquire);
        self.tail.store(head, Ordering::Release);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histograms

/// Bucket count of the fixed power-of-two histograms: bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k)` (bucket 0 holds exactly 0), so 64
/// buckets cover the full `u64` range with ≤ 2× relative error.
pub(crate) const HIST_BUCKETS: usize = 64;

/// Concurrent log-bucketed histogram (HDR-style, fixed 64 power-of-two
/// buckets of relaxed `AtomicU64` counts). Any thread may record; reads
/// take a [`HistogramSnapshot`].
pub(crate) struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

impl Histogram {
    pub(crate) fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Count one value (raw ticks on the hot path; units are whatever the
    /// caller recorded — quantiles convert at snapshot time).
    #[inline]
    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counts out.
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::new();
        for (dst, src) in s.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        s
    }

    /// Zero every bucket (stats reset).
    pub(crate) fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Owned counts of one [`Histogram`], mergeable bucket-wise.
///
/// Merging is plain per-bucket addition, which is associative and
/// commutative by construction — `tests/telemetry.rs` asserts it — so
/// per-worker histograms can be combined in any order without changing
/// the reported quantiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::new()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (all buckets zero).
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Count one value into the owned snapshot (test/offline use; the
    /// runtime records through the atomic [`Histogram`]).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
    }

    /// Bucket-wise addition of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound of the bucket holding the `q`-quantile (`0 < q ≤ 1`),
    /// in the recorded units; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(k);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }
}

/// Largest value bucket `k` can hold.
fn bucket_upper(k: usize) -> u64 {
    match k {
        0 => 0,
        63.. => u64::MAX,
        _ => (1u64 << k) - 1,
    }
}

// ---------------------------------------------------------------------------
// Quantile report types (embedded in StatsSnapshot)

/// p50/p99/p999 of one latency distribution, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Quantiles {
    /// Median latency (ns, bucket upper bound — ≤ 2× relative error).
    pub p50_ns: u64,
    /// 99th percentile latency (ns).
    pub p99_ns: u64,
    /// 99.9th percentile latency (ns).
    pub p999_ns: u64,
    /// Number of samples behind the quantiles.
    pub count: u64,
}

/// Per-priority-band latency quantiles carried in
/// [`StatsSnapshot`](crate::StatsSnapshot) (index = band: 0 high,
/// 1 normal, 2 low). All zeros while tracing is disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBands {
    /// Queueing latency of root jobs: submit call → body start.
    pub submit_to_start: [Quantiles; PRIORITY_BANDS],
    /// Service latency: body start → body done (jobs and claimed tasks).
    pub start_to_done: [Quantiles; PRIORITY_BANDS],
}

fn quantiles_from(snap: &HistogramSnapshot, ns_per_tick: f64) -> Quantiles {
    let to_ns = |ticks: u64| -> u64 {
        if ticks == u64::MAX {
            u64::MAX
        } else {
            (ticks as f64 * ns_per_tick) as u64
        }
    };
    Quantiles {
        p50_ns: to_ns(snap.quantile(0.50)),
        p99_ns: to_ns(snap.quantile(0.99)),
        p999_ns: to_ns(snap.quantile(0.999)),
        count: snap.count(),
    }
}

// ---------------------------------------------------------------------------
// Per-worker bundle

/// The telemetry a worker owns: its event ring plus one histogram per
/// priority band and direction. Allocated once in `Worker::new` so the
/// enable flag never gates an allocation.
pub(crate) struct WorkerTelemetry {
    pub(crate) ring: EventRing,
    /// submit→start ticks per priority band (root jobs).
    pub(crate) submit_to_start: [Histogram; PRIORITY_BANDS],
    /// start→done ticks per priority band (jobs and claimed tasks).
    pub(crate) start_to_done: [Histogram; PRIORITY_BANDS],
}

impl WorkerTelemetry {
    pub(crate) fn new() -> WorkerTelemetry {
        WorkerTelemetry {
            ring: EventRing::new(RING_CAP),
            submit_to_start: std::array::from_fn(|_| Histogram::new()),
            start_to_done: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Record one event stamped `ts` (owning worker thread only).
    #[inline]
    pub(crate) fn emit(&self, ts: u64, kind: EventKind, band: u8, arg: u32) {
        self.ring.push(ts, kind, band, arg);
    }

    fn reset(&self) {
        self.ring.reset();
        for h in self.submit_to_start.iter().chain(self.start_to_done.iter()) {
            h.reset();
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime-wide state

/// Runtime-wide telemetry state: the relaxed-load enable flag, the clock
/// calibration epoch, and the accumulated drained events (the session).
pub(crate) struct TelemetryState {
    enabled: AtomicBool,
    epoch_instant: Instant,
    epoch_tick: u64,
    /// Perfetto lane names, one per drained ring: the CPU workers first,
    /// then each track thread (`offload`, `io-0`, …).
    lanes: Vec<String>,
    /// Drained-but-not-yet-taken raw events, one vec per lane. The lock
    /// also serializes the consumer side of every ring.
    session: Mutex<Vec<Vec<RawEvent>>>,
}

impl TelemetryState {
    #[cfg(test)]
    pub(crate) fn new(workers: usize, enabled: bool) -> TelemetryState {
        TelemetryState::named(
            (0..workers).map(|w| format!("worker {w}")).collect(),
            enabled,
        )
    }

    /// One explicit Perfetto lane name per drained ring (CPU workers
    /// followed by track threads).
    pub(crate) fn named(lanes: Vec<String>, enabled: bool) -> TelemetryState {
        let n = lanes.len();
        TelemetryState {
            enabled: AtomicBool::new(enabled),
            epoch_instant: Instant::now(),
            epoch_tick: tick(),
            lanes,
            session: Mutex::new((0..n).map(|_| Vec::new()).collect()),
        }
    }

    /// The one gate every instrumentation point loads (relaxed).
    #[inline(always)]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip tracing on or off at runtime.
    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds per raw tick, calibrated over the elapsed session: two
    /// (Instant, tick) samples — construction and now — divided. The
    /// longer the session, the better the estimate; sub-microsecond
    /// sessions fall back to 1.0 (the fallback clock's exact rate).
    pub(crate) fn ns_per_tick(&self) -> f64 {
        let dt_ns = self.epoch_instant.elapsed().as_nanos() as f64;
        let dticks = tick().saturating_sub(self.epoch_tick) as f64;
        if dticks < 1.0 || dt_ns < 1000.0 {
            return 1.0;
        }
        dt_ns / dticks
    }

    /// Drain every worker ring into the accumulated session (consumer
    /// side, serialized by the session lock). Cheap no-op when nothing
    /// was recorded.
    pub(crate) fn drain(&self, tele: &[&WorkerTelemetry]) {
        let mut session = self.session.lock();
        for (i, t) in tele.iter().enumerate() {
            if let Some(buf) = session.get_mut(i) {
                t.ring.drain(buf);
            }
        }
    }

    /// Drain, then move the accumulated session out as a [`TraceSession`]
    /// with calibrated nanosecond timestamps.
    pub(crate) fn take_session(&self, tele: &[&WorkerTelemetry]) -> TraceSession {
        self.drain(tele);
        let ns_per_tick = self.ns_per_tick();
        let epoch = self.epoch_tick;
        let raw: Vec<Vec<RawEvent>> = {
            let mut session = self.session.lock();
            session.iter_mut().map(std::mem::take).collect()
        };
        let workers = raw
            .into_iter()
            .map(|evs| {
                evs.into_iter()
                    .map(|e| TelemetryEvent {
                        ts_ns: (e.ts.saturating_sub(epoch) as f64 * ns_per_tick) as u64,
                        kind: EventKind::from_u8(e.kind),
                        band: e.band,
                        arg: e.arg,
                    })
                    .collect()
            })
            .collect();
        TraceSession {
            workers,
            lanes: self.lanes.clone(),
            dropped: tele.iter().map(|t| t.ring.dropped()).sum(),
        }
    }

    /// Lifetime accepted-event count across all rings.
    pub(crate) fn events_recorded(&self, tele: &[&WorkerTelemetry]) -> u64 {
        tele.iter().map(|t| t.ring.pushed()).sum()
    }

    /// Lifetime dropped-event count across all rings.
    pub(crate) fn events_dropped(&self, tele: &[&WorkerTelemetry]) -> u64 {
        tele.iter().map(|t| t.ring.dropped()).sum()
    }

    /// Merge every worker's histograms into the banded quantile report.
    pub(crate) fn collect_latency(&self, tele: &[&WorkerTelemetry]) -> LatencyBands {
        let ns_per_tick = self.ns_per_tick();
        let mut out = LatencyBands::default();
        for band in 0..PRIORITY_BANDS {
            let mut s2s = HistogramSnapshot::new();
            let mut s2d = HistogramSnapshot::new();
            for t in tele {
                s2s.merge(&t.submit_to_start[band].snapshot());
                s2d.merge(&t.start_to_done[band].snapshot());
            }
            out.submit_to_start[band] = quantiles_from(&s2s, ns_per_tick);
            out.start_to_done[band] = quantiles_from(&s2d, ns_per_tick);
        }
        out
    }

    /// Reset rings, histograms and the accumulated session
    /// (`Runtime::reset_stats`).
    pub(crate) fn reset(&self, tele: &[&WorkerTelemetry]) {
        let mut session = self.session.lock();
        for t in tele {
            t.reset();
        }
        for buf in session.iter_mut() {
            buf.clear();
        }
    }
}

/// Record an instant event on worker `widx`'s ring when tracing is on —
/// one relaxed load and a predicted branch when it is off. Must be called
/// from the owning worker thread (the ring's single producer).
#[inline]
pub(crate) fn emit_current(
    rt: &crate::runtime::RtInner,
    widx: usize,
    kind: EventKind,
    band: u8,
    arg: u32,
) {
    if rt.telemetry.enabled() {
        tele_for(rt, widx).emit(tick(), kind, band, arg);
    }
}

// ---------------------------------------------------------------------------
// Track-thread lane override
//
// Event rings are SPSC: one producer — the owning thread. Track threads
// (offload/io engines, `DESIGN.md` §10) therefore each own a telemetry
// bundle of their own and register it here at startup; every shared
// emission site resolves through `tele_for` so a task body executing on a
// track thread lands on the track's lane, never on worker `widx`'s ring
// (whose producer is a live CPU thread). The same thread-local doubles as
// the detached-context marker (`RawCtx::detached`).

thread_local! {
    static TRACK_LANE: std::cell::Cell<*const WorkerTelemetry> =
        const { std::cell::Cell::new(std::ptr::null()) };
}

/// Register `tele` as the calling thread's telemetry lane. Called once per
/// track thread at startup; `tele` must stay alive for the thread's whole
/// life (it lives in `RtInner::tracks`, and the thread holds the
/// `Arc<RtInner>`).
pub(crate) fn set_track_lane(tele: &WorkerTelemetry) {
    TRACK_LANE.with(|c| c.set(tele as *const WorkerTelemetry));
}

/// Is the calling thread a track thread (offload/io engine)?
#[inline]
pub(crate) fn on_track_thread() -> bool {
    TRACK_LANE.with(|c| !c.get().is_null())
}

/// The telemetry bundle the calling thread may emit to: its own track
/// lane if it is a track thread, worker `widx`'s otherwise.
#[inline]
pub(crate) fn tele_for(rt: &crate::runtime::RtInner, widx: usize) -> &WorkerTelemetry {
    TRACK_LANE.with(|c| {
        let p = c.get();
        if p.is_null() {
            &rt.workers[widx].tele
        } else {
            // Safety: set only by track threads, pointing into
            // `rt.tracks`, which outlives every track thread (they are
            // joined before `RtInner` drops).
            unsafe { &*p }
        }
    })
}

// ---------------------------------------------------------------------------
// Trace session & chrome-trace export

/// Events drained out of a runtime: one timeline per worker, timestamps
/// in nanoseconds since runtime construction, plus the ring-overflow drop
/// count. Produced by [`Runtime::take_trace`](crate::Runtime::take_trace);
/// export with [`to_chrome_trace`](TraceSession::to_chrome_trace).
pub struct TraceSession {
    workers: Vec<Vec<TelemetryEvent>>,
    /// Perfetto lane names, parallel to `workers`; missing entries fall
    /// back to `worker {w}`.
    lanes: Vec<String>,
    dropped: u64,
}

impl TraceSession {
    /// Number of timelines (CPU workers plus track threads).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The Perfetto lane name of timeline `w` (`worker {w}` for CPU
    /// workers, the track's name — `offload`, `io-0`, … — for tracks).
    pub fn lane_name(&self, w: usize) -> String {
        self.lanes
            .get(w)
            .cloned()
            .unwrap_or_else(|| format!("worker {w}"))
    }

    /// The drained events of worker `w`, in recording order.
    pub fn events(&self, w: usize) -> &[TelemetryEvent] {
        &self.workers[w]
    }

    /// Total drained events across all workers.
    pub fn total_events(&self) -> usize {
        self.workers.iter().map(Vec::len).sum()
    }

    /// Events lost to ring overflow (counted, never silent).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serialize as chrome-trace JSON (Perfetto / `chrome://tracing`):
    /// one lane (`tid`) per worker, `B`/`E` span pairs for task/job/park
    /// and `i` instants for the rest. Reuses the PR 7 JSON conventions
    /// (`pid` 0, microsecond `ts`).
    pub fn to_chrome_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.total_events() * 96 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
                out.push('\n');
            } else {
                out.push_str(",\n");
            }
        };
        for w in 0..self.workers.len() {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{w},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                crate::record::json_escape(&self.lane_name(w))
            );
        }
        for (w, evs) in self.workers.iter().enumerate() {
            for e in evs {
                sep(&mut out);
                let ts_us = e.ts_ns as f64 / 1000.0;
                match e.kind.span() {
                    Some((name, true)) => {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{name}\",\"ph\":\"B\",\"pid\":0,\"tid\":{w},\
                             \"ts\":{ts_us:.3},\"args\":{{\"band\":{},\"arg\":{}}}}}",
                            e.band, e.arg
                        );
                    }
                    Some((name, false)) => {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{name}\",\"ph\":\"E\",\"pid\":0,\"tid\":{w},\
                             \"ts\":{ts_us:.3}}}"
                        );
                    }
                    None => {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
                             \"tid\":{w},\"ts\":{ts_us:.3},\
                             \"args\":{{\"band\":{},\"arg\":{}}}}}",
                            e.kind.label(),
                            e.band,
                            e.arg
                        );
                    }
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Metrics registry

/// The unified metrics registry: one named bag of counters, gauges and
/// latency quantiles that every layer reports into, replacing the ad-hoc
/// counter merging previously spread across `Runtime::stats` and bench
/// glue. Build one with [`Runtime::metrics`](crate::Runtime::metrics);
/// serialize with [`to_json`](MetricsRegistry::to_json).
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, Quantiles)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register a monotonic counter.
    pub fn counter(&mut self, name: &'static str, value: u64) {
        self.counters.push((name, value));
    }

    /// Register a point-in-time gauge.
    pub fn gauge(&mut self, name: impl Into<String>, value: u64) {
        self.gauges.push((name.into(), value));
    }

    /// Register a latency distribution's quantiles.
    pub fn histogram(&mut self, name: impl Into<String>, q: Quantiles) {
        self.histograms.push((name.into(), q));
    }

    /// Look a counter or gauge up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .or_else(|| self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v))
    }

    /// Registered counters, in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// Registered latency quantiles, in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, Quantiles)> + '_ {
        self.histograms.iter().map(|(n, q)| (n.as_str(), *q))
    }

    /// Serialize the whole registry as one JSON blob:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{p50_ns,…}}}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", crate::record::json_escape(n));
        }
        out.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", crate::record::json_escape(n));
        }
        out.push_str("},\"histograms\":{");
        for (i, (n, q)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"count\":{}}}",
                crate::record::json_escape(n),
                q.p50_ns,
                q.p99_ns,
                q.p999_ns,
                q.count
            );
        }
        out.push_str("}}");
        out
    }
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_walk_cumulative_counts() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, upper 127
        }
        h.record(1 << 20); // one outlier
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile(0.50), 127);
        assert_eq!(s.quantile(0.99), 127);
        assert!(s.quantile(1.0) >= 1 << 20);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = HistogramSnapshot::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(0.999), 0);
    }

    #[test]
    fn ring_drains_fifo_and_counts_overflow() {
        let r = EventRing::new(4);
        for i in 0..6u32 {
            r.push(i as u64, EventKind::StealAttempt, 0, i);
        }
        assert_eq!(r.pushed(), 4);
        assert_eq!(r.dropped(), 2);
        let mut out = Vec::new();
        r.drain(&mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out.iter().map(|e| e.arg).collect::<Vec<_>>(), [0, 1, 2, 3]);
        // Room again after the drain.
        r.push(9, EventKind::StealHit, 1, 9);
        out.clear();
        r.drain(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].arg, 9);
        assert_eq!(EventKind::from_u8(out[0].kind), EventKind::StealHit);
    }

    #[test]
    fn ring_reset_discards_pending() {
        let r = EventRing::new(4);
        r.push(1, EventKind::Park, 0, 0);
        r.reset();
        let mut out = Vec::new();
        r.drain(&mut out);
        assert!(out.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn tick_is_monotonic_enough() {
        let a = tick();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = tick();
        assert!(b > a, "tick must advance: {a} !< {b}");
    }

    #[test]
    fn registry_json_shape() {
        let mut m = MetricsRegistry::new();
        m.counter("tasks_spawned", 7);
        m.gauge("lane0_submitted", 3);
        m.histogram(
            "submit_to_start_high",
            Quantiles {
                p50_ns: 10,
                p99_ns: 20,
                p999_ns: 30,
                count: 4,
            },
        );
        let j = m.to_json();
        assert!(j.contains("\"counters\":{\"tasks_spawned\":7}"));
        assert!(j.contains("\"gauges\":{\"lane0_submitted\":3}"));
        assert!(j.contains(
            "\"submit_to_start_high\":{\"p50_ns\":10,\"p99_ns\":20,\"p999_ns\":30,\"count\":4}"
        ));
        assert_eq!(m.get("tasks_spawned"), Some(7));
        assert_eq!(m.get("lane0_submitted"), Some(3));
        assert_eq!(m.get("absent"), None);
    }

    #[test]
    fn chrome_trace_emits_one_lane_per_worker() {
        let session = TraceSession {
            workers: vec![
                vec![
                    TelemetryEvent {
                        ts_ns: 1000,
                        kind: EventKind::TaskBegin,
                        band: 1,
                        arg: 0,
                    },
                    TelemetryEvent {
                        ts_ns: 3000,
                        kind: EventKind::TaskEnd,
                        band: 1,
                        arg: 0,
                    },
                ],
                vec![TelemetryEvent {
                    ts_ns: 2000,
                    kind: EventKind::StealHit,
                    band: 0,
                    arg: 0,
                }],
            ],
            lanes: vec!["worker 0".into(), "offload".into()],
            dropped: 0,
        };
        let j = session.to_chrome_trace();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.trim_end().ends_with("]}"));
        assert!(j.contains("\"tid\":0"));
        assert!(j.contains("\"tid\":1"));
        assert!(j.contains("\"name\":\"worker 0\""));
        assert!(j.contains("\"name\":\"offload\""));
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"name\":\"steal_hit\""));
        assert_eq!(session.worker_count(), 2);
        assert_eq!(session.total_events(), 3);
    }

    #[test]
    fn state_take_session_accumulates_and_clears() {
        let tele = [WorkerTelemetry::new(), WorkerTelemetry::new()];
        let refs: Vec<&WorkerTelemetry> = tele.iter().collect();
        let state = TelemetryState::new(2, true);
        tele[0].emit(tick(), EventKind::Park, 0, 0);
        tele[1].emit(tick(), EventKind::Unpark, 0, 0);
        state.drain(&refs);
        tele[0].emit(tick(), EventKind::StealFail, 0, 1);
        let s = state.take_session(&refs);
        assert_eq!(s.worker_count(), 2);
        assert_eq!(s.total_events(), 3);
        assert_eq!(s.dropped(), 0);
        // Taken: a second take starts empty.
        let s2 = state.take_session(&refs);
        assert_eq!(s2.total_events(), 0);
    }
}
