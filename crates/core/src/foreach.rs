//! Adaptive parallel loops (`kaapic_foreach`).
//!
//! A `foreach` creates one adaptive *master* task on the calling worker.
//! The iteration interval is pre-partitioned into `p` slices, one reserved
//! per worker; a thief stealing from the master first receives its reserved
//! slice, and once none are left the splitter carves the victim's remaining
//! interval `[b_t, e)` into `k+1` near-equal parts for `k` aggregated
//! requests (keeping one for the victim). Every slice in flight is itself
//! adaptive — registered on its worker and re-splittable — and the interval
//! arithmetic uses the CAS protocol of
//! [`IntervalCell`](crate::adaptive::IntervalCell), so concurrent
//! owner-claims and thief-splits conserve iterations exactly.

use crate::adaptive::{split_even, Adaptive, IntervalCell};
use crate::attrs::TaskAttrs;
use crate::ctx::{help_until, Ctx, RawCtx, TaskBuilder};
use crate::runtime::RtInner;
use crate::stats::WorkerStats;
use crate::steal::Grab;
use parking_lot::Mutex;
use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared control block of one `foreach`.
struct LoopCtl {
    /// Chunk body `(range, worker_index)`. Lifetime-erased: the foreach
    /// caller blocks until `remaining == 0`, and the body is only invoked
    /// for claimed chunks, each of which is counted in `remaining`.
    body: &'static (dyn Fn(Range<usize>, usize) + Sync),
    /// Iterations not yet executed.
    remaining: AtomicUsize,
    grain: usize,
    /// Reserved slices, one per worker.
    shards: Box<[Arc<IntervalCell>]>,
    /// Reserved slice already handed out / started.
    touched: Box<[AtomicBool]>,
    /// Set after a body panic: remaining iterations are drained unexecuted.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Scheduling attributes of the whole loop (builder-lowered): the
    /// priority band orders this loop's splitters against other adaptive
    /// work on the same victim.
    attrs: TaskAttrs,
}

impl LoopCtl {
    #[inline]
    fn done(&self, n: usize) {
        self.remaining.fetch_sub(n, Ordering::AcqRel);
    }

    fn poison(&self, p: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
        drop(slot);
        self.poisoned.store(true, Ordering::Release);
    }

    /// Claim an untouched, non-empty reserved slice (preferring `prefer`).
    fn claim_untouched(&self, prefer: usize) -> Option<usize> {
        let p = self.shards.len();
        for off in 0..p {
            let i = (prefer + off) % p;
            if !self.shards[i].is_empty() && !self.touched[i].swap(true, Ordering::AcqRel) {
                return Some(i);
            }
        }
        None
    }
}

/// One in-flight slice: the unit thieves split.
struct LoopWork {
    ctl: Arc<LoopCtl>,
    cell: Arc<IntervalCell>,
}

fn runner(ctl: Arc<LoopCtl>, range: Range<usize>) -> Grab {
    Grab::Run(Box::new(move |rt: &Arc<RtInner>, widx: usize| {
        let cell = Arc::new(IntervalCell::new(range.start, range.end));
        process(rt, widx, &ctl, cell);
    }))
}

impl Adaptive for LoopWork {
    fn band(&self) -> u8 {
        self.ctl.attrs.band()
    }

    fn split(&self, thieves: &[usize], out: &mut Vec<Grab>) {
        let k = thieves.len();
        if k == 0 || self.ctl.poisoned.load(Ordering::Acquire) || self.ctl.attrs.is_cancelled() {
            return;
        }
        // Leave the victim at least one grain (the paper's k+1-way split).
        let Some(stolen) = self.cell.steal_back(k, self.ctl.grain) else {
            return;
        };
        for part in split_even(stolen, k) {
            out.push(runner(Arc::clone(&self.ctl), part));
        }
    }
}

/// The master adaptive task registered on the foreach caller.
struct MasterLoop {
    ctl: Arc<LoopCtl>,
}

impl Adaptive for MasterLoop {
    fn band(&self) -> u8 {
        self.ctl.attrs.band()
    }

    fn split(&self, thieves: &[usize], out: &mut Vec<Grab>) {
        // Adaptive-split cancellation boundary: a poisoned or cancelled
        // loop stops handing out slices (the owners drain what remains).
        if self.ctl.poisoned.load(Ordering::Acquire) || self.ctl.attrs.is_cancelled() {
            return;
        }
        let mut it = thieves.iter();
        let mut unserved = thieves.len();
        // 1. Hand out reserved slices (each thief preferring its own).
        while unserved > 0 {
            let Some(&t) = it.next() else { break };
            match self.ctl.claim_untouched(t) {
                Some(i) => {
                    let cell = Arc::clone(&self.ctl.shards[i]);
                    let ctl = Arc::clone(&self.ctl);
                    out.push(Grab::Run(Box::new(
                        move |rt: &Arc<RtInner>, widx: usize| {
                            process(rt, widx, &ctl, cell);
                        },
                    )));
                    unserved -= 1;
                }
                None => break,
            }
        }
        // 2. No reserved slices left: split the largest remaining slice.
        if unserved > 0 {
            let largest = self
                .ctl
                .shards
                .iter()
                .max_by_key(|c| c.len())
                .filter(|c| !c.is_empty());
            if let Some(cell) = largest {
                if let Some(stolen) = cell.steal_back(unserved, self.ctl.grain) {
                    for part in split_even(stolen, unserved) {
                        out.push(runner(Arc::clone(&self.ctl), part));
                    }
                }
            }
        }
    }
}

/// Process one slice on worker `widx`: claim grain-sized chunks from the
/// front while registered as adaptive (splittable) work.
fn process(rt: &Arc<RtInner>, widx: usize, ctl: &Arc<LoopCtl>, cell: Arc<IntervalCell>) {
    let work: Arc<LoopWork> = Arc::new(LoopWork {
        ctl: Arc::clone(ctl),
        cell: Arc::clone(&cell),
    });
    let ad: Arc<dyn Adaptive> = work;
    rt.workers[widx].register_adaptive(Arc::clone(&ad));
    loop {
        if ctl.poisoned.load(Ordering::Acquire) {
            // Drain without executing so the caller can unblock and rethrow.
            if let Some(r) = cell.take_all() {
                ctl.done(r.len());
            }
            break;
        }
        if ctl.attrs.is_cancelled() {
            // Cancelled mid-loop: skip the remaining chunks but still drain
            // the counters (`remaining` must reach zero to unblock the
            // caller — the dataflow obligation survives cancellation).
            if let Some(r) = cell.take_all() {
                ctl.done(r.len());
                WorkerStats::bump(&rt.workers[widx].stats.tasks_cancelled, 1);
            }
            break;
        }
        let Some(r) = cell.claim_front(ctl.grain) else {
            break;
        };
        let n = r.len();
        let res = catch_unwind(AssertUnwindSafe(|| (ctl.body)(r, widx)));
        WorkerStats::bump(&rt.workers[widx].stats.loop_chunks, 1);
        if let Err(p) = res {
            ctl.poison(p);
        }
        ctl.done(n);
    }
    rt.workers[widx].deregister_adaptive(&ad);
}

/// Run a foreach to completion on worker `widx` of `rt`.
///
/// # Safety contract (internal)
/// `body` is lifetime-erased; soundness comes from this function not
/// returning until every claimed chunk has executed (`remaining == 0`).
pub(crate) fn foreach_run(
    rt: &Arc<RtInner>,
    widx: usize,
    range: Range<usize>,
    grain: Option<usize>,
    attrs: TaskAttrs,
    body: &(dyn Fn(Range<usize>, usize) + Sync),
) {
    let n = range.end.saturating_sub(range.start);
    if n == 0 || attrs.is_cancelled() {
        return;
    }
    let p = rt.num_workers();
    let grain = grain
        .unwrap_or_else(|| (n / (rt.tun.grain_factor * p)).max(1))
        .max(1);
    if p == 1 || n <= grain {
        body(range, widx);
        return;
    }

    // Reserve one slice per worker (the caller's own slice first below).
    let parts = split_even(range, p);
    let shards: Box<[Arc<IntervalCell>]> = (0..p)
        .map(|i| {
            let r = parts.get(i).cloned().unwrap_or(0..0);
            Arc::new(IntervalCell::new(r.start, r.end))
        })
        .collect();
    let touched: Box<[AtomicBool]> = (0..p).map(|_| AtomicBool::new(false)).collect();

    // Safety: see function-level contract.
    let body: &'static (dyn Fn(Range<usize>, usize) + Sync) = unsafe { std::mem::transmute(body) };
    let ctl = Arc::new(LoopCtl {
        body,
        remaining: AtomicUsize::new(n),
        grain,
        shards,
        touched,
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        attrs,
    });

    let master: Arc<dyn Adaptive> = Arc::new(MasterLoop {
        ctl: Arc::clone(&ctl),
    });
    rt.workers[widx].register_adaptive(Arc::clone(&master));
    rt.signal_work();

    // Work through our reserved slice, then any slice nobody started.
    let mut next = ctl.claim_untouched(widx);
    while let Some(i) = next {
        let cell = Arc::clone(&ctl.shards[i]);
        process(rt, widx, &ctl, cell);
        next = ctl.claim_untouched(widx);
    }
    // Help until the last chunk (possibly on a thief) completes.
    help_until(rt, widx, None, || {
        ctl.remaining.load(Ordering::Acquire) == 0
    });
    rt.workers[widx].deregister_adaptive(&master);

    let panic = ctl.panic.lock().take();
    if let Some(p) = panic {
        resume_unwind(p);
    }
}

impl<'scope> Ctx<'scope> {
    /// Adaptive parallel loop: apply `body` to every index in `range`.
    pub fn foreach<F>(&mut self, range: Range<usize>, body: &F)
    where
        F: Fn(usize) + Sync,
    {
        self.foreach_worker_chunks(range, None, &|r: Range<usize>, _w| {
            for i in r {
                body(i);
            }
        });
    }

    /// Adaptive parallel loop over chunks (`grain: None` = automatic:
    /// `n / (grain_factor × workers)`).
    pub fn foreach_chunks<F>(&mut self, range: Range<usize>, grain: Option<usize>, body: &F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.foreach_worker_chunks(range, grain, &|r: Range<usize>, _w| body(r));
    }

    /// Chunked loop whose body also receives the executing worker index
    /// (building block for reductions and worker-local state).
    pub fn foreach_worker_chunks(
        &mut self,
        range: Range<usize>,
        grain: Option<usize>,
        body: &(dyn Fn(Range<usize>, usize) + Sync),
    ) {
        self.foreach_worker_chunks_with(range, grain, TaskAttrs::default(), body);
    }

    /// Attribute-aware chunked loop shared by the plain loop entry points
    /// and [`TaskBuilder::foreach`] / [`TaskBuilder::foreach_chunks`].
    pub(crate) fn foreach_worker_chunks_with(
        &mut self,
        range: Range<usize>,
        grain: Option<usize>,
        mut attrs: TaskAttrs,
        body: &(dyn Fn(Range<usize>, usize) + Sync),
    ) {
        let (rt, widx) = {
            let raw: &RawCtx = self.as_raw();
            // Cancellation is inherited scope-wide: a loop inside a
            // cancellable cone is cancellable with it.
            if attrs.cancel.is_none() {
                attrs.cancel = raw.cancel.clone();
            }
            (Arc::clone(&raw.rt), raw.widx)
        };
        foreach_run(&rt, widx, range, grain, attrs, body);
    }

    /// Parallel reduction: fold every index into per-worker accumulators,
    /// then combine them (deterministic up to `combine` reassociation).
    pub fn foreach_reduce<T, ID, FOLD, COMB>(
        &mut self,
        range: Range<usize>,
        grain: Option<usize>,
        identity: &ID,
        fold: &FOLD,
        combine: &COMB,
    ) -> T
    where
        T: Send,
        ID: Fn() -> T + Sync,
        FOLD: Fn(&mut T, usize) + Sync,
        COMB: Fn(T, T) -> T + Send + Sync,
    {
        let p = self.num_workers();
        let slots: Vec<Mutex<Option<T>>> = (0..p).map(|_| Mutex::new(None)).collect();
        self.foreach_worker_chunks(range, grain, &|r: Range<usize>, w: usize| {
            let mut g = slots[w].lock();
            let acc = g.get_or_insert_with(identity);
            for i in r {
                fold(acc, i);
            }
        });
        let mut acc = identity();
        for s in slots {
            if let Some(v) = s.into_inner() {
                acc = combine(acc, v);
            }
        }
        acc
    }
}

impl<'b, 'scope> TaskBuilder<'b, 'scope> {
    /// Run an adaptive parallel loop carrying this builder's attributes —
    /// [`Ctx::foreach`] with a [`TaskAttrs`] descriptor. The priority band
    /// orders this loop's splitters against other adaptive work on the
    /// same victim: when thieves ask a worker hosting several loops for
    /// work, the higher-band loop's slices are handed out first.
    pub fn foreach<F>(self, range: Range<usize>, body: &F)
    where
        F: Fn(usize) + Sync,
    {
        let attrs = self.attrs;
        self.ctx
            .foreach_worker_chunks_with(range, None, attrs, &|r: Range<usize>, _w| {
                for i in r {
                    body(i);
                }
            });
    }

    /// Chunked variant of [`TaskBuilder::foreach`]
    /// ([`Ctx::foreach_chunks`] with attributes).
    pub fn foreach_chunks<F>(self, range: Range<usize>, grain: Option<usize>, body: &F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let attrs = self.attrs;
        self.ctx
            .foreach_worker_chunks_with(range, grain, attrs, &|r: Range<usize>, _w| body(r));
    }
}
