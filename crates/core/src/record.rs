//! Record-then-optimize-then-replay: ahead-of-time DAG scheduling
//! (`DESIGN.md` §7).
//!
//! X-Kaapi computes data-flow dependencies *online*, at every spawn. For
//! iterative workloads (tiled Cholesky sweeps, power iteration, solver
//! loops) the same DAG is rebuilt from scratch every iteration — pure
//! push-side overhead after the first pass. [`Runtime::record`] runs a
//! task-producing closure against a [`RecCtx`] that *captures* the spawns
//! instead of executing them, binds them through the ordinary
//! [`DataflowEngine`] once, and hands back an immutable [`RecordedDag`].
//!
//! Three ahead-of-time passes then optimize the schedule — leverage an
//! online scheduler structurally cannot have, because it discovers the
//! graph one task at a time:
//!
//! 1. **Critical-path priorities**: tasks on a longest source-to-sink path
//!    are stamped [`Priority::High`], tasks with large slack
//!    [`Priority::Low`], so the banded queues and steal scans drain the
//!    critical path first.
//! 2. **Affinity clustering**: tasks inherit the dominant home NUMA node
//!    of the data they touch (writes weigh double), or their predecessors'
//!    node, as an [`Affinity::Node`] stamp — replay lands work on the
//!    data-owning node's lanes.
//! 3. **Fusion**: straight-line chains of same-band, same-affinity tasks
//!    collapse into one replay group, cutting per-task push/steal overhead
//!    on fine-grained DAGs.
//!
//! [`RecordedDag::replay`] executes the groups through the normal
//! worker/steal engine by *continuation spawning*: ready groups are pushed
//! as bare, pre-analyzed tasks (no declared accesses — no dependency
//! analysis, the `dataflow_pushes` stat stays flat), and each group's last
//! act is to decrement its successors' predecessor counters and spawn the
//! newly ready ones. Recording binds with renaming **disabled**: replayed
//! bodies read and write the handles' committed storage, so WAR/WAW edges
//! must be kept — that is the fusion/replay legality rule.
//!
//! Both the recorded schedule and an executed replay can be exported as
//! graphviz DOT and chrome-trace JSON (`about:tracing` /
//! `ui.perfetto.dev`), making schedules inspectable artifacts.

use crate::access::Access;
use crate::attrs::{Affinity, Priority, TaskAttrs};
use crate::ctx::Ctx;
use crate::dataflow::DataflowEngine;
use crate::handle::Shared;
use crate::policy::RenamePolicy;
use crate::runtime::Runtime;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A recorded task body: replayable any number of times, so `Fn` (not
/// `FnOnce`) and owning (`'static` — clone handles into the closure).
type RecBody = Arc<dyn for<'s> Fn(&mut Ctx<'s>) + Send + Sync>;

/// One captured spawn: accesses, attributes, body, optional display label.
pub(crate) struct RecDef {
    accesses: Box<[Access]>,
    attrs: TaskAttrs,
    body: RecBody,
    label: Option<String>,
}

/// The recording context handed to [`Runtime::record`]'s closure: it
/// mirrors [`Ctx`]'s spawn surface but *captures* tasks instead of running
/// them.
///
/// Recorded bodies execute later — possibly many times — so they must own
/// their captures (`'static`) and be re-runnable (`Fn`): clone handles into
/// the closure exactly like spawning from a scope.
pub struct RecCtx {
    defs: Vec<RecDef>,
}

impl RecCtx {
    /// Capture a task with default attributes — the recording counterpart
    /// of [`Ctx::spawn`].
    pub fn spawn<F>(&mut self, accesses: impl IntoIterator<Item = Access>, f: F)
    where
        F: for<'s> Fn(&mut Ctx<'s>) + Send + Sync + 'static,
    {
        self.defs.push(RecDef {
            accesses: accesses.into_iter().collect(),
            attrs: TaskAttrs::default(),
            body: Arc::new(f),
            label: None,
        });
    }

    /// Start building an attribute-carrying recorded task — the recording
    /// counterpart of [`Ctx::task`].
    pub fn task(&mut self) -> RecTaskBuilder<'_> {
        RecTaskBuilder {
            rec: self,
            accesses: Vec::new(),
            attrs: TaskAttrs::default(),
            label: None,
        }
    }

    /// Number of tasks captured so far.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// No task captured yet?
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

/// Builder for one recorded task, started with [`RecCtx::task`] (the
/// recording counterpart of [`crate::TaskBuilder`]).
#[must_use = "a RecTaskBuilder does nothing until .spawn"]
pub struct RecTaskBuilder<'r> {
    rec: &'r mut RecCtx,
    accesses: Vec<Access>,
    attrs: TaskAttrs,
    label: Option<String>,
}

impl RecTaskBuilder<'_> {
    /// Declare a whole-object read access on `h`.
    pub fn reads<T: ?Sized>(mut self, h: &Shared<T>) -> Self {
        self.accesses.push(h.read());
        self
    }

    /// Declare a whole-object write-only access on `h`.
    pub fn writes<T: ?Sized>(mut self, h: &Shared<T>) -> Self {
        self.accesses.push(h.write());
        self
    }

    /// Declare a whole-object exclusive read-write access on `h`.
    pub fn exclusive<T: ?Sized>(mut self, h: &Shared<T>) -> Self {
        self.accesses.push(h.exclusive());
        self
    }

    /// Declare an explicit access (regions, [`crate::Partitioned`] handles).
    pub fn access(mut self, a: Access) -> Self {
        self.accesses.push(a);
        self
    }

    /// Declare several explicit accesses at once.
    pub fn accesses(mut self, accs: impl IntoIterator<Item = Access>) -> Self {
        self.accesses.extend(accs);
        self
    }

    /// Set the priority band. A non-default priority is *pinned*: the
    /// critical-path pass only re-stamps recorded-`Normal` tasks.
    pub fn priority(mut self, p: Priority) -> Self {
        self.attrs.priority = p;
        self
    }

    /// Set the data-affinity request. A non-default affinity is *pinned*:
    /// the clustering pass only stamps [`Affinity::None`] tasks.
    pub fn affinity(mut self, a: Affinity) -> Self {
        self.attrs.affinity = a;
        self
    }

    /// Attach a display label (DOT / chrome-trace exports).
    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.label = Some(l.into());
        self
    }

    /// Capture the task into the recording.
    pub fn spawn<F>(self, f: F)
    where
        F: for<'s> Fn(&mut Ctx<'s>) + Send + Sync + 'static,
    {
        let RecTaskBuilder {
            rec,
            accesses,
            attrs,
            label,
        } = self;
        rec.defs.push(RecDef {
            accesses: accesses.into_boxed_slice(),
            attrs,
            body: Arc::new(f),
            label,
        });
    }
}

/// What the recorder measured and the optimization passes did — one struct
/// per [`RecordedDag`], for tests, benches and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecordStats {
    /// Recorded tasks.
    pub tasks: usize,
    /// Dependency edges (after per-task dedup).
    pub edges: usize,
    /// Replay groups after fusion.
    pub groups: usize,
    /// Tasks living in a fused group of size `>= 2`.
    pub fused_tasks: usize,
    /// Longest source-to-sink path, in tasks.
    pub critical_path_len: usize,
    /// Tasks per priority band after the critical-path pass
    /// (`[high, normal, low]`).
    pub bands: [usize; 3],
    /// Tasks the affinity-clustering pass stamped with a node.
    pub affinity_stamped: usize,
}

/// One recorded task after optimization.
struct RecTask {
    body: RecBody,
    label: Option<String>,
}

/// One replay group (a fused chain, or a single task).
struct Group {
    /// Member task indices, in program (= chain) order.
    members: Vec<u32>,
    /// Attributes the group task is spawned with.
    attrs: TaskAttrs,
    /// Distinct predecessor groups.
    npred: u32,
    /// Distinct successor groups.
    succs: Vec<u32>,
}

struct DagInner {
    tasks: Vec<RecTask>,
    /// Per-task attributes after the optimization passes.
    attrs: Vec<TaskAttrs>,
    preds: Vec<Vec<u32>>,
    /// Longest path from a source to each task (in tasks, `>= 1`).
    top: Vec<u32>,
    groups: Vec<Group>,
    /// Group index of every task.
    group_of: Vec<u32>,
    stats: RecordStats,
}

/// An immutable, optimized task DAG produced by [`Runtime::record`]:
/// dependency analysis paid once, replayable any number of times.
///
/// Cloning is cheap (the DAG is shared); replays from clones are
/// independent executions.
///
/// ```
/// use xkaapi_core::{Runtime, Shared};
/// let rt = Runtime::new(2);
/// let h = Shared::new(0u64);
/// let (hw, hr) = (h.clone(), h.clone());
/// let dag = rt.record(move |r| {
///     let hw = hw.clone();
///     r.spawn([hw.exclusive()], move |t| *t.write(&hw) += 1);
/// });
/// dag.replay(&rt);
/// dag.replay(&rt);
/// assert_eq!(*hr.get(), 2);
/// ```
#[derive(Clone)]
pub struct RecordedDag {
    inner: Arc<DagInner>,
}

/// Largest fused-chain length: long enough to amortize push overhead,
/// short enough to keep steal granularity.
const FUSE_MAX: usize = 8;

impl RecordedDag {
    /// Bind the recorded defs once and run the three optimization passes.
    pub(crate) fn build(nodes: usize, defs: Vec<RecDef>) -> RecordedDag {
        let n = defs.len();
        // Renaming stays OFF: replayed bodies execute against the handles'
        // committed storage, so the recorded graph must keep every WAR/WAW
        // edge (the replay legality rule, `DESIGN.md` §7).
        let policy = RenamePolicy {
            enabled: false,
            max_live_slots: 8,
        };
        let mut eng = DataflowEngine::new();
        let mut preds: Vec<Vec<u32>> = Vec::with_capacity(n);
        for d in &defs {
            let b = eng.bind(&d.accesses, &policy);
            preds.push(eng.preds(b.index).to_vec());
        }
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p as usize].push(i as u32);
            }
        }
        let edges = preds.iter().map(|p| p.len()).sum();

        // Pass 1: critical path. Program order is a topological order
        // (every predecessor index is smaller), so two linear sweeps give
        // the longest path from sources (`top`) and to sinks (`bot`).
        let mut top = vec![1u32; n];
        for i in 0..n {
            for &p in &preds[i] {
                top[i] = top[i].max(top[p as usize] + 1);
            }
        }
        let mut bot = vec![1u32; n];
        for i in (0..n).rev() {
            for &s in &succs[i] {
                bot[i] = bot[i].max(bot[s as usize] + 1);
            }
        }
        let cp = top.iter().copied().max().unwrap_or(0);
        let mut attrs: Vec<TaskAttrs> = defs.iter().map(|d| d.attrs.clone()).collect();
        for i in 0..n {
            if attrs[i].priority == Priority::Normal {
                let slack = cp - (top[i] + bot[i] - 1);
                attrs[i].priority = if slack == 0 {
                    Priority::High
                } else if slack * 2 >= cp {
                    Priority::Low
                } else {
                    Priority::Normal
                };
            }
        }

        // Pass 2: affinity clustering — dominant home node of the data
        // touched (writes weigh double), else the predecessors' majority
        // node. Only meaningful on multi-node topologies, and recorded
        // affinities are pinned.
        let mut affinity_stamped = 0usize;
        if nodes > 1 {
            let mut weight = vec![0usize; nodes];
            for i in 0..n {
                if attrs[i].affinity != Affinity::None {
                    continue;
                }
                weight.iter_mut().for_each(|w| *w = 0);
                let mut any = false;
                for a in defs[i].accesses.iter() {
                    if let Some(hn) = a.home_node() {
                        if hn < nodes {
                            weight[hn] += if a.mode.writes() { 2 } else { 1 };
                            any = true;
                        }
                    }
                }
                if !any {
                    for &p in &preds[i] {
                        if let Affinity::Node(np) = attrs[p as usize].affinity {
                            weight[np] += 1;
                            any = true;
                        }
                    }
                }
                if any {
                    let best = (0..nodes).max_by_key(|&node| weight[node]).unwrap_or(0);
                    attrs[i].affinity = Affinity::Node(best);
                    affinity_stamped += 1;
                }
            }
        }

        // Pass 3: fusion — contract straight-line chains (single successor
        // whose single predecessor is the chain tail) of same-band,
        // same-affinity tasks into one replay group. Legality: the chain
        // members run back-to-back in dependency order inside one task, and
        // every cross-chain edge becomes a group edge below.
        let mut group_of = vec![u32::MAX; n];
        let mut members: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            if group_of[i] != u32::MAX {
                continue;
            }
            let gid = members.len() as u32;
            group_of[i] = gid;
            let mut chain = vec![i as u32];
            let mut tail = i;
            while chain.len() < FUSE_MAX && succs[tail].len() == 1 {
                let nxt = succs[tail][0] as usize;
                if group_of[nxt] != u32::MAX
                    || preds[nxt].len() != 1
                    || attrs[nxt].band() != attrs[i].band()
                    || attrs[nxt].affinity != attrs[i].affinity
                {
                    break;
                }
                group_of[nxt] = gid;
                chain.push(nxt as u32);
                tail = nxt;
            }
            members.push(chain);
        }
        let ngroups = members.len();
        let mut gsuccs: Vec<Vec<u32>> = vec![Vec::new(); ngroups];
        let mut gnpred = vec![0u32; ngroups];
        for i in 0..n {
            let gi = group_of[i] as usize;
            for &s in &succs[i] {
                let gs = group_of[s as usize];
                if gs as usize != gi && !gsuccs[gi].contains(&gs) {
                    gsuccs[gi].push(gs);
                    gnpred[gs as usize] += 1;
                }
            }
        }
        let fused_tasks = members.iter().filter(|m| m.len() > 1).map(Vec::len).sum();
        let mut bands = [0usize; 3];
        for a in &attrs {
            bands[a.band() as usize] += 1;
        }
        let stats = RecordStats {
            tasks: n,
            edges,
            groups: ngroups,
            fused_tasks,
            critical_path_len: cp as usize,
            bands,
            affinity_stamped,
        };
        let groups = members
            .into_iter()
            .enumerate()
            .map(|(g, m)| Group {
                attrs: attrs[m[0] as usize].clone(),
                members: m,
                npred: gnpred[g],
                succs: std::mem::take(&mut gsuccs[g]),
            })
            .collect();
        RecordedDag {
            inner: Arc::new(DagInner {
                tasks: defs
                    .into_iter()
                    .map(|d| RecTask {
                        body: d.body,
                        label: d.label,
                    })
                    .collect(),
                attrs,
                preds,
                top,
                groups,
                group_of,
                stats,
            }),
        }
    }

    /// What the recorder and its optimization passes produced.
    pub fn stats(&self) -> RecordStats {
        self.inner.stats
    }

    /// Number of recorded tasks.
    pub fn len(&self) -> usize {
        self.inner.tasks.len()
    }

    /// Recorded nothing?
    pub fn is_empty(&self) -> bool {
        self.inner.tasks.is_empty()
    }

    /// Priority band the critical-path pass assigned to task `i`
    /// (0 = high; see [`crate::PRIORITY_BANDS`]).
    pub fn band_of(&self, i: usize) -> u8 {
        self.inner.attrs[i].band()
    }

    /// Affinity assigned to task `i` after the clustering pass.
    pub fn affinity_of(&self, i: usize) -> Affinity {
        self.inner.attrs[i].affinity
    }

    /// Predecessor task indices of task `i` (sorted, deduplicated).
    pub fn preds_of(&self, i: usize) -> &[u32] {
        &self.inner.preds[i]
    }

    /// Execute the recorded DAG once on `rt` through the normal
    /// worker/steal engine — **without re-running dependency analysis**
    /// (the `dataflow_pushes` stat does not grow). Blocks until every
    /// task completed; replay any number of times, and bodies observe the
    /// handles' *current* data (handles are re-read, not snapshotted).
    pub fn replay(&self, rt: &Runtime) {
        self.replay_impl(rt, false);
    }

    /// [`RecordedDag::replay`] plus an execution trace (start/duration/
    /// worker per replay group) for the chrome-trace / DOT exports.
    pub fn replay_traced(&self, rt: &Runtime) -> ReplayTrace {
        self.replay_impl(rt, true)
            .expect("traced replay returns a trace")
    }

    fn replay_impl(&self, rt: &Runtime, traced: bool) -> Option<ReplayTrace> {
        let dag = Arc::clone(&self.inner);
        if dag.tasks.is_empty() {
            return traced.then(ReplayTrace::default);
        }
        let run = Arc::new(ReplayRun {
            counters: dag.groups.iter().map(|g| AtomicU32::new(g.npred)).collect(),
            epoch: Instant::now(),
            trace: traced.then(|| Mutex::new(Vec::new())),
            poisoned: AtomicBool::new(false),
            dag,
        });
        let roots: Vec<u32> = run
            .dag
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.npred == 0)
            .map(|(i, _)| i as u32)
            .collect();
        let inner = Arc::clone(&run);
        rt.scope(move |ctx| {
            for &g in &roots {
                spawn_group(&inner, ctx, g);
            }
        });
        run.trace.as_ref().map(|t| ReplayTrace {
            events: std::mem::take(&mut *t.lock()),
        })
    }

    /// Graphviz DOT of the **recorded** schedule: one node per task,
    /// filled by assigned priority band, fused groups as clusters.
    pub fn to_dot(&self) -> String {
        let d = &*self.inner;
        let mut out = String::from(
            "digraph recorded {\n  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n",
        );
        for (g, grp) in d.groups.iter().enumerate() {
            let fused = grp.members.len() > 1;
            if fused {
                let _ = writeln!(
                    out,
                    "  subgraph cluster_{g} {{\n    label=\"group {g}\";\n    color=gray;"
                );
            }
            for &m in &grp.members {
                let i = m as usize;
                let _ = writeln!(
                    out,
                    "  {}t{i} [label=\"{}\\ncp {}\", fillcolor=\"{}\"];",
                    if fused { "  " } else { "" },
                    dot_escape(&self.task_label(i)),
                    d.top[i],
                    band_color(d.attrs[i].band()),
                );
            }
            if fused {
                out.push_str("  }\n");
            }
        }
        for (i, ps) in d.preds.iter().enumerate() {
            for &p in ps {
                let _ = writeln!(out, "  t{p} -> t{i};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Graphviz DOT of an **executed** replay: the recorded structure
    /// annotated with each group's measured start time, duration and
    /// executing worker.
    pub fn executed_dot(&self, trace: &ReplayTrace) -> String {
        let d = &*self.inner;
        let mut by_group = vec![None; d.groups.len()];
        for e in &trace.events {
            by_group[e.group as usize] = Some(e);
        }
        let mut out = String::from(
            "digraph executed {\n  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n",
        );
        for (g, grp) in d.groups.iter().enumerate() {
            let timing = match by_group[g] {
                Some(e) => format!("@{}us +{}us w{}", e.start_us, e.dur_us, e.worker),
                None => "(not run)".to_string(),
            };
            let label: String = grp
                .members
                .iter()
                .map(|&m| self.task_label(m as usize))
                .collect::<Vec<_>>()
                .join("; ");
            let _ = writeln!(
                out,
                "  g{g} [label=\"{}\\n{}\", fillcolor=\"{}\"];",
                dot_escape(&label),
                timing,
                band_color(grp.attrs.band()),
            );
        }
        for (g, grp) in d.groups.iter().enumerate() {
            for &s in &grp.succs {
                let _ = writeln!(out, "  g{g} -> g{s};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Chrome-trace JSON (`about:tracing` / Perfetto) of the **predicted**
    /// schedule: each task at its critical-path depth, one lane per
    /// assigned NUMA node.
    pub fn to_chrome_trace(&self) -> String {
        let d = &*self.inner;
        let mut out = String::from("{\"traceEvents\":[");
        for i in 0..d.tasks.len() {
            if i > 0 {
                out.push(',');
            }
            let tid = match d.attrs[i].affinity {
                Affinity::Node(n) => n as u64,
                _ => 0,
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":1000,\"args\":{{\"band\":{},\"group\":{}}}}}",
                json_escape(&self.task_label(i)),
                (d.top[i] as u64 - 1) * 1000,
                d.attrs[i].band(),
                d.group_of[i],
            );
        }
        out.push_str("]}");
        out
    }

    fn task_label(&self, i: usize) -> String {
        match &self.inner.tasks[i].label {
            Some(l) => l.clone(),
            None => format!("t{i}"),
        }
    }
}

/// Execution trace of one [`RecordedDag::replay_traced`] run.
#[derive(Default)]
pub struct ReplayTrace {
    events: Vec<TraceEvent>,
}

/// Timing of one executed replay group.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Replay-group index.
    pub group: u32,
    /// Start, microseconds since the replay epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Worker that executed the group.
    pub worker: u32,
}

impl ReplayTrace {
    /// Events of this replay, one per executed group.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Chrome-trace JSON (`about:tracing` / Perfetto) of the **measured**
    /// schedule: one lane per worker, real starts and durations.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"group {}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                e.group,
                e.worker,
                e.start_us,
                e.dur_us.max(1),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Shared state of one in-flight replay: fresh per call, so repeated and
/// concurrent replays of one DAG are independent.
struct ReplayRun {
    dag: Arc<DagInner>,
    /// Remaining predecessor groups, initialized from `Group::npred`.
    counters: Box<[AtomicU32]>,
    epoch: Instant,
    trace: Option<Mutex<Vec<TraceEvent>>>,
    /// Set after any member body panicked: the rest of this replay's
    /// groups skip their bodies but keep the countdown protocol running,
    /// so the root scope unblocks and rethrows instead of hanging.
    poisoned: AtomicBool,
}

/// Spawn replay group `gi` as a bare pre-analyzed task. Its body runs the
/// member bodies in chain order, then decrements each successor group's
/// counter and spawns the ones that became ready (continuation spawning —
/// the spawned child joins this task's frame, so the whole replay is
/// covered by the root scope's completion).
fn spawn_group<'s>(run: &Arc<ReplayRun>, ctx: &mut Ctx<'s>, gi: u32) {
    let st = Arc::clone(run);
    let attrs = run.dag.groups[gi as usize].attrs.clone();
    ctx.spawn_replay_body(attrs, move |t| {
        let g = &st.dag.groups[gi as usize];
        {
            // Telemetry instant: replay group start on the live worker
            // timeline (the enclosing task span carries begin/end).
            let raw = t.as_raw();
            let widx = raw.widx;
            crate::telemetry::emit_current(
                &raw.rt,
                widx,
                crate::telemetry::EventKind::ReplayGroup,
                g.attrs.band(),
                gi,
            );
        }
        let t0 = st.trace.as_ref().map(|_| st.epoch.elapsed());
        // Panic isolation (`DESIGN.md` §8): a member panic poisons the
        // replay — downstream groups skip their bodies — but every group
        // still runs the countdown/spawn protocol below, so the root scope
        // always unblocks; the first payload is re-raised after that.
        let mut payload = None;
        if st.poisoned.load(Ordering::Acquire) {
            let raw = t.as_raw();
            crate::stats::WorkerStats::bump(&raw.rt.workers[raw.widx].stats.tasks_poisoned, 1);
        } else {
            for &m in &g.members {
                let body = &st.dag.tasks[m as usize].body;
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(t))) {
                    st.poisoned.store(true, Ordering::Release);
                    payload = Some(p);
                    break;
                }
            }
        }
        if let (Some(tr), Some(start)) = (&st.trace, t0) {
            let end = st.epoch.elapsed();
            tr.lock().push(TraceEvent {
                group: gi,
                start_us: start.as_micros() as u64,
                dur_us: end.saturating_sub(start).as_micros() as u64,
                worker: t.worker_index() as u32,
            });
        }
        for &s in &g.succs {
            if st.counters[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                spawn_group(&st, t, s);
            }
        }
        if let Some(p) = payload {
            resume_unwind(p);
        }
    });
}

impl Runtime {
    /// Record a task DAG without executing it (`DESIGN.md` §7): `f` runs
    /// once against a [`RecCtx`] whose spawns are captured, bound through
    /// the data-flow engine, and optimized ahead of time (critical-path
    /// priorities, affinity clustering, fusion). The returned
    /// [`RecordedDag`] replays any number of times with zero per-iteration
    /// dependency analysis.
    ///
    /// See [`RecordedDag`] for an example.
    pub fn record<F: FnOnce(&mut RecCtx)>(&self, f: F) -> RecordedDag {
        let mut rec = RecCtx { defs: Vec::new() };
        f(&mut rec);
        RecordedDag::build(self.topology().nodes(), rec.defs)
    }
}

fn band_color(band: u8) -> &'static str {
    match band {
        0 => "#f4cccc", // high: red-ish
        1 => "#cfe2f3", // normal: blue-ish
        _ => "#d9d9d9", // low: gray
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Minimal JSON string escaping shared with the telemetry exporters
/// (`telemetry::TraceSession::to_chrome_trace`, `MetricsRegistry::to_json`).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond(rt: &Runtime) -> (RecordedDag, Shared<u64>) {
        // a -> {b, c} -> d on one handle.
        let h = Shared::new(0u64);
        let (ha, hb, hc, hd) = (h.clone(), h.clone(), h.clone(), h.clone());
        let dag = rt.record(move |r| {
            let (a, b, c, d) = (ha.clone(), hb.clone(), hc.clone(), hd.clone());
            r.task()
                .exclusive(&a)
                .label("a")
                .spawn(move |t| *t.write(&a) += 1);
            r.task().reads(&b).label("b").spawn(move |t| {
                let _ = *t.read(&b);
            });
            r.task().reads(&c).label("c").spawn(move |t| {
                let _ = *t.read(&c);
            });
            r.task()
                .exclusive(&d)
                .label("d")
                .spawn(move |t| *t.write(&d) *= 10);
        });
        (dag, h)
    }

    #[test]
    fn record_captures_without_executing() {
        let rt = Runtime::new(1);
        let (dag, h) = diamond(&rt);
        assert_eq!(dag.len(), 4);
        assert_eq!(*h.get(), 0, "recording must not run bodies");
        let s = dag.stats();
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 5, "a->b, a->c, b->d, c->d, a->d(WAW)");
        assert_eq!(s.critical_path_len, 3);
    }

    #[test]
    fn replay_executes_and_repeats() {
        let rt = Runtime::new(2);
        let (dag, h) = diamond(&rt);
        dag.replay(&rt);
        assert_eq!(*h.get(), 10);
        dag.replay(&rt);
        assert_eq!(*h.get(), 110, "replay re-reads current data");
    }

    #[test]
    fn replay_does_not_rerun_dependency_analysis() {
        let rt = Runtime::new(2);
        let (dag, _h) = diamond(&rt);
        dag.replay(&rt); // warm-up
        rt.reset_stats();
        for _ in 0..4 {
            dag.replay(&rt);
        }
        assert_eq!(
            rt.stats().dataflow_pushes,
            0,
            "replay spawns must carry no accesses"
        );
    }

    #[test]
    fn critical_path_tasks_get_high_band() {
        let rt = Runtime::new(1);
        // chain a->b->c (critical) plus isolated d: chain is High, d Low.
        let h = Shared::new(0u64);
        let i = Shared::new(0u64);
        let (h1, h2, h3, i1) = (h.clone(), h.clone(), h.clone(), i.clone());
        let dag = rt.record(move |r| {
            let (a, b, c, d) = (h1.clone(), h2.clone(), h3.clone(), i1.clone());
            r.spawn([a.exclusive()], move |t| *t.write(&a) += 1);
            r.spawn([b.exclusive()], move |t| *t.write(&b) += 1);
            r.spawn([c.exclusive()], move |t| *t.write(&c) += 1);
            r.spawn([d.exclusive()], move |t| *t.write(&d) += 1);
        });
        assert_eq!(dag.band_of(0), 0);
        assert_eq!(dag.band_of(1), 0);
        assert_eq!(dag.band_of(2), 0);
        assert_eq!(dag.band_of(3), 2, "full-slack task demoted");
        assert_eq!(dag.stats().bands, [3, 0, 1]);
    }

    #[test]
    fn fusion_contracts_chains() {
        let rt = Runtime::new(1);
        let h = Shared::new(1u64);
        let hs: Vec<_> = (0..6).map(|_| h.clone()).collect();
        let hr = h.clone();
        let dag = rt.record(move |r| {
            for hh in &hs {
                let w = hh.clone();
                r.spawn([w.exclusive()], move |t| *t.write(&w) *= 2);
            }
        });
        let s = dag.stats();
        assert_eq!(s.tasks, 6);
        assert_eq!(s.groups, 1, "one straight chain fuses into one group");
        assert_eq!(s.fused_tasks, 6);
        dag.replay(&rt);
        assert_eq!(*hr.get(), 64);
    }

    #[test]
    fn fusion_respects_the_cap() {
        let rt = Runtime::new(1);
        let h = Shared::new(0u64);
        let hs: Vec<_> = (0..20).map(|_| h.clone()).collect();
        let dag = rt.record(move |r| {
            for hh in &hs {
                let w = hh.clone();
                r.spawn([w.exclusive()], move |t| *t.write(&w) += 1);
            }
        });
        assert!(dag.stats().groups >= 20usize.div_ceil(FUSE_MAX));
        for g in &dag.inner.groups {
            assert!(g.members.len() <= FUSE_MAX);
        }
    }

    #[test]
    fn traced_replay_and_exports() {
        let rt = Runtime::new(2);
        let (dag, _h) = diamond(&rt);
        let trace = dag.replay_traced(&rt);
        assert_eq!(trace.events().len(), dag.stats().groups);
        let dot = dag.to_dot();
        assert!(dot.starts_with("digraph recorded {"));
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("\"a\\ncp 1\""));
        let xdot = dag.executed_dot(&trace);
        assert!(xdot.starts_with("digraph executed {"));
        assert!(xdot.contains("us w"));
        let ct = dag.to_chrome_trace();
        assert!(ct.starts_with("{\"traceEvents\":["));
        assert!(ct.ends_with("]}"));
        let rct = trace.to_chrome_trace();
        assert!(rct.contains("\"ph\":\"X\""));
    }

    #[test]
    fn empty_recording_is_fine() {
        let rt = Runtime::new(1);
        let dag = rt.record(|_| {});
        assert!(dag.is_empty());
        dag.replay(&rt);
        let t = dag.replay_traced(&rt);
        assert!(t.events().is_empty());
    }

    #[test]
    fn pinned_attrs_survive_passes() {
        let rt = Runtime::new(1);
        let h = Shared::new(0u64);
        let (h1, h2) = (h.clone(), h.clone());
        let dag = rt.record(move |r| {
            let (a, b) = (h1.clone(), h2.clone());
            r.task()
                .exclusive(&a)
                .priority(Priority::Low)
                .spawn(move |t| *t.write(&a) += 1);
            r.task()
                .exclusive(&b)
                .affinity(Affinity::Node(0))
                .spawn(move |t| *t.write(&b) += 1);
        });
        assert_eq!(dag.band_of(0), 2, "recorded priority is pinned");
        assert_eq!(dag.affinity_of(1), Affinity::Node(0));
    }
}
