//! The steal layer: the thief-side protocol, behind [`StealPolicy`].
//!
//! Idle workers post request nodes onto a victim's Treiber stack and race
//! for its steal lock; the winner (the *elected combiner*) drains every
//! pending request. What happens next is policy:
//!
//! * [`AggregatedStealing`] — flat combining, the paper's design: the
//!   combiner serves **all** drained requests in a single traversal of the
//!   victim's work (N requests, one ready-task detection);
//! * [`PerThiefStealing`] — the ablation baseline: the combiner serves only
//!   itself and fails the rest (each thief pays its own traversal), the
//!   behaviour the seed runtime expressed as `Tunables::aggregation =
//!   false`.
//!
//! Implementations are stateless value objects; richer policies (NUMA-aware
//! victim pre-filtering, bounded batches) plug in here without touching the
//! election machinery in [`steal`](crate::steal).

/// Thief-side steal protocol of the engine.
pub trait StealPolicy: Send + Sync {
    /// Short human-readable name (ablation tables).
    fn name(&self) -> &'static str;

    /// Of `pending` drained requests, how many the elected combiner serves
    /// in this batch. The remainder are answered "empty" and retry.
    /// Must return at least 1 when `pending >= 1`.
    fn serve_batch(&self, pending: usize) -> usize;
}

/// Flat-combining aggregation: one combiner serves every pending request.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggregatedStealing;

impl StealPolicy for AggregatedStealing {
    fn name(&self) -> &'static str {
        "aggregated"
    }

    fn serve_batch(&self, pending: usize) -> usize {
        pending
    }
}

/// Naive per-thief stealing: the combiner serves only itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerThiefStealing;

impl StealPolicy for PerThiefStealing {
    fn name(&self) -> &'static str {
        "per-thief"
    }

    fn serve_batch(&self, pending: usize) -> usize {
        pending.min(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sizes() {
        assert_eq!(AggregatedStealing.serve_batch(7), 7);
        assert_eq!(AggregatedStealing.serve_batch(1), 1);
        assert_eq!(PerThiefStealing.serve_batch(7), 1);
        assert_eq!(PerThiefStealing.serve_batch(0), 0);
    }
}
