//! Pluggable scheduler policies: the thief-side steal protocol
//! ([`StealPolicy`]) and the write-only renaming knobs ([`RenamePolicy`]).
//!
//! Idle workers post request nodes onto a victim's Treiber stack and race
//! for its steal lock; the winner (the *elected combiner*) drains every
//! pending request. What happens next is policy:
//!
//! * [`AggregatedStealing`] — flat combining, the paper's design: the
//!   combiner serves **all** drained requests in a single traversal of the
//!   victim's work (N requests, one ready-task detection);
//! * [`PerThiefStealing`] — the ablation baseline: the combiner serves only
//!   itself and fails the rest (each thief pays its own traversal), the
//!   behaviour the seed runtime expressed as `Tunables::aggregation =
//!   false`.
//!
//! Implementations are stateless value objects; richer policies (NUMA-aware
//! victim pre-filtering, bounded batches) plug in here without touching the
//! election machinery in [`steal`](crate::steal).

/// Thief-side steal protocol of the engine.
pub trait StealPolicy: Send + Sync {
    /// Short human-readable name (ablation tables).
    fn name(&self) -> &'static str;

    /// Of `pending` drained requests, how many the elected combiner serves
    /// in this batch. The remainder are answered "empty" and retry.
    /// Must return at least 1 when `pending >= 1`.
    fn serve_batch(&self, pending: usize) -> usize;
}

/// Flat-combining aggregation: one combiner serves every pending request.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggregatedStealing;

impl StealPolicy for AggregatedStealing {
    fn name(&self) -> &'static str {
        "aggregated"
    }

    fn serve_batch(&self, pending: usize) -> usize {
        pending
    }
}

/// Naive per-thief stealing: the combiner serves only itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerThiefStealing;

impl StealPolicy for PerThiefStealing {
    fn name(&self) -> &'static str {
        "per-thief"
    }

    fn serve_batch(&self, pending: usize) -> usize {
        pending.min(1)
    }
}

/// Knobs for write-only **renaming** (WAR/WAW elimination, DESIGN.md §2).
///
/// A task declaring a write-only ([`AccessMode::Write`]) whole-object access
/// on a renameable handle would normally be ordered after every earlier
/// reader and writer of that object (the write-after-read / write-after-write
/// orderings of the sequential program). Renaming hands the writer a *fresh
/// version slot* of the data instead, so those ordering edges disappear and
/// repeated overwrites pipeline across workers. The policy bounds how many
/// uncommitted version buffers one handle may hold and provides the master
/// switch the ablation benchmarks A/B.
///
/// [`AccessMode::Write`]: crate::AccessMode::Write
#[derive(Clone, Copy, Debug)]
pub struct RenamePolicy {
    /// Master switch; `false` makes write-only behave like exclusive
    /// (serializing) even on renameable handles.
    pub enabled: bool,
    /// Maximum live (not yet reclaimed) version slots per handle beyond the
    /// original buffer. A write-only access that cannot get a slot under
    /// this cap falls back to serializing semantics. Capped internally at
    /// `u16::MAX - 1` (slot ids are packed into 16 bits).
    pub max_live_slots: u32,
}

impl Default for RenamePolicy {
    fn default() -> Self {
        RenamePolicy {
            enabled: true,
            max_live_slots: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_defaults() {
        let p = RenamePolicy::default();
        assert!(p.enabled);
        assert!(p.max_live_slots >= 1);
    }

    #[test]
    fn batch_sizes() {
        assert_eq!(AggregatedStealing.serve_batch(7), 7);
        assert_eq!(AggregatedStealing.serve_batch(1), 1);
        assert_eq!(PerThiefStealing.serve_batch(7), 1);
        assert_eq!(PerThiefStealing.serve_batch(0), 0);
    }
}
