//! Pluggable scheduler policies: the thief-side steal protocol
//! ([`StealPolicy`]) and the write-only renaming knobs ([`RenamePolicy`]).
//!
//! Idle workers post request nodes onto a victim's Treiber stack and race
//! for its steal lock; the winner (the *elected combiner*) drains every
//! pending request. The policy decides three things (DESIGN.md §3):
//!
//! * **victim selection** ([`StealPolicy::choose_victim`]) — which worker
//!   to probe, given the machine [`Topology`] and how long this thief has
//!   failed to find work;
//! * **batch sizing** ([`StealPolicy::serve_batch`]) — of the drained
//!   requests, how many the combiner serves in one traversal (the rest are
//!   re-queued for the next combiner pass);
//! * **service order** ([`StealPolicy::thief_priority`]) — when the batch
//!   is bounded, which thieves get the grabs first (near ones, under the
//!   locality-aware policies).
//!
//! Implementations:
//!
//! * [`AggregatedStealing`] — flat combining, the paper's design: uniform
//!   victims, the combiner serves **all** drained requests in a single
//!   traversal of the victim's work (N requests, one ready-task detection);
//! * [`PerThiefStealing`] — the ablation baseline: the combiner serves only
//!   itself (each thief pays its own traversal);
//! * [`UniformVictim`] — [`AggregatedStealing`] under its victim-selection
//!   name, the uniform end of the locality sweep;
//! * [`HierarchicalVictim`] — prefer victims on the thief's own NUMA node,
//!   escalate outward as the fail streak grows; bounded, near-first batches;
//! * [`LocalityFirst`] — rank victims by topology distance and walk the
//!   distance rings outward probabilistically; bounded, near-first batches.
//!
//! Implementations are stateless value objects; per-thief state (the fail
//! streak) lives on the worker and is passed in.

use crate::topology::Topology;

/// A victim pick returned by [`StealPolicy::choose_victim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VictimChoice {
    /// The worker to probe (never the thief itself).
    pub victim: usize,
    /// True when the policy deliberately left its preferred (nearest)
    /// victim set — counted as `victim_escalations` in the stats.
    pub escalated: bool,
}

impl VictimChoice {
    /// A pick inside the preferred set.
    pub fn near(victim: usize) -> VictimChoice {
        VictimChoice {
            victim,
            escalated: false,
        }
    }

    /// A pick outside the preferred set (escalation).
    pub fn far(victim: usize) -> VictimChoice {
        VictimChoice {
            victim,
            escalated: true,
        }
    }
}

/// Uniform victim over all workers except `me` (the classic randomized
/// work-stealing choice). Requires at least two workers.
pub fn uniform_victim(me: usize, workers: usize, rng: &mut dyn FnMut() -> u64) -> usize {
    debug_assert!(workers >= 2);
    let mut v = (rng() % (workers as u64 - 1)) as usize;
    if v >= me {
        v += 1;
    }
    v
}

/// Uniform pick from a candidate slice, skipping `me` (the caller
/// guarantees at least one candidate != me).
fn pick_excluding(cands: &[usize], me: usize, rng: &mut dyn FnMut() -> u64) -> Option<usize> {
    let n = cands.len();
    if n == 0 || (n == 1 && cands[0] == me) {
        return None;
    }
    loop {
        let v = cands[(rng() % n as u64) as usize];
        if v != me {
            return Some(v);
        }
    }
}

/// Thief-side steal protocol of the engine: victim selection + combiner
/// batch policy.
pub trait StealPolicy: Send + Sync {
    /// Short human-readable name (ablation tables).
    fn name(&self) -> &'static str;

    /// Of `pending` drained requests, how many the elected combiner serves
    /// in this batch. The remainder are re-queued onto the victim's request
    /// stack (served by the next combiner pass) while the victim still has
    /// work. Must return at least 1 when `pending >= 1`.
    fn serve_batch(&self, pending: usize) -> usize;

    /// Pick a victim for thief `me`. `rng` is the thief's private xorshift
    /// stream; `fail_streak` counts this thief's consecutive failed steal
    /// attempts (reset on every successful work acquisition) — policies use
    /// it to escalate from near victims to far ones. Called with at least
    /// two workers in the topology. Default: uniform over everyone else.
    fn choose_victim(
        &self,
        me: usize,
        rng: &mut dyn FnMut() -> u64,
        topo: &Topology,
        fail_streak: u32,
    ) -> VictimChoice {
        let _ = fail_streak;
        VictimChoice::near(uniform_victim(me, topo.workers(), rng))
    }

    /// Service-priority key for a drained request when the combiner hands
    /// out a bounded batch: lower keys are served first (stable for ties,
    /// so the default constant preserves arrival order). Locality-aware
    /// policies return the victim→thief distance, handing grabs to near
    /// thieves before far ones.
    fn thief_priority(&self, victim: usize, thief: usize, topo: &Topology) -> u32 {
        let _ = (victim, thief, topo);
        0
    }
}

/// Flat-combining aggregation: one combiner serves every pending request;
/// victims chosen uniformly.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggregatedStealing;

impl StealPolicy for AggregatedStealing {
    fn name(&self) -> &'static str {
        "aggregated"
    }

    fn serve_batch(&self, pending: usize) -> usize {
        pending
    }
}

/// Naive per-thief stealing: the combiner serves only itself; victims
/// chosen uniformly.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerThiefStealing;

impl StealPolicy for PerThiefStealing {
    fn name(&self) -> &'static str {
        "per-thief"
    }

    fn serve_batch(&self, pending: usize) -> usize {
        pending.min(1)
    }
}

/// Uniform victim selection with full aggregation — behaviourally
/// [`AggregatedStealing`], named as the uniform end of the victim-policy
/// sweep so ablation tables read `uniform / hierarchical / locality-first`.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformVictim;

impl StealPolicy for UniformVictim {
    fn name(&self) -> &'static str {
        "uniform-victim"
    }

    fn serve_batch(&self, pending: usize) -> usize {
        pending
    }
}

/// Hierarchical victim selection: probe victims on the thief's own NUMA
/// node until the fail streak says the node is dry, then escalate to the
/// whole machine. Batches are bounded (`max_batch`) and near thieves are
/// served first.
#[derive(Clone, Copy, Debug)]
pub struct HierarchicalVictim {
    /// Consecutive failed attempts before the thief starts probing remote
    /// nodes. Below this, only same-node victims are chosen.
    pub escalate_after: u32,
    /// Combiner batch bound: serve at most this many of the drained
    /// requests per pass (ROADMAP's bounded-batch spectrum point).
    pub max_batch: usize,
}

impl Default for HierarchicalVictim {
    fn default() -> Self {
        HierarchicalVictim {
            escalate_after: 4,
            max_batch: 8,
        }
    }
}

impl StealPolicy for HierarchicalVictim {
    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn serve_batch(&self, pending: usize) -> usize {
        pending.min(self.max_batch.max(1))
    }

    fn choose_victim(
        &self,
        me: usize,
        rng: &mut dyn FnMut() -> u64,
        topo: &Topology,
        fail_streak: u32,
    ) -> VictimChoice {
        let local = topo.workers_on_node(topo.node_of(me));
        if fail_streak < self.escalate_after {
            if let Some(v) = pick_excluding(local, me, rng) {
                return VictimChoice::near(v);
            }
        }
        // Escalate: the local node failed `escalate_after` times in a row
        // (or the thief is alone on it) — go machine-wide. Counted as an
        // escalation only when a local alternative existed.
        let v = uniform_victim(me, topo.workers(), rng);
        if local.len() > 1 {
            VictimChoice::far(v)
        } else {
            VictimChoice::near(v)
        }
    }

    fn thief_priority(&self, victim: usize, thief: usize, topo: &Topology) -> u32 {
        topo.distance(victim, thief)
    }
}

/// Locality-first victim selection: victims ranked by topology distance;
/// the thief walks the distance rings outward probabilistically (¾ of
/// picks stay in the nearest ring, each farther ring is 4× less likely),
/// shifted outward by the fail streak so a dry neighbourhood is abandoned.
/// Batches are bounded and near thieves are served first.
#[derive(Clone, Copy, Debug)]
pub struct LocalityFirst {
    /// Fail streak granting one extra starting ring (escalation speed).
    pub escalate_after: u32,
    /// Combiner batch bound (serve ≤ k of N drained requests).
    pub max_batch: usize,
}

impl Default for LocalityFirst {
    fn default() -> Self {
        LocalityFirst {
            escalate_after: 8,
            max_batch: 8,
        }
    }
}

impl StealPolicy for LocalityFirst {
    fn name(&self) -> &'static str {
        "locality-first"
    }

    fn serve_batch(&self, pending: usize) -> usize {
        pending.min(self.max_batch.max(1))
    }

    fn choose_victim(
        &self,
        me: usize,
        rng: &mut dyn FnMut() -> u64,
        topo: &Topology,
        fail_streak: u32,
    ) -> VictimChoice {
        if topo.is_flat() {
            return VictimChoice::near(uniform_victim(me, topo.workers(), rng));
        }
        let rings = topo.distance_rings(me);
        // Starting ring grows with the fail streak; a geometric coin walks
        // farther outward (probabilistic tie-break between equally-ranked
        // escape hatches).
        let mut ring = ((fail_streak / self.escalate_after.max(1)) as usize).min(rings.len() - 1);
        while ring + 1 < rings.len() && rng().is_multiple_of(4) {
            ring += 1;
        }
        let max_d = rings[ring];
        let my_node = topo.node_of(me);
        // Candidate nodes within the chosen radius, then a uniform pick
        // among their workers (weighted by node population).
        let mut cand_workers = 0usize;
        for n in 0..topo.nodes() {
            if topo.distances().get(my_node, n) <= max_d {
                cand_workers += topo.workers_on_node(n).len();
            }
        }
        if cand_workers <= 1 {
            // No near alternative existed within the radius, so the
            // machine-wide fallback is not a *deliberate* escalation
            // (mirrors HierarchicalVictim's lone-worker-on-a-node case).
            return VictimChoice::near(uniform_victim(me, topo.workers(), rng));
        }
        loop {
            let mut pick = (rng() % cand_workers as u64) as usize;
            for n in 0..topo.nodes() {
                if topo.distances().get(my_node, n) > max_d {
                    continue;
                }
                let ws = topo.workers_on_node(n);
                if pick < ws.len() {
                    let v = ws[pick];
                    if v == me {
                        break; // reroll
                    }
                    return if topo.same_node(me, v) {
                        VictimChoice::near(v)
                    } else {
                        VictimChoice::far(v)
                    };
                }
                pick -= ws.len();
            }
        }
    }

    fn thief_priority(&self, victim: usize, thief: usize, topo: &Topology) -> u32 {
        topo.distance(victim, thief)
    }
}

/// Knobs for write-only **renaming** (WAR/WAW elimination, DESIGN.md §2).
///
/// A task declaring a write-only ([`AccessMode::Write`]) whole-object access
/// on a renameable handle would normally be ordered after every earlier
/// reader and writer of that object (the write-after-read / write-after-write
/// orderings of the sequential program). Renaming hands the writer a *fresh
/// version slot* of the data instead, so those ordering edges disappear and
/// repeated overwrites pipeline across workers. The policy bounds how many
/// uncommitted version buffers one handle may hold and provides the master
/// switch the ablation benchmarks A/B.
///
/// [`AccessMode::Write`]: crate::AccessMode::Write
#[derive(Clone, Copy, Debug)]
pub struct RenamePolicy {
    /// Master switch; `false` makes write-only behave like exclusive
    /// (serializing) even on renameable handles.
    pub enabled: bool,
    /// Maximum live (not yet reclaimed) version slots per handle beyond the
    /// original buffer. A write-only access that cannot get a slot under
    /// this cap falls back to serializing semantics. Capped internally at
    /// `u16::MAX - 1` (slot ids are packed into 16 bits).
    pub max_live_slots: u32,
}

impl Default for RenamePolicy {
    fn default() -> Self {
        RenamePolicy {
            enabled: true,
            max_live_slots: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seeded xorshift64* closure for deterministic policy tests.
    fn seeded_rng(mut x: u64) -> impl FnMut() -> u64 {
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }

    #[test]
    fn rename_defaults() {
        let p = RenamePolicy::default();
        assert!(p.enabled);
        assert!(p.max_live_slots >= 1);
    }

    #[test]
    fn batch_sizes() {
        assert_eq!(AggregatedStealing.serve_batch(7), 7);
        assert_eq!(AggregatedStealing.serve_batch(1), 1);
        assert_eq!(PerThiefStealing.serve_batch(7), 1);
        assert_eq!(PerThiefStealing.serve_batch(0), 0);
        assert_eq!(UniformVictim.serve_batch(9), 9);
        let h = HierarchicalVictim {
            escalate_after: 4,
            max_batch: 3,
        };
        assert_eq!(h.serve_batch(7), 3);
        assert_eq!(h.serve_batch(2), 2);
        let l = LocalityFirst {
            escalate_after: 8,
            max_batch: 2,
        };
        assert_eq!(l.serve_batch(7), 2);
    }

    #[test]
    fn uniform_never_picks_me() {
        let mut rng = seeded_rng(42);
        for me in 0..4 {
            for _ in 0..100 {
                let v = uniform_victim(me, 4, &mut rng);
                assert_ne!(v, me);
                assert!(v < 4);
            }
        }
    }

    #[test]
    fn near_priorities_sort_first() {
        let topo = Topology::two_level(8, 4);
        let h = HierarchicalVictim::default();
        // Victim 0: same-node thief 1 outranks remote thief 5.
        assert!(h.thief_priority(0, 1, &topo) < h.thief_priority(0, 5, &topo));
        // The default policy is order-preserving (constant key).
        assert_eq!(AggregatedStealing.thief_priority(0, 5, &topo), 0);
    }
}
