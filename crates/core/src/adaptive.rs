//! Adaptive tasks: work that can be split *while running*.
//!
//! An adaptive task publishes a splitter; an idle thief invokes it during a
//! steal operation to carve off part of the remaining work. The combiner
//! election (one elected thief serves all concurrent requests while holding
//! the victim's steal lock) guarantees the paper's contract that **at most
//! one thief executes a splitter concurrently with the task**, so splitters
//! only need to synchronise with the running task itself — here through the
//! packed-interval CAS protocol of [`IntervalCell`], the analogue of Cilk's
//! T.H.E. protocol for loop ranges.

use crate::steal::Grab;
use std::sync::atomic::{AtomicU64, Ordering};

/// A splittable work source registered on a worker while it runs.
///
/// `split` is called by the elected combiner thief with the indices of the
/// thieves awaiting work; it appends at most `thieves.len()` grabs to `out`.
pub(crate) trait Adaptive: Send + Sync {
    fn split(&self, thieves: &[usize], out: &mut Vec<Grab>);

    /// Priority band of this adaptive work (see [`crate::Priority::band`]):
    /// when a victim hosts several splittable sources, the combiner invokes
    /// higher-band splitters first.
    fn band(&self) -> u8 {
        crate::attrs::NORMAL_BAND
    }
}

/// A `[begin, end)` iteration interval packed into one atomic word.
///
/// The owner claims chunks from the front, thieves shrink the back; both use
/// compare-and-swap on the packed word, so a lost race is simply retried and
/// no iteration is ever lost or duplicated.
pub struct IntervalCell(AtomicU64);

const MAX_IDX: usize = u32::MAX as usize;

#[inline]
fn pack(b: usize, e: usize) -> u64 {
    debug_assert!(b <= MAX_IDX && e <= MAX_IDX);
    ((b as u64) << 32) | e as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize)
}

impl IntervalCell {
    /// New interval `[b, e)`. Indices must fit in 32 bits.
    pub fn new(b: usize, e: usize) -> Self {
        assert!(
            b <= MAX_IDX && e <= MAX_IDX,
            "interval indices must fit in u32"
        );
        IntervalCell(AtomicU64::new(pack(b, e)))
    }

    /// Current `(begin, end)` snapshot.
    #[inline]
    pub fn load(&self) -> (usize, usize) {
        unpack(self.0.load(Ordering::Acquire))
    }

    /// Remaining length.
    #[inline]
    pub fn len(&self) -> usize {
        let (b, e) = self.load();
        e.saturating_sub(b)
    }

    /// True when no iterations remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner side: claim up to `grain` iterations from the front.
    /// Returns the claimed range, or `None` when the interval is empty.
    pub fn claim_front(&self, grain: usize) -> Option<std::ops::Range<usize>> {
        debug_assert!(grain >= 1);
        loop {
            let cur = self.0.load(Ordering::Acquire);
            let (b, e) = unpack(cur);
            if b >= e {
                return None;
            }
            let c = grain.min(e - b);
            if self
                .0
                .compare_exchange_weak(cur, pack(b + c, e), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(b..b + c);
            }
        }
    }

    /// Thief side: steal a suffix, leaving the victim roughly `1/(k+1)` of
    /// the remaining work (the paper's k+1-way split for k aggregated
    /// requests). Returns the stolen range.
    ///
    /// Fails (`None`) when fewer than `min_leave + 1` iterations remain.
    pub fn steal_back(&self, k: usize, min_leave: usize) -> Option<std::ops::Range<usize>> {
        debug_assert!(k >= 1);
        loop {
            let cur = self.0.load(Ordering::Acquire);
            let (b, e) = unpack(cur);
            let len = e.saturating_sub(b);
            if len <= min_leave.max(1) {
                return None;
            }
            // Victim keeps ceil(len / (k+1)), at least min_leave.max(1).
            let keep = (len + k) / (k + 1);
            let keep = keep.max(min_leave.max(1));
            if keep >= len {
                return None;
            }
            let new_e = b + keep;
            if self
                .0
                .compare_exchange_weak(cur, pack(b, new_e), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(new_e..e);
            }
        }
    }

    /// Claim the whole remaining interval (used to drain after a panic).
    pub fn take_all(&self) -> Option<std::ops::Range<usize>> {
        loop {
            let cur = self.0.load(Ordering::Acquire);
            let (b, e) = unpack(cur);
            if b >= e {
                return None;
            }
            if self
                .0
                .compare_exchange_weak(cur, pack(e, e), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(b..e);
            }
        }
    }
}

/// Split a range into `parts` near-equal contiguous pieces (first pieces get
/// the remainder). Empty pieces are omitted.
pub fn split_even(range: std::ops::Range<usize>, parts: usize) -> Vec<std::ops::Range<usize>> {
    let n = range.end.saturating_sub(range.start);
    let parts = parts.max(1);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts.min(n));
    let mut b = range.start;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        if len == 0 {
            continue;
        }
        out.push(b..b + len);
        b += len;
    }
    debug_assert_eq!(b, range.end);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claim_front_exhausts_exactly() {
        let iv = IntervalCell::new(0, 10);
        let mut seen = Vec::new();
        while let Some(r) = iv.claim_front(3) {
            seen.extend(r);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(iv.is_empty());
    }

    #[test]
    fn steal_back_leaves_prefix() {
        let iv = IntervalCell::new(0, 100);
        let stolen = iv.steal_back(1, 1).unwrap();
        assert_eq!(stolen, 50..100);
        assert_eq!(iv.load(), (0, 50));
        // k=4: victim keeps ceil(50/5) = 10
        let stolen = iv.steal_back(4, 1).unwrap();
        assert_eq!(stolen, 10..50);
        assert_eq!(iv.load(), (0, 10));
    }

    #[test]
    fn steal_back_respects_min_leave() {
        let iv = IntervalCell::new(0, 8);
        assert!(iv.steal_back(1, 8).is_none());
        assert!(iv.steal_back(1, 4).is_some());
    }

    #[test]
    fn take_all_drains() {
        let iv = IntervalCell::new(2, 9);
        assert_eq!(iv.take_all().unwrap(), 2..9);
        assert!(iv.take_all().is_none());
    }

    #[test]
    fn split_even_covers_range() {
        assert_eq!(split_even(0..10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(split_even(5..5, 3), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(split_even(0..2, 5), vec![0..1, 1..2]);
    }

    /// Concurrent owner claims + thief steals never lose or duplicate an
    /// iteration — the conservation property of the T.H.E.-like protocol.
    #[test]
    fn concurrent_claims_conserve_iterations() {
        const N: usize = 20_000;
        for _ in 0..8 {
            let iv = Arc::new(IntervalCell::new(0, N));
            let counted = Arc::new(std::sync::Mutex::new(vec![0u8; N]));
            let mut handles = Vec::new();
            // owner
            {
                let iv = Arc::clone(&iv);
                let counted = Arc::clone(&counted);
                handles.push(std::thread::spawn(move || {
                    while let Some(r) = iv.claim_front(7) {
                        let mut c = counted.lock().unwrap();
                        for i in r {
                            c[i] += 1;
                        }
                    }
                }));
            }
            // thieves: steal then claim from their own piece
            for _ in 0..3 {
                let iv = Arc::clone(&iv);
                let counted = Arc::clone(&counted);
                handles.push(std::thread::spawn(move || {
                    while let Some(r) = iv.steal_back(2, 1) {
                        let sub = IntervalCell::new(r.start, r.end);
                        while let Some(r2) = sub.claim_front(5) {
                            let mut c = counted.lock().unwrap();
                            for i in r2 {
                                c[i] += 1;
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let c = counted.lock().unwrap();
            assert!(c.iter().all(|&x| x == 1), "every iteration exactly once");
        }
    }
}
