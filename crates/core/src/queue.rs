//! The queue layer: where *ready* work lives, behind the [`TaskQueue`]
//! trait.
//!
//! The engine separates three concerns the seed runtime had fused together:
//!
//! * the **dependency layer** ([`Frame`](crate::frame)) decides *when* a
//!   data-flow task becomes ready;
//! * the **queue layer** (this module) decides *where* ready work is stored
//!   and how workers obtain it;
//! * the **steal layer** ([`StealPolicy`](crate::policy::StealPolicy))
//!   decides the thief-side protocol used to reach a victim's work.
//!
//! Two families of [`TaskQueue`] implementations exist:
//!
//! * **distributed** — [`DistributedLanes`], one T.H.E. deque per worker
//!   (owner LIFO, thief FIFO): the X-Kaapi design. Data-flow tasks stay in
//!   their frames and are discovered lazily by steal scans.
//! * **centralized** — one shared pool every worker pushes to and pops
//!   from; the engine then publishes data-flow tasks eagerly on spawn and
//!   completion (insertion-time scheduling, as QUARK and libGOMP do). The
//!   implementations live with the baselines they were extracted from:
//!   `xkaapi_omp::OmpCentralQueue` and `xkaapi_quark::QuarkCentralQueue`.
//!
//! Every front-end paradigm — data-flow spawns, fork-join joins, adaptive
//! loops — runs through whichever queue the [`Runtime`](crate::Runtime) was
//! built with, which is what lets one binary A/B centralized against
//! distributed scheduling without switching codebases.

use crate::fastlane::{FastJob, FastLane};
use crate::frame::Frame;
use crate::steal::Grab;
use std::sync::Arc;

/// One unit of ready work, opaque to [`TaskQueue`] implementors.
///
/// Internally this wraps the engine's `Grab`: a fork-join stack job, a
/// claimed data-flow task, or a closure (stolen loop slice). External
/// implementations only store and return items; [`WorkItem::token`] is the
/// only inspection they need (to honor [`TaskQueue::take`]).
pub struct WorkItem {
    pub(crate) grab: Grab,
}

impl WorkItem {
    pub(crate) fn fast(job: FastJob) -> WorkItem {
        WorkItem {
            grab: Grab::Fast(job),
        }
    }

    pub(crate) fn task(frame: Arc<Frame>, idx: usize) -> WorkItem {
        WorkItem {
            grab: Grab::Task { frame, idx },
        }
    }

    pub(crate) fn into_grab(self) -> Grab {
        self.grab
    }

    /// Identity token of a fork-join stack job (null for any other item).
    ///
    /// [`TaskQueue::take`] uses it to retract a specific job on the
    /// fork-join fast path.
    pub fn token(&self) -> *mut () {
        match &self.grab {
            Grab::Fast(j) => j.data,
            _ => std::ptr::null_mut(),
        }
    }
}

impl std::fmt::Debug for WorkItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.grab {
            Grab::Fast(_) => "fast",
            Grab::Task { .. } => "task",
            Grab::Run(_) => "run",
        };
        f.debug_struct("WorkItem").field("kind", &kind).finish()
    }
}

/// The victim-side structure holding ready work (queue layer of the engine).
///
/// Implementations must be safe for concurrent use by every worker of one
/// runtime. `worker`/`victim`/`thief` arguments are worker indices in
/// `0..num_workers`.
pub trait TaskQueue: Send + Sync {
    /// Short human-readable name (ablation tables).
    fn name(&self) -> &'static str;

    /// Centralized queues share one pool: steals ignore the victim, and the
    /// engine eagerly publishes ready data-flow tasks into the queue at
    /// spawn/completion time instead of relying on lazy steal scans.
    fn centralized(&self) -> bool;

    /// Owner-side push of ready work produced on `worker`. Returns the item
    /// back when the queue refuses it (e.g. a bounded lane is full, or a
    /// distributed lane is handed a non-fork-join item); the engine then
    /// runs the item inline.
    fn push(&self, worker: usize, item: WorkItem) -> Result<(), WorkItem>;

    /// Pop work for `worker` without a steal protocol (own lane LIFO for
    /// distributed queues, shared FIFO for centralized ones).
    fn pop(&self, worker: usize) -> Option<WorkItem>;

    /// Steal on behalf of `thief` from `victim`'s share of the queue.
    fn steal(&self, thief: usize, victim: usize) -> Option<WorkItem>;

    /// Retract the exact item identified by `token` (see
    /// [`WorkItem::token`]) if it is still queued for `worker`. The
    /// fork-join fast path uses this to reclaim its own stack job.
    fn take(&self, worker: usize, token: *mut ()) -> Option<WorkItem>;

    /// Cheap emptiness hint from `worker`'s perspective (park heuristic).
    fn is_empty_hint(&self, worker: usize) -> bool;
}

/// Default distributed queue: one fixed-capacity T.H.E. deque per worker.
///
/// The owner pushes and pops at the tail with one fence (Cilk-5's
/// work-first discipline); thieves take from the head under the lane lock.
/// This is the paper's fast lane, now one policy among several.
pub struct DistributedLanes {
    lanes: Box<[FastLane]>,
}

impl DistributedLanes {
    /// One lane per worker.
    pub fn new(workers: usize) -> DistributedLanes {
        DistributedLanes {
            lanes: (0..workers).map(|_| FastLane::new()).collect(),
        }
    }
}

impl TaskQueue for DistributedLanes {
    fn name(&self) -> &'static str {
        "distributed-lanes"
    }

    fn centralized(&self) -> bool {
        false
    }

    fn push(&self, worker: usize, item: WorkItem) -> Result<(), WorkItem> {
        match item.grab {
            Grab::Fast(job) => {
                if self.lanes[worker].push(job) {
                    Ok(())
                } else {
                    Err(WorkItem::fast(job))
                }
            }
            // Data-flow tasks stay in their frames under this policy; loop
            // slices travel through the steal protocol. Refusing them makes
            // the engine run the item inline.
            grab => Err(WorkItem { grab }),
        }
    }

    fn pop(&self, worker: usize) -> Option<WorkItem> {
        self.lanes[worker].pop().map(WorkItem::fast)
    }

    fn steal(&self, _thief: usize, victim: usize) -> Option<WorkItem> {
        self.lanes[victim].steal().map(WorkItem::fast)
    }

    fn take(&self, worker: usize, token: *mut ()) -> Option<WorkItem> {
        // Joins nest properly, so if the job is still queued it is the tail.
        match self.lanes[worker].pop() {
            Some(job) if std::ptr::eq(job.data, token) => Some(WorkItem::fast(job)),
            Some(job) => {
                // Not ours (a foreign push slipped in): put it back.
                debug_assert!(false, "fast-lane LIFO discipline violated");
                let _ = self.lanes[worker].push(job);
                None
            }
            None => None,
        }
    }

    fn is_empty_hint(&self, worker: usize) -> bool {
        self.lanes[worker].is_empty_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RtInner;

    fn dummy_job(tag: usize) -> FastJob {
        unsafe fn exec(_d: *mut (), _rt: &Arc<RtInner>, _w: usize) {}
        FastJob {
            data: tag as *mut (),
            exec,
        }
    }

    #[test]
    fn distributed_lanes_route_per_worker() {
        let q = DistributedLanes::new(2);
        assert!(!q.centralized());
        assert!(q.is_empty_hint(0));
        q.push(0, WorkItem::fast(dummy_job(1))).unwrap();
        q.push(0, WorkItem::fast(dummy_job(2))).unwrap();
        assert!(q.pop(1).is_none(), "lanes are per-worker");
        // Thief takes FIFO from the victim's lane.
        let stolen = q.steal(1, 0).unwrap();
        assert_eq!(stolen.token() as usize, 1);
        // Owner takes LIFO.
        let own = q.pop(0).unwrap();
        assert_eq!(own.token() as usize, 2);
    }

    #[test]
    fn take_retracts_own_tail_job() {
        let q = DistributedLanes::new(1);
        q.push(0, WorkItem::fast(dummy_job(7))).unwrap();
        assert_eq!(q.take(0, 7 as *mut ()).unwrap().token() as usize, 7);
        assert!(q.take(0, 7 as *mut ()).is_none(), "already taken");
    }
}
