//! The queue layer: where *ready* work lives, behind the [`TaskQueue`]
//! trait.
//!
//! The engine separates three concerns the seed runtime had fused together:
//!
//! * the **dependency layer** ([`Frame`](crate::frame)) decides *when* a
//!   data-flow task becomes ready;
//! * the **queue layer** (this module) decides *where* ready work is stored
//!   and how workers obtain it;
//! * the **steal layer** ([`StealPolicy`](crate::policy::StealPolicy))
//!   decides the thief-side protocol used to reach a victim's work.
//!
//! Two families of [`TaskQueue`] implementations exist:
//!
//! * **distributed** — [`DistributedLanes`], one T.H.E. deque per worker
//!   (owner LIFO, thief FIFO): the X-Kaapi design. Data-flow tasks stay in
//!   their frames and are discovered lazily by steal scans.
//! * **centralized** — one shared pool every worker pushes to and pops
//!   from; the engine then publishes data-flow tasks eagerly on spawn and
//!   completion (insertion-time scheduling, as QUARK and libGOMP do). The
//!   implementations live with the baselines they were extracted from:
//!   `xkaapi_omp::OmpCentralQueue` and `xkaapi_quark::QuarkCentralQueue`.
//!
//! Since the task-attribute redesign (`DESIGN.md` §5) every queue is
//! **priority-banded**: a [`WorkItem`] carries the band of the
//! [`Priority`](crate::Priority) it was created with, implementations keep
//! one sub-queue per band and pop the highest non-empty band first. The
//! default band preserves each queue's historical order exactly (owner
//! LIFO / thief FIFO for the distributed lanes, FIFO for the central
//! pools), so attribute-free programs schedule identically to before.
//!
//! Every front-end paradigm — data-flow spawns, fork-join joins, adaptive
//! loops — runs through whichever queue the [`Runtime`](crate::Runtime) was
//! built with, which is what lets one binary A/B centralized against
//! distributed scheduling without switching codebases.

use crate::attrs::{NORMAL_BAND, PRIORITY_BANDS};
use crate::fastlane::{FastJob, FastLane};
use crate::frame::Frame;
use crate::steal::Grab;
use crate::task::Task;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One unit of ready work, opaque to [`TaskQueue`] implementors.
///
/// Internally this wraps the engine's `Grab`: a fork-join stack job, a
/// claimed data-flow task, or a closure (stolen loop slice). External
/// implementations only store and return items; [`WorkItem::token`] and
/// [`WorkItem::band`] are the only inspection they need (to honor
/// [`TaskQueue::take`] and the banded pop order).
pub struct WorkItem {
    pub(crate) grab: Grab,
    /// Priority band (0 = high); see [`crate::Priority::band`].
    band: u8,
}

impl WorkItem {
    pub(crate) fn fast(job: FastJob) -> WorkItem {
        WorkItem {
            grab: Grab::Fast(job),
            band: NORMAL_BAND,
        }
    }

    pub(crate) fn fast_banded(job: FastJob, band: u8) -> WorkItem {
        WorkItem {
            grab: Grab::Fast(job),
            band,
        }
    }

    /// A claimed data-flow task; the band comes straight from the carried
    /// `Arc<Task>` — no frame lock on this path.
    pub(crate) fn task(frame: Arc<Frame>, idx: usize, task: Arc<Task>) -> WorkItem {
        let band = task.band();
        WorkItem {
            grab: Grab::Task { frame, idx, task },
            band,
        }
    }

    pub(crate) fn into_grab(self) -> Grab {
        self.grab
    }

    /// Priority band of this item: 0 = high, [`PRIORITY_BANDS`]` - 1` =
    /// low. Implementations must pop lower band indices first and keep
    /// their historical order within a band.
    #[inline]
    pub fn band(&self) -> usize {
        (self.band as usize).min(PRIORITY_BANDS - 1)
    }

    /// Identity token of a fork-join stack job (null for any other item).
    ///
    /// [`TaskQueue::take`] uses it to retract a specific job on the
    /// fork-join fast path.
    pub fn token(&self) -> *mut () {
        match &self.grab {
            Grab::Fast(j) => j.data,
            _ => std::ptr::null_mut(),
        }
    }
}

impl std::fmt::Debug for WorkItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.grab {
            Grab::Fast(_) => "fast",
            Grab::Task { .. } => "task",
            Grab::Run(_) => "run",
        };
        f.debug_struct("WorkItem")
            .field("kind", &kind)
            .field("band", &self.band)
            .finish()
    }
}

/// The victim-side structure holding ready work (queue layer of the engine).
///
/// Implementations must be safe for concurrent use by every worker of one
/// runtime. `worker`/`victim`/`thief` arguments are worker indices in
/// `0..num_workers`.
///
/// # Priority contract
///
/// [`WorkItem::band`] partitions items into [`PRIORITY_BANDS`] bands.
/// `pop`/`steal` must return items from the lowest-numbered (highest
/// priority) non-empty band first; within one band the queue's natural
/// order applies. Items of the default band must behave exactly as they
/// did before bands existed.
pub trait TaskQueue: Send + Sync {
    /// Short human-readable name (ablation tables).
    fn name(&self) -> &'static str;

    /// Centralized queues share one pool: steals ignore the victim, and the
    /// engine eagerly publishes ready data-flow tasks into the queue at
    /// spawn/completion time instead of relying on lazy steal scans.
    fn centralized(&self) -> bool;

    /// Owner-side push of ready work produced on `worker`. Returns the item
    /// back when the queue refuses it (e.g. a bounded lane is full, or a
    /// distributed lane is handed a non-fork-join item); the engine then
    /// runs the item inline.
    fn push(&self, worker: usize, item: WorkItem) -> Result<(), WorkItem>;

    /// Pop work for `worker` without a steal protocol (own lane LIFO for
    /// distributed queues, shared FIFO for centralized ones), highest
    /// priority band first.
    fn pop(&self, worker: usize) -> Option<WorkItem>;

    /// Steal on behalf of `thief` from `victim`'s share of the queue,
    /// highest priority band first.
    fn steal(&self, thief: usize, victim: usize) -> Option<WorkItem>;

    /// Retract the exact item identified by `token` (see
    /// [`WorkItem::token`]) if it is still queued for `worker`. The
    /// fork-join fast path uses this to reclaim its own stack job.
    fn take(&self, worker: usize, token: *mut ()) -> Option<WorkItem>;

    /// Cheap emptiness hint from `worker`'s perspective (park heuristic).
    fn is_empty_hint(&self, worker: usize) -> bool;
}

/// A non-default band's side deque: a mutexed FIFO/LIFO with an atomic
/// length mirror, so the hot attribute-free path pays one relaxed load —
/// never a lock — to skip an empty side band.
struct SideLane {
    len: std::sync::atomic::AtomicUsize,
    q: Mutex<VecDeque<FastJob>>,
}

impl SideLane {
    fn new() -> SideLane {
        SideLane {
            len: std::sync::atomic::AtomicUsize::new(0),
            q: Mutex::new(VecDeque::new()),
        }
    }

    #[inline]
    fn is_empty_hint(&self) -> bool {
        self.len.load(std::sync::atomic::Ordering::Relaxed) == 0
    }

    fn push_back(&self, job: FastJob) {
        let mut q = self.q.lock();
        q.push_back(job);
        self.len
            .store(q.len(), std::sync::atomic::Ordering::Relaxed);
    }

    /// Owner side: LIFO. `None` without locking when the hint says empty.
    fn pop_back(&self) -> Option<FastJob> {
        if self.is_empty_hint() {
            return None;
        }
        let mut q = self.q.lock();
        let job = q.pop_back();
        self.len
            .store(q.len(), std::sync::atomic::Ordering::Relaxed);
        job
    }

    /// Thief side: FIFO. `None` without locking when the hint says empty.
    fn pop_front(&self) -> Option<FastJob> {
        if self.is_empty_hint() {
            return None;
        }
        let mut q = self.q.lock();
        let job = q.pop_front();
        self.len
            .store(q.len(), std::sync::atomic::Ordering::Relaxed);
        job
    }

    /// Retract the job identified by `token`, youngest match first.
    fn take(&self, token: *mut ()) -> Option<FastJob> {
        if self.is_empty_hint() {
            return None;
        }
        let mut q = self.q.lock();
        let pos = q.iter().rposition(|j| std::ptr::eq(j.data, token))?;
        let job = q.remove(pos);
        self.len
            .store(q.len(), std::sync::atomic::Ordering::Relaxed);
        job
    }
}

/// One worker's share of [`DistributedLanes`]: the default band keeps the
/// original fixed-capacity T.H.E. deque (owner LIFO with one fence, thief
/// FIFO under the lane lock — the hot path, untouched), while the
/// non-default bands are small side deques whose emptiness is checked with
/// one relaxed load. Fork-join joins default to the normal band, so the
/// side lanes stay cold unless a front-end asks for an explicit priority.
struct BandedLane {
    high: SideLane,
    normal: FastLane,
    low: SideLane,
    /// Jobs currently in the two side deques combined. The attribute-free
    /// hot path pays exactly one relaxed load of this (instead of probing
    /// each side lane's hint) per pop/steal/take. Incremented *before* the
    /// locked side push, decremented after a successful side pop: a reader
    /// seeing a stale 0 misses the in-flight job once and finds it on the
    /// next poll — the same benign race the per-lane len mirrors already
    /// accept.
    side_jobs: AtomicUsize,
}

impl BandedLane {
    fn new() -> BandedLane {
        BandedLane {
            high: SideLane::new(),
            normal: FastLane::new(),
            low: SideLane::new(),
            side_jobs: AtomicUsize::new(0),
        }
    }

    fn side(&self, band: usize) -> Option<&SideLane> {
        match band {
            0 => Some(&self.high),
            2 => Some(&self.low),
            _ => None,
        }
    }

    /// One relaxed load deciding whether the side deques need probing at
    /// all; false is the steady state of attribute-free programs.
    #[inline]
    fn has_side_jobs(&self) -> bool {
        self.side_jobs.load(Ordering::Relaxed) != 0
    }

    #[inline]
    fn side_pushed(&self) {
        self.side_jobs.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn side_popped(&self) {
        self.side_jobs.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Default distributed queue: one priority-banded T.H.E. deque per worker.
///
/// In the default band the owner pushes and pops at the tail with one fence
/// (Cilk-5's work-first discipline) and thieves take from the head under
/// the lane lock — the paper's fast lane, bit-for-bit the pre-band
/// behaviour. High/low bands ride per-worker side deques consulted before/
/// after the fast lane.
pub struct DistributedLanes {
    lanes: Box<[BandedLane]>,
}

impl DistributedLanes {
    /// One lane per worker.
    pub fn new(workers: usize) -> DistributedLanes {
        DistributedLanes {
            lanes: (0..workers).map(|_| BandedLane::new()).collect(),
        }
    }
}

impl TaskQueue for DistributedLanes {
    fn name(&self) -> &'static str {
        "distributed-lanes"
    }

    fn centralized(&self) -> bool {
        false
    }

    fn push(&self, worker: usize, item: WorkItem) -> Result<(), WorkItem> {
        let band = item.band();
        match item.grab {
            Grab::Fast(job) => {
                let lane = &self.lanes[worker];
                match lane.side(band) {
                    Some(side) => {
                        lane.side_pushed();
                        side.push_back(job);
                        Ok(())
                    }
                    None => {
                        if lane.normal.push(job) {
                            Ok(())
                        } else {
                            Err(WorkItem::fast_banded(job, band as u8))
                        }
                    }
                }
            }
            // Data-flow tasks stay in their frames under this policy; loop
            // slices travel through the steal protocol. Refusing them makes
            // the engine run the item inline.
            grab => Err(WorkItem {
                grab,
                band: band as u8,
            }),
        }
    }

    fn pop(&self, worker: usize) -> Option<WorkItem> {
        let lane = &self.lanes[worker];
        // Attribute-free fast path: one relaxed load skips both side
        // deques, leaving exactly the pre-band T.H.E. pop.
        let sided = lane.has_side_jobs();
        // Owner order: high band first (LIFO within the deque), then the
        // default T.H.E. lane, then low.
        if sided {
            if let Some(job) = lane.high.pop_back() {
                lane.side_popped();
                return Some(WorkItem::fast_banded(job, 0));
            }
        }
        if let Some(job) = lane.normal.pop() {
            return Some(WorkItem::fast(job));
        }
        if sided {
            if let Some(job) = lane.low.pop_back() {
                lane.side_popped();
                return Some(WorkItem::fast_banded(job, 2));
            }
        }
        None
    }

    fn steal(&self, _thief: usize, victim: usize) -> Option<WorkItem> {
        let lane = &self.lanes[victim];
        let sided = lane.has_side_jobs();
        // Thief order: high band FIFO, then the default lane's head, low
        // band last.
        if sided {
            if let Some(job) = lane.high.pop_front() {
                lane.side_popped();
                return Some(WorkItem::fast_banded(job, 0));
            }
        }
        if let Some(job) = lane.normal.steal() {
            return Some(WorkItem::fast(job));
        }
        if sided {
            if let Some(job) = lane.low.pop_front() {
                lane.side_popped();
                return Some(WorkItem::fast_banded(job, 2));
            }
        }
        None
    }

    fn take(&self, worker: usize, token: *mut ()) -> Option<WorkItem> {
        let lane = &self.lanes[worker];
        // Side bands: token scan (joins in these bands nest too, but a
        // foreign-band job must never disturb the default lane's tail).
        // Skipped entirely — one relaxed load — when no side job exists.
        if lane.has_side_jobs() {
            for (band, side) in [(0u8, &lane.high), (2u8, &lane.low)] {
                if let Some(job) = side.take(token) {
                    lane.side_popped();
                    return Some(WorkItem::fast_banded(job, band));
                }
            }
        }
        // Default band: joins nest properly, so if the job is still queued
        // it is the tail.
        match lane.normal.pop() {
            Some(job) if std::ptr::eq(job.data, token) => Some(WorkItem::fast(job)),
            Some(job) => {
                // Not ours (a foreign push slipped in): put it back.
                debug_assert!(false, "fast-lane LIFO discipline violated");
                let _ = lane.normal.push(job);
                None
            }
            None => None,
        }
    }

    fn is_empty_hint(&self, worker: usize) -> bool {
        let lane = &self.lanes[worker];
        lane.normal.is_empty_hint() && !lane.has_side_jobs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RtInner;

    fn dummy_job(tag: usize) -> FastJob {
        unsafe fn exec(_d: *mut (), _rt: &Arc<RtInner>, _w: usize) {}
        FastJob {
            data: tag as *mut (),
            exec,
        }
    }

    #[test]
    fn distributed_lanes_route_per_worker() {
        let q = DistributedLanes::new(2);
        assert!(!q.centralized());
        assert!(q.is_empty_hint(0));
        q.push(0, WorkItem::fast(dummy_job(1))).unwrap();
        q.push(0, WorkItem::fast(dummy_job(2))).unwrap();
        assert!(q.pop(1).is_none(), "lanes are per-worker");
        // Thief takes FIFO from the victim's lane.
        let stolen = q.steal(1, 0).unwrap();
        assert_eq!(stolen.token() as usize, 1);
        // Owner takes LIFO.
        let own = q.pop(0).unwrap();
        assert_eq!(own.token() as usize, 2);
    }

    #[test]
    fn take_retracts_own_tail_job() {
        let q = DistributedLanes::new(1);
        q.push(0, WorkItem::fast(dummy_job(7))).unwrap();
        assert_eq!(q.take(0, 7 as *mut ()).unwrap().token() as usize, 7);
        assert!(q.take(0, 7 as *mut ()).is_none(), "already taken");
    }

    #[test]
    fn bands_pop_high_before_default_before_low() {
        let q = DistributedLanes::new(1);
        q.push(0, WorkItem::fast_banded(dummy_job(30), 2)).unwrap();
        q.push(0, WorkItem::fast(dummy_job(20))).unwrap();
        q.push(0, WorkItem::fast_banded(dummy_job(10), 0)).unwrap();
        assert!(!q.is_empty_hint(0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop(0))
            .map(|i| i.token() as usize)
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert!(q.is_empty_hint(0));
    }

    #[test]
    fn take_finds_banded_jobs_without_touching_default_lane() {
        let q = DistributedLanes::new(1);
        q.push(0, WorkItem::fast(dummy_job(8))).unwrap();
        q.push(0, WorkItem::fast_banded(dummy_job(2), 0)).unwrap();
        let got = q.take(0, 2 as *mut ()).unwrap();
        assert_eq!(got.token() as usize, 2);
        assert_eq!(got.band(), 0);
        // The default-band job is still the retractable tail.
        assert_eq!(q.take(0, 8 as *mut ()).unwrap().token() as usize, 8);
    }
}
