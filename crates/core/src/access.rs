//! Access modes and memory regions for data-flow dependency computation.
//!
//! X-Kaapi tasks declare *how* they touch shared memory: the runtime derives
//! true (read-after-write) dependencies — and, for exclusive accesses, the
//! write-after-read / write-after-write orderings of the sequential program —
//! from these declarations. A *region* names the part of a handle a task
//! touches; two accesses conflict when their regions overlap and at least one
//! of the modes writes (cumulative writes commute among themselves).
//!
//! The WAR/WAW orderings of a *write-only* access on a renameable handle are
//! not hard conflicts: the versioned data-flow core ([`crate::dataflow`])
//! eliminates them by handing the writer a fresh version of the data
//! (*renaming*, see `DESIGN.md` §2). [`Access::conflicts_with`] stays
//! conservative — it reports the pairwise ordering a runtime without
//! renaming would enforce.

use std::fmt;

/// Unique identifier of a shared-data handle.
///
/// Allocated from a process-global counter; equality of two `HandleId`s means
/// the accesses may alias and must be checked for region overlap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandleId(pub(crate) u64);

impl fmt::Debug for HandleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

pub(crate) fn fresh_handle_id() -> HandleId {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    HandleId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// The mode with which a task accesses a memory region.
///
/// These are the four modes of the X-Kaapi model (read, write, exclusive and
/// reduction). `Write` and `Exclusive` differ semantically:
///
/// * `Write` is **write-only**: the task promises to fully overwrite the
///   region without reading it. On a renameable handle the runtime may
///   *rename* the access — hand the task a fresh version buffer — which
///   eliminates its WAR/WAW ordering edges (`DESIGN.md` §2). A task that
///   only partially writes a renamed region observes unspecified contents
///   in the untouched part.
/// * `Exclusive` is a read-write access: the task may read the previous
///   value, so it always serializes behind earlier readers and writers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AccessMode {
    /// Shared read access. Concurrent with other reads.
    Read,
    /// Write-only access (full overwrite; renameable, see `DESIGN.md` §2).
    Write,
    /// Exclusive read-write access (always serializing).
    Exclusive,
    /// Cumulative write (reduction). Commutes with other cumulative writes
    /// on the same region; ordered against reads and writes.
    CumulWrite,
}

impl AccessMode {
    /// Does this mode modify the region?
    #[inline]
    pub fn writes(self) -> bool {
        !matches!(self, AccessMode::Read)
    }

    /// Is this the write-only mode whose WAR/WAW edges renaming can erase?
    #[inline]
    pub fn is_write_only(self) -> bool {
        matches!(self, AccessMode::Write)
    }

    /// Do two accesses to the *same* region require an ordering edge?
    ///
    /// Read/Read never conflicts; CumulWrite/CumulWrite commutes (the merge
    /// is associative), every other pair involving a write conflicts.
    #[inline]
    pub fn conflicts_with(self, other: AccessMode) -> bool {
        use AccessMode::*;
        match (self, other) {
            (Read, Read) => false,
            (CumulWrite, CumulWrite) => false,
            (a, b) => a.writes() || b.writes(),
        }
    }
}

/// The part of a handle's data a task accesses.
///
/// X-Kaapi supports multi-dimensional regions; this reproduction provides the
/// three shapes its workloads need:
///
/// * [`Region::All`] — the whole object (scalar handles, whole arrays);
/// * [`Region::Range`] — a 1-D index interval (array slices);
/// * [`Region::Key`] — an opaque coordinate (e.g. a tile `(i, j)` packed into
///   a `u64`); two keyed regions overlap iff the keys are equal.
///
/// Mixing shapes on one handle is allowed and resolved conservatively (a
/// `Key` and a `Range` on the same handle are assumed to overlap).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Region {
    /// The entire object behind the handle.
    All,
    /// Elements `start..end` (1-D).
    Range {
        /// First element index.
        start: usize,
        /// One past the last element index.
        end: usize,
    },
    /// An opaque block coordinate; equal keys alias, distinct keys do not.
    Key(u64),
}

impl Region {
    /// Pack a 2-D block coordinate into a keyed region.
    #[inline]
    pub fn key2(i: usize, j: usize) -> Region {
        debug_assert!(i < u32::MAX as usize && j < u32::MAX as usize);
        Region::Key(((i as u64) << 32) | j as u64)
    }

    /// Conservative overlap test between two regions of the same handle.
    #[inline]
    pub fn overlaps(&self, other: &Region) -> bool {
        use Region::*;
        match (self, other) {
            (All, _) | (_, All) => true,
            (Range { start: a, end: b }, Range { start: c, end: d }) => a < d && c < b,
            (Key(a), Key(b)) => a == b,
            // Mixed shapes on one handle: assume aliasing.
            (Key(_), Range { .. }) | (Range { .. }, Key(_)) => true,
        }
    }

    /// An empty region never overlaps anything (including itself).
    #[inline]
    pub fn is_empty(&self) -> bool {
        matches!(self, Region::Range { start, end } if start >= end)
    }
}

/// One declared access of a task: which handle, which part, which mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Handle whose data is accessed.
    pub handle: HandleId,
    /// Which part of the handle.
    pub region: Region,
    /// How it is accessed.
    pub mode: AccessMode,
    /// The handle can grow version slots, so a whole-object write-only
    /// access may be renamed. Set by the renameable handle constructors.
    renameable: bool,
    /// Snapshot of the handle's committed `(seq << 16) | slot` word, taken
    /// by the handle's access constructors. The data-flow engine seeds a
    /// handle's version-chain state from the first access it sees, so a
    /// fresh frame (a later scope) picks up the slot lineage and sequence
    /// numbers a previous scope committed. Zero for plain handles.
    pub(crate) lineage: u64,
    /// Snapshot of the handle's *home NUMA node* (`u32::MAX` = unknown),
    /// stamped by the handle's access constructors alongside `lineage`.
    /// [`Affinity::Auto`](crate::Affinity::Auto) derives a task's target
    /// node from these stamps. Homes come from an explicit
    /// [`Shared::set_home`](crate::Shared::set_home) or from first-touch
    /// (the node of the first worker that wrote through the handle).
    pub(crate) home: u32,
    /// The handle renames *per tile*: the data-flow engine must seed its
    /// version-chain state with slot allocation pinned past the handle's
    /// tile-slot watermark instead of adopting `lineage`'s slot as current
    /// (tile slots are neither current nor free — they may hold un-merged
    /// committed tiles). Stamped by
    /// [`Partitioned::renameable_tiles`](crate::Partitioned::renameable_tiles)
    /// handles' access constructors.
    pub(crate) tile_slots: bool,
}

impl Access {
    /// Build an access descriptor.
    #[inline]
    pub fn new(handle: HandleId, region: Region, mode: AccessMode) -> Self {
        Access {
            handle,
            region,
            mode,
            renameable: false,
            lineage: 0,
            home: u32::MAX,
            tile_slots: false,
        }
    }

    /// Mark this access as naming a per-tile renamed handle (handle layer
    /// only; see the `tile_slots` field).
    #[inline]
    pub(crate) fn with_tile_slots(mut self) -> Self {
        self.tile_slots = true;
        self
    }

    /// Stamp the handle's committed-version snapshot (handle layer only).
    #[inline]
    pub(crate) fn with_lineage(mut self, lineage: u64) -> Self {
        self.lineage = lineage;
        self
    }

    /// Stamp the handle's home-node snapshot (handle layer only;
    /// `u32::MAX` = unknown).
    #[inline]
    pub(crate) fn with_home(mut self, home: u32) -> Self {
        self.home = home;
        self
    }

    /// NUMA node owning the handle's data, if known — the signal
    /// [`Affinity::Auto`](crate::Affinity::Auto) placement reads.
    #[inline]
    pub fn home_node(&self) -> Option<usize> {
        (self.home != u32::MAX).then_some(self.home as usize)
    }

    /// Mark this access as renameable: the handle it names supports version
    /// slots ([`Shared::renameable`](crate::Shared::renameable) /
    /// [`Partitioned::renameable_with`](crate::Partitioned::renameable_with)).
    ///
    /// Only meaningful on a whole-object write-only access; flagging an
    /// access whose handle has no slot table makes the granted task panic
    /// when it touches the data. Prefer the handle's own constructors
    /// ([`Shared::write`](crate::Shared::write),
    /// [`Partitioned::write_all`](crate::Partitioned::write_all)): they
    /// also stamp the committed-version snapshot that keeps slot routing
    /// correct across scopes.
    #[inline]
    pub fn with_renaming(mut self) -> Self {
        self.renameable = true;
        self
    }

    /// May the versioned data-flow core rename this access? Whole-object
    /// and single-tile ([`Region::Key`]) write-only accesses qualify;
    /// ranges do not (a fresh slot can only stand in for a region whose
    /// identity the commit protocol tracks — `All` or one key).
    #[inline]
    pub fn can_rename(&self) -> bool {
        self.renameable
            && self.mode.is_write_only()
            && matches!(self.region, Region::All | Region::Key(_))
    }

    /// Do two accesses require an ordering edge between their tasks?
    #[inline]
    pub fn conflicts_with(&self, other: &Access) -> bool {
        self.handle == other.handle
            && !self.region.is_empty()
            && !other.region.is_empty()
            && self.mode.conflicts_with(other.mode)
            && self.region.overlaps(&other.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u64) -> HandleId {
        HandleId(n)
    }

    #[test]
    fn mode_conflicts() {
        use AccessMode::*;
        assert!(!Read.conflicts_with(Read));
        assert!(!CumulWrite.conflicts_with(CumulWrite));
        assert!(Read.conflicts_with(Write));
        assert!(Write.conflicts_with(Read));
        assert!(Write.conflicts_with(Write));
        assert!(Exclusive.conflicts_with(Exclusive));
        assert!(Read.conflicts_with(CumulWrite));
        assert!(CumulWrite.conflicts_with(Exclusive));
    }

    #[test]
    fn region_overlap_ranges() {
        let r = |a, b| Region::Range { start: a, end: b };
        assert!(r(0, 10).overlaps(&r(5, 15)));
        assert!(!r(0, 10).overlaps(&r(10, 20)));
        assert!(r(0, 10).overlaps(&Region::All));
        assert!(r(3, 3).is_empty());
        assert!(!r(3, 4).is_empty());
    }

    #[test]
    fn region_overlap_keys() {
        assert!(Region::key2(1, 2).overlaps(&Region::key2(1, 2)));
        assert!(!Region::key2(1, 2).overlaps(&Region::key2(2, 1)));
        assert!(Region::key2(1, 2).overlaps(&Region::All));
        // mixed shapes are conservative
        assert!(Region::Key(7).overlaps(&Region::Range { start: 0, end: 1 }));
    }

    #[test]
    fn access_conflicts_require_same_handle() {
        let a = Access::new(h(1), Region::All, AccessMode::Write);
        let b = Access::new(h(2), Region::All, AccessMode::Write);
        assert!(!a.conflicts_with(&b));
        let c = Access::new(h(1), Region::All, AccessMode::Read);
        assert!(a.conflicts_with(&c));
    }

    #[test]
    fn empty_regions_never_conflict() {
        let a = Access::new(h(1), Region::Range { start: 4, end: 4 }, AccessMode::Write);
        let b = Access::new(h(1), Region::All, AccessMode::Write);
        assert!(!a.conflicts_with(&b));
        assert!(!a.conflicts_with(&a));
    }

    #[test]
    fn task_conflicts_any_pair() {
        let conflict =
            |a: &[Access], b: &[Access]| a.iter().any(|x| b.iter().any(|y| x.conflicts_with(y)));
        let a = [
            Access::new(h(1), Region::key2(0, 0), AccessMode::Read),
            Access::new(h(1), Region::key2(0, 1), AccessMode::Write),
        ];
        let b = [Access::new(h(1), Region::key2(0, 0), AccessMode::Write)];
        let c = [Access::new(h(1), Region::key2(1, 1), AccessMode::Write)];
        assert!(conflict(&a, &b));
        assert!(!conflict(&a, &c));
    }

    #[test]
    fn rename_capability() {
        let w = Access::new(h(1), Region::All, AccessMode::Write);
        assert!(!w.can_rename(), "plain handles never rename");
        assert!(w.with_renaming().can_rename());
        // Only whole-object write-only accesses are candidates.
        let e = Access::new(h(1), Region::All, AccessMode::Exclusive);
        assert!(!e.with_renaming().can_rename());
        let r = Access::new(h(1), Region::All, AccessMode::Read);
        assert!(!r.with_renaming().can_rename());
        let part = Access::new(h(1), Region::Range { start: 0, end: 4 }, AccessMode::Write);
        assert!(!part.with_renaming().can_rename());
        // Single-tile write-only accesses are candidates (per-tile renaming).
        let tile = Access::new(h(1), Region::key2(1, 2), AccessMode::Write);
        assert!(!tile.can_rename());
        assert!(tile.with_renaming().can_rename());
    }
}
