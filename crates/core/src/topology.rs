//! Machine topology: worker → core → NUMA-node mapping and inter-node
//! distances, consumed by the steal layer for victim selection
//! (DESIGN.md §3).
//!
//! The representation is deliberately tiny — a worker→node map plus a
//! node×node [`DistanceMatrix`] in SLIT convention (10 = local, larger =
//! farther) — because it is shared verbatim with the simulator:
//! `xkaapi_sim::Platform::distance_matrix` builds the *same* type for the
//! paper's 48-core Magny-Cours model, so a victim-selection policy studied
//! on the simulated machine and one running on this host agree on what
//! "near" means.
//!
//! Construction, in order of preference:
//!
//! * [`Builder::topology`](crate::Builder::topology) — explicit, what
//!   benches and tests use to model a machine shape on any host;
//! * [`Topology::detect`] — `/sys/devices/system/node` on Linux (node
//!   `cpulist` + `distance` files), workers mapped round-robin over the
//!   online cores in node order;
//! * [`Topology::flat`] — the fallback everywhere else: one node, all
//!   distances local, which makes every topology-aware policy degrade to
//!   uniform victim selection.

/// Node-to-node distance matrix in SLIT convention: `LOCAL` (10) on the
/// diagonal, larger values for farther nodes. Shared between the real
/// engine ([`Topology`]) and the simulator's platform model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceMatrix {
    nodes: usize,
    /// Row-major `nodes × nodes` distances.
    dist: Vec<u32>,
}

impl DistanceMatrix {
    /// The SLIT "local" distance (a node to itself).
    pub const LOCAL: u32 = 10;
    /// The conventional one-hop remote distance.
    pub const REMOTE: u32 = 20;

    /// Uniform two-level matrix: `LOCAL` on the diagonal, `remote`
    /// everywhere else — the shape of every flat-remote NUMA machine and
    /// of the simulator's Magny-Cours model.
    pub fn two_level(nodes: usize, remote: u32) -> DistanceMatrix {
        assert!(nodes >= 1);
        let mut dist = vec![remote.max(Self::LOCAL + 1); nodes * nodes];
        for n in 0..nodes {
            dist[n * nodes + n] = Self::LOCAL;
        }
        DistanceMatrix { nodes, dist }
    }

    /// Matrix from explicit rows (e.g. parsed sysfs `distance` files).
    /// Every row must have `rows.len()` entries.
    pub fn from_rows(rows: &[Vec<u32>]) -> DistanceMatrix {
        let nodes = rows.len();
        assert!(nodes >= 1, "at least one node required");
        let mut dist = Vec::with_capacity(nodes * nodes);
        for row in rows {
            assert_eq!(row.len(), nodes, "distance matrix must be square");
            dist.extend_from_slice(row);
        }
        DistanceMatrix { nodes, dist }
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Distance between two nodes.
    #[inline]
    pub fn get(&self, a: usize, b: usize) -> u32 {
        self.dist[a * self.nodes + b]
    }
}

/// Worker → core → NUMA-node mapping plus the node [`DistanceMatrix`],
/// consulted by topology-aware [`StealPolicy`](crate::StealPolicy)
/// implementations on every victim choice (hot path: all lookups are
/// array indexing).
#[derive(Clone, Debug)]
pub struct Topology {
    /// worker index → NUMA node.
    worker_node: Vec<usize>,
    /// worker index → nominal core id (identity under [`Topology::flat`]).
    worker_core: Vec<usize>,
    /// node → workers on it (victim candidate sets, precomputed).
    node_workers: Vec<Vec<usize>>,
    dist: DistanceMatrix,
}

impl Topology {
    /// Single-node topology: every worker local to every other. The
    /// fallback shape; topology-aware policies degrade to uniform here.
    pub fn flat(workers: usize) -> Topology {
        assert!(workers >= 1);
        Topology::from_parts(
            (0..workers).map(|_| 0).collect(),
            (0..workers).collect(),
            DistanceMatrix::two_level(1, DistanceMatrix::REMOTE),
        )
    }

    /// Two-level topology: `workers` split into nodes of `per_node`
    /// consecutive workers (the last node may be partial), local/remote
    /// distances in SLIT convention. This is the shape of the paper's
    /// Magny-Cours machine (8 nodes × 6 cores) and what benches use to
    /// model a NUMA machine on a flat host.
    pub fn two_level(workers: usize, per_node: usize) -> Topology {
        assert!(workers >= 1 && per_node >= 1);
        let nodes = workers.div_ceil(per_node);
        Topology::from_parts(
            (0..workers).map(|w| w / per_node).collect(),
            (0..workers).collect(),
            DistanceMatrix::two_level(nodes, DistanceMatrix::REMOTE),
        )
    }

    /// Topology from an explicit worker→node map and distance matrix.
    /// Node ids must be `< dist.nodes()`.
    pub fn with_distances(worker_node: Vec<usize>, dist: DistanceMatrix) -> Topology {
        let cores = (0..worker_node.len()).collect();
        Topology::from_parts(worker_node, cores, dist)
    }

    fn from_parts(
        worker_node: Vec<usize>,
        worker_core: Vec<usize>,
        dist: DistanceMatrix,
    ) -> Topology {
        assert!(!worker_node.is_empty(), "at least one worker required");
        assert_eq!(worker_node.len(), worker_core.len());
        let mut node_workers = vec![Vec::new(); dist.nodes()];
        for (w, &n) in worker_node.iter().enumerate() {
            assert!(n < dist.nodes(), "worker {w} on unknown node {n}");
            node_workers[n].push(w);
        }
        Topology {
            worker_node,
            worker_core,
            node_workers,
            dist,
        }
    }

    /// Detect the host topology from `/sys/devices/system/node` (Linux),
    /// mapping `workers` round-robin over the online cores in node order.
    /// Falls back to [`Topology::flat`] when sysfs is absent or malformed
    /// (non-Linux, containers hiding sysfs, single-node machines parse
    /// fine and *are* flat).
    pub fn detect(workers: usize) -> Topology {
        assert!(workers >= 1);
        match detect_sysfs(workers) {
            Some(t) => t,
            None => Topology::flat(workers),
        }
    }

    /// Number of workers.
    #[inline]
    pub fn workers(&self) -> usize {
        self.worker_node.len()
    }

    /// Number of NUMA nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.dist.nodes()
    }

    /// NUMA node of a worker.
    #[inline]
    pub fn node_of(&self, worker: usize) -> usize {
        self.worker_node[worker]
    }

    /// Nominal core id of a worker (informational; worker threads are not
    /// pinned, the mapping records the detected/declared machine shape).
    #[inline]
    pub fn core_of(&self, worker: usize) -> usize {
        self.worker_core[worker]
    }

    /// Do two workers share a NUMA node?
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.worker_node[a] == self.worker_node[b]
    }

    /// SLIT distance between two *workers* (their nodes' distance).
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.dist.get(self.worker_node[a], self.worker_node[b])
    }

    /// Workers on a node (victim candidate set).
    #[inline]
    pub fn workers_on_node(&self, node: usize) -> &[usize] {
        &self.node_workers[node]
    }

    /// The node distance matrix.
    #[inline]
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// True when every worker shares one node (topology-aware policies
    /// have nothing to exploit).
    #[inline]
    pub fn is_flat(&self) -> bool {
        self.dist.nodes() == 1
    }

    /// The distinct distances from `worker` to other workers, ascending —
    /// the "rings" a locality-first policy walks outward through.
    pub fn distance_rings(&self, worker: usize) -> Vec<u32> {
        let me = self.worker_node[worker];
        let mut rings: Vec<u32> = (0..self.nodes())
            .filter(|&n| !self.node_workers[n].is_empty())
            .map(|n| self.dist.get(me, n))
            .collect();
        rings.sort_unstable();
        rings.dedup();
        rings
    }
}

// ---------------------------------------------------------------------------
// sysfs detection

/// Parse a kernel cpulist ("0-5,12,14-17") into cpu ids.
fn parse_cpulist(s: &str) -> Option<Vec<usize>> {
    let mut cpus = Vec::new();
    for part in s.trim().split(',').filter(|p| !p.is_empty()) {
        match part.split_once('-') {
            Some((a, b)) => {
                let a: usize = a.trim().parse().ok()?;
                let b: usize = b.trim().parse().ok()?;
                if a > b {
                    return None;
                }
                cpus.extend(a..=b);
            }
            None => cpus.push(part.trim().parse::<usize>().ok()?),
        }
    }
    Some(cpus)
}

/// Read `/sys/devices/system/node`: per-node `cpulist` and `distance`.
fn detect_sysfs(workers: usize) -> Option<Topology> {
    let base = std::path::Path::new("/sys/devices/system/node");
    let mut node_ids = Vec::new();
    for entry in std::fs::read_dir(base).ok()? {
        let name = entry.ok()?.file_name();
        let name = name.to_str()?;
        if let Some(id) = name.strip_prefix("node") {
            if let Ok(id) = id.parse::<usize>() {
                node_ids.push(id);
            }
        }
    }
    if node_ids.is_empty() {
        return None;
    }
    node_ids.sort_unstable();

    // (node position, cpu id) for every online cpu, and the SLIT rows.
    let mut cpus: Vec<(usize, usize)> = Vec::new();
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for (pos, &id) in node_ids.iter().enumerate() {
        let dir = base.join(format!("node{id}"));
        let list = std::fs::read_to_string(dir.join("cpulist")).ok()?;
        for cpu in parse_cpulist(&list)? {
            cpus.push((pos, cpu));
        }
        let dist = std::fs::read_to_string(dir.join("distance")).ok()?;
        let row: Vec<u32> = dist
            .split_whitespace()
            .map(|t| t.parse().ok())
            .collect::<Option<_>>()?;
        if row.len() != node_ids.len() {
            return None;
        }
        rows.push(row);
    }
    if cpus.is_empty() {
        return None;
    }
    // Node order first (the documented round-robin walks node 0's cores,
    // then node 1's, …), cpu id within a node: machines whose cpu ids
    // interleave nodes must not end up with interleaved worker→node maps.
    cpus.sort_unstable();

    let mut worker_node = Vec::with_capacity(workers);
    let mut worker_core = Vec::with_capacity(workers);
    for w in 0..workers {
        let (node, cpu) = cpus[w % cpus.len()];
        worker_node.push(node);
        worker_core.push(cpu);
    }
    Some(Topology::from_parts(
        worker_node,
        worker_core,
        DistanceMatrix::from_rows(&rows),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one_node() {
        let t = Topology::flat(4);
        assert_eq!(t.workers(), 4);
        assert_eq!(t.nodes(), 1);
        assert!(t.is_flat());
        assert!(t.same_node(0, 3));
        assert_eq!(t.distance(0, 3), DistanceMatrix::LOCAL);
        assert_eq!(t.distance_rings(0), vec![DistanceMatrix::LOCAL]);
    }

    #[test]
    fn two_level_splits_consecutively() {
        let t = Topology::two_level(8, 4);
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(7), 1);
        assert!(t.same_node(1, 2));
        assert!(!t.same_node(3, 4));
        assert_eq!(t.distance(0, 1), DistanceMatrix::LOCAL);
        assert_eq!(t.distance(0, 5), DistanceMatrix::REMOTE);
        assert_eq!(t.workers_on_node(1), &[4, 5, 6, 7]);
        assert_eq!(
            t.distance_rings(0),
            vec![DistanceMatrix::LOCAL, DistanceMatrix::REMOTE]
        );
    }

    #[test]
    fn two_level_partial_last_node() {
        let t = Topology::two_level(7, 3);
        assert_eq!(t.nodes(), 3);
        assert_eq!(t.workers_on_node(2), &[6]);
    }

    #[test]
    fn explicit_distances() {
        // 3 nodes in a line: 0 -10- 0, 0 -16- 1, 0 -22- 2.
        let d = DistanceMatrix::from_rows(&[vec![10, 16, 22], vec![16, 10, 16], vec![22, 16, 10]]);
        let t = Topology::with_distances(vec![0, 0, 1, 2], d);
        assert_eq!(t.distance(0, 2), 16);
        assert_eq!(t.distance(0, 3), 22);
        assert_eq!(t.distance_rings(0), vec![10, 16, 22]);
        assert_eq!(t.distance_rings(2), vec![10, 16]);
    }

    #[test]
    fn cpulist_parser() {
        assert_eq!(parse_cpulist("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpulist("0,2,4-5"), Some(vec![0, 2, 4, 5]));
        assert_eq!(parse_cpulist("7"), Some(vec![7]));
        assert_eq!(parse_cpulist(" 0-1, 3 \n"), Some(vec![0, 1, 3]));
        assert_eq!(parse_cpulist("3-1"), None);
        assert_eq!(parse_cpulist("x"), None);
    }

    #[test]
    fn detect_never_panics_and_matches_worker_count() {
        let t = Topology::detect(5);
        assert_eq!(t.workers(), 5);
        assert!(t.nodes() >= 1);
        for w in 0..5 {
            assert!(t.node_of(w) < t.nodes());
        }
    }
}
