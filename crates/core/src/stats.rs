//! Runtime statistics: per-worker cache-padded counters, aggregated on demand.
//!
//! The counters exist for two reasons: tests assert scheduler behaviours
//! (e.g. "aggregation served several thieves in one combine", "the frame was
//! promoted to graph mode"), and the figure harnesses report them next to
//! timings, mirroring the paper's discussion of steal-request counts.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Per-worker counters (cache-padded, relaxed increments).
        #[derive(Default)]
        pub(crate) struct WorkerStats {
            $($(#[$doc])* pub(crate) $name: CachePadded<AtomicU64>,)+
        }

        impl WorkerStats {
            fn add_into(&self, snap: &mut StatsSnapshot) {
                $(snap.$name += self.$name.load(Ordering::Relaxed);)+
            }
            fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        /// Aggregated scheduler statistics across all workers.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)+
            /// Per-band latency quantiles from the telemetry histograms
            /// (`DESIGN.md` §9); all zeros while tracing is disabled.
            pub latency: crate::telemetry::LatencyBands,
        }

        impl StatsSnapshot {
            /// Every counter as a `(name, value)` pair, in declaration
            /// order — the single enumeration the [`MetricsRegistry`]
            /// (`crate::telemetry::MetricsRegistry`) is built from, so the
            /// registry can never drift from the snapshot fields.
            pub fn pairs(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)+]
            }
        }
    };
}

counters! {
    /// Tasks pushed into frames.
    tasks_spawned,
    /// Tasks executed through the owner's FIFO fast path.
    tasks_executed_own,
    /// Tasks executed after being claimed by a steal.
    tasks_executed_stolen,
    /// Steal requests posted (one per victim probed).
    steal_attempts,
    /// Steal requests answered with work.
    steal_hits,
    /// Combine operations performed (one elected thief serving a batch).
    combine_batches,
    /// Total requests served across all combine operations.
    combine_served,
    /// Requests served in batches of size >= 2 (aggregation benefit).
    aggregated_requests,
    /// Adaptive-task splitter invocations that produced work.
    splits,
    /// Frames promoted to graph mode (ready-list acceleration).
    promotions,
    /// Write-only accesses renamed to a fresh version slot (WAR/WAW
    /// ordering edges eliminated).
    renames,
    /// Parallel-loop chunks executed.
    loop_chunks,
    /// Successful steals whose victim shared the thief's NUMA node.
    steals_local_node,
    /// Successful steals whose victim sat on a remote NUMA node.
    steals_remote_node,
    /// Victim choices where the policy deliberately left its preferred
    /// (nearest) victim set because the local fail streak grew too long.
    victim_escalations,
    /// Root jobs admitted through the injection layer (submit/scope, lanes
    /// or inline). Maintained globally by the inject lanes — submissions
    /// happen on external threads — and merged in by `Runtime::stats`.
    jobs_submitted,
    /// Submissions shed by the admission layer (`OnFull::Reject` at
    /// `max_pending`). Maintained globally, merged in by `Runtime::stats`.
    jobs_rejected,
    /// Injected root jobs a worker drained from its own NUMA node's lane.
    inject_own_lane,
    /// Injected root jobs a worker drained from a remote node's lane
    /// (its own lanes were empty). Counts as acquired work for the steal
    /// fail streak, exactly like an own-lane drain.
    inject_remote_lane,
    /// Served steal grabs whose task affinity resolved to a NUMA node and
    /// that were handed to a thief on that node (the combiner's
    /// data-affine grab matching, `DESIGN.md` §5).
    affine_placements,
    /// Worker threads successfully pinned to their topology core
    /// (`Builder::pin_workers` / `XKAAPI_PIN`; best effort, at most one
    /// per worker).
    workers_pinned,
    /// Tasks/jobs lowered through the `#[cold]` attribute-carrying slow
    /// path (non-default priority or affinity). Zero means every spawn in
    /// the program took the monomorphized default fast path.
    tasks_with_attrs,
    /// Inject-lane drains that had to walk the full band-major probe
    /// order because non-Normal jobs were pending. Maintained globally by
    /// the inject lanes, merged in by `Runtime::stats`; zero for
    /// Normal-only floods (the drain short-circuits to the Normal FIFO).
    inject_banded_drains,
    /// Frame pushes that carried declared accesses — i.e. spawns that ran
    /// data-flow dependency analysis (`DataflowEngine::bind`). Recorded-DAG
    /// replays (`RecordedDag::replay`) spawn bare pre-analyzed tasks, so
    /// this counter stays flat across replay iterations — the invariant
    /// the record-then-replay benchmarks assert.
    dataflow_pushes,
    /// Task bodies that panicked. The worker survives: the payload is
    /// captured, the frame is poisoned and the first payload re-raises at
    /// the enclosing `sync`/`scope`/`JoinHandle` (`DESIGN.md` §8).
    tasks_panicked,
    /// Tasks completed-as-failed without running because a dataflow
    /// predecessor in their cone panicked. Countdowns still drain, so the
    /// surviving graph never deadlocks.
    tasks_poisoned,
    /// Tasks (or queued jobs) whose body was skipped because their
    /// `CancelToken` was cancelled. Dataflow obligations are still
    /// satisfied — only the user body is elided.
    tasks_cancelled,
    /// `on_complete` callback panics caught and discarded by the inject
    /// layer. Maintained globally (callbacks may fire on external
    /// threads), merged in by `Runtime::stats`.
    callback_panics,
    /// Jobs shed at admission or drain time because their deadline had
    /// already passed (`JobBuilder::deadline`). Maintained globally by the
    /// inject lanes, merged in by `Runtime::stats`.
    jobs_expired,
    /// Starved Low-band inject entries moved up one band by the age-based
    /// promotion sweep (`Tunables::promote_low_after`). Maintained
    /// globally by the inject lanes, merged in by `Runtime::stats`.
    inject_promotions,
    /// Tasks routed to the offload engine (`Track::Offload`) instead of
    /// executing on the CPU pool (`DESIGN.md` §10).
    tasks_offloaded,
    /// Kernel-launch batches issued by the offload engine (each batch pays
    /// one launch latency and holds one in-flight slot).
    offload_batches,
    /// Host→device transfer steps synthesized by the offload engine (first
    /// use of a handle uploads it).
    offload_h2d,
    /// Device→host transfer steps synthesized by the offload engine
    /// (written handles download at commit).
    offload_d2h,
    /// Offload completion records drained back into dataflow readiness via
    /// the inject lanes (successor release happens here, not at body
    /// return).
    offload_completions,
    /// Tasks and root jobs executed on the dedicated blocking-I/O thread
    /// set (`Track::Io` / `wait_external`), never occupying a CPU worker.
    tasks_io,
}

impl WorkerStats {
    #[inline]
    pub(crate) fn bump(counter: &CachePadded<AtomicU64>, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Aggregate the counters of all workers into one snapshot.
pub(crate) fn aggregate<'a>(workers: impl Iterator<Item = &'a WorkerStats>) -> StatsSnapshot {
    let mut snap = StatsSnapshot::default();
    for w in workers {
        w.add_into(&mut snap);
    }
    snap
}

/// Reset the counters of all workers.
pub(crate) fn reset_all<'a>(workers: impl Iterator<Item = &'a WorkerStats>) {
    for w in workers {
        w.reset();
    }
}

impl StatsSnapshot {
    /// Total tasks executed (own + stolen).
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_executed_own + self.tasks_executed_stolen
    }

    /// Fraction of executed tasks that migrated to a thief.
    pub fn steal_ratio(&self) -> f64 {
        let t = self.tasks_executed();
        if t == 0 {
            0.0
        } else {
            self.tasks_executed_stolen as f64 / t as f64
        }
    }

    /// Fraction of locality-classified steals that stayed on the thief's
    /// NUMA node (`0.0` when no steal was classified — flat topologies
    /// classify every steal as local).
    pub fn steal_locality_ratio(&self) -> f64 {
        let t = self.steals_local_node + self.steals_remote_node;
        if t == 0 {
            0.0
        } else {
            self.steals_local_node as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_workers() {
        let a = WorkerStats::default();
        let b = WorkerStats::default();
        WorkerStats::bump(&a.tasks_spawned, 3);
        WorkerStats::bump(&b.tasks_spawned, 4);
        WorkerStats::bump(&b.steal_hits, 1);
        let snap = aggregate([&a, &b].into_iter());
        assert_eq!(snap.tasks_spawned, 7);
        assert_eq!(snap.steal_hits, 1);
    }

    #[test]
    fn ratios() {
        let mut s = StatsSnapshot::default();
        assert_eq!(s.steal_ratio(), 0.0);
        s.tasks_executed_own = 3;
        s.tasks_executed_stolen = 1;
        assert_eq!(s.tasks_executed(), 4);
        assert!((s.steal_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes() {
        let a = WorkerStats::default();
        WorkerStats::bump(&a.promotions, 5);
        reset_all([&a].into_iter());
        assert_eq!(aggregate([&a].into_iter()).promotions, 0);
    }
}
