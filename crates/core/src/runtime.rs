//! The runtime layer: pool construction, job injection and the public entry
//! points ([`Runtime::submit`], [`Runtime::scope`], parallel loops,
//! statistics).
//!
//! The engine is layered (see `README.md` for the stack diagram):
//!
//! * the **worker layer** ([`crate::worker`]) runs the idle loop
//!   *queue → inject → steal → park*;
//! * the **injection layer** ([`crate::inject`]) is how root jobs enter
//!   from outside the pool: sharded per-NUMA-node lanes with admission
//!   control, [`JoinHandle`]s for non-blocking callers;
//! * the **queue layer** ([`crate::queue::TaskQueue`]) decides where ready
//!   work lives — per-worker T.H.E. deques by default, or a centralized
//!   pool (the omp/quark baselines) injected through [`Builder::task_queue`];
//! * the **steal layer** ([`crate::policy::StealPolicy`]) decides the
//!   thief-side protocol — flat-combining aggregation by default,
//!   per-thief steals via [`Builder::steal_policy`];
//! * the **dependency layer** ([`crate::frame`]) is shared by every policy.
//!
//! External callers inject root jobs without parking a thread per scope:
//! [`Runtime::submit`] returns a [`JoinHandle`] immediately, and
//! [`Runtime::scope`] is submit followed by an immediate wait.

use crate::access::Access;
use crate::attrs::{Affinity, CancelToken, Priority, TaskAttrs, NORMAL_BAND};
use crate::ctx::{Ctx, RawCtx};
use crate::frame::PromotionPolicy;
use crate::handle::{Partitioned, Shared};
use crate::inject::{
    make_job, InjectLaneStats, InjectLanes, InjectPolicy, JoinHandle, JoinState, SubmitError,
};
use crate::policy::{AggregatedStealing, PerThiefStealing, RenamePolicy, StealPolicy};
use crate::queue::{DistributedLanes, TaskQueue};
use crate::stats::{self, StatsSnapshot};
use crate::telemetry::{MetricsRegistry, TelemetryState, TraceSession, WorkerTelemetry};
use crate::topology::Topology;
use crate::track::{OffloadTunables, Tracks};
use crate::worker::{current_worker_of, worker_main, ParkLot, Worker};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scheduler tuning knobs. Defaults reproduce the paper's design; ablation
/// benchmarks flip individual features off.
#[derive(Clone, Copy, Debug)]
pub struct Tunables {
    /// Ready-list ("graph mode") promotion policy.
    pub promotion: PromotionPolicy,
    /// Write-only renaming (WAR/WAW elimination) policy.
    pub rename: RenamePolicy,
    /// Steal-request aggregation: the elected combiner serves every drained
    /// request. When `false`, the combiner serves only itself and fails the
    /// others (they retry), modelling a runtime without flat combining.
    /// Mirror of the [`StealPolicy`] the runtime was built with; an explicit
    /// [`Builder::steal_policy`] overrides it.
    pub aggregation: bool,
    /// Idle rounds of steal attempts before a worker parks.
    pub steal_rounds_before_park: u32,
    /// Park timeout in microseconds: the bound on how long a parked worker
    /// sleeps before re-probing (repairs lost wake-up races). Historically
    /// a hardcoded 500 µs.
    pub park_timeout_us: u64,
    /// Default parallel-loop grain is `n / (grain_factor * workers)`.
    pub grain_factor: usize,
    /// Injection admission/backpressure policy (pending root-job cap and
    /// behaviour at the cap). `XKAAPI_MAX_PENDING` overrides the default
    /// cap.
    pub inject: InjectPolicy,
    /// Pin worker threads to their topology cores (`sched_setaffinity`,
    /// best effort: unsupported platforms and failed syscalls silently
    /// keep the nominal mapping). `XKAAPI_PIN` overrides the default.
    pub pin_workers: bool,
    /// Age-based promotion of starved Low-band inject entries: a queued
    /// Low job waiting at least this long is moved up to the Normal band
    /// by the drain-side sweep (`DESIGN.md` §8). `None` disables aging
    /// (pre-PR 8 strict band order, starvation by design).
    pub promote_low_after: Option<Duration>,
    /// Non-CPU execution tracks (`DESIGN.md` §10): the modelled offload
    /// engine's launch latency / batch size / in-flight cap / transfer
    /// cost and the blocking-I/O thread count.
    /// `XKAAPI_OFFLOAD_LATENCY_US` and `XKAAPI_IO_THREADS` override the
    /// corresponding defaults.
    pub offload: OffloadTunables,
}

impl Default for Tunables {
    fn default() -> Self {
        Tunables {
            promotion: PromotionPolicy::default(),
            rename: RenamePolicy::default(),
            aggregation: true,
            steal_rounds_before_park: 32,
            park_timeout_us: 500,
            grain_factor: 8,
            inject: InjectPolicy::default(),
            pin_workers: false,
            promote_low_after: Some(Duration::from_millis(10)),
            offload: OffloadTunables::default(),
        }
    }
}

/// Builder for [`Runtime`].
///
/// # Environment overrides
///
/// These variables override the corresponding *defaults* at
/// [`Builder::build`] time, so binaries that don't pin a configuration can
/// be tuned without recompiling (rayon's `RAYON_NUM_THREADS` precedent):
///
/// * `XKAAPI_WORKERS` — number of worker threads (≥ 1);
/// * `XKAAPI_GRAIN_FACTOR` — parallel-loop grain divisor (≥ 1);
/// * `XKAAPI_PARK_TIMEOUT_US` — idle-worker park timeout in µs (≥ 1);
/// * `XKAAPI_STEAL_ROUNDS` — failed steal rounds before a worker parks
///   (≥ 1);
/// * `XKAAPI_MAX_PENDING` — pending root-job cap of the injection
///   admission layer (≥ 1; the `on_full` behaviour is code-only);
/// * `XKAAPI_PIN` — pin worker threads to their topology cores
///   (`1/0`, `true/false`, `on/off`, `yes/no`);
/// * `XKAAPI_TRACE` — enable the always-compiled telemetry layer (event
///   rings + latency histograms, `DESIGN.md` §9; same boolean syntax).
///
/// An explicit setter call ([`Builder::workers`], [`Builder::grain_factor`],
/// [`Builder::park_timeout_us`], [`Builder::steal_rounds_before_park`],
/// [`Builder::max_pending`], [`Builder::inject_policy`],
/// [`Builder::pin_workers`])
/// wins over the environment: code that sized auxiliary structures (a
/// custom [`TaskQueue`], `Reduction::with_slots`) to a requested worker
/// count must never be resized from the outside underneath it. Malformed
/// values are ignored with a one-line warning on stderr.
pub struct Builder {
    workers: Option<usize>,
    tun: Tunables,
    grain_explicit: bool,
    park_explicit: bool,
    rounds_explicit: bool,
    pending_explicit: bool,
    pin_explicit: bool,
    offload_latency_explicit: bool,
    io_threads_explicit: bool,
    tracing: Option<bool>,
    stack_size: usize,
    queue: Option<Arc<dyn TaskQueue>>,
    steal: Option<Arc<dyn StealPolicy>>,
    topo: Option<Topology>,
    #[cfg(feature = "fault-injection")]
    fault_plan: Option<crate::fault::FaultPlan>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            workers: None,
            tun: Tunables::default(),
            grain_explicit: false,
            park_explicit: false,
            rounds_explicit: false,
            pending_explicit: false,
            pin_explicit: false,
            offload_latency_explicit: false,
            io_threads_explicit: false,
            tracing: None,
            stack_size: 16 << 20,
            queue: None,
            steal: None,
            topo: None,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

/// Parse a `≥ 1` integer environment override, warning once on junk.
fn env_override(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!("xkaapi: ignoring invalid {name}={raw:?} (want an integer >= 1)");
            None
        }
    }
}

/// Parse a boolean environment override (`1/0`, `true/false`, `on/off`,
/// `yes/no`), warning on junk.
fn env_flag(name: &str) -> Option<bool> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => {
            eprintln!("xkaapi: ignoring invalid {name}={raw:?} (want a boolean)");
            None
        }
    }
}

impl Builder {
    /// Number of worker threads (default: `XKAAPI_WORKERS` if set, else
    /// available parallelism). An explicit call here wins over the
    /// environment.
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one worker required");
        self.workers = Some(n);
        self
    }

    /// Override the graph-mode promotion policy.
    pub fn promotion(mut self, p: PromotionPolicy) -> Self {
        self.tun.promotion = p;
        self
    }

    /// Enable/disable write-only renaming (WAR/WAW elimination) — the
    /// master switch the ablation benchmarks A/B. Renaming only ever
    /// applies to renameable handles ([`crate::Shared::renameable`]).
    pub fn renaming(mut self, on: bool) -> Self {
        self.tun.rename.enabled = on;
        self
    }

    /// Override the full renaming policy (master switch + slot cap).
    pub fn rename_policy(mut self, p: RenamePolicy) -> Self {
        self.tun.rename = p;
        self
    }

    /// Enable/disable steal-request aggregation. Convenience for selecting
    /// [`AggregatedStealing`] / [`PerThiefStealing`]; an explicit
    /// [`Builder::steal_policy`] call wins over this flag.
    pub fn aggregation(mut self, on: bool) -> Self {
        self.tun.aggregation = on;
        self
    }

    /// Install a thief-side steal protocol (steal layer).
    pub fn steal_policy(mut self, p: Arc<dyn StealPolicy>) -> Self {
        self.steal = Some(p);
        self
    }

    /// Install an explicit machine [`Topology`] (worker→node mapping +
    /// distance matrix) for topology-aware steal policies. Its worker
    /// count must match the runtime's. Defaults to [`Topology::detect`]
    /// (Linux sysfs, flat fallback).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topo = Some(t);
        self
    }

    /// Install a ready-work store (queue layer). Defaults to
    /// [`DistributedLanes`] (one T.H.E. deque per worker). Centralized
    /// implementations make every paradigm run through one shared pool —
    /// see `xkaapi_omp::OmpCentralQueue` and `xkaapi_quark::QuarkCentralQueue`.
    pub fn task_queue(mut self, q: Arc<dyn TaskQueue>) -> Self {
        self.queue = Some(q);
        self
    }

    /// Parallel-loop grain factor (default chunk = `n / (factor * workers)`,
    /// with `XKAAPI_GRAIN_FACTOR` overriding the default factor). An
    /// explicit call here wins over the environment.
    pub fn grain_factor(mut self, f: usize) -> Self {
        assert!(f >= 1);
        self.tun.grain_factor = f;
        self.grain_explicit = true;
        self
    }

    /// Idle steal rounds before a worker parks (park threshold; default
    /// overridable via `XKAAPI_STEAL_ROUNDS`). An explicit call here wins
    /// over the environment.
    pub fn steal_rounds_before_park(mut self, rounds: u32) -> Self {
        self.tun.steal_rounds_before_park = rounds.max(1);
        self.rounds_explicit = true;
        self
    }

    /// Park timeout in microseconds (default 500, overridable via
    /// `XKAAPI_PARK_TIMEOUT_US`). An explicit call here wins over the
    /// environment.
    pub fn park_timeout_us(mut self, us: u64) -> Self {
        self.tun.park_timeout_us = us.max(1);
        self.park_explicit = true;
        self
    }

    /// Injection admission policy: pending root-job cap and behaviour at
    /// the cap ([`crate::OnFull::Block`] throttles submitters,
    /// [`crate::OnFull::Reject`] sheds load). An explicit call here wins
    /// over the `XKAAPI_MAX_PENDING` environment override.
    pub fn inject_policy(mut self, p: InjectPolicy) -> Self {
        assert!(p.max_pending >= 1, "max_pending must be >= 1");
        self.tun.inject = p;
        self.pending_explicit = true;
        self
    }

    /// Pending root-job cap of the injection admission layer (default
    /// 4096, overridable via `XKAAPI_MAX_PENDING`); keeps the configured
    /// `on_full` behaviour. An explicit call here wins over the
    /// environment.
    pub fn max_pending(mut self, n: usize) -> Self {
        assert!(n >= 1, "max_pending must be >= 1");
        self.tun.inject.max_pending = n;
        self.pending_explicit = true;
        self
    }

    /// Pin worker threads to their topology cores via `sched_setaffinity`
    /// (best effort: platforms without the syscall — or cores the process
    /// may not use — silently keep the nominal, unpinned mapping). Default
    /// `false`, overridable via the `XKAAPI_PIN` environment variable; an
    /// explicit call here wins over the environment.
    pub fn pin_workers(mut self, pin: bool) -> Self {
        self.tun.pin_workers = pin;
        self.pin_explicit = true;
        self
    }

    /// Worker thread stack size in bytes (default 16 MiB — recursive
    /// fork-join work runs on worker stacks).
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Promote a starved Low-band inject entry up one band after waiting
    /// this long (`None` disables the age sweep; default 10 ms).
    pub fn promote_low_after(mut self, after: Option<Duration>) -> Self {
        self.tun.promote_low_after = after;
        self
    }

    /// Replace the whole non-CPU track configuration (launch latency,
    /// batch size, in-flight cap, transfer cost, io thread count). Counts
    /// as explicit for *every* offload field: neither
    /// `XKAAPI_OFFLOAD_LATENCY_US` nor `XKAAPI_IO_THREADS` overrides it.
    pub fn offload_tunables(mut self, t: OffloadTunables) -> Self {
        assert!(t.io_threads >= 1, "at least one io thread required");
        self.tun.offload = t;
        self.offload_latency_explicit = true;
        self.io_threads_explicit = true;
        self
    }

    /// Modelled kernel-launch latency of the offload engine in µs
    /// (default 20, overridable via `XKAAPI_OFFLOAD_LATENCY_US`). An
    /// explicit call here wins over the environment.
    pub fn offload_launch_latency_us(mut self, us: u64) -> Self {
        self.tun.offload.launch_latency_us = us;
        self.offload_latency_explicit = true;
        self
    }

    /// Number of dedicated blocking-I/O threads (default 2, overridable
    /// via `XKAAPI_IO_THREADS`). An explicit call here wins over the
    /// environment.
    pub fn io_threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one io thread required");
        self.tun.offload.io_threads = n;
        self.io_threads_explicit = true;
        self
    }

    /// Enable the telemetry layer from construction: per-worker event
    /// rings and banded latency histograms (`DESIGN.md` §9). Always
    /// compiled in, default **off** (one relaxed load per instrumentation
    /// point), overridable via the `XKAAPI_TRACE` environment variable;
    /// an explicit call here wins over the environment. Can also be
    /// toggled live with [`Runtime::set_tracing`].
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = Some(on);
        self
    }

    /// Install a deterministic fault-injection plan (chaos testing only;
    /// see [`crate::fault::FaultPlan`]). Feature-gated: release builds
    /// without `fault-injection` carry zero hook cost.
    #[cfg(feature = "fault-injection")]
    pub fn fault_plan(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Create the runtime and start its workers.
    pub fn build(self) -> Runtime {
        let mut tun = self.tun;
        if !self.grain_explicit {
            if let Some(f) = env_override("XKAAPI_GRAIN_FACTOR") {
                tun.grain_factor = f;
            }
        }
        if !self.park_explicit {
            if let Some(us) = env_override("XKAAPI_PARK_TIMEOUT_US") {
                tun.park_timeout_us = us as u64;
            }
        }
        if !self.rounds_explicit {
            if let Some(r) = env_override("XKAAPI_STEAL_ROUNDS") {
                tun.steal_rounds_before_park = r.min(u32::MAX as usize) as u32;
            }
        }
        if !self.pending_explicit {
            if let Some(n) = env_override("XKAAPI_MAX_PENDING") {
                tun.inject.max_pending = n;
            }
        }
        if !self.pin_explicit {
            if let Some(pin) = env_flag("XKAAPI_PIN") {
                tun.pin_workers = pin;
            }
        }
        if !self.offload_latency_explicit {
            if let Some(us) = env_override("XKAAPI_OFFLOAD_LATENCY_US") {
                tun.offload.launch_latency_us = us as u64;
            }
        }
        if !self.io_threads_explicit {
            if let Some(n) = env_override("XKAAPI_IO_THREADS") {
                tun.offload.io_threads = n;
            }
        }
        let nworkers = self
            .workers
            .or_else(|| env_override("XKAAPI_WORKERS"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let queue = self
            .queue
            .unwrap_or_else(|| Arc::new(DistributedLanes::new(nworkers)));
        let steal_pol: Arc<dyn StealPolicy> = match self.steal {
            Some(p) => p,
            None if tun.aggregation => Arc::new(AggregatedStealing),
            None => Arc::new(PerThiefStealing),
        };
        let topo = match self.topo {
            Some(t) => {
                assert_eq!(
                    t.workers(),
                    nworkers,
                    "Builder::topology worker count must match the runtime's"
                );
                t
            }
            None => Topology::detect(nworkers),
        };
        let workers: Box<[Arc<Worker>]> = (0..nworkers).map(|i| Arc::new(Worker::new(i))).collect();
        let inject = InjectLanes::new(&topo, tun.inject, tun.promote_low_after);
        let trace_on = self
            .tracing
            .or_else(|| env_flag("XKAAPI_TRACE"))
            .unwrap_or(false);
        let tracks = Tracks::new(tun.offload, nworkers);
        // One Perfetto lane per worker, then one per track thread, in the
        // exact order `RtInner::tele_refs` yields the bundles.
        let lanes: Vec<String> = (0..nworkers)
            .map(|i| format!("worker {i}"))
            .chain(tracks.lane_names())
            .collect();
        let inner = Arc::new(RtInner {
            workers,
            inject,
            telemetry: TelemetryState::named(lanes, trace_on),
            park_lot: ParkLot::new(),
            shutdown: AtomicBool::new(false),
            tun,
            queue,
            steal_pol,
            topo,
            threads: Mutex::new(Vec::new()),
            tracks,
            #[cfg(feature = "fault-injection")]
            fault: self
                .fault_plan
                .map(|p| Arc::new(crate::fault::FaultState::new(p))),
        });
        inner.tracks.start(&inner);
        for i in 0..nworkers {
            let rt = Arc::clone(&inner);
            let h = std::thread::Builder::new()
                .name(format!("xkaapi-worker-{i}"))
                .stack_size(self.stack_size)
                .spawn(move || worker_main(rt, i))
                .expect("failed to spawn worker thread");
            inner.threads.lock().push(h);
        }
        Runtime { inner }
    }
}

/// The X-Kaapi runtime: a pool of work-stealing workers executing data-flow
/// tasks, fork-join tasks and adaptive parallel loops.
pub struct Runtime {
    pub(crate) inner: Arc<RtInner>,
}

pub(crate) struct RtInner {
    pub(crate) workers: Box<[Arc<Worker>]>,
    /// Injection layer: sharded per-node root-job lanes with admission
    /// control (see [`crate::inject`]).
    pub(crate) inject: InjectLanes,
    /// Telemetry layer: the enable flag, clock epoch and accumulated
    /// trace session (`DESIGN.md` §9). Per-worker rings/histograms live
    /// on the workers themselves.
    pub(crate) telemetry: TelemetryState,
    pub(crate) park_lot: ParkLot,
    pub(crate) shutdown: AtomicBool,
    pub(crate) tun: Tunables,
    /// Queue layer: where ready work lives.
    pub(crate) queue: Arc<dyn TaskQueue>,
    /// Steal layer: the thief-side protocol.
    pub(crate) steal_pol: Arc<dyn StealPolicy>,
    /// Machine topology consulted by topology-aware steal policies.
    pub(crate) topo: Topology,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Non-CPU execution tracks: the modelled offload engine and the
    /// blocking-I/O thread set (`DESIGN.md` §10).
    pub(crate) tracks: Tracks,
    /// Deterministic fault-injection plan state (chaos testing only).
    #[cfg(feature = "fault-injection")]
    pub(crate) fault: Option<Arc<crate::fault::FaultState>>,
}

/// A root job injected from outside the pool, carrying the telemetry
/// metadata stamped at submission: the priority band it was admitted at
/// and the submit-time tick (0 = tracing was off at submission), from
/// which the draining worker computes the submit→start latency.
pub(crate) struct Job {
    pub(crate) run: Box<dyn FnOnce(&mut RawCtx) + Send>,
    pub(crate) band: u8,
    pub(crate) submit_tick: u64,
}

impl Job {
    /// A job with default (Normal-band, untraced) metadata; submission
    /// paths overwrite the band and stamp the tick when tracing is on.
    pub(crate) fn new(run: Box<dyn FnOnce(&mut RawCtx) + Send>) -> Job {
        Job {
            run,
            band: NORMAL_BAND,
            submit_tick: 0,
        }
    }
}

impl RtInner {
    #[inline]
    pub(crate) fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Wake parked workers because new work appeared.
    #[inline]
    pub(crate) fn signal_work(&self) {
        self.park_lot.signal();
    }

    /// All telemetry bundles in lane order — workers first, then the
    /// track threads (drain/merge views; parallel to the session's lane
    /// names).
    pub(crate) fn tele_refs(&self) -> Vec<&WorkerTelemetry> {
        self.workers
            .iter()
            .map(|w| &w.tele)
            .chain(self.tracks.tele_refs())
            .collect()
    }

    /// The **single** stats merge path (`DESIGN.md` §9): per-worker
    /// counters, the injection layer's global counters, the contained
    /// callback-panic count and the telemetry latency quantiles — used by
    /// both [`Runtime::stats`] and [`Runtime::metrics`] so the two can
    /// never disagree.
    pub(crate) fn collect_stats(&self) -> StatsSnapshot {
        let mut snap = stats::aggregate(
            self.workers
                .iter()
                .map(|w| &w.stats)
                .chain(self.tracks.stats_refs()),
        );
        snap.jobs_submitted += self.inject.total_submitted();
        snap.jobs_rejected += self.inject.total_rejected();
        snap.inject_banded_drains += self.inject.total_banded_drains();
        snap.jobs_expired += self.inject.total_expired();
        snap.inject_promotions += self.inject.total_promoted();
        snap.callback_panics += crate::inject::callback_panics();
        snap.latency = self.telemetry.collect_latency(&self.tele_refs());
        snap
    }
}

impl Runtime {
    /// Runtime with `workers` threads and default tunables.
    pub fn new(workers: usize) -> Runtime {
        Builder::default().workers(workers).build()
    }

    /// Start configuring a runtime.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.inner.num_workers()
    }

    /// Enqueue a root job and return a [`JoinHandle`] **without waiting for
    /// the job to run**: the handle is the non-blocking front door servers
    /// and async reactors feed the pool through ([`JoinHandle::wait`] /
    /// [`JoinHandle::try_result`] / [`JoinHandle::on_complete`]).
    ///
    /// Admission follows the runtime's [`InjectPolicy`]: at
    /// `max_pending` queued jobs the call either blocks until a worker
    /// drains a lane ([`crate::OnFull::Block`], the default — never
    /// returns `Err`) or returns [`SubmitError`] immediately
    /// ([`crate::OnFull::Reject`]; the closure is dropped). The job lands
    /// in the submitting thread's hashed per-NUMA-node inject lane and is
    /// picked up by workers nearest that lane first.
    ///
    /// Called from inside a worker of this pool, the job runs **inline**
    /// (immediately, on the calling worker, like a nested [`Runtime::scope`])
    /// and the returned handle is already complete — tasks can submit
    /// follow-up roots without any deadlock risk and without consuming an
    /// admission slot.
    ///
    /// A panic inside the job is captured and re-raised at
    /// [`JoinHandle::wait`] / [`JoinHandle::try_result`].
    pub fn submit<F, R>(&self, f: F) -> Result<JoinHandle<R>, SubmitError>
    where
        F: for<'s> FnOnce(&mut Ctx<'s>) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.submit_with(TaskAttrs::default(), &[], None, f)
    }

    /// Start building an attribute-carrying root job: set a [`Priority`]
    /// (admission shed order, lane drain order) and an [`Affinity`]
    /// (which NUMA node's inject lane the job lands in), then terminate
    /// with [`JobBuilder::submit`] or [`JobBuilder::detach`].
    /// [`Runtime::submit`] is this builder with default attributes.
    ///
    /// ```
    /// use xkaapi_core::{Affinity, Priority, Runtime};
    /// let rt = Runtime::new(2);
    /// let h = rt
    ///     .task()
    ///     .priority(Priority::High)
    ///     .affinity(Affinity::Auto)
    ///     .submit(|ctx| ctx.join(|_| 6, |_| 7))
    ///     .unwrap();
    /// assert_eq!(h.wait(), (6, 7));
    /// ```
    pub fn task(&self) -> JobBuilder<'_> {
        JobBuilder {
            rt: self,
            attrs: TaskAttrs::default(),
            hints: Vec::new(),
            deadline: None,
        }
    }

    /// Attribute-aware submission shared by [`Runtime::submit`] and
    /// [`JobBuilder`]: admission at the priority's band, lane chosen by
    /// the resolved affinity (falling back to the submitter hash).
    fn submit_with<F, R>(
        &self,
        attrs: TaskAttrs,
        hints: &[Access],
        deadline: Option<Instant>,
        f: F,
    ) -> Result<JoinHandle<R>, SubmitError>
    where
        F: for<'s> FnOnce(&mut Ctx<'s>) -> R + Send + 'static,
        R: Send + 'static,
    {
        // Every submission gets a cancel token (caller-provided or fresh) so
        // the returned handle always supports [`JoinHandle::cancel`]; the
        // token is inherited by every task the job spawns.
        let token = attrs.cancel.clone().unwrap_or_default();
        // Admission-time shedding: a job whose deadline already passed never
        // consumes a slot (drain-time expiry is handled inside the job).
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.inner.inject.note_expired();
            return Err(SubmitError::Expired);
        }
        let state = Arc::new(JoinState::new());
        // Blocking jobs (`JobBuilder::wait_external` / `track(Io)`) route
        // to the io thread set — even from worker context, where the
        // inline shortcut below would put a blocking body on the CPU
        // pool, the one thing the io track exists to prevent. The io
        // queue is unbounded (no lane admission slot), so no deadlock:
        // an io thread runs the job independently of the submitter.
        if matches!(attrs.track, crate::attrs::Track::Io) {
            self.inner.inject.note_inline_submit();
            let mut job = make_job(Arc::clone(&state), Some(token.clone()), deadline, f);
            job.band = attrs.band();
            if self.inner.telemetry.enabled() {
                job.submit_tick = crate::telemetry::tick();
            }
            self.inner.tracks.io.submit_job(job);
            return Ok(JoinHandle::new(state, &self.inner, Some(token)));
        }
        if let Some(widx) = current_worker_of(&self.inner) {
            // Worker context: run inline (a queued job could deadlock a
            // 1-worker pool whose only worker then waits on the handle).
            self.inner.inject.note_inline_submit();
            if token.is_cancelled() {
                crate::stats::WorkerStats::bump(&self.inner.workers[widx].stats.tasks_cancelled, 1);
                state.complete(Err(Box::new(SubmitError::Cancelled)));
            } else {
                let mut raw = RawCtx::new(Arc::clone(&self.inner), widx);
                raw.cancel = Some(token.clone());
                state.complete(raw.run_scoped_catch(f));
            }
            return Ok(JoinHandle::new(state, &self.inner, Some(token)));
        }
        let admission = self.inner.inject.admit(attrs.band())?;
        let lane = attrs
            .resolve_node(hints, self.inner.inject.lanes())
            .unwrap_or_else(|| self.inner.inject.lane_of_submitter());
        let mut job = make_job(Arc::clone(&state), Some(token.clone()), deadline, f);
        job.band = attrs.band();
        if self.inner.telemetry.enabled() {
            job.submit_tick = crate::telemetry::tick();
        }
        self.inner.inject.push(admission, lane, attrs.band(), job);
        self.inner.signal_work();
        Ok(JoinHandle::new(state, &self.inner, Some(token)))
    }

    /// Run `f` with a task context, blocking until every task spawned inside
    /// (transitively) has completed. Panics raised by tasks are propagated
    /// after all siblings finished.
    ///
    /// This is sugar for [`Runtime::submit`] + [`JoinHandle::wait`] on the
    /// same machinery (same inject lanes, same completion state), with two
    /// scope-specific guarantees: admission always *blocks* (a scope
    /// caller parks until completion anyway, so it is never rejected, even
    /// under [`crate::OnFull::Reject`]), and because the caller provably
    /// outlives the job, the closure may borrow from the caller's stack
    /// (no `'static` bound — the rayon-style scope contract).
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&mut Ctx<'scope>) -> R + Send,
        R: Send,
    {
        if let Some(widx) = current_worker_of(&self.inner) {
            // Already on a worker of this pool: run inline with a fresh frame.
            let mut raw = RawCtx::new(Arc::clone(&self.inner), widx);
            return raw.run_scoped(f);
        }
        let state = Arc::new(JoinState::<R>::new());
        let st = Arc::clone(&state);
        let job_fn = move |raw: &mut RawCtx| {
            st.complete(raw.run_scoped_catch(f));
        };
        // Safety: lifetime erasure of the job closure; the caller blocks on
        // the join state until the job has run to completion, so every
        // borrow the closure captures outlives its execution (rayon-style
        // scope). The erased `Arc<JoinState<R>>` the job holds is only
        // dropped (never dereferenced into `R`) after completion.
        let boxed: Box<dyn FnOnce(&mut RawCtx) + Send> = Box::new(job_fn);
        let boxed: Box<dyn FnOnce(&mut RawCtx) + Send + 'static> =
            unsafe { std::mem::transmute(boxed) };
        let admission = self.inner.inject.admit_blocking(NORMAL_BAND);
        let lane = self.inner.inject.lane_of_submitter();
        let mut job = Job::new(boxed);
        if self.inner.telemetry.enabled() {
            job.submit_tick = crate::telemetry::tick();
        }
        self.inner.inject.push(admission, lane, NORMAL_BAND, job);
        self.inner.signal_work();
        state.wait_blocking();
        match state
            .take_result()
            .expect("scope job did not report a result")
        {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Parallel loop over `range` applying `body` to every index.
    /// See [`Ctx::foreach`] for the adaptive scheduling description.
    pub fn foreach<F>(&self, range: std::ops::Range<usize>, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.scope(|ctx| ctx.foreach(range, &body));
    }

    /// Parallel loop handing out whole chunks (`grain: None` = automatic).
    pub fn foreach_chunks<F>(&self, range: std::ops::Range<usize>, grain: Option<usize>, body: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        self.scope(|ctx| ctx.foreach_chunks(range, grain, &body));
    }

    /// Parallel reduction over `range`.
    pub fn foreach_reduce<T, ID, FOLD, COMB>(
        &self,
        range: std::ops::Range<usize>,
        grain: Option<usize>,
        identity: ID,
        fold: FOLD,
        combine: COMB,
    ) -> T
    where
        T: Send,
        ID: Fn() -> T + Sync,
        FOLD: Fn(&mut T, usize) + Sync,
        COMB: Fn(T, T) -> T + Send + Sync,
    {
        self.scope(|ctx| ctx.foreach_reduce(range, grain, &identity, &fold, &combine))
    }

    /// Aggregated scheduler statistics since construction (or last reset).
    /// `jobs_submitted` / `jobs_rejected` come from the injection layer's
    /// global counters (submissions happen on external threads), the rest
    /// from the per-worker counters; `latency` carries the telemetry
    /// histograms' per-band quantiles (zeros while tracing is off). One
    /// merge path (`RtInner::collect_stats`) feeds this and
    /// [`Runtime::metrics`]. As a side effect the per-worker event rings
    /// are drained into the accumulated trace session
    /// ([`Runtime::take_trace`]).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.telemetry.drain(&self.inner.tele_refs());
        self.inner.collect_stats()
    }

    /// The unified metrics registry (`DESIGN.md` §9): every counter of
    /// [`Runtime::stats`] by name, per-lane inject gauges, telemetry
    /// event/drop counts and the per-band latency quantiles, all built
    /// from the same merge path as the snapshot. Serialize with
    /// [`MetricsRegistry::to_json`].
    pub fn metrics(&self) -> MetricsRegistry {
        let snap = self.stats();
        let mut m = MetricsRegistry::new();
        for (name, v) in snap.pairs() {
            m.counter(name, v);
        }
        for (node, l) in self.inject_lane_stats().iter().enumerate() {
            m.gauge(format!("inject_lane{node}_submitted"), l.submitted);
            m.gauge(format!("inject_lane{node}_drained"), l.drained);
        }
        let tele = self.inner.tele_refs();
        m.gauge(
            "trace_events_recorded",
            self.inner.telemetry.events_recorded(&tele),
        );
        m.gauge(
            "trace_events_dropped",
            self.inner.telemetry.events_dropped(&tele),
        );
        for (b, band) in ["high", "normal", "low"].iter().enumerate() {
            m.histogram(
                format!("submit_to_start_{band}"),
                snap.latency.submit_to_start[b],
            );
            m.histogram(
                format!("start_to_done_{band}"),
                snap.latency.start_to_done[b],
            );
        }
        m
    }

    /// Flip the telemetry layer on or off live (one relaxed store; spans
    /// already in flight may lose their begin or end half — the trace
    /// consumers tolerate unbalanced spans).
    pub fn set_tracing(&self, on: bool) {
        self.inner.telemetry.set_enabled(on);
    }

    /// Is the telemetry layer currently recording?
    pub fn tracing_enabled(&self) -> bool {
        self.inner.telemetry.enabled()
    }

    /// Drain every worker's event ring and move the accumulated trace
    /// session out: one nanosecond-stamped timeline per worker plus the
    /// ring-overflow drop count. Export with
    /// [`TraceSession::to_chrome_trace`] for Perfetto. A second call
    /// starts from an empty session.
    pub fn take_trace(&self) -> TraceSession {
        self.inner.telemetry.take_session(&self.inner.tele_refs())
    }

    /// Reset all statistics counters (per-worker, injection-layer, and
    /// the telemetry rings/histograms/session).
    pub fn reset_stats(&self) {
        stats::reset_all(
            self.inner
                .workers
                .iter()
                .map(|w| &w.stats)
                .chain(self.inner.tracks.stats_refs()),
        );
        self.inner.inject.reset_counters();
        crate::inject::reset_callback_panics();
        self.inner.telemetry.reset(&self.inner.tele_refs());
    }

    /// Number of inject lanes (one per NUMA node of the topology).
    pub fn inject_lane_count(&self) -> usize {
        self.inner.inject.lanes()
    }

    /// Per-lane injection counters (`submitted`/`drained` per NUMA-node
    /// lane), indexed by node id. The bench harnesses report these next to
    /// the aggregate `inject_own_lane` / `inject_remote_lane` worker
    /// counters.
    pub fn inject_lane_stats(&self) -> Vec<InjectLaneStats> {
        self.inner.inject.lane_stats()
    }

    /// The tunables this runtime was built with.
    pub fn tunables(&self) -> Tunables {
        self.inner.tun
    }

    /// Name of the queue-layer policy in effect.
    pub fn queue_name(&self) -> &'static str {
        self.inner.queue.name()
    }

    /// Name of the steal-layer policy in effect.
    pub fn steal_policy_name(&self) -> &'static str {
        self.inner.steal_pol.name()
    }

    /// The machine topology this runtime schedules against (detected or
    /// injected via [`Builder::topology`]).
    pub fn topology(&self) -> &Topology {
        &self.inner.topo
    }

    /// Graceful shutdown: wait up to `timeout` for every queued root job to
    /// drain, then stop the workers (consuming the runtime, like `drop`).
    ///
    /// Returns `true` when the inject lanes drained inside the window,
    /// `false` when the timeout elapsed first — in which case still-queued
    /// jobs are abandoned exactly as a plain `drop` would abandon them
    /// (their [`JoinHandle`]s never complete). Jobs already *running* on a
    /// worker finish either way: workers only observe the shutdown flag
    /// between tasks.
    pub fn shutdown_timeout(self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut drained = !self.inner.inject.has_pending_hint();
        while !drained && Instant::now() < deadline {
            self.inner.signal_work();
            std::thread::sleep(Duration::from_millis(1));
            drained = !self.inner.inject.has_pending_hint();
        }
        drop(self);
        drained
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.park_lot.signal_all();
        let threads = std::mem::take(&mut *self.inner.threads.lock());
        for t in threads {
            let _ = t.join();
        }
        // Track engines stop after the CPU workers: a worker mid-task may
        // still dispatch to a track (the shutdown check in `dispatch` is
        // advisory), but once workers are joined nothing submits anymore.
        // Queued-but-unstarted track work is dropped like queued inject
        // jobs.
        self.inner.tracks.stop();
        // Final telemetry drain: every ring's tail events land in the
        // accumulated session (worker threads are gone, so the producer
        // side is quiescent). Only observable through an outstanding
        // `Arc<RtInner>` clone (e.g. a worker-held trace consumer).
        self.inner.telemetry.drain(&self.inner.tele_refs());
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.num_workers())
            .field("queue", &self.queue_name())
            .field("steal", &self.steal_policy_name())
            .finish()
    }
}

/// Builder for an attribute-carrying **root job** — the injection-layer
/// twin of [`TaskBuilder`](crate::TaskBuilder), started with
/// [`Runtime::task`].
///
/// Access declarations on a root job ([`JobBuilder::reads`] /
/// [`JobBuilder::writes`] / [`JobBuilder::access`]) are *affinity hints*:
/// a root job computes its real dependencies inside its own scope, but
/// [`Affinity::Auto`] uses the hints' handle homes to pick the inject lane
/// of the node owning the data, so workers of that node (which drain their
/// own lane first) start the job. [`Priority`] selects the admission band
/// (low is shed before high at the cap) and the lane's drain band.
#[must_use = "a JobBuilder does nothing until .submit(f) or .detach(f)"]
pub struct JobBuilder<'rt> {
    rt: &'rt Runtime,
    attrs: TaskAttrs,
    hints: Vec<Access>,
    deadline: Option<Duration>,
}

impl<'rt> JobBuilder<'rt> {
    /// Set the priority band.
    pub fn priority(mut self, p: Priority) -> Self {
        self.attrs.priority = p;
        self
    }

    /// Set the data-affinity request.
    pub fn affinity(mut self, a: Affinity) -> Self {
        self.attrs.affinity = a;
        self
    }

    /// Attach a caller-owned cancellation token (cancelling it cancels the
    /// job's whole cone; see [`CancelToken`]). Without this call the job
    /// still gets a fresh token, reachable via
    /// [`JoinHandle::cancel_token`](crate::JoinHandle::cancel_token).
    pub fn cancel_token(mut self, t: &CancelToken) -> Self {
        self.attrs.cancel = Some(t.clone());
        self
    }

    /// Route the job to an execution track. For root jobs only
    /// [`Track::Io`](crate::Track) changes the path: the body runs on the
    /// dedicated blocking thread set instead of a CPU worker
    /// (`DESIGN.md` §10). `Track::Offload` is a task-level attribute —
    /// a root job keeps the CPU path and routes per-task via
    /// [`TaskBuilder::track`](crate::TaskBuilder::track).
    pub fn track(mut self, t: crate::attrs::Track) -> Self {
        self.attrs.track = t;
        self
    }

    /// Mark the job as blocking on an external event: sugar for
    /// `.track(Track::Io)` — it runs on the io thread set and never
    /// occupies a CPU worker while blocked.
    pub fn wait_external(self) -> Self {
        self.track(crate::attrs::Track::Io)
    }

    /// Admission deadline, measured from the `submit` call: a job still
    /// *queued* when the deadline passes is shed at drain time (its handle
    /// completes with [`SubmitError::Expired`]), and a job already expired
    /// at submission is shed immediately. A job that *started* before the
    /// deadline runs to completion — this bounds queueing delay, not
    /// execution time (`DESIGN.md` §8).
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Affinity hint: the job will read `h` (steers [`Affinity::Auto`]
    /// toward the handle's home node).
    pub fn reads<T: ?Sized>(mut self, h: &Shared<T>) -> Self {
        self.hints.push(h.read());
        self
    }

    /// Affinity hint: the job will write `h` (writing hints outrank
    /// reading ones for [`Affinity::Auto`]).
    pub fn writes<T: ?Sized>(mut self, h: &Shared<T>) -> Self {
        self.hints.push(h.write());
        self
    }

    /// Affinity hint: the job will overwrite the [`Partitioned`] handle.
    pub fn writes_all<T: Send>(mut self, p: &Partitioned<T>) -> Self {
        self.hints.push(p.write_all());
        self
    }

    /// Affinity hint from an explicit access descriptor.
    pub fn access(mut self, a: Access) -> Self {
        self.hints.push(a);
        self
    }

    /// Submit the job and return its [`JoinHandle`] without waiting (the
    /// attribute-carrying [`Runtime::submit`]). Admission follows the
    /// runtime's [`InjectPolicy`] at this builder's priority band.
    pub fn submit<F, R>(self, f: F) -> Result<JoinHandle<R>, SubmitError>
    where
        F: for<'s> FnOnce(&mut Ctx<'s>) -> R + Send + 'static,
        R: Send + 'static,
    {
        let deadline = self.deadline.map(|d| Instant::now() + d);
        self.rt.submit_with(self.attrs, &self.hints, deadline, f)
    }

    /// Submit the job fire-and-forget: no handle, the job still runs to
    /// completion (dropping a [`JoinHandle`] never cancels).
    pub fn detach<F, R>(self, f: F) -> Result<(), SubmitError>
    where
        F: for<'s> FnOnce(&mut Ctx<'s>) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.submit(f).map(drop)
    }
}
