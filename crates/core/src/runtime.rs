//! The runtime: worker threads, parking, job injection and the public entry
//! points ([`Runtime::scope`], parallel loops, statistics).
//!
//! One thread is created per configured worker ("one thread per core" in the
//! paper). External callers inject root jobs; workers run an idle loop of
//! *inject → steal → park*. All parallel work happens on the workers; the
//! injecting thread blocks on a latch (with the work-stealing guarantees,
//! this keeps every scheduling decision inside the pool).

use crate::adaptive::Adaptive;
use crate::ctx::{Ctx, RawCtx};
use crate::fastlane::FastLane;
use crate::frame::{Frame, PromotionPolicy};
use crate::stats::{self, StatsSnapshot, WorkerStats};
use crate::steal::{run_grab, try_steal_once, Request};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Scheduler tuning knobs. Defaults reproduce the paper's design; ablation
/// benchmarks flip individual features off.
#[derive(Clone, Copy, Debug)]
pub struct Tunables {
    /// Ready-list ("graph mode") promotion policy.
    pub promotion: PromotionPolicy,
    /// Steal-request aggregation: the elected combiner serves every drained
    /// request. When `false`, the combiner serves only itself and fails the
    /// others (they retry), modelling a runtime without flat combining.
    pub aggregation: bool,
    /// Idle rounds of steal attempts before a worker parks.
    pub steal_rounds_before_park: u32,
    /// Default parallel-loop grain is `n / (grain_factor * workers)`.
    pub grain_factor: usize,
}

impl Default for Tunables {
    fn default() -> Self {
        Tunables {
            promotion: PromotionPolicy::default(),
            aggregation: true,
            steal_rounds_before_park: 32,
            grain_factor: 8,
        }
    }
}

/// Builder for [`Runtime`].
pub struct Builder {
    workers: Option<usize>,
    tun: Tunables,
    stack_size: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder { workers: None, tun: Tunables::default(), stack_size: 16 << 20 }
    }
}

impl Builder {
    /// Number of worker threads (default: available parallelism).
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one worker required");
        self.workers = Some(n);
        self
    }

    /// Override the graph-mode promotion policy.
    pub fn promotion(mut self, p: PromotionPolicy) -> Self {
        self.tun.promotion = p;
        self
    }

    /// Enable/disable steal-request aggregation.
    pub fn aggregation(mut self, on: bool) -> Self {
        self.tun.aggregation = on;
        self
    }

    /// Parallel-loop grain factor (default chunk = `n / (factor * workers)`).
    pub fn grain_factor(mut self, f: usize) -> Self {
        assert!(f >= 1);
        self.tun.grain_factor = f;
        self
    }

    /// Worker thread stack size in bytes (default 16 MiB — recursive
    /// fork-join work runs on worker stacks).
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Create the runtime and start its workers.
    pub fn build(self) -> Runtime {
        let nworkers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        });
        let workers: Box<[Arc<Worker>]> =
            (0..nworkers).map(|i| Arc::new(Worker::new(i))).collect();
        let inner = Arc::new(RtInner {
            workers,
            inject: Mutex::new(VecDeque::new()),
            park_mx: Mutex::new(()),
            park_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            tun: self.tun,
            threads: Mutex::new(Vec::new()),
        });
        for i in 0..nworkers {
            let rt = Arc::clone(&inner);
            let h = std::thread::Builder::new()
                .name(format!("xkaapi-worker-{i}"))
                .stack_size(self.stack_size)
                .spawn(move || worker_main(rt, i))
                .expect("failed to spawn worker thread");
            inner.threads.lock().push(h);
        }
        Runtime { inner }
    }
}

/// The X-Kaapi runtime: a pool of work-stealing workers executing data-flow
/// tasks, fork-join tasks and adaptive parallel loops.
pub struct Runtime {
    pub(crate) inner: Arc<RtInner>,
}

pub(crate) struct RtInner {
    pub(crate) workers: Box<[Arc<Worker>]>,
    pub(crate) inject: Mutex<VecDeque<Job>>,
    park_mx: Mutex<()>,
    park_cv: Condvar,
    sleepers: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) tun: Tunables,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// One worker: its frames (stealable task stacks), adaptive-work registry,
/// steal point (request stack + combiner lock) and statistics.
pub(crate) struct Worker {
    #[allow(dead_code)] // identity, useful in debugging/traces
    pub(crate) idx: usize,
    /// Active frames on this worker, oldest first (thieves scan from the
    /// oldest, as in the paper's victim-stack traversal).
    pub(crate) frames: Mutex<Vec<Arc<Frame>>>,
    /// Adaptive (splittable) work currently running on this worker.
    pub(crate) adaptives: Mutex<Vec<Arc<dyn Adaptive>>>,
    /// Combiner election: the thief holding this lock serves the victim's
    /// pending steal requests.
    pub(crate) steal_lock: Mutex<()>,
    /// Treiber stack of posted steal requests.
    pub(crate) req_head: AtomicPtr<Request>,
    /// This worker's own request node, posted to victims when idle.
    pub(crate) req: Request,
    pub(crate) stats: WorkerStats,
    /// Cilk-style fork-join fast lane (stack jobs, T.H.E. deque).
    pub(crate) fast_lane: FastLane,
    /// Recycled quiescent frames.
    frame_pool: Mutex<Vec<Arc<Frame>>>,
    rng: AtomicU64,
}

impl Worker {
    fn new(idx: usize) -> Worker {
        Worker {
            idx,
            frames: Mutex::new(Vec::new()),
            adaptives: Mutex::new(Vec::new()),
            steal_lock: Mutex::new(()),
            req_head: AtomicPtr::new(std::ptr::null_mut()),
            req: Request::new(idx),
            stats: WorkerStats::default(),
            fast_lane: FastLane::new(),
            frame_pool: Mutex::new(Vec::new()),
            rng: AtomicU64::new(0x9E37_79B9_7F4A_7C15 ^ ((idx as u64 + 1) << 17)),
        }
    }

    /// xorshift64* victim selector (relaxed: statistical quality only).
    pub(crate) fn next_rand(&self) -> u64 {
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        x
    }

    pub(crate) fn register_frame(&self, f: Arc<Frame>) {
        self.frames.lock().push(f);
    }

    pub(crate) fn deregister_frame(&self, f: &Arc<Frame>) {
        let mut frames = self.frames.lock();
        if let Some(pos) = frames.iter().rposition(|x| Arc::ptr_eq(x, f)) {
            frames.remove(pos);
        }
    }

    /// Take a recycled frame, if any.
    pub(crate) fn pop_pooled_frame(&self) -> Option<Arc<Frame>> {
        self.frame_pool.lock().pop()
    }

    /// Recycle `f` if we are its only owner and it is quiescent.
    pub(crate) fn recycle_frame(&self, f: Arc<Frame>) {
        if Arc::strong_count(&f) == 1 && f.pending() == 0 {
            f.reset();
            let mut pool = self.frame_pool.lock();
            if pool.len() < 64 {
                pool.push(f);
            }
        }
    }

    pub(crate) fn register_adaptive(&self, a: Arc<dyn Adaptive>) {
        self.adaptives.lock().push(a);
    }

    pub(crate) fn deregister_adaptive(&self, a: &Arc<dyn Adaptive>) {
        let mut ads = self.adaptives.lock();
        if let Some(pos) = ads.iter().rposition(|x| Arc::ptr_eq(x, a)) {
            ads.remove(pos);
        }
    }
}

/// A root job injected from outside the pool.
pub(crate) struct Job(pub(crate) Box<dyn FnOnce(&mut RawCtx) + Send>);

// ---------------------------------------------------------------------------
// Thread-local identity: which runtime/worker is this thread?

thread_local! {
    static CURRENT: std::cell::Cell<(usize, usize)> =
        const { std::cell::Cell::new((0, usize::MAX)) };
}

pub(crate) fn set_current(rt: &Arc<RtInner>, widx: usize) {
    CURRENT.with(|c| c.set((Arc::as_ptr(rt) as usize, widx)));
}

/// If the current thread is a worker of `rt`, its index.
pub(crate) fn current_worker_of(rt: &Arc<RtInner>) -> Option<usize> {
    let (ptr, idx) = CURRENT.with(|c| c.get());
    (ptr == Arc::as_ptr(rt) as usize && idx != usize::MAX).then_some(idx)
}

// ---------------------------------------------------------------------------

impl RtInner {
    #[inline]
    pub(crate) fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Wake parked workers because new work appeared. Cheap when nobody
    /// sleeps (one relaxed load).
    #[inline]
    pub(crate) fn signal_work(&self) {
        // Relaxed: a missed wake-up is repaired by the 500 µs park timeout.
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.park_mx.lock();
            self.park_cv.notify_all();
        }
    }

    pub(crate) fn pop_inject(&self) -> Option<Job> {
        if self.inject.lock().is_empty() {
            return None;
        }
        self.inject.lock().pop_front()
    }

    fn park(&self) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut g = self.park_mx.lock();
        if !self.shutdown.load(Ordering::Acquire) && self.inject.lock().is_empty() {
            // Timeout bounds the cost of a lost wake-up race.
            self.park_cv.wait_for(&mut g, Duration::from_micros(500));
        }
        drop(g);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_main(rt: Arc<RtInner>, idx: usize) {
    set_current(&rt, idx);
    let mut idle_rounds: u32 = 0;
    loop {
        if rt.shutdown.load(Ordering::Acquire) {
            break;
        }
        if let Some(job) = rt.pop_inject() {
            let mut raw = RawCtx::new(Arc::clone(&rt), idx);
            (job.0)(&mut raw);
            idle_rounds = 0;
            continue;
        }
        if let Some(grab) = try_steal_once(&rt, idx) {
            run_grab(&rt, idx, grab);
            idle_rounds = 0;
            continue;
        }
        idle_rounds += 1;
        if idle_rounds < rt.tun.steal_rounds_before_park {
            std::hint::spin_loop();
            if idle_rounds % 8 == 0 {
                std::thread::yield_now();
            }
        } else {
            rt.park();
        }
    }
}

// ---------------------------------------------------------------------------
// Latch for external scope callers.

struct ScopeLatch {
    mx: Mutex<bool>,
    cv: Condvar,
}

impl ScopeLatch {
    fn new() -> Self {
        ScopeLatch { mx: Mutex::new(false), cv: Condvar::new() }
    }

    fn set(&self) {
        let mut done = self.mx.lock();
        *done = true;
        // Notify while holding the lock: the waiter cannot observe `done`
        // and destroy the latch before we are finished touching it.
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.mx.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }
}

/// Raw pointer wrapper to smuggle caller-stack slots into the injected job.
/// Sound because the caller blocks on the latch until the job completes.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}

impl Runtime {
    /// Runtime with `workers` threads and default tunables.
    pub fn new(workers: usize) -> Runtime {
        Builder::default().workers(workers).build()
    }

    /// Start configuring a runtime.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.inner.num_workers()
    }

    /// Run `f` with a task context, blocking until every task spawned inside
    /// (transitively) has completed. Panics raised by tasks are propagated
    /// after all siblings finished.
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&mut Ctx<'scope>) -> R + Send,
        R: Send,
    {
        if let Some(widx) = current_worker_of(&self.inner) {
            // Already on a worker of this pool: run inline with a fresh frame.
            let mut raw = RawCtx::new(Arc::clone(&self.inner), widx);
            return raw.run_scoped(f);
        }
        let mut result: Option<std::thread::Result<R>> = None;
        let latch = ScopeLatch::new();
        let result_ptr = SendPtr(&mut result as *mut _);
        let latch_ptr = SendPtr(&latch as *const ScopeLatch as *mut ScopeLatch);
        let job_fn = move |raw: &mut RawCtx| {
            // capture the Send wrappers whole, not their pointer fields
            let (result_ptr, latch_ptr) = (result_ptr, latch_ptr);
            let r = raw.run_scoped_catch(f);
            // Safety: the caller is blocked on the latch; the slots outlive us.
            unsafe {
                *result_ptr.0 = Some(r);
                (*latch_ptr.0).set();
            }
        };
        // Safety: lifetime erasure of the job closure; the caller blocks on
        // the latch until the job has run to completion, so every borrow the
        // closure captures outlives its execution (rayon-style scope).
        let boxed: Box<dyn FnOnce(&mut RawCtx) + Send> = Box::new(job_fn);
        let boxed: Box<dyn FnOnce(&mut RawCtx) + Send + 'static> =
            unsafe { std::mem::transmute(boxed) };
        self.inner.inject.lock().push_back(Job(boxed));
        self.inner.signal_work();
        latch.wait();
        match result.expect("scope job did not report a result") {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Parallel loop over `range` applying `body` to every index.
    /// See [`Ctx::foreach`] for the adaptive scheduling description.
    pub fn foreach<F>(&self, range: std::ops::Range<usize>, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.scope(|ctx| ctx.foreach(range, &body));
    }

    /// Parallel loop handing out whole chunks (`grain: None` = automatic).
    pub fn foreach_chunks<F>(
        &self,
        range: std::ops::Range<usize>,
        grain: Option<usize>,
        body: F,
    ) where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        self.scope(|ctx| ctx.foreach_chunks(range, grain, &body));
    }

    /// Parallel reduction over `range`.
    pub fn foreach_reduce<T, ID, FOLD, COMB>(
        &self,
        range: std::ops::Range<usize>,
        grain: Option<usize>,
        identity: ID,
        fold: FOLD,
        combine: COMB,
    ) -> T
    where
        T: Send,
        ID: Fn() -> T + Sync,
        FOLD: Fn(&mut T, usize) + Sync,
        COMB: Fn(T, T) -> T + Send + Sync,
    {
        self.scope(|ctx| ctx.foreach_reduce(range, grain, &identity, &fold, &combine))
    }

    /// Aggregated scheduler statistics since construction (or last reset).
    pub fn stats(&self) -> StatsSnapshot {
        stats::aggregate(self.inner.workers.iter().map(|w| &w.stats))
    }

    /// Reset all statistics counters.
    pub fn reset_stats(&self) {
        stats::reset_all(self.inner.workers.iter().map(|w| &w.stats));
    }

    /// The tunables this runtime was built with.
    pub fn tunables(&self) -> Tunables {
        self.inner.tun
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.park_mx.lock();
            self.inner.park_cv.notify_all();
        }
        let threads = std::mem::take(&mut *self.inner.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime").field("workers", &self.num_workers()).finish()
    }
}
