//! Task contexts: spawning, synchronisation, fork-join and data access.
//!
//! [`RawCtx`] is the lifetime-free internal context one worker uses while
//! executing one task (or a scope root). [`Ctx<'scope>`] is the public,
//! lifetime-branded wrapper handed to user closures — the invariant
//! `'scope` parameter is the rayon-style brand that makes environment
//! borrows sound: every task spawned through a `Ctx<'scope>` completes
//! before the function that introduced `'scope` returns.
//!
//! Execution follows the paper's model: spawns are non-blocking pushes into
//! the current frame; at a sync (explicit or the implicit one when a task
//! body ends) the owner claims its children in FIFO order — a valid
//! sequential order, so no dependency is ever computed on this path. When
//! the owner meets a task a thief claimed, it suspends and works as a thief
//! itself until the task completes.

use crate::access::{Access, AccessMode, HandleId, Region};
use crate::attrs::{Affinity, CancelToken, Priority, TaskAttrs};
use crate::dataflow::SlotBinding;
use crate::frame::Frame;
use crate::handle::{PartView, Partitioned, Reduction, Ref, RefMut, Shared};
use crate::runtime::{RtInner, Runtime};
use crate::stats::WorkerStats;
use crate::steal::{run_grab, try_steal_once};
use crate::task::{Task, TaskBody, ST_DONE, ST_OWNER};
use crossbeam_utils::Backoff;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Internal, lifetime-free execution context of one worker running one task.
pub struct RawCtx {
    pub(crate) rt: Arc<RtInner>,
    pub(crate) widx: usize,
    /// Child frame, created lazily on the first spawn.
    frame: Option<Arc<Frame>>,
    /// The task being executed (its declared accesses), `None` at a root.
    cur: Option<Arc<Task>>,
    /// Cancellation token governing this execution, inherited by every
    /// child spawn so cancelling a root cancels its whole cone.
    pub(crate) cancel: Option<CancelToken>,
    /// Running on a track thread (offload/io engine, `DESIGN.md` §10)
    /// rather than a pool worker. A detached context must never borrow a
    /// worker's thief identity: its syncs spin-wait instead of stealing
    /// and its fork-joins run sequentially inline — children it spawns
    /// are still stealable by real workers through the frame.
    pub(crate) detached: bool,
}

impl RawCtx {
    pub(crate) fn new(rt: Arc<RtInner>, widx: usize) -> RawCtx {
        RawCtx {
            rt,
            widx,
            frame: None,
            cur: None,
            cancel: None,
            detached: crate::telemetry::on_track_thread(),
        }
    }

    fn ensure_frame(&mut self) -> Arc<Frame> {
        if self.frame.is_none() {
            let worker = &self.rt.workers[self.widx];
            let f = worker.pop_pooled_frame().unwrap_or_else(Frame::new);
            worker.register_frame(Arc::clone(&f));
            self.frame = Some(f);
        }
        Arc::clone(self.frame.as_ref().unwrap())
    }

    /// Non-blocking task creation: push into the current frame. Returns the
    /// frame, the task's index and the task itself (for fast-path joins).
    ///
    /// Monomorphized on the attributes (`DESIGN.md` §6): the all-default
    /// spawn — `Ctx::spawn` and builders that set nothing, outside any
    /// cancellable cone — inlines straight into the common lowering, while
    /// attribute-carrying (or token-inheriting) spawns divert through a
    /// `#[cold]` shim that also counts them. The branch compiles to a few
    /// flag comparisons; neither `catch_unwind` nor cancellation checks
    /// touch this lane.
    #[inline]
    pub(crate) fn spawn_raw(
        &mut self,
        accesses: Box<[Access]>,
        attrs: TaskAttrs,
        body: TaskBody,
    ) -> (Arc<Frame>, usize, Arc<Task>) {
        if attrs.is_default() && self.cancel.is_none() {
            self.spawn_common(Arc::new(Task::new(body, accesses, TaskAttrs::default())))
        } else {
            self.spawn_attributed(accesses, attrs, body)
        }
    }

    /// The attribute-carrying slow path: kept out of the hot instruction
    /// stream so the default spawn's code stays compact. Spawns inside a
    /// cancellable cone inherit the governing token here (`DESIGN.md` §8).
    #[cold]
    fn spawn_attributed(
        &mut self,
        accesses: Box<[Access]>,
        mut attrs: TaskAttrs,
        body: TaskBody,
    ) -> (Arc<Frame>, usize, Arc<Task>) {
        if attrs.cancel.is_none() {
            attrs.cancel = self.cancel.clone();
        }
        WorkerStats::bump(&self.rt.workers[self.widx].stats.tasks_with_attrs, 1);
        self.spawn_common(Arc::new(Task::new(body, accesses, attrs)))
    }

    /// Replay lowering (`record.rs`): push a pre-analyzed task — no
    /// declared accesses, so `Frame::push` runs no dependency analysis —
    /// whose ordering is enforced by the recorded DAG's continuation
    /// spawning. Data-access checking is disabled for the task (its member
    /// bodies' accesses were validated at record time).
    pub(crate) fn spawn_replay(&mut self, attrs: TaskAttrs, body: TaskBody) {
        if !attrs.is_default() {
            WorkerStats::bump(&self.rt.workers[self.widx].stats.tasks_with_attrs, 1);
        }
        self.spawn_common(Arc::new(Task::new_unchecked(body, attrs)));
    }

    /// Shared spawn lowering (all paths land here; semantics are
    /// attribute-independent by construction).
    #[inline]
    fn spawn_common(&mut self, task: Arc<Task>) -> (Arc<Frame>, usize, Arc<Task>) {
        let frame = self.ensure_frame();
        let out = frame.push(Arc::clone(&task), &self.rt.tun.rename);
        let idx = out.idx;
        let stats = &self.rt.workers[self.widx].stats;
        WorkerStats::bump(&stats.tasks_spawned, 1);
        if !task.accesses.is_empty() {
            // Pushes that ran data-flow dependency analysis: the counter
            // recorded-replay benchmarks assert stays flat across replays.
            WorkerStats::bump(&stats.dataflow_pushes, 1);
        }
        if out.renames > 0 {
            WorkerStats::bump(&stats.renames, out.renames as u64);
        }
        if self.rt.queue.centralized() {
            // Insertion-time scheduling: ready tasks go straight to the
            // shared queue (QUARK/libGOMP model), even with one worker.
            crate::steal::publish_ready(&self.rt, self.widx, &frame);
        }
        if self.rt.num_workers() > 1 {
            self.rt.signal_work();
        }
        (frame, idx, task)
    }

    /// Owner-side synchronisation: execute children FIFO; suspend (and work
    /// as a thief) on stolen ones; return when every child completed.
    /// Rethrows the first child panic.
    pub(crate) fn sync(&mut self) {
        let Some(frame) = self.frame.as_ref().map(Arc::clone) else {
            return;
        };
        let rt = Arc::clone(&self.rt);
        let widx = self.widx;
        // Task lookups are batched: once sync starts the owner pushes no
        // more children into this frame (task bodies run on fresh frames),
        // so one lock acquisition fetches every remaining task instead of
        // paying one frame lock per FIFO step.
        let mut batch: Vec<Arc<Task>> = Vec::new();
        let mut batch_start = 0usize;
        loop {
            // Fast exit: every pushed task already completed (by the owner
            // fast path or by thieves) — jump the FIFO cursor to the end.
            if frame.pending() == 0 {
                frame.skip_cursor_to_len();
                break;
            }
            let i = frame.cursor();
            if i < frame.len() {
                if i.wrapping_sub(batch_start) >= batch.len() {
                    batch.clear();
                    batch_start = i;
                    frame.tasks_from(i, &mut batch);
                    if batch.is_empty() {
                        continue; // len mirror raced ahead of the tasks Vec
                    }
                }
                let t = Arc::clone(&batch[i - batch_start]);
                if t.try_claim(ST_OWNER) {
                    frame.advance_cursor();
                    WorkerStats::bump(&rt.workers[widx].stats.tasks_executed_own, 1);
                    execute_claimed(&rt, widx, &frame, i, Arc::clone(&t));
                    // Track-routed tasks (`DESIGN.md` §10) come back from
                    // execute_claimed dispatched but not done — their body
                    // runs when the engine's completion drains. The owner
                    // FIFO walk runs later children inline *without* a
                    // readiness proof (sequential order is the proof), so
                    // it must not pass an in-flight child: wait exactly
                    // like the stolen case, helping in the meantime (the
                    // help loop drains the inject lanes the completion
                    // arrives on).
                    if !t.is_done() {
                        if self.detached {
                            wait_detached(|| t.is_done());
                        } else {
                            help_until(&rt, widx, Some(&frame), || t.is_done());
                        }
                    }
                } else if t.state() == ST_DONE {
                    frame.advance_cursor();
                } else {
                    // Stolen and in flight: suspend, help elsewhere.
                    if self.detached {
                        wait_detached(|| t.is_done());
                    } else {
                        help_until(&rt, widx, Some(&frame), || t.is_done());
                    }
                    frame.advance_cursor();
                }
            } else if frame.pending() == 0 {
                break;
            } else if self.detached {
                // All claimed, some still running on thieves.
                wait_detached(|| frame.pending() == 0);
            } else {
                // All claimed, some still running on thieves.
                help_until(&rt, widx, Some(&frame), || frame.pending() == 0);
            }
        }
        if let Some(p) = frame.take_panic() {
            resume_unwind(p);
        }
    }

    /// Sync children and deregister the frame (end of task body / scope).
    pub(crate) fn finish(&mut self) {
        if self.frame.is_some() {
            let res = catch_unwind(AssertUnwindSafe(|| self.sync()));
            let frame = self.frame.take().unwrap();
            let worker = &self.rt.workers[self.widx];
            worker.deregister_frame(&frame);
            if res.is_ok() {
                worker.recycle_frame(frame);
            }
            if let Err(p) = res {
                resume_unwind(p);
            }
        }
    }

    /// Run a scope closure: wrap into a public `Ctx`, always sync children
    /// (even when the closure panics) and propagate the first failure.
    pub(crate) fn run_scoped<'scope, F, R>(&mut self, f: F) -> R
    where
        F: FnOnce(&mut Ctx<'scope>) -> R,
    {
        match self.run_scoped_catch(f) {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    }

    pub(crate) fn run_scoped_catch<'scope, F, R>(&mut self, f: F) -> std::thread::Result<R>
    where
        F: FnOnce(&mut Ctx<'scope>) -> R,
    {
        let body = catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = Ctx {
                raw: self,
                _inv: PhantomData,
            };
            f(&mut ctx)
        }));
        let fin = catch_unwind(AssertUnwindSafe(|| self.finish()));
        match (body, fin) {
            (Ok(v), Ok(())) => Ok(v),
            (Err(p), _) => Err(p),
            (_, Err(p)) => Err(p),
        }
    }
}

/// Execute a task already claimed by this worker at `frame[idx]`.
///
/// Failure model (`DESIGN.md` §8): a panicking body never unwinds past this
/// function — the worker survives, the frame records the failure *before*
/// the completion stores (so an owner that observes `pending == 0` always
/// finds the payload), and successors in the dataflow cone are
/// completed-as-failed instead of run. Cancelled tasks skip their body but
/// satisfy every dataflow obligation.
pub(crate) fn execute_claimed(
    rt: &Arc<RtInner>,
    widx: usize,
    frame: &Arc<Frame>,
    idx: usize,
    task: Arc<Task>,
) {
    let stats = &rt.workers[widx].stats;
    // Poisoned cone: a dataflow predecessor panicked. Complete-as-failed
    // without running the body so npred countdowns still drain.
    if frame.has_failed_pred(idx) {
        let _ = task.take_body();
        frame.mark_failed(idx);
        WorkerStats::bump(&stats.tasks_poisoned, 1);
        complete_and_publish(rt, widx, frame, idx, &task);
        return;
    }
    // Cancelled cone: elide the body, keep the dataflow honest.
    if task.attrs.is_cancelled() {
        let _ = task.take_body();
        WorkerStats::bump(&stats.tasks_cancelled, 1);
        crate::telemetry::emit_current(
            rt,
            widx,
            crate::telemetry::EventKind::Cancel,
            task.attrs.band(),
            idx as u32,
        );
        complete_and_publish(rt, widx, frame, idx, &task);
        return;
    }
    // Track routing (`DESIGN.md` §10): non-CPU tasks hand off to their
    // engine here instead of running inline. The engine owns the claimed
    // task from this point — its body runs later (offload: inside the
    // drained completion job; io: on a dedicated blocking thread).
    if crate::track::dispatch(rt, widx, frame, idx, &task) {
        return;
    }
    run_claimed_body(rt, widx, frame, idx, task);
}

/// Run the body of an already-claimed task and publish its completion —
/// the tail of [`execute_claimed`] after the skip/dispatch decisions. Also
/// the entry point track engines use to execute a task they deferred: the
/// offload completion job calls it on the draining CPU worker, the io
/// engine on its own thread (where `RawCtx::new` picks up detached mode
/// and `tele_for` routes the span to the track's telemetry lane).
///
/// Never unwinds: both the body and the implicit child sync are caught,
/// recorded (poison-before-complete, `DESIGN.md` §8) and swallowed — a
/// requirement of the inject drain loop, which runs jobs bare.
pub(crate) fn run_claimed_body(
    rt: &Arc<RtInner>,
    widx: usize,
    frame: &Arc<Frame>,
    idx: usize,
    task: Arc<Task>,
) {
    let stats = &rt.workers[widx].stats;
    // Re-check cancellation: the token may have been cancelled while the
    // task sat in a track engine's queue (a no-op on the inline CPU path,
    // where `execute_claimed` checked moments ago).
    if task.attrs.is_cancelled() {
        let _ = task.take_body();
        WorkerStats::bump(&stats.tasks_cancelled, 1);
        crate::telemetry::emit_current(
            rt,
            widx,
            crate::telemetry::EventKind::Cancel,
            task.attrs.band(),
            idx as u32,
        );
        complete_and_publish(rt, widx, frame, idx, &task);
        return;
    }
    let body = task.take_body();
    let mut raw = RawCtx::new(Arc::clone(rt), widx);
    raw.cancel = task.attrs.cancel.clone();
    raw.cur = Some(Arc::clone(&task));
    // Traced task span (`DESIGN.md` §9): B/E pair around the body plus
    // the start→done delta into the band's service histogram. One relaxed
    // load when tracing is off; the inline fork-join fast lane
    // (`Ctx::join`) is deliberately not per-event instrumented. `tele_for`
    // resolves to the executing thread's own lane (SPSC ring safety when a
    // track thread runs the body).
    let tracing = rt.telemetry.enabled();
    let band = task
        .attrs
        .band()
        .min(crate::attrs::PRIORITY_BANDS as u8 - 1);
    let t0 = if tracing {
        let t0 = crate::telemetry::tick();
        crate::telemetry::tele_for(rt, widx).emit(
            t0,
            crate::telemetry::EventKind::TaskBegin,
            band,
            idx as u32,
        );
        t0
    } else {
        0
    };
    let res = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-injection")]
        crate::fault::on_task_execute(rt);
        body(&mut raw)
    }));
    let fin = catch_unwind(AssertUnwindSafe(|| raw.finish()));
    if tracing {
        let t1 = crate::telemetry::tick();
        let tele = crate::telemetry::tele_for(rt, widx);
        tele.emit(t1, crate::telemetry::EventKind::TaskEnd, band, idx as u32);
        tele.start_to_done[band as usize].record(t1.saturating_sub(t0));
        if res.is_err() {
            tele.emit(t1, crate::telemetry::EventKind::Panic, band, idx as u32);
        }
    }
    if res.is_err() {
        // Only a body panic counts: a finish-side error is a child's panic
        // propagating, and the child already counted itself.
        WorkerStats::bump(&stats.tasks_panicked, 1);
    }
    // Record the failure *before* `complete()` publishes ST_DONE: an owner
    // may observe `pending == 0` immediately after and must find both the
    // payload and the poison record already in place.
    match (res, fin) {
        (Err(p), _) | (_, Err(p)) => {
            frame.mark_failed(idx);
            frame.set_panic(p);
        }
        _ => {}
    }
    complete_and_publish(rt, widx, frame, idx, &task);
}

/// Spin-wait for a detached (track-thread) context: no stealing, no inject
/// drains — track threads own no thief identity (`Worker::req`) and must
/// not impersonate one. Progress comes from the CPU pool, which can steal
/// from the detached frame like from any registered frame.
fn wait_detached(done: impl Fn() -> bool) {
    let backoff = Backoff::new();
    while !done() {
        if backoff.is_completed() {
            std::thread::yield_now();
        } else {
            backoff.snooze();
        }
    }
}

/// Completion tail shared by the run/skip paths of `execute_claimed`.
pub(crate) fn complete_and_publish(
    rt: &Arc<RtInner>,
    widx: usize,
    frame: &Arc<Frame>,
    idx: usize,
    task: &Task,
) {
    task.complete();
    frame.complete_task(idx, task);
    if rt.queue.centralized() {
        // Completion may have released successors: publish them centrally.
        crate::steal::publish_ready(rt, widx, frame);
    }
}

/// Execute a task at `frame[idx]` (steal path: already claimed `ST_STOLEN`).
pub(crate) fn execute_task_at(
    rt: &Arc<RtInner>,
    widx: usize,
    frame: &Arc<Frame>,
    idx: usize,
    task: Arc<Task>,
    stolen: bool,
) {
    if stolen {
        WorkerStats::bump(&rt.workers[widx].stats.tasks_executed_stolen, 1);
    }
    execute_claimed(rt, widx, frame, idx, task);
}

/// Suspended-owner help loop: until `done()` holds, prefer ready tasks from
/// `own` (graph-mode pop), then steal from random victims, then back off.
pub(crate) fn help_until(
    rt: &Arc<RtInner>,
    widx: usize,
    own: Option<&Arc<Frame>>,
    done: impl Fn() -> bool,
) {
    let backoff = Backoff::new();
    while !done() {
        if let Some(frame) = own {
            if let Some((idx, t)) = frame.pop_ready_owner() {
                execute_task_at(rt, widx, frame, idx, t, true);
                rt.workers[widx].reset_fail_streak();
                backoff.reset();
                continue;
            }
        }
        // Centralized queue: the shared pool is where every published task
        // lives (and the only progress source at 1 worker). Distributed
        // lanes must NOT be popped here — a suspended join's help loop
        // consuming its own lane would break the LIFO discipline
        // `TaskQueue::take` relies on; thieves reach lanes via the steal
        // protocol below instead.
        if rt.queue.centralized() {
            if let Some(item) = rt.queue.pop(widx) {
                run_grab(rt, widx, item.into_grab());
                rt.workers[widx].reset_fail_streak();
                backoff.reset();
                continue;
            }
        }
        if let Some(grab) = try_steal_once(rt, widx) {
            run_grab(rt, widx, grab);
            backoff.reset();
            continue;
        }
        // Injection layer: a suspended worker can start a fresh root job
        // (nearest lane first; the drain helper resets the fail streak and
        // classifies own-/remote-lane acquisition).
        if crate::worker::try_drain_inject(rt, widx) {
            backoff.reset();
            continue;
        }
        backoff.snooze();
    }
}

/// The public task context: spawn data-flow tasks, synchronise, run
/// fork-join pairs and adaptive parallel loops, access shared data.
///
/// The invariant `'scope` lifetime brands every closure spawned through
/// this context: all of them complete before the scope that introduced
/// `'scope` returns, so they may borrow anything that outlives the scope.
pub struct Ctx<'scope> {
    raw: *mut RawCtx,
    _inv: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Ctx<'scope> {
    #[inline]
    fn raw(&self) -> &RawCtx {
        // Safety: `Ctx` only exists while the `RawCtx` it was created from
        // is alive and uniquely borrowed by this chain of calls.
        unsafe { &*self.raw }
    }

    #[inline]
    fn raw_mut(&mut self) -> &mut RawCtx {
        unsafe { &mut *self.raw }
    }

    /// Internal accessor for sibling modules (`foreach`).
    #[inline]
    pub(crate) fn as_raw(&self) -> &RawCtx {
        self.raw()
    }

    /// Index of the worker executing this task.
    #[inline]
    pub fn worker_index(&self) -> usize {
        self.raw().widx
    }

    /// Number of workers in the runtime.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.raw().rt.num_workers()
    }

    /// Cooperative cancellation check: has the [`CancelToken`] governing
    /// this task's cone been cancelled? Always `false` outside a
    /// cancellable cone. Long-running bodies poll this to bail out early;
    /// tasks not yet started are skipped by the scheduler itself.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.raw().cancel {
            None => false,
            Some(t) => t.is_cancelled(),
        }
    }

    /// The token governing this task's cone, if any (clone it to hand
    /// cancellation authority elsewhere).
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.raw().cancel.clone()
    }

    /// Create a task. Non-blocking: the caller continues immediately; the
    /// runtime honours the sequential semantics through the declared
    /// `accesses` (conflicting tasks execute in program order).
    ///
    /// This is [`Ctx::task`] with default attributes — use the builder to
    /// attach a [`Priority`] or an [`Affinity`] to the spawn.
    pub fn spawn<F>(&mut self, accesses: impl IntoIterator<Item = Access>, f: F)
    where
        F: FnOnce(&mut Ctx<'scope>) + Send + 'scope,
    {
        self.spawn_with(accesses.into_iter().collect(), TaskAttrs::default(), f);
    }

    /// Start building an attribute-carrying task:
    /// `ctx.task().reads(&a).writes(&b).priority(Priority::High).spawn(f)`.
    /// The builder accumulates access declarations and a [`TaskAttrs`]
    /// descriptor, then lowers through exactly the same spawn path as
    /// [`Ctx::spawn`] (which is this builder with default attributes).
    pub fn task<'b>(&'b mut self) -> TaskBuilder<'b, 'scope> {
        TaskBuilder {
            ctx: self,
            accesses: Vec::new(),
            attrs: TaskAttrs::default(),
        }
    }

    /// Attribute-aware spawn shared by [`Ctx::spawn`] and [`TaskBuilder`].
    fn spawn_with<F>(&mut self, accesses: Box<[Access]>, attrs: TaskAttrs, f: F)
    where
        F: FnOnce(&mut Ctx<'scope>) + Send + 'scope,
    {
        let body: Box<dyn FnOnce(&mut RawCtx) + Send + 'scope> = Box::new(move |raw| {
            let mut ctx = Ctx {
                raw,
                _inv: PhantomData,
            };
            f(&mut ctx)
        });
        // Safety: 'scope outlives the moment the scope's sync completes, and
        // every spawned task completes before that sync returns.
        let body: TaskBody = unsafe { std::mem::transmute(body) };
        self.raw_mut().spawn_raw(accesses, attrs, body);
    }

    /// Spawn a pre-analyzed replay group (`record.rs`): no declared
    /// accesses, no dependency analysis — ordering is the recorded DAG's
    /// continuation spawning, and data-access checking is disabled for the
    /// group body (validated at record time).
    pub(crate) fn spawn_replay_body<F>(&mut self, attrs: TaskAttrs, f: F)
    where
        F: FnOnce(&mut Ctx<'scope>) + Send + 'scope,
    {
        let body: Box<dyn FnOnce(&mut RawCtx) + Send + 'scope> = Box::new(move |raw| {
            let mut ctx = Ctx {
                raw,
                _inv: PhantomData,
            };
            f(&mut ctx)
        });
        // Safety: same as `spawn_with` — the scope's sync outlives 'scope.
        let body: TaskBody = unsafe { std::mem::transmute(body) };
        self.raw_mut().spawn_replay(attrs, body);
    }

    /// Wait until every task spawned so far in this context completed
    /// (the `#pragma kaapi sync` of the paper). Rethrows child panics.
    pub fn sync(&mut self) {
        self.raw_mut().sync();
    }

    /// Cilk-style fork-join: `fb` becomes a stealable task, `fa` runs
    /// inline, then the pair synchronises.
    ///
    /// This is the fast lane of the runtime (paper §II-C: independent
    /// tasks execute with Cilk-like overheads): the job record lives on
    /// this stack frame — no allocation — in the worker's T.H.E. deque,
    /// and thieves receive it through the same aggregated steal protocol
    /// as data-flow tasks.
    pub fn join<RA, RB, FA, FB>(&mut self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&mut Ctx<'scope>) -> RA,
        FB: FnOnce(&mut Ctx<'scope>) -> RB + Send,
        RB: Send,
    {
        self.join_with(TaskAttrs::default(), fa, fb)
    }

    /// Attribute-aware fork-join shared by [`Ctx::join`] and
    /// [`TaskBuilder::join`]: the forked branch's stack job is pushed at
    /// the attributes' priority band (thieves and the owner's idle pops
    /// drain higher bands first; the default band is the historical
    /// T.H.E. lane).
    fn join_with<RA, RB, FA, FB>(&mut self, attrs: TaskAttrs, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&mut Ctx<'scope>) -> RA,
        FB: FnOnce(&mut Ctx<'scope>) -> RB + Send,
        RB: Send,
    {
        if self.raw().detached {
            // Detached contexts (track threads, `DESIGN.md` §10) own no
            // T.H.E. deque — worker `widx`'s lane is single-producer and
            // the real owner may be pushing concurrently — so the pair
            // runs sequentially inline, `fb` in a fresh scope like the
            // stolen path would give it.
            let (rt, widx) = {
                let raw = self.raw();
                (Arc::clone(&raw.rt), raw.widx)
            };
            if !attrs.is_default() {
                WorkerStats::bump(&rt.workers[widx].stats.tasks_with_attrs, 1);
            }
            let ra = catch_unwind(AssertUnwindSafe(|| fa(self)));
            let rb = catch_unwind(AssertUnwindSafe(|| {
                let mut sub = RawCtx::new(Arc::clone(&rt), widx);
                sub.run_scoped(fb)
            }));
            match (ra, rb) {
                (Ok(a), Ok(b)) => return (a, b),
                (Err(p), _) | (_, Err(p)) => resume_unwind(p),
            }
        }
        use crate::fastlane::FastJob;
        const J_PENDING: u8 = 0;
        const J_DONE: u8 = 1;
        const J_PANIC: u8 = 2;
        struct StackJob<F, R> {
            state: std::sync::atomic::AtomicU8,
            f: std::cell::UnsafeCell<Option<F>>,
            result: std::cell::UnsafeCell<Option<R>>,
            panic: std::cell::UnsafeCell<Option<Box<dyn std::any::Any + Send>>>,
        }
        unsafe fn exec_job<F, R>(data: *mut (), rt: &Arc<RtInner>, widx: usize)
        where
            F: FnOnce(&mut RawCtx) -> R + Send,
            R: Send,
        {
            let job = unsafe { &*(data as *const StackJob<F, R>) };
            let f = unsafe { (*job.f.get()).take().expect("fast job run twice") };
            let mut raw = RawCtx::new(Arc::clone(rt), widx);
            let run = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                crate::fault::on_task_execute(rt);
                f(&mut raw)
            }));
            let fin = catch_unwind(AssertUnwindSafe(|| raw.finish()));
            // Publishing the terminal state is the LAST access to the record.
            match (run, fin) {
                (Ok(v), Ok(())) => {
                    unsafe { *job.result.get() = Some(v) };
                    job.state
                        .store(J_DONE, std::sync::atomic::Ordering::Release);
                }
                (Err(p), _) | (_, Err(p)) => {
                    unsafe { *job.panic.get() = Some(p) };
                    job.state
                        .store(J_PANIC, std::sync::atomic::Ordering::Release);
                }
            }
        }

        let (rt, widx) = {
            let raw = self.raw();
            (Arc::clone(&raw.rt), raw.widx)
        };
        if !attrs.is_default() {
            WorkerStats::bump(&rt.workers[widx].stats.tasks_with_attrs, 1);
        }
        // Wrap `fb` into a lifetime-free signature ('scope is in scope here;
        // the record never outlives this call, see the safety note above).
        let fb_raw = move |raw: &mut RawCtx| -> RB {
            let mut ctx = Ctx {
                raw,
                _inv: PhantomData,
            };
            fb(&mut ctx)
        };
        let job = StackJob {
            state: std::sync::atomic::AtomicU8::new(J_PENDING),
            f: std::cell::UnsafeCell::new(Some(fb_raw)),
            result: std::cell::UnsafeCell::new(None),
            panic: std::cell::UnsafeCell::new(None),
        };
        fn jref_of<F, R>(job: &StackJob<F, R>) -> FastJob
        where
            F: FnOnce(&mut RawCtx) -> R + Send,
            R: Send,
        {
            FastJob {
                data: job as *const StackJob<F, R> as *mut (),
                exec: exec_job::<F, R>,
            }
        }
        let jref = jref_of(&job);
        let pushed = rt
            .queue
            .push(
                widx,
                crate::queue::WorkItem::fast_banded(jref, attrs.band()),
            )
            .is_ok();
        if pushed {
            WorkerStats::bump(&rt.workers[widx].stats.tasks_spawned, 1);
            if rt.num_workers() > 1 {
                rt.signal_work();
            }
        }
        // Continuation; even if it panics the job must retire first (it
        // points into this stack frame).
        let ra = catch_unwind(AssertUnwindSafe(|| fa(self)));
        if pushed {
            if let Some(mine) = rt.queue.take(widx, jref.data) {
                WorkerStats::bump(&rt.workers[widx].stats.tasks_executed_own, 1);
                match mine.into_grab() {
                    crate::steal::Grab::Fast(job) => unsafe { job.execute(&rt, widx) },
                    _ => unreachable!("take returned a non-fork-join item"),
                }
            } else {
                // Taken by another worker (or consumed while helping): work
                // as a thief until it completes.
                help_until(&rt, widx, None, || {
                    job.state.load(std::sync::atomic::Ordering::Acquire) != J_PENDING
                });
            }
        } else {
            // Queue refused the job (lane full): undeferred execution.
            unsafe { jref.execute(&rt, widx) };
        }
        let ra = match ra {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        };
        match job.state.load(std::sync::atomic::Ordering::Acquire) {
            J_DONE => {
                let rb = unsafe { (*job.result.get()).take() };
                (
                    ra,
                    rb.expect("join: forked branch did not produce a result"),
                )
            }
            J_PANIC => {
                let p = unsafe { (*job.panic.get()).take().unwrap() };
                resume_unwind(p)
            }
            _ => unreachable!("join finished with a pending job"),
        }
    }

    /// Run a nested scope: a fresh frame whose tasks may borrow locals of
    /// the caller (they complete before `scope` returns).
    pub fn scope<'nested, F, R>(&mut self, f: F) -> R
    where
        F: FnOnce(&mut Ctx<'nested>) -> R + Send,
        R: Send,
    {
        let raw = self.raw_mut();
        let mut sub = RawCtx::new(Arc::clone(&raw.rt), raw.widx);
        sub.run_scoped(f)
    }

    // -- data access ---------------------------------------------------

    #[cfg(debug_assertions)]
    fn check_granted(&self, id: crate::access::HandleId, write: bool) {
        let Some(cur) = self.raw().cur.as_ref() else {
            panic!(
                "xkaapi: data access outside a task with declared accesses; \
                 spawn a task declaring the access, or use Shared::get after the scope"
            );
        };
        if cur.unchecked_data {
            // Recorded-DAG replay group: member accesses were validated at
            // record time; the group task itself declares none.
            return;
        }
        let ok = cur
            .accesses
            .iter()
            .any(|a| a.handle == id && (!write || a.mode.writes()));
        assert!(
            ok,
            "xkaapi: access to {id:?} (write={write}) was not declared by this task"
        );
    }

    #[cfg(not(debug_assertions))]
    fn check_granted(&self, _id: crate::access::HandleId, _write: bool) {}

    /// Version-slot binding of this task's declared access on handle `id`
    /// (`write` selects a writing access; reads fall back to any access on
    /// the handle — a granted write implies read permission).
    ///
    /// `None` when there is no current bound task (scope root, fork-join
    /// fast lane) — callers then route to the handle's committed slot.
    fn slot_binding(&self, id: HandleId, write: bool) -> Option<SlotBinding> {
        let cur = self.raw().cur.as_ref()?;
        let pos = if write {
            cur.accesses
                .iter()
                .position(|a| a.handle == id && a.mode.writes())
        } else {
            cur.accesses
                .iter()
                .position(|a| a.handle == id && a.mode == AccessMode::Read)
                .or_else(|| cur.accesses.iter().position(|a| a.handle == id))
        }?;
        let binding = cur.binding();
        if binding.is_empty() {
            // All-default sentinel (`Task::set_binding`): every declared
            // access routes to slot 0 with no rename — which is exactly
            // the default binding. `cur` is only ever a frame-pushed task
            // (`execute_claimed` is the sole assignment), so an empty
            // binding here cannot mean "never bound".
            return Some(SlotBinding::default());
        }
        if binding.len() != cur.accesses.len() {
            return None; // defensive: task was never bound through a frame
        }
        Some(binding[pos])
    }

    /// Borrow a handle this task declared read access on.
    pub fn read<'a, T>(&self, h: &'a Shared<T>) -> Ref<'a, T> {
        self.check_granted(h.id(), false);
        if !h.is_renameable() {
            return h.borrow();
        }
        let slot = self
            .slot_binding(h.id(), false)
            .map(|b| b.slot)
            .unwrap_or_else(|| h.committed_slot());
        h.borrow_slot(slot)
    }

    /// Borrow a handle this task declared write/exclusive access on.
    ///
    /// A renamed write-only access is routed to its fresh version slot;
    /// dropping the borrow commits the slot (`DESIGN.md` §2).
    ///
    /// The first write through a handle also records the writing worker's
    /// NUMA node as the handle's *home* (first-touch), the signal
    /// [`Affinity::Auto`] placement reads.
    pub fn write<'a, T>(&self, h: &'a Shared<T>) -> RefMut<'a, T> {
        self.check_granted(h.id(), true);
        {
            let raw = self.raw();
            h.note_first_touch(raw.rt.topo.node_of(raw.widx));
        }
        if !h.is_renameable() {
            return h.borrow_mut();
        }
        match self.slot_binding(h.id(), true) {
            Some(b) => h.borrow_slot_mut(b.slot, b.renamed.then_some(b.seq)),
            None => h.borrow_slot_mut(h.committed_slot(), None),
        }
    }

    /// Slot-routed raw view of a [`Partitioned`] handle this task declared
    /// an access on. Equivalent to [`Partitioned::view`] for plain handles;
    /// on renameable handles it resolves the version slot the access was
    /// bound to, and dropping the view commits a renamed write.
    ///
    /// The pointer carries the same safety contract as
    /// [`Partitioned::view`]: only touch regions the task declared.
    pub fn view_of<'a, T: Send>(&self, p: &'a Partitioned<T>) -> PartView<'a, T> {
        self.check_granted(p.id(), false);
        {
            // First-touch is a *write* policy: a read-only view scheduled
            // before the first writer must not claim the home node.
            let raw = self.raw();
            let writes = raw.cur.as_ref().is_some_and(|cur| {
                cur.accesses
                    .iter()
                    .any(|a| a.handle == p.id() && a.mode.writes())
            });
            if writes {
                p.note_first_touch(raw.rt.topo.node_of(raw.widx));
            }
        }
        if p.is_tile_renameable() {
            return self.tile_view(p, None);
        }
        self.whole_view(p)
    }

    /// Like [`Ctx::view_of`], but routes the declared access on tile `key`
    /// (see [`Region::key2`]) — for tasks that touch several tiles of one
    /// [`Partitioned`] handle (a GEMM reading two tiles and updating a
    /// third), where [`Ctx::view_of`] resolves only one routed pointer.
    ///
    /// On handles without per-tile renaming this is equivalent to
    /// [`Ctx::view_of`].
    pub fn view_of_key<'a, T: Send>(&self, p: &'a Partitioned<T>, key: u64) -> PartView<'a, T> {
        self.check_granted(p.id(), false);
        {
            let raw = self.raw();
            let writes = raw.cur.as_ref().is_some_and(|cur| {
                cur.accesses
                    .iter()
                    .any(|a| a.handle == p.id() && a.region == Region::Key(key) && a.mode.writes())
            });
            if writes {
                p.note_first_touch(raw.rt.topo.node_of(raw.widx));
            }
        }
        if p.is_tile_renameable() {
            return self.tile_view(p, Some(key));
        }
        self.whole_view(p)
    }

    /// Whole-object slot routing (non-tile handles): the pre-PR 7 `view_of`
    /// tail.
    fn whole_view<'a, T: Send>(&self, p: &'a Partitioned<T>) -> PartView<'a, T> {
        if !p.is_renameable() {
            return p.part_view(0, None);
        }
        match self
            .slot_binding(p.id(), true)
            .or_else(|| self.slot_binding(p.id(), false))
        {
            Some(b) => p.part_view(b.slot, b.renamed.then_some(b.seq)),
            None => p.part_view(p.committed_slot(), None),
        }
    }

    /// Tile-routed view on a per-tile renamed handle. `key` selects which
    /// declared access to route (`None` picks the task's primary access,
    /// writes preferred).
    fn tile_view<'a, T: Send>(&self, p: &'a Partitioned<T>, key: Option<u64>) -> PartView<'a, T> {
        let raw = self.raw();
        let Some(cur) = raw.cur.as_ref() else {
            // Scope root / fast lane: quiesce tile slots, hand out main.
            p.merge_tiles();
            return p.part_view(0, None);
        };
        let pos = match key {
            Some(k) => cur
                .accesses
                .iter()
                .position(|a| a.handle == p.id() && a.region == Region::Key(k) && a.mode.writes())
                .or_else(|| {
                    cur.accesses
                        .iter()
                        .position(|a| a.handle == p.id() && a.region == Region::Key(k))
                }),
            None => cur
                .accesses
                .iter()
                .position(|a| a.handle == p.id() && a.mode.writes())
                .or_else(|| cur.accesses.iter().position(|a| a.handle == p.id())),
        };
        let Some(pos) = pos else {
            p.merge_tiles();
            return p.part_view(0, None);
        };
        let binding = cur.binding();
        let b = if binding.len() == cur.accesses.len() {
            binding[pos]
        } else {
            // All-default sentinel (or fast-lane task): default routing.
            SlotBinding::default()
        };
        match cur.accesses[pos].region {
            Region::Key(k) => {
                if b.renamed {
                    p.part_view_key(b.slot, b.seq, k)
                } else if b.slot != 0 {
                    p.part_view(b.slot, None)
                } else {
                    // Default-routed tile access: the tile's current value
                    // may live in a renamed slot committed by an earlier
                    // version (possibly in a previous scope).
                    p.part_view(p.tile_slot_of(k).unwrap_or(0), None)
                }
            }
            _ => {
                // Whole-object access: the data-flow edges (including the
                // renamed-away stash, see `dataflow.rs`) order this task
                // after every tile writer — fold the slots back into main.
                p.merge_tiles();
                p.part_view(0, None)
            }
        }
    }

    /// Fold into a reduction this task declared cumulative-write access on.
    /// The per-worker accumulator is merged into the main value when a later
    /// read/write access observes it.
    pub fn fold<T: Send, R>(&self, red: &Reduction<T>, f: impl FnOnce(&mut T) -> R) -> R {
        self.check_granted(red.id(), true);
        f(red.slot_for(self.raw().widx))
    }

    /// Read a reduction's merged value (task must declare read access; the
    /// data-flow edges order this after the cumulative-write group).
    pub fn read_reduced<'a, T: Send>(&self, red: &'a Reduction<T>) -> &'a T {
        self.check_granted(red.id(), false);
        red.merge_pending();
        // Safety: scheduler ordered us after all writers.
        unsafe { &*red.data_ptr() }
    }
}

/// Builder for an attribute-carrying task, started with [`Ctx::task`]
/// (`DESIGN.md` §5).
///
/// Accumulates access declarations and a [`TaskAttrs`] descriptor, then
/// terminates in [`TaskBuilder::spawn`] (a non-blocking data-flow task,
/// exactly [`Ctx::spawn`]'s semantics) or [`TaskBuilder::join`] (a
/// fork-join pair on the fast lane). The attributes are consumed at every
/// layer the task crosses: the [`Priority`] band orders queue pops, ready
/// lists and steal scans, and the [`Affinity`] steers which thief a ready
/// task is served to.
///
/// ```
/// use xkaapi_core::{Affinity, Priority, Runtime, Shared};
/// let rt = Runtime::new(2);
/// let (a, b) = (Shared::new(0u64), Shared::new(0u64));
/// rt.scope(|ctx| {
///     let (aw, ar, bw) = (a.clone(), a.clone(), b.clone());
///     ctx.task()
///         .writes(&a)
///         .priority(Priority::High)
///         .spawn(move |t| *t.write(&aw) = 21);
///     ctx.task()
///         .reads(&a)
///         .writes(&b)
///         .affinity(Affinity::Auto)
///         .spawn(move |t| *t.write(&bw) = 2 * *t.read(&ar));
/// });
/// assert_eq!(*b.get(), 42);
/// ```
#[must_use = "a TaskBuilder does nothing until a terminator (.spawn, .join, .foreach…)"]
pub struct TaskBuilder<'b, 'scope> {
    pub(crate) ctx: &'b mut Ctx<'scope>,
    pub(crate) accesses: Vec<Access>,
    pub(crate) attrs: TaskAttrs,
}

impl<'b, 'scope> TaskBuilder<'b, 'scope> {
    /// Declare a whole-object read access on `h`.
    pub fn reads<T: ?Sized>(mut self, h: &Shared<T>) -> Self {
        self.accesses.push(h.read());
        self
    }

    /// Declare a whole-object write-only access on `h` (renameable on
    /// renameable handles, see `DESIGN.md` §2).
    pub fn writes<T: ?Sized>(mut self, h: &Shared<T>) -> Self {
        self.accesses.push(h.write());
        self
    }

    /// Declare a whole-object exclusive read-write access on `h`.
    pub fn exclusive<T: ?Sized>(mut self, h: &Shared<T>) -> Self {
        self.accesses.push(h.exclusive());
        self
    }

    /// Declare an explicit access (regions, [`Partitioned`] handles,
    /// reductions — anything the plain helpers don't cover).
    pub fn access(mut self, a: Access) -> Self {
        self.accesses.push(a);
        self
    }

    /// Declare several explicit accesses at once.
    pub fn accesses(mut self, accs: impl IntoIterator<Item = Access>) -> Self {
        self.accesses.extend(accs);
        self
    }

    /// Set the priority band (default [`Priority::Normal`]: today's
    /// scheduling order, unchanged).
    pub fn priority(mut self, p: Priority) -> Self {
        self.attrs.priority = p;
        self
    }

    /// Set the data-affinity request (default [`Affinity::None`]).
    pub fn affinity(mut self, a: Affinity) -> Self {
        self.attrs.affinity = a;
        self
    }

    /// Attach a cooperative [`CancelToken`] (default: inherit the spawning
    /// task's token, if any). Child spawns of this task inherit it in turn,
    /// so cancelling the token cancels the whole cone (`DESIGN.md` §8).
    pub fn cancel_token(mut self, t: &CancelToken) -> Self {
        self.attrs.cancel = Some(t.clone());
        self
    }

    /// Route the task to an execution track (default [`Track::Cpu`]:
    /// today's worker pool, unchanged). `Track::Offload` hands it to the
    /// modelled accelerator engine — successors become ready when its
    /// completion drains, not when the body returns; `Track::Io` runs it
    /// on the dedicated blocking thread set (`DESIGN.md` §10).
    pub fn track(mut self, t: crate::attrs::Track) -> Self {
        self.attrs.track = t;
        self
    }

    /// Mark the task as blocking on an external event (a file descriptor,
    /// a channel, a remote reply): sugar for `.track(Track::Io)` — the
    /// body runs on the io thread set and never occupies a CPU worker.
    pub fn wait_external(self) -> Self {
        self.track(crate::attrs::Track::Io)
    }

    /// Spawn the task. Non-blocking, identical semantics to
    /// [`Ctx::spawn`]; the accumulated attributes ride the task through
    /// the queue, steal and dependency layers.
    pub fn spawn<F>(self, f: F)
    where
        F: FnOnce(&mut Ctx<'scope>) + Send + 'scope,
    {
        let TaskBuilder {
            ctx,
            accesses,
            attrs,
        } = self;
        ctx.spawn_with(accesses.into_boxed_slice(), attrs, f);
    }

    /// Run a fork-join pair: `fb` becomes a stealable fast-lane job pushed
    /// at this builder's priority band, `fa` runs inline, then the pair
    /// synchronises — [`Ctx::join`] with attributes. Fork-join jobs are
    /// independent by construction, so access declarations are ignored
    /// here (declare them on spawned tasks instead).
    pub fn join<RA, RB, FA, FB>(self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&mut Ctx<'scope>) -> RA,
        FB: FnOnce(&mut Ctx<'scope>) -> RB + Send,
        RB: Send,
    {
        debug_assert!(
            self.accesses.is_empty(),
            "fork-join tasks are independent; access declarations are ignored"
        );
        self.ctx.join_with(self.attrs, fa, fb)
    }
}

/// Run `f` as if on a scope of `rt` — helper for code generic over being
/// inside or outside the pool (used by the compatibility layers).
pub fn with_runtime_ctx<R: Send>(rt: &Runtime, f: impl FnOnce(&mut Ctx<'_>) -> R + Send) -> R {
    rt.scope(f)
}
