//! The injection subsystem: how root jobs enter the pool from outside
//! (DESIGN.md §4).
//!
//! Historically injection was a blocking front door: one global
//! `Mutex<VecDeque<Job>>` plus a latch the calling thread parked on until
//! its scope completed. That shape is fine for fork-join benchmarks but
//! wrong for a server reactor, which cannot afford a parked OS thread per
//! in-flight request. This module replaces it with three pieces:
//!
//! * **join handles** — [`Runtime::submit`](crate::Runtime::submit)
//!   enqueues a root job and returns a [`JoinHandle`] immediately; the
//!   caller can [`wait`](JoinHandle::wait), poll
//!   ([`try_result`](JoinHandle::try_result) / [`is_done`](JoinHandle::is_done))
//!   or register an [`on_complete`](JoinHandle::on_complete) callback so an
//!   async reactor is notified without parking a thread;
//! * **sharded inject lanes** — one lane per NUMA node of the runtime's
//!   [`Topology`], chosen by submitter hash, drained by workers nearest
//!   the lane first (the locality-aware placement the topology layer
//!   enables: a root job tends to start on the node whose lane it sat in);
//! * **admission control** — an [`InjectPolicy`] caps the number of
//!   pending (admitted but not yet started) root jobs; a flooded runtime
//!   throttles submitters ([`OnFull::Block`]) or sheds load
//!   ([`OnFull::Reject`]) instead of growing unboundedly.
//!
//! [`Runtime::scope`](crate::Runtime::scope) is re-expressed on top of the
//! same machinery: submit (always admitted with blocking semantics — the
//! caller is about to park anyway, which *is* the backpressure) followed by
//! an immediate wait.

use crate::attrs::{CancelToken, NORMAL_BAND, PRIORITY_BANDS};
use crate::ctx::{help_until, RawCtx};
use crate::runtime::{Job, RtInner};
use crate::stats::WorkerStats;
use crate::telemetry::EventKind;
use crate::topology::Topology;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Admission policy

/// What [`Runtime::submit`](crate::Runtime::submit) does when the inject
/// lanes already hold [`InjectPolicy::max_pending`] admitted jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnFull {
    /// Throttle: block the submitting thread until a worker drains a job.
    #[default]
    Block,
    /// Shed: return [`SubmitError`] immediately (the closure is dropped).
    Reject,
}

/// Admission/backpressure policy of the injection subsystem.
///
/// `max_pending` bounds the number of *admitted but not yet started* root
/// jobs across all lanes; `on_full` decides whether a submitter at the
/// bound throttles or is rejected. Configured via
/// [`Builder::inject_policy`](crate::Builder::inject_policy) /
/// [`Builder::max_pending`](crate::Builder::max_pending), with the
/// `XKAAPI_MAX_PENDING` environment variable overriding the default bound.
///
/// Admission is **priority-ordered** (`DESIGN.md` §5): [`Priority::High`]
/// and [`Priority::Normal`] submissions admit up to the full `max_pending`,
/// while [`Priority::Low`] submissions see only half of it (at least 1) —
/// under pressure, low-priority load is shed (or throttled) while headroom
/// remains for the higher bands, so a high-priority job is never rejected
/// while low-priority ones are still being admitted.
///
/// [`Priority::High`]: crate::Priority::High
/// [`Priority::Normal`]: crate::Priority::Normal
/// [`Priority::Low`]: crate::Priority::Low
///
/// [`Runtime::scope`](crate::Runtime::scope) always uses blocking
/// admission regardless of `on_full`: a scope caller blocks until its job
/// completes anyway, so blocking a little earlier at admission is the same
/// contract (and keeps scope infallible under every policy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectPolicy {
    /// Maximum admitted-but-not-started root jobs across all lanes (≥ 1).
    pub max_pending: usize,
    /// Behaviour of [`Runtime::submit`](crate::Runtime::submit) at the cap.
    pub on_full: OnFull,
}

impl Default for InjectPolicy {
    fn default() -> Self {
        InjectPolicy {
            max_pending: 4096,
            on_full: OnFull::Block,
        }
    }
}

/// Why a submitted job did not run (`DESIGN.md` §8).
///
/// [`Rejected`](SubmitError::Rejected) is returned synchronously by
/// [`Runtime::submit`](crate::Runtime::submit)-family admission;
/// [`Cancelled`](SubmitError::Cancelled) and
/// [`Expired`](SubmitError::Expired) surface asynchronously through
/// [`JoinHandle::join`] when the job was shed after admission (its panic
/// payload is a boxed `SubmitError`). In every case the submitted closure
/// has been dropped without running; resubmit to retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission layer was at [`InjectPolicy::max_pending`] under
    /// [`OnFull::Reject`].
    Rejected,
    /// The job's [`CancelToken`] was cancelled before its body started.
    Cancelled,
    /// The job's deadline ([`JobBuilder::deadline`](crate::JobBuilder::deadline))
    /// passed before its body started.
    Expired,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected => write!(
                f,
                "submission rejected: inject lanes at max_pending and on_full = Reject"
            ),
            SubmitError::Cancelled => {
                write!(f, "submission cancelled before the job body started")
            }
            SubmitError::Expired => {
                write!(f, "submission deadline passed before the job body started")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

// ---------------------------------------------------------------------------
// Join state & handle

/// Completion callback registered through [`JoinHandle::on_complete`].
type CompleteFn = Box<dyn FnOnce() + Send>;

/// Process-global count of contained `on_complete` callback panics.
/// Global because callbacks fire wherever completion happens — worker
/// threads, external submitter threads — with no runtime reference in
/// hand; merged into [`Runtime::stats`](crate::Runtime::stats).
static CALLBACK_PANICS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the contained-callback-panic count (`Runtime::stats`).
pub(crate) fn callback_panics() -> u64 {
    CALLBACK_PANICS.load(Ordering::Relaxed)
}

/// Reset hook for `Runtime::reset_stats` (process-global, see above).
pub(crate) fn reset_callback_panics() {
    CALLBACK_PANICS.store(0, Ordering::Relaxed);
}

/// Run one completion callback with panic containment: a callback often
/// fires on a worker thread, and an unwinding worker would silently shrink
/// the pool (job-body panics are already caught and routed to the handle —
/// callbacks get the same never-unwind-the-worker treatment). Contained
/// panics are counted (`callback_panics`) and the payload is surfaced in
/// the warning so they stay observable.
fn run_callback(cb: CompleteFn) {
    if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(cb)) {
        CALLBACK_PANICS.fetch_add(1, Ordering::Relaxed);
        let payload = p
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| format!("non-string panic payload ({:?})", (*p).type_id()));
        eprintln!("xkaapi: on_complete callback panicked (contained): {payload}");
    }
}

struct JoinInner<R> {
    result: Option<std::thread::Result<R>>,
    callbacks: Vec<CompleteFn>,
    /// The `Future` adapter's registered waker: a single slot, replaced on
    /// re-poll (a future has one current waker; accumulating one callback
    /// per pending poll would grow unboundedly under busy executors).
    #[cfg(feature = "future")]
    waker: Option<std::task::Waker>,
}

/// Shared completion cell between a submitted job and its [`JoinHandle`].
pub(crate) struct JoinState<R> {
    mx: Mutex<JoinInner<R>>,
    cv: Condvar,
    done: AtomicBool,
}

impl<R> JoinState<R> {
    pub(crate) fn new() -> JoinState<R> {
        JoinState {
            mx: Mutex::new(JoinInner {
                result: None,
                callbacks: Vec::new(),
                #[cfg(feature = "future")]
                waker: None,
            }),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
        }
    }

    #[inline]
    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Publish the result (first writer wins), wake waiters and fire the
    /// registered callbacks. Idempotent: the abandonment guard may race a
    /// normal completion without double-firing.
    pub(crate) fn complete(&self, result: std::thread::Result<R>) {
        #[cfg(feature = "future")]
        let waker;
        let callbacks = {
            let mut inner = self.mx.lock();
            if inner.result.is_some() {
                return;
            }
            inner.result = Some(result);
            self.done.store(true, Ordering::Release);
            // Notify while holding the lock, as the old scope latch did:
            // waiters cannot observe `done` and race ahead mid-publication.
            self.cv.notify_all();
            #[cfg(feature = "future")]
            {
                waker = inner.waker.take();
            }
            std::mem::take(&mut inner.callbacks)
        };
        // Callbacks (and the future's waker) run outside the lock: they
        // may take arbitrary user locks (wake a reactor, send on a
        // channel).
        #[cfg(feature = "future")]
        if let Some(w) = waker {
            w.wake();
        }
        for cb in callbacks {
            run_callback(cb);
        }
    }

    /// Block the calling (non-worker) thread until completion.
    pub(crate) fn wait_blocking(&self) {
        let mut inner = self.mx.lock();
        while inner.result.is_none() {
            self.cv.wait(&mut inner);
        }
    }

    /// Take the result out (None while running; panics are preserved).
    pub(crate) fn take_result(&self) -> Option<std::thread::Result<R>> {
        self.mx.lock().result.take()
    }

    /// One atomic poll step for the `Future` adapter: take the result if
    /// it is there, otherwise install `waker` in the single waker slot
    /// (replacing a stale one; re-polls with the same waker are free) —
    /// all under the state lock, so a completion can never slip between
    /// the check and the registration (no lost wake-up).
    ///
    /// # Panics
    /// If the job completed but the result was already consumed (a
    /// `try_result`/`wait` raced this future).
    #[cfg(feature = "future")]
    pub(crate) fn poll_take(&self, waker: &std::task::Waker) -> Option<std::thread::Result<R>> {
        let mut inner = self.mx.lock();
        if let Some(r) = inner.result.take() {
            return Some(r);
        }
        if self.done.load(Ordering::Acquire) {
            panic!("xkaapi: JoinHandle future polled after its result was already taken");
        }
        match &mut inner.waker {
            Some(w) if w.will_wake(waker) => {}
            slot => *slot = Some(waker.clone()),
        }
        None
    }
}

/// Drop guard a submitted job carries: if the runtime shuts down with the
/// job still queued (the boxed closure is dropped unexecuted), the guard
/// completes the state with a panic payload so waiters unblock instead of
/// hanging forever.
pub(crate) struct AbandonGuard<R> {
    pub(crate) state: Arc<JoinState<R>>,
}

impl<R> Drop for AbandonGuard<R> {
    fn drop(&mut self) {
        if !self.state.is_done() {
            self.state.complete(Err(Box::new(
                "xkaapi: runtime shut down before the submitted job ran",
            )));
        }
    }
}

/// Handle to a root job enqueued with
/// [`Runtime::submit`](crate::Runtime::submit).
///
/// The handle is detachable: dropping it does **not** cancel the job (the
/// job owns its half of the shared state and runs to completion) — call
/// [`cancel`](JoinHandle::cancel) for that. A panic inside the job is
/// captured and re-raised at [`wait`](JoinHandle::wait) /
/// [`try_result`](JoinHandle::try_result) time, mirroring
/// `std::thread::JoinHandle`; [`join`](JoinHandle::join) instead maps
/// cancellation/expiry to a [`SubmitError`].
pub struct JoinHandle<R> {
    state: Arc<JoinState<R>>,
    /// Weak so a forgotten handle cannot keep the runtime alive; used to
    /// *help* (run pool work) instead of parking when `wait` is called on
    /// a worker thread of the same runtime.
    rt: Weak<RtInner>,
    /// The token governing the job's cone ([`JoinHandle::cancel`]).
    cancel: Option<CancelToken>,
}

impl<R: Send> JoinHandle<R> {
    pub(crate) fn new(
        state: Arc<JoinState<R>>,
        rt: &Arc<RtInner>,
        cancel: Option<CancelToken>,
    ) -> JoinHandle<R> {
        JoinHandle {
            state,
            rt: Arc::downgrade(rt),
            cancel,
        }
    }

    /// Cooperatively cancel the job and its whole dependency cone.
    ///
    /// Queued work is skipped (the handle completes with
    /// [`SubmitError::Cancelled`]); a body already running keeps running —
    /// poll [`Ctx::is_cancelled`](crate::Ctx::is_cancelled) inside it to
    /// bail early — but every task it spawned that has not started yet is
    /// elided while still satisfying its dataflow obligations. Idempotent;
    /// returns `true` the first time this token is cancelled.
    pub fn cancel(&self) -> bool {
        match &self.cancel {
            Some(t) => t.cancel(),
            None => false,
        }
    }

    /// A clone of the token governing this job's cone, if any (share it
    /// with other owners, or check it from outside the pool).
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.cancel.clone()
    }

    /// Like [`wait`](JoinHandle::wait), but maps the shed outcomes to a
    /// [`SubmitError`] instead of panicking: `Err(Cancelled)` when the job
    /// was cancelled before its body started, `Err(Expired)` when its
    /// deadline passed first. Genuine job-body panics still re-raise.
    pub fn join(self) -> Result<R, SubmitError> {
        self.wait_done();
        match self
            .state
            .take_result()
            .expect("JoinHandle::join: result was already taken by try_result")
        {
            Ok(v) => Ok(v),
            Err(p) => match p.downcast::<SubmitError>() {
                Ok(e) => Err(*e),
                Err(p) => resume_unwind(p),
            },
        }
    }

    /// Block (or help, on a worker thread) until the job completes.
    fn wait_done(&self) {
        if self.state.is_done() {
            return;
        }
        match self.rt.upgrade() {
            Some(rt) => match crate::worker::current_worker_of(&rt) {
                Some(widx) => {
                    let st = &self.state;
                    help_until(&rt, widx, None, || st.is_done());
                }
                None => self.state.wait_blocking(),
            },
            None => self.state.wait_blocking(),
        }
    }

    /// Has the job finished (completed or panicked)? Non-blocking; true
    /// means [`try_result`](JoinHandle::try_result) will return the result.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }

    /// Non-blocking poll: `Some(result)` once the job finished, `None`
    /// while it is still queued or running. Re-raises the job's panic.
    ///
    /// A successful poll takes the result out of the handle: a later
    /// `try_result` returns `None` again, and a later
    /// [`wait`](JoinHandle::wait) panics (double consumption).
    pub fn try_result(&mut self) -> Option<R> {
        match self.state.take_result() {
            None => None,
            Some(Ok(v)) => Some(v),
            Some(Err(p)) => resume_unwind(p),
        }
    }

    /// Block until the job completes and return its result, re-raising the
    /// job's panic (after it has fully unwound inside the pool).
    ///
    /// Called from a worker thread of the same runtime, the "wait" is a
    /// help loop — the worker keeps executing pool work (including, very
    /// possibly, the submitted job itself) instead of parking, so waiting
    /// inside a task cannot deadlock the pool.
    ///
    /// # Panics
    ///
    /// Re-raises the job's panic, and panics (with a message saying so) if
    /// a successful [`try_result`](JoinHandle::try_result) already took the
    /// result out of this handle.
    pub fn wait(self) -> R {
        self.wait_done();
        match self
            .state
            .take_result()
            .expect("JoinHandle::wait: result was already taken by try_result")
        {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    }

    /// Register a callback fired exactly once when the job completes
    /// (panic or success), from the completing worker thread — or
    /// immediately on the calling thread when the job already finished.
    /// This is the reactor hook: wake an event loop, send on a channel,
    /// notify an async waker — without any thread parked on the handle.
    ///
    /// A panicking callback is contained (caught, one-line warning), never
    /// unwound through the completing worker: a callback panic must not
    /// shrink the pool.
    pub fn on_complete(&self, cb: impl FnOnce() + Send + 'static) {
        let run_now = {
            let mut inner = self.state.mx.lock();
            if inner.result.is_some() || self.state.is_done() {
                true
            } else {
                inner.callbacks.push(Box::new(cb) as CompleteFn);
                return;
            }
        };
        if run_now {
            run_callback(Box::new(cb));
        }
    }
}

impl<R> std::fmt::Debug for JoinHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("done", &self.state.is_done())
            .finish()
    }
}

/// Async adapter (the ROADMAP injection follow-up), behind the `future`
/// feature gate: a [`JoinHandle`] is a `Future` resolving to the job's
/// result, wired over the same completion path as
/// [`JoinHandle::on_complete`] — no reactor or runtime of our own, any
/// executor's waker plugs straight in. The job's panic is re-raised at
/// `poll` time, mirroring [`JoinHandle::wait`].
///
/// Each pending poll installs the current waker in a single slot under
/// the state lock (replacing a stale waker, free when it
/// [`will_wake`](std::task::Waker::will_wake) the same task), so a
/// completion can never race between the readiness check and the
/// registration, and a busy executor re-polling many times cannot grow
/// state.
#[cfg(feature = "future")]
impl<R: Send> std::future::Future for JoinHandle<R> {
    type Output = R;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> std::task::Poll<R> {
        // `JoinHandle` is `Unpin` (an `Arc` and a `Weak`), so projecting
        // out of the pin is trivially sound.
        let this = self.get_mut();
        match this.state.poll_take(cx.waker()) {
            Some(Ok(v)) => std::task::Poll::Ready(v),
            Some(Err(p)) => resume_unwind(p),
            None => std::task::Poll::Pending,
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded inject lanes

/// Per-lane counters of one inject lane, exposed through
/// [`Runtime::inject_lane_stats`](crate::Runtime::inject_lane_stats) (one
/// lane per NUMA node; `submitted`/`drained` diverge only transiently).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectLaneStats {
    /// Root jobs enqueued into this lane.
    pub submitted: u64,
    /// Root jobs taken out of this lane by a worker.
    pub drained: u64,
}

struct Lane {
    /// One FIFO per priority band (0 = high): workers drain lower band
    /// indices first, FIFO within a band. Entries carry their admission
    /// time for the age-based promotion sweep (`DESIGN.md` §8).
    q: Mutex<[VecDeque<(Job, Instant)>; PRIORITY_BANDS]>,
    submitted: AtomicU64,
    drained: AtomicU64,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            q: Mutex::new(std::array::from_fn(|_| VecDeque::new())),
            submitted: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }
}

/// The sharded inject queue: one priority-banded lane per NUMA node,
/// submitter-hashed (or affinity-targeted) on entry, drained by workers
/// band-major (all lanes' high band before any lane's next band, own lane
/// first within a band), bounded by an [`InjectPolicy`].
pub(crate) struct InjectLanes {
    lanes: Box<[Lane]>,
    /// node → lane visit order: own lane first, then ascending SLIT
    /// distance (ties broken by lane index, deterministically).
    drain_order: Box<[Box<[usize]>]>,
    policy: InjectPolicy,
    /// Admitted-but-not-yet-drained jobs, across all lanes. Incremented at
    /// admission (before the push), decremented at drain.
    pending: AtomicUsize,
    /// Pushed-but-not-yet-drained jobs *outside* the default band, across
    /// all lanes. While zero — the steady state of attribute-free floods —
    /// drains short-circuit to a single Normal-band walk instead of the
    /// band-major probe of every `(band, lane)` FIFO. Incremented before
    /// the locked push, decremented after a non-default pop: a drain
    /// seeing a stale 0 misses the in-flight job once and finds it on the
    /// next poll (`pending` still forces a retry), the same benign race
    /// the queue layer's side-lane hints accept.
    side_pending: AtomicUsize,
    /// Drains that walked the full band-major order (see
    /// `StatsSnapshot::inject_banded_drains`).
    banded_drains: AtomicU64,
    /// Submitters currently blocked in [`OnFull::Block`] admission.
    waiters: AtomicUsize,
    room_mx: Mutex<()>,
    room_cv: Condvar,
    /// Lifetime totals (survive lane drains; reset with the stats).
    submitted: AtomicU64,
    rejected: AtomicU64,
    /// Jobs shed because their deadline passed (admission- or drain-time).
    expired: AtomicU64,
    /// Starved Low-band entries moved up one band by the age sweep.
    promoted: AtomicU64,
    /// Promote a Low-band entry after waiting this long (`None` disables
    /// the sweep; from `Tunables::promote_low_after`).
    promote_after: Option<Duration>,
}

/// Admission ticket: proof that `pending` was incremented.
#[derive(Debug)]
pub(crate) struct Admission;

thread_local! {
    /// Lazily-assigned submitter identity used to hash external threads
    /// onto lanes (spreads concurrent submitters; one thread sticks to one
    /// lane, keeping its root jobs' locality stable).
    static SUBMITTER_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

static NEXT_SUBMITTER: AtomicUsize = AtomicUsize::new(0);

fn submitter_id() -> usize {
    SUBMITTER_ID.with(|c| {
        let mut id = c.get();
        if id == usize::MAX {
            id = NEXT_SUBMITTER.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    })
}

impl InjectLanes {
    pub(crate) fn new(
        topo: &Topology,
        policy: InjectPolicy,
        promote_after: Option<Duration>,
    ) -> InjectLanes {
        let nodes = topo.nodes().max(1);
        let lanes: Box<[Lane]> = (0..nodes).map(|_| Lane::new()).collect();
        let drain_order: Box<[Box<[usize]>]> = (0..nodes)
            .map(|me| {
                let mut order: Vec<usize> = (0..nodes).collect();
                order.sort_by_key(|&n| (topo.distances().get(me, n), n));
                debug_assert_eq!(order[0], me, "own lane must sort first (SLIT local)");
                order.into_boxed_slice()
            })
            .collect();
        InjectLanes {
            lanes,
            drain_order,
            policy,
            pending: AtomicUsize::new(0),
            side_pending: AtomicUsize::new(0),
            banded_drains: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            room_mx: Mutex::new(()),
            room_cv: Condvar::new(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            promoted: AtomicU64::new(0),
            promote_after,
        }
    }

    /// Number of lanes (one per NUMA node).
    #[inline]
    pub(crate) fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The lane the calling thread hashes to.
    #[inline]
    pub(crate) fn lane_of_submitter(&self) -> usize {
        submitter_id() % self.lanes.len()
    }

    /// Effective admission limit of a priority band: the full cap for the
    /// high and default bands, half of it (at least 1) for the low band —
    /// the per-priority shedding order ("reject low before high").
    fn band_limit(&self, band: u8) -> usize {
        if (band as usize) < PRIORITY_BANDS - 1 {
            self.policy.max_pending
        } else {
            (self.policy.max_pending / 2).max(1)
        }
    }

    /// Try to reserve a pending slot for a `band` submission without
    /// blocking (also the polling primitive of the track engines, whose
    /// threads must stay responsive to shutdown).
    pub(crate) fn try_admit(&self, band: u8) -> Option<Admission> {
        let limit = self.band_limit(band);
        let mut cur = self.pending.load(Ordering::Relaxed);
        loop {
            if cur >= limit {
                return None;
            }
            match self.pending.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Admission),
                Err(now) => cur = now,
            }
        }
    }

    /// Admission under the configured policy: `Err(SubmitError::Rejected)`
    /// only under [`OnFull::Reject`] at the band's cap.
    pub(crate) fn admit(&self, band: u8) -> Result<Admission, SubmitError> {
        match self.policy.on_full {
            OnFull::Reject => self.try_admit(band).ok_or_else(|| {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                SubmitError::Rejected
            }),
            OnFull::Block => Ok(self.admit_blocking(band)),
        }
    }

    /// Admission that always succeeds, blocking until a slot frees (what
    /// `Runtime::scope` uses — at the default band — regardless of the
    /// policy's `on_full`).
    pub(crate) fn admit_blocking(&self, band: u8) -> Admission {
        loop {
            if let Some(a) = self.try_admit(band) {
                return a;
            }
            self.waiters.fetch_add(1, Ordering::SeqCst);
            let mut g = self.room_mx.lock();
            // Re-check under the lock: a drain between the failed CAS and
            // the lock would otherwise be a lost wake-up.
            if self.pending.load(Ordering::Relaxed) >= self.band_limit(band) {
                self.room_cv.wait(&mut g);
            }
            drop(g);
            self.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Enqueue an admitted job into `lane` at priority band `band`.
    pub(crate) fn push(&self, _admission: Admission, lane: usize, band: u8, job: Job) {
        debug_assert!(lane < self.lanes.len());
        let band = (band as usize).min(PRIORITY_BANDS - 1);
        if band != NORMAL_BAND as usize {
            // Before the locked push: a drain that observes the job must
            // also observe the non-default counter (or retry via pending).
            self.side_pending.fetch_add(1, Ordering::Relaxed);
        }
        self.lanes[lane].q.lock()[band].push_back((job, Instant::now()));
        self.lanes[lane].submitted.fetch_add(1, Ordering::Relaxed);
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an inline (worker-context) submission that bypassed the lanes.
    pub(crate) fn note_inline_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain one job for a worker on NUMA `node`, band-major: every lane's
    /// high band (own lane first, then ascending distance) before any
    /// lane's next band — priority outranks locality across lanes, and
    /// within one band the drain order is exactly the pre-band
    /// nearest-lane-first walk. Returns the job and the lane it came from
    /// (callers classify own/remote drains).
    pub(crate) fn pop_for(&self, node: usize) -> Option<(Job, usize)> {
        if self.pending.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let node = if node < self.drain_order.len() {
            node
        } else {
            0
        };
        // Fast path: no non-default job anywhere (one relaxed load), so
        // every lane's high and low FIFOs are empty — walk only the Normal
        // band, one lock per lane instead of one per `(band, lane)` pair.
        if self.side_pending.load(Ordering::Relaxed) == 0 {
            for &lane in self.drain_order[node].iter() {
                let job = self.lanes[lane].q.lock()[NORMAL_BAND as usize].pop_front();
                if let Some((job, _)) = job {
                    return Some((job, self.note_drained(lane)));
                }
            }
            return None;
        }
        self.banded_drains.fetch_add(1, Ordering::Relaxed);
        self.promote_starved_low();
        for band in 0..PRIORITY_BANDS {
            for &lane in self.drain_order[node].iter() {
                let job = self.lanes[lane].q.lock()[band].pop_front();
                if let Some((job, _)) = job {
                    if band != NORMAL_BAND as usize {
                        self.side_pending.fetch_sub(1, Ordering::Relaxed);
                    }
                    return Some((job, self.note_drained(lane)));
                }
            }
        }
        None
    }

    /// Age-based promotion sweep (`DESIGN.md` §8): Low-band entries that
    /// waited longer than `promote_after` move up one band (to Normal), so
    /// a starved Low submission eventually runs even under a continuous
    /// stream of higher-band work. Runs only on the banded drain path —
    /// while no non-default job is pending there is nothing to promote.
    /// FIFO order makes the oldest entry the front one, so each lane's
    /// sweep stops at the first young entry.
    fn promote_starved_low(&self) {
        let Some(after) = self.promote_after else {
            return;
        };
        let now = Instant::now();
        const LOW: usize = PRIORITY_BANDS - 1;
        for lane in self.lanes.iter() {
            let mut q = lane.q.lock();
            while q[LOW]
                .front()
                .is_some_and(|(_, t)| now.duration_since(*t) >= after)
            {
                let entry = q[LOW].pop_front().unwrap();
                q[LOW - 1].push_back(entry);
                // The entry left the non-default bands (LOW - 1 is Normal):
                // keep the side-pending hint honest or banded drains stick.
                debug_assert_eq!(LOW - 1, NORMAL_BAND as usize);
                self.side_pending.fetch_sub(1, Ordering::Relaxed);
                self.promoted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Shared post-drain bookkeeping; returns `lane` for tail-call reuse.
    fn note_drained(&self, lane: usize) -> usize {
        self.lanes[lane].drained.fetch_add(1, Ordering::Relaxed);
        self.pending.fetch_sub(1, Ordering::Release);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.room_mx.lock();
            self.room_cv.notify_all();
        }
        lane
    }

    /// Cheap "any pending root jobs?" hint (park heuristic).
    #[inline]
    pub(crate) fn has_pending_hint(&self) -> bool {
        self.pending.load(Ordering::Relaxed) > 0
    }

    /// Lifetime totals: jobs admitted into lanes or run inline.
    #[inline]
    pub(crate) fn total_submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Lifetime totals: submissions shed by [`OnFull::Reject`].
    #[inline]
    pub(crate) fn total_rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Lifetime totals: drains that walked the full band-major probe order
    /// (zero for Normal-only workloads).
    #[inline]
    pub(crate) fn total_banded_drains(&self) -> u64 {
        self.banded_drains.load(Ordering::Relaxed)
    }

    /// Lifetime totals: jobs shed because their deadline passed.
    #[inline]
    pub(crate) fn total_expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Lifetime totals: Low-band entries promoted by the age sweep.
    #[inline]
    pub(crate) fn total_promoted(&self) -> u64 {
        self.promoted.load(Ordering::Relaxed)
    }

    /// Count a deadline shed (admission-side or drain-side).
    pub(crate) fn note_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-lane counter snapshot.
    pub(crate) fn lane_stats(&self) -> Vec<InjectLaneStats> {
        self.lanes
            .iter()
            .map(|l| InjectLaneStats {
                submitted: l.submitted.load(Ordering::Relaxed),
                drained: l.drained.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Reset every counter (not the pending counts — those are live state).
    pub(crate) fn reset_counters(&self) {
        self.submitted.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.banded_drains.store(0, Ordering::Relaxed);
        self.expired.store(0, Ordering::Relaxed);
        self.promoted.store(0, Ordering::Relaxed);
        for l in self.lanes.iter() {
            l.submitted.store(0, Ordering::Relaxed);
            l.drained.store(0, Ordering::Relaxed);
        }
    }
}

/// Build the boxed root-job closure for a submission: runs the scope body,
/// publishes the result into `state` (the [`AbandonGuard`] turns a
/// never-ran job into a panic payload instead of a hang).
///
/// Drain-time shedding happens here (`DESIGN.md` §8): an expired deadline
/// or a cancelled token completes the handle with a boxed [`SubmitError`]
/// without ever running the body; otherwise the token is installed on the
/// scope context so every spawn in the job inherits it.
pub(crate) fn make_job<F, R>(
    state: Arc<JoinState<R>>,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    f: F,
) -> Job
where
    F: for<'s> FnOnce(&mut crate::ctx::Ctx<'s>) -> R + Send + 'static,
    R: Send + 'static,
{
    let guard = AbandonGuard { state };
    Job::new(Box::new(move |raw: &mut RawCtx| {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            raw.rt.inject.note_expired();
            // Shed instant, arg 0 = deadline expiry (telemetry layer).
            crate::telemetry::emit_current(&raw.rt, raw.widx, EventKind::Shed, 0, 0);
            guard.state.complete(Err(Box::new(SubmitError::Expired)));
            drop(guard);
            return;
        }
        if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            WorkerStats::bump(&raw.rt.workers[raw.widx].stats.tasks_cancelled, 1);
            // Shed instant, arg 1 = cancelled before start.
            crate::telemetry::emit_current(&raw.rt, raw.widx, EventKind::Shed, 0, 1);
            guard.state.complete(Err(Box::new(SubmitError::Cancelled)));
            drop(guard);
            return;
        }
        raw.cancel = cancel;
        let r = raw.run_scoped_catch(f);
        raw.cancel = None;
        guard.state.complete(r);
        drop(guard); // completed: the guard's drop sees `done` and no-ops
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::NORMAL_BAND;
    use crate::topology::DistanceMatrix;

    fn job(tag: &'static str) -> Job {
        Job::new(Box::new(move |_raw| {
            let _ = tag;
        }))
    }

    #[test]
    fn drain_order_prefers_near_lanes() {
        // 3 nodes in a line: 0 -16- 1 -16- 2, 0 -22- 2.
        let d = DistanceMatrix::from_rows(&[vec![10, 16, 22], vec![16, 10, 16], vec![22, 16, 10]]);
        let topo = Topology::with_distances(vec![0, 1, 2], d);
        let lanes = InjectLanes::new(&topo, InjectPolicy::default(), None);
        assert_eq!(lanes.lanes(), 3);
        let a = lanes.admit(NORMAL_BAND).unwrap();
        lanes.push(a, 2, NORMAL_BAND, job("far"));
        let a = lanes.admit(NORMAL_BAND).unwrap();
        lanes.push(a, 1, NORMAL_BAND, job("mid"));
        // A worker on node 0 drains lane 1 (distance 16) before lane 2 (22).
        let (_, lane) = lanes.pop_for(0).unwrap();
        assert_eq!(lane, 1);
        let (_, lane) = lanes.pop_for(0).unwrap();
        assert_eq!(lane, 2);
        assert!(lanes.pop_for(0).is_none());
    }

    #[test]
    fn own_lane_drained_first() {
        let topo = Topology::two_level(4, 2);
        let lanes = InjectLanes::new(&topo, InjectPolicy::default(), None);
        assert_eq!(lanes.lanes(), 2);
        let a = lanes.admit(NORMAL_BAND).unwrap();
        lanes.push(a, 0, NORMAL_BAND, job("node0"));
        let a = lanes.admit(NORMAL_BAND).unwrap();
        lanes.push(a, 1, NORMAL_BAND, job("node1"));
        assert!(lanes.has_pending_hint());
        let (_, lane) = lanes.pop_for(1).unwrap();
        assert_eq!(lane, 1, "own node's lane must be drained first");
        let (_, lane) = lanes.pop_for(1).unwrap();
        assert_eq!(lane, 0);
        assert!(!lanes.has_pending_hint());
        let s = lanes.lane_stats();
        assert_eq!((s[0].submitted, s[0].drained), (1, 1));
        assert_eq!((s[1].submitted, s[1].drained), (1, 1));
        assert_eq!(lanes.total_submitted(), 2);
    }

    #[test]
    fn high_band_drains_before_low_across_lanes() {
        // Priority outranks locality: a remote lane's high-band job beats
        // the own lane's normal/low jobs.
        let topo = Topology::two_level(4, 2);
        let lanes = InjectLanes::new(&topo, InjectPolicy::default(), None);
        let a = lanes.admit(2).unwrap();
        lanes.push(a, 0, 2, job("own-low"));
        let a = lanes.admit(NORMAL_BAND).unwrap();
        lanes.push(a, 0, NORMAL_BAND, job("own-normal"));
        let a = lanes.admit(0).unwrap();
        lanes.push(a, 1, 0, job("remote-high"));
        let (_, lane) = lanes.pop_for(0).unwrap();
        assert_eq!(lane, 1, "remote high band must beat own lower bands");
        let (_, lane) = lanes.pop_for(0).unwrap();
        assert_eq!(lane, 0);
        let (_, lane) = lanes.pop_for(0).unwrap();
        assert_eq!(lane, 0);
        assert!(lanes.pop_for(0).is_none());
    }

    #[test]
    fn reject_at_cap() {
        let topo = Topology::flat(1);
        let lanes = InjectLanes::new(
            &topo,
            InjectPolicy {
                max_pending: 2,
                on_full: OnFull::Reject,
            },
            None,
        );
        let a1 = lanes.admit(NORMAL_BAND).unwrap();
        let a2 = lanes.admit(NORMAL_BAND).unwrap();
        assert_eq!(lanes.admit(NORMAL_BAND).unwrap_err(), SubmitError::Rejected);
        assert_eq!(lanes.total_rejected(), 1);
        lanes.push(a1, 0, NORMAL_BAND, job("a"));
        lanes.push(a2, 0, NORMAL_BAND, job("b"));
        let _ = lanes.pop_for(0).unwrap();
        assert!(
            lanes.admit(NORMAL_BAND).is_ok(),
            "drain must free an admission slot"
        );
    }

    #[test]
    fn low_band_is_shed_before_high() {
        let topo = Topology::flat(1);
        let lanes = InjectLanes::new(
            &topo,
            InjectPolicy {
                max_pending: 4,
                on_full: OnFull::Reject,
            },
            None,
        );
        // Fill to the low band's limit (max_pending / 2 = 2).
        let _a1 = lanes.admit(NORMAL_BAND).unwrap();
        let _a2 = lanes.admit(NORMAL_BAND).unwrap();
        assert_eq!(
            lanes.admit(2).unwrap_err(),
            SubmitError::Rejected,
            "low band must shed at half the cap"
        );
        // High and normal still have headroom up to the full cap.
        let _a3 = lanes.admit(0).unwrap();
        let _a4 = lanes.admit(NORMAL_BAND).unwrap();
        // At the full cap everyone is rejected — never high before low.
        assert!(lanes.admit(0).is_err());
        assert!(lanes.admit(NORMAL_BAND).is_err());
        assert!(lanes.admit(2).is_err());
    }

    #[test]
    fn abandon_guard_completes_dropped_jobs() {
        let state = Arc::new(JoinState::<u32>::new());
        let j = make_job(Arc::clone(&state), None, None, |_ctx| 7u32);
        assert!(!state.is_done());
        drop(j); // never executed: the guard publishes an abandonment panic
        assert!(state.is_done());
        assert!(state.take_result().unwrap().is_err());
    }

    #[test]
    fn age_sweep_promotes_starved_low_entries() {
        let topo = Topology::flat(1);
        let lanes = InjectLanes::new(
            &topo,
            InjectPolicy::default(),
            Some(Duration::from_millis(0)), // promote immediately
        );
        let a = lanes.admit(2).unwrap();
        lanes.push(a, 0, 2, job("low"));
        let a = lanes.admit(0).unwrap();
        lanes.push(a, 0, 0, job("high"));
        // High still wins the banded walk, but the Low entry is promoted to
        // Normal by the sweep (it no longer sits behind future Low pushes).
        let _ = lanes.pop_for(0).unwrap();
        assert_eq!(lanes.total_promoted(), 1);
        // The promoted entry now drains from the Normal band.
        let _ = lanes.pop_for(0).unwrap();
        assert!(lanes.pop_for(0).is_none());
        assert_eq!(lanes.total_promoted(), 1, "promotion happens once");
    }

    #[test]
    fn age_sweep_disabled_keeps_low_in_band() {
        let topo = Topology::flat(1);
        let lanes = InjectLanes::new(&topo, InjectPolicy::default(), None);
        let a = lanes.admit(2).unwrap();
        lanes.push(a, 0, 2, job("low"));
        let _ = lanes.pop_for(0).unwrap();
        assert_eq!(lanes.total_promoted(), 0);
    }
}
