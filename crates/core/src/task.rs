//! Task descriptors and the ownership (claim) protocol.
//!
//! Every spawned task carries an atomic state word. The owner worker claims
//! tasks in FIFO (program) order without computing dependencies — the
//! *work-first* principle: a sequential execution order is always valid for
//! the X-Kaapi data-flow model, so the local fast path pays nothing for the
//! data-flow graph. Thieves claim tasks with a compare-and-swap after proving
//! readiness; the single CAS per task plays the role Cilk's T.H.E. protocol
//! plays on deque indices: owner and thief can never both run a task.

use crate::access::Access;
use crate::attrs::TaskAttrs;
use crate::ctx::RawCtx;
use crate::dataflow::SlotBinding;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Task has been created and not yet claimed by anyone.
pub(crate) const ST_INIT: u8 = 0;
/// Claimed by the owner worker (FIFO path).
pub(crate) const ST_OWNER: u8 = 1;
/// Claimed by a thief during a steal operation.
pub(crate) const ST_STOLEN: u8 = 2;
/// Execution finished; effects are visible to acquiring readers.
pub(crate) const ST_DONE: u8 = 3;

/// The boxed body of a task. Bodies receive the executing worker's raw
/// context so they can spawn children, sync, or run parallel loops.
pub(crate) type TaskBody = Box<dyn FnOnce(&mut RawCtx) + Send>;

/// A spawned task: state word, one-shot body, declared accesses.
pub(crate) struct Task {
    state: AtomicU8,
    /// Taken exactly once by the claimant; `UnsafeCell` because the claim
    /// CAS is what transfers ownership.
    body: UnsafeCell<Option<TaskBody>>,
    /// Declared accesses; empty for independent (fork-join) tasks.
    pub(crate) accesses: Box<[Access]>,
    /// Scheduling attributes (priority band, data affinity) — immutable
    /// after construction, consumed by the queue/steal/inject layers.
    pub(crate) attrs: TaskAttrs,
    /// Version-slot routing parallel to `accesses`, written once by
    /// `Frame::push` (under the frame lock, before the task is claimable)
    /// and read-only afterwards.
    binding: UnsafeCell<Box<[SlotBinding]>>,
    /// Debug-mode data-access checking is disabled for this task. Set only
    /// for recorded-DAG replay groups (`record.rs`): their member bodies'
    /// accesses were validated when the DAG was recorded, and the group
    /// task itself declares none (that is what keeps replay free of
    /// dependency analysis), so `Ctx::check_granted` must not reject them.
    /// Only read by the debug-mode checker.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) unchecked_data: bool,
}

// Safety: `body` is only touched by the thread that won the claim CAS,
// `accesses` is immutable after construction, and `binding` is written
// exactly once before the task is published to any other thread (the frame
// lock release in `Frame::push` is the publication fence).
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    pub(crate) fn new(body: TaskBody, accesses: Box<[Access]>, attrs: TaskAttrs) -> Task {
        Task {
            state: AtomicU8::new(ST_INIT),
            body: UnsafeCell::new(Some(body)),
            accesses,
            attrs,
            binding: UnsafeCell::new(Box::new([])),
            unchecked_data: false,
        }
    }

    /// A pre-analyzed replay task (`record.rs`): no declared accesses —
    /// its ordering comes from the recorded DAG's continuation spawning —
    /// and data-access checking disabled (see [`Task::unchecked_data`]).
    pub(crate) fn new_unchecked(body: TaskBody, attrs: TaskAttrs) -> Task {
        Task {
            state: AtomicU8::new(ST_INIT),
            body: UnsafeCell::new(Some(body)),
            accesses: Box::new([]),
            attrs,
            binding: UnsafeCell::new(Box::new([])),
            unchecked_data: true,
        }
    }

    /// Priority band of this task (0 = high, see [`crate::Priority`]).
    #[inline]
    pub(crate) fn band(&self) -> u8 {
        self.attrs.band()
    }

    /// Target NUMA node this task's affinity resolves to against a
    /// topology with `nodes` nodes (`None` = no preference).
    #[inline]
    pub(crate) fn target_node(&self, nodes: usize) -> Option<usize> {
        self.attrs.resolve_node(&self.accesses, nodes)
    }

    /// Install the slot routing computed by the data-flow engine.
    ///
    /// An **empty** binding is the all-default sentinel: the engine hands
    /// back `Box<[]>` when every access routes to the committed slot with
    /// no renames, so the fast path installs nothing (`Task::new` already
    /// holds the empty box) and readers reconstruct
    /// `SlotBinding::default()` per access. This keeps the defaulted
    /// spawn free of a per-access slot copy and lets
    /// `Frame::complete_task` skip the frame lock (no slots held).
    ///
    /// # Safety
    /// Must be called at most once, before the task becomes reachable by
    /// any other thread (`Frame::push` does so under the frame lock).
    pub(crate) unsafe fn set_binding(&self, b: Box<[SlotBinding]>) {
        unsafe { *self.binding.get() = b };
    }

    /// Slot routing, parallel to `accesses`. Empty for tasks that were
    /// never bound through a frame (fork-join fast-lane jobs) **and** for
    /// bound tasks whose every access is default-routed (the all-default
    /// sentinel — see [`Task::set_binding`]).
    #[inline]
    pub(crate) fn binding(&self) -> &[SlotBinding] {
        // Safety: written once pre-publication; immutable afterwards.
        unsafe { &*self.binding.get() }
    }

    /// Current state (acquire: observing `ST_DONE` also acquires the task's
    /// memory effects).
    #[inline]
    pub(crate) fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn is_done(&self) -> bool {
        self.state() == ST_DONE
    }

    /// Attempt to claim the task for execution as `who` (`ST_OWNER` or
    /// `ST_STOLEN`). Succeeds at most once across all threads.
    #[inline]
    pub(crate) fn try_claim(&self, who: u8) -> bool {
        debug_assert!(who == ST_OWNER || who == ST_STOLEN);
        self.state
            .compare_exchange(ST_INIT, who, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Take the body. Must only be called by the claimant.
    #[inline]
    pub(crate) fn take_body(&self) -> TaskBody {
        debug_assert!(matches!(
            self.state.load(Ordering::Relaxed),
            ST_OWNER | ST_STOLEN
        ));
        // Safety: claim CAS won exactly once; only the claimant calls this.
        unsafe { (*self.body.get()).take().expect("task body taken twice") }
    }

    /// Publish completion. `SeqCst` so the completion is totally ordered
    /// with the frame's `graph_on` flag (see `frame.rs` promotion protocol).
    #[inline]
    pub(crate) fn complete(&self) {
        let prev = self.state.swap(ST_DONE, Ordering::SeqCst);
        debug_assert!(prev == ST_OWNER || prev == ST_STOLEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessMode, HandleId, Region};

    fn mk(accesses: &[Access]) -> Task {
        Task::new(
            Box::new(|_| {}),
            accesses.to_vec().into_boxed_slice(),
            TaskAttrs::default(),
        )
    }

    #[test]
    fn claim_is_exclusive() {
        let t = mk(&[]);
        assert!(t.try_claim(ST_OWNER));
        assert!(!t.try_claim(ST_STOLEN));
        assert_eq!(t.state(), ST_OWNER);
        t.complete();
        assert!(t.is_done());
    }

    #[test]
    fn body_runs_once() {
        let t = mk(&[]);
        assert!(t.try_claim(ST_STOLEN));
        let _body = t.take_body();
        t.complete();
    }

    #[test]
    fn concurrent_claims_single_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        for _ in 0..64 {
            let t = Arc::new(mk(&[Access::new(
                HandleId(1),
                Region::All,
                AccessMode::Write,
            )]));
            let wins = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..4)
                .map(|i| {
                    let t = Arc::clone(&t);
                    let wins = Arc::clone(&wins);
                    std::thread::spawn(move || {
                        let who = if i % 2 == 0 { ST_OWNER } else { ST_STOLEN };
                        if t.try_claim(who) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(wins.load(Ordering::Relaxed), 1);
        }
    }
}
