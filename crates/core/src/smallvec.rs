//! A hand-rolled inline-capacity vector for the scheduling hot paths.
//!
//! The dependency graph keeps one successor list per task; almost every
//! list holds a handful of indices (a task rarely has more than a few
//! direct successors), yet a `Vec` per list is one heap allocation per
//! task on the spawn/promotion path. [`InlineVec`] stores up to `N`
//! elements inline and only spills to the heap beyond that — the common
//! case allocates nothing. Restricted to `Copy` elements, which keeps the
//! implementation free of drop bookkeeping (the only users store task
//! indices).

use std::mem::MaybeUninit;

/// A vector of `Copy` elements with inline capacity `N`: no heap
/// allocation until the length exceeds `N`, contiguous-slice access in
/// both representations.
pub(crate) struct InlineVec<T: Copy, const N: usize> {
    /// Total length; elements live inline while `spill` is empty.
    len: usize,
    inline: [MaybeUninit<T>; N],
    /// Heap storage once the inline capacity overflows; when non-empty it
    /// holds *all* elements (the inline prefix was copied over).
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    pub(crate) const fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [MaybeUninit::uninit(); N],
            spill: Vec::new(),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub(crate) fn push(&mut self, v: T) {
        if !self.spill.is_empty() {
            self.spill.push(v);
        } else if self.len < N {
            self.inline[self.len].write(v);
        } else {
            // First overflow: move the inline prefix to the heap.
            // Safety: `len == N` here, so all N inline slots are initialised.
            let prefix = unsafe { std::slice::from_raw_parts(self.inline.as_ptr() as *const T, N) };
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(prefix);
            self.spill.push(v);
        }
        self.len += 1;
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            self.inline_slice()
        } else {
            &self.spill
        }
    }

    /// Drop all elements, keeping any spill capacity for reuse.
    #[cfg(test)]
    pub(crate) fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    #[inline]
    fn inline_slice(&self) -> &[T] {
        debug_assert!(self.spill.is_empty() || self.len > N);
        let n = self.len.min(N);
        // Safety: `inline[..n]` was initialised by `push` (spill empty means
        // all `len <= N` elements are inline).
        unsafe { std::slice::from_raw_parts(self.inline.as_ptr() as *const T, n) }
    }
}

impl<T: Copy, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill() {
        let mut v: InlineVec<usize, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        v.push(4); // overflow: moves to the heap
        v.push(5);
        assert_eq!(v.len(), 6);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..10 {
            v.push(i);
        }
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[u32]);
        v.push(7);
        assert_eq!(v.as_slice(), &[7]);
    }

    #[test]
    fn take_leaves_empty() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
        let taken = std::mem::take(&mut v);
        assert_eq!(taken.as_slice(), &[1, 2, 3]);
        assert!(v.is_empty());
    }

    #[test]
    fn zero_capacity_goes_straight_to_heap() {
        let mut v: InlineVec<u64, 0> = InlineVec::new();
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }
}
