//! Adaptive parallel algorithms over the X-Kaapi runtime — the "STL" layer
//! the paper cites (Traoré et al., Euro-Par 2008): loop algorithms built on
//! adaptive tasks that split on demand when cores go idle, plus fork-join
//! divide-and-conquer algorithms.
//!
//! The parallel prefix is the textbook case of the paper's §II-D argument:
//! any log-depth parallel prefix needs ≥ 4n operations against n−1
//! sequentially (Fich), so creating parallelism only *on demand* — and
//! falling back to the sequential algorithm per processor-sized chunk — is
//! what keeps the overhead bounded. [`inclusive_scan`] is the classic
//! two-pass formulation: parallel block sums, sequential carry scan,
//! parallel rescan with offsets.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use xkaapi_core::{Ctx, Runtime};

/// Sendable raw view of a slice, used to hand disjoint chunks to workers.
#[derive(Clone, Copy)]
struct SlicePtr<T>(*mut T, usize);
unsafe impl<T: Send> Send for SlicePtr<T> {}
unsafe impl<T: Send> Sync for SlicePtr<T> {}

impl<T> SlicePtr<T> {
    fn new(s: &mut [T]) -> Self {
        SlicePtr(s.as_mut_ptr(), s.len())
    }

    /// # Safety
    /// `range` must be in bounds and disjoint from concurrently handed-out
    /// ranges; the loop partitioning guarantees both.
    #[allow(clippy::mut_from_ref)]
    unsafe fn range_mut<'a>(&self, range: std::ops::Range<usize>) -> &'a mut [T] {
        debug_assert!(range.end <= self.1);
        unsafe { std::slice::from_raw_parts_mut(self.0.add(range.start), range.len()) }
    }
}

/// Apply `f` to every element in parallel (adaptive chunking).
pub fn for_each_mut<T, F>(rt: &Runtime, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = data.len();
    let view = SlicePtr::new(data);
    rt.foreach_chunks(0..n, None, |r| {
        // Safety: chunks are disjoint.
        for v in unsafe { view.range_mut(r) } {
            f(v);
        }
    });
}

/// `dst[i] = f(&src[i])` in parallel.
pub fn transform<T, U, F>(rt: &Runtime, src: &[T], dst: &mut [U], f: F)
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    assert_eq!(src.len(), dst.len());
    let view = SlicePtr::new(dst);
    rt.foreach_chunks(0..src.len(), None, |r| {
        let out = unsafe { view.range_mut(r.clone()) };
        for (o, i) in out.iter_mut().zip(r) {
            *o = f(&src[i]);
        }
    });
}

/// Parallel reduction with an associative `combine`.
pub fn reduce<T, A, ID, F, C>(rt: &Runtime, data: &[T], identity: ID, fold: F, combine: C) -> A
where
    T: Sync,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(&mut A, &T) + Sync,
    C: Fn(A, A) -> A + Send + Sync,
{
    rt.foreach_reduce(
        0..data.len(),
        None,
        identity,
        |acc, i| fold(acc, &data[i]),
        combine,
    )
}

/// In-place inclusive prefix sum under an associative `op` (two-pass
/// blocked algorithm; see module docs for the Fich bound context).
pub fn inclusive_scan<T, F>(rt: &Runtime, data: &mut [T], op: F)
where
    T: Send + Sync + Copy,
    F: Fn(T, T) -> T + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let p = rt.num_workers();
    // Block count ≈ 4·p bounds the extra work; a sequential carry pass
    // handles the inter-block dependency.
    let nblocks = (4 * p).min(n).max(1);
    let block = n.div_ceil(nblocks);
    let nblocks = n.div_ceil(block);
    if nblocks == 1 {
        for i in 1..n {
            data[i] = op(data[i - 1], data[i]);
        }
        return;
    }
    let view = SlicePtr::new(data);
    // Pass 1: independent local scans per block.
    rt.foreach_chunks(0..nblocks, Some(1), |bs| {
        for b in bs {
            let lo = b * block;
            let hi = ((b + 1) * block).min(n);
            let chunk = unsafe { view.range_mut(lo..hi) };
            for i in 1..chunk.len() {
                chunk[i] = op(chunk[i - 1], chunk[i]);
            }
        }
    });
    // Sequential carry scan over block totals.
    let mut carries = Vec::with_capacity(nblocks);
    let mut acc: Option<T> = None;
    for b in 0..nblocks {
        let hi = ((b + 1) * block).min(n);
        let total = data[hi - 1];
        carries.push(acc);
        acc = Some(match acc {
            None => total,
            Some(a) => op(a, total),
        });
    }
    // Pass 2: offset each block by its carry.
    let carries = &carries;
    let view = SlicePtr::new(data);
    rt.foreach_chunks(0..nblocks, Some(1), |bs| {
        for b in bs {
            let Some(c) = carries[b] else { continue };
            let lo = b * block;
            let hi = ((b + 1) * block).min(n);
            let chunk = unsafe { view.range_mut(lo..hi) };
            for v in chunk {
                *v = op(c, *v);
            }
        }
    });
}

/// Index of the first element satisfying `pred`, with adaptive early exit:
/// chunks claimed after a match at a lower index are skipped cheaply.
pub fn find_first<T, P>(rt: &Runtime, data: &[T], pred: P) -> Option<usize>
where
    T: Sync,
    P: Fn(&T) -> bool + Sync,
{
    let found = AtomicUsize::new(usize::MAX);
    let stop = AtomicBool::new(false);
    rt.foreach_chunks(0..data.len(), None, |r| {
        if stop.load(Ordering::Relaxed) && r.start > found.load(Ordering::Relaxed) {
            return; // everything here is after a known match
        }
        for i in r {
            if pred(&data[i]) {
                found.fetch_min(i, Ordering::AcqRel);
                stop.store(true, Ordering::Relaxed);
                return;
            }
        }
    });
    match found.load(Ordering::Acquire) {
        usize::MAX => None,
        i => Some(i),
    }
}

/// Index of a minimum element (ties broken arbitrarily).
pub fn min_element<T>(rt: &Runtime, data: &[T]) -> Option<usize>
where
    T: PartialOrd + Sync,
{
    if data.is_empty() {
        return None;
    }
    let best = rt.foreach_reduce(
        0..data.len(),
        None,
        || usize::MAX,
        |acc, i| {
            if *acc == usize::MAX || data[i] < data[*acc] {
                *acc = i;
            }
        },
        |a, b| match (a, b) {
            (usize::MAX, b) => b,
            (a, usize::MAX) => a,
            (a, b) => {
                if data[b] < data[a] {
                    b
                } else {
                    a
                }
            }
        },
    );
    Some(best)
}

const SORT_CUTOFF: usize = 2_048;

/// Parallel merge sort (fork-join divide and conquer via [`Ctx::join`]).
pub fn merge_sort<T>(rt: &Runtime, data: &mut [T])
where
    T: Ord + Copy + Send + Sync,
{
    if data.is_empty() {
        return;
    }
    let mut scratch = vec![data[0]; data.len()].into_boxed_slice();
    rt.scope(|ctx| {
        sort_rec(ctx, data, &mut scratch);
    });
}

fn sort_rec<T>(ctx: &mut Ctx<'_>, data: &mut [T], scratch: &mut [T])
where
    T: Ord + Copy + Send + Sync,
{
    let n = data.len();
    if n <= SORT_CUTOFF {
        data.sort_unstable();
        return;
    }
    let mid = n / 2;
    {
        let (dl, dr) = data.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        // Builder-lowered fork-join (DESIGN.md §5): the forked half rides
        // the fast lane at the default band, exactly like Ctx::join.
        ctx.task()
            .join(|c| sort_rec(c, dl, sl), |c| sort_rec(c, dr, sr));
    }
    // merge halves into scratch, then copy back
    {
        let (l, r) = data.split_at(mid);
        let (mut i, mut j, mut k) = (0, 0, 0);
        while i < l.len() && j < r.len() {
            if l[i] <= r[j] {
                scratch[k] = l[i];
                i += 1;
            } else {
                scratch[k] = r[j];
                j += 1;
            }
            k += 1;
        }
        while i < l.len() {
            scratch[k] = l[i];
            i += 1;
            k += 1;
        }
        while j < r.len() {
            scratch[k] = r[j];
            j += 1;
            k += 1;
        }
    }
    data.copy_from_slice(&scratch[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        Runtime::new(4)
    }

    #[test]
    fn for_each_mut_applies_everywhere() {
        let rt = rt();
        let mut v: Vec<u64> = (0..10_000).collect();
        for_each_mut(&rt, &mut v, |x| *x *= 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn transform_matches_map() {
        let rt = rt();
        let src: Vec<i64> = (0..5_000).collect();
        let mut dst = vec![0i64; 5_000];
        transform(&rt, &src, &mut dst, |&x| x * x - 1);
        assert!(src.iter().zip(&dst).all(|(&s, &d)| d == s * s - 1));
    }

    #[test]
    fn reduce_sums() {
        let rt = rt();
        let v: Vec<u64> = (1..=100_000).collect();
        let s: u64 = reduce(&rt, &v, || 0u64, |a, &x| *a += x, |a, b| a + b);
        assert_eq!(s, 100_000u64 * 100_001 / 2);
    }

    #[test]
    fn scan_matches_sequential() {
        let rt = rt();
        for n in [0usize, 1, 2, 100, 4_097, 50_000] {
            let mut v: Vec<u64> = (0..n as u64).map(|i| i % 7 + 1).collect();
            let mut expect = v.clone();
            for i in 1..expect.len() {
                expect[i] += expect[i - 1];
            }
            inclusive_scan(&rt, &mut v, |a, b| a + b);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn scan_non_commutative_op() {
        // Affine-map composition is associative but not commutative:
        // (p,q) ∘ (r,s) applies (p,q) first, then (r,s).
        let rt = rt();
        let compose =
            |a: (u64, u64), b: (u64, u64)| ((a.0 * b.0) % 1_000_003, (a.1 * b.0 + b.1) % 1_000_003);
        let n = 10_000;
        let mut v: Vec<(u64, u64)> = (0..n).map(|i| (1 + i % 5, 2 + i % 11)).collect();
        let mut expect = v.clone();
        for i in 1..expect.len() {
            expect[i] = compose(expect[i - 1], expect[i]);
        }
        inclusive_scan(&rt, &mut v, compose);
        assert_eq!(v, expect);
    }

    #[test]
    fn find_first_returns_lowest_index() {
        let rt = rt();
        let mut v = vec![0u8; 100_000];
        v[77_777] = 1;
        v[99_999] = 1;
        assert_eq!(find_first(&rt, &v, |&x| x == 1), Some(77_777));
        assert_eq!(find_first(&rt, &v, |&x| x == 9), None);
        assert_eq!(find_first(&rt, &Vec::<u8>::new(), |_| true), None);
    }

    #[test]
    fn min_element_finds_minimum() {
        let rt = rt();
        let v: Vec<i64> = (0..50_000)
            .map(|i| ((i * 37) % 1009) - ((i == 33_333) as i64 * 5_000))
            .collect();
        let idx = min_element(&rt, &v).unwrap();
        let min = v.iter().copied().min().unwrap();
        assert_eq!(v[idx], min);
        assert!(min_element::<i64>(&rt, &[]).is_none());
    }

    #[test]
    fn merge_sort_sorts() {
        let rt = rt();
        let mut v: Vec<u64> = (0..60_000)
            .map(|i| (i * 2_654_435_761u64) % 1_000_000)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        merge_sort(&rt, &mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn merge_sort_small_and_sorted_inputs() {
        let rt = rt();
        let mut v: Vec<u64> = vec![3, 1, 2];
        merge_sort(&rt, &mut v);
        assert_eq!(v, vec![1, 2, 3]);
        let mut v: Vec<u64> = (0..10_000).collect();
        merge_sort(&rt, &mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut v: Vec<u64> = vec![];
        merge_sort(&rt, &mut v);
        assert!(v.is_empty());
    }
}
