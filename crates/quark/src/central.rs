//! QUARK's own scheduler: dependence analysis at insertion time and a
//! *centralized* ready list all workers pull from.
//!
//! This reproduces the design of "QUARK Users' Guide: QUeueing And Runtime
//! for Kernels" (YarKhan, Kurzak, Dongarra, ICL-UT-11-02) that PLASMA used
//! on multicore: a master thread inserts tasks in sequential order; data
//! hazards (RAW/WAR/WAW on argument addresses) become graph edges; tasks
//! whose predecessor count reaches zero go to one global, mutex-protected
//! ready queue. The global queue is the scalability bottleneck the paper's
//! Fig. 2 exposes at fine tile sizes, so this implementation keeps it
//! faithfully central — including the task *window* that throttles
//! insertion, and priority tasks pushed to the queue's front.

use crate::{DepMode, QuarkDep};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xkaapi_core::{TaskQueue, WorkItem};

/// QUARK's centralized ready list, extracted so the identical structure
/// backs both [`CentralPool`]'s own scheduler and (via
/// [`QuarkCentralQueue`]) the queue layer of the `xkaapi-core` engine:
/// one global mutex-protected deque, priority pushes to the front, a
/// condvar for parked workers and a lock-operation counter (the contention
/// indicator reported next to Fig. 2).
pub struct CentralReadyList<T> {
    ready: Mutex<VecDeque<T>>,
    ready_cv: Condvar,
    ops: AtomicUsize,
}

impl<T> Default for CentralReadyList<T> {
    fn default() -> Self {
        CentralReadyList::new()
    }
}

impl<T> CentralReadyList<T> {
    /// Empty ready list.
    pub fn new() -> CentralReadyList<T> {
        CentralReadyList {
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            ops: AtomicUsize::new(0),
        }
    }

    /// Publish a ready item; `priority` puts it at the front (QUARK's
    /// priority flag). One lock acquisition, one wake-up.
    pub fn push(&self, item: T, priority: bool) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut q = self.ready.lock();
        if priority {
            q.push_front(item);
        } else {
            q.push_back(item);
        }
        self.ready_cv.notify_one();
    }

    /// Take the head item. One lock acquisition.
    pub fn pop(&self) -> Option<T> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.ready.lock().pop_front()
    }

    /// Remove the last item matching `pred` (reverse scan under the lock).
    pub fn take_last_matching(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut q = self.ready.lock();
        let pos = q.iter().rposition(pred)?;
        q.remove(pos)
    }

    /// Block up to `timeout` while the list is empty and `alive` holds.
    pub fn wait_for_work(&self, timeout: Duration, alive: impl Fn() -> bool) {
        let mut q = self.ready.lock();
        if q.is_empty() && alive() {
            self.ready_cv.wait_for(&mut q, timeout);
        }
    }

    /// Wake every parked worker (shutdown).
    pub fn notify_all(&self) {
        let _g = self.ready.lock();
        self.ready_cv.notify_all();
    }

    /// Racy emptiness snapshot.
    pub fn is_empty(&self) -> bool {
        self.ready.lock().is_empty()
    }

    /// Lock acquisitions so far (contention indicator).
    pub fn ops(&self) -> usize {
        self.ops.load(Ordering::Relaxed)
    }
}

/// [`TaskQueue`] adapter: run the X-Kaapi engine's ready work through
/// QUARK's [`CentralReadyList`] — every paradigm then schedules exactly the
/// way the centralized QUARK backend does. One ready list per priority
/// band: QUARK's boolean priority flag generalises to the engine's
/// [`WorkItem::band`], popped highest band first (FIFO within a band, so
/// attribute-free programs keep the historical order).
pub struct QuarkCentralQueue {
    bands: [CentralReadyList<WorkItem>; xkaapi_core::PRIORITY_BANDS],
}

impl Default for QuarkCentralQueue {
    fn default() -> Self {
        QuarkCentralQueue::new()
    }
}

impl QuarkCentralQueue {
    /// Empty queue; hand it to `xkaapi_core::Builder::task_queue`.
    pub fn new() -> QuarkCentralQueue {
        QuarkCentralQueue {
            bands: std::array::from_fn(|_| CentralReadyList::new()),
        }
    }

    /// Ready-list lock acquisitions so far, across all bands.
    pub fn ops(&self) -> usize {
        self.bands.iter().map(CentralReadyList::ops).sum()
    }
}

impl TaskQueue for QuarkCentralQueue {
    fn name(&self) -> &'static str {
        "central-quark"
    }

    fn centralized(&self) -> bool {
        true
    }

    fn push(&self, _worker: usize, item: WorkItem) -> Result<(), WorkItem> {
        self.bands[item.band()].push(item, false);
        Ok(())
    }

    fn pop(&self, _worker: usize) -> Option<WorkItem> {
        self.bands.iter().find_map(CentralReadyList::pop)
    }

    fn steal(&self, _thief: usize, _victim: usize) -> Option<WorkItem> {
        self.bands.iter().find_map(CentralReadyList::pop)
    }

    fn take(&self, _worker: usize, token: *mut ()) -> Option<WorkItem> {
        if token.is_null() {
            return None;
        }
        self.bands
            .iter()
            .find_map(|l| l.take_last_matching(|item| std::ptr::eq(item.token(), token)))
    }

    fn is_empty_hint(&self, _worker: usize) -> bool {
        self.bands.iter().all(CentralReadyList::is_empty)
    }
}

pub(crate) type TaskClosure = Box<dyn FnOnce(usize) + Send>;

struct Node {
    f: Mutex<Option<TaskClosure>>,
    npred: AtomicUsize,
    succ: Mutex<Vec<usize>>,
    done: AtomicBool,
    priority: bool,
}

struct LastAccess {
    last_writer: Option<usize>,
    readers: Vec<usize>,
}

pub(crate) struct CentralState {
    nodes: Mutex<Vec<Arc<Node>>>,
    /// The centralized ready list — the contention point under study.
    ready: CentralReadyList<usize>,
    /// address/key -> last access, for insertion-time dependence analysis.
    tracks: Mutex<HashMap<u64, LastAccess>>,
    inserted: AtomicUsize,
    completed: AtomicUsize,
    inflight_cv: Condvar,
    inflight_mx: Mutex<()>,
    window: usize,
    shutdown: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// The centralized-scheduler pool (QUARK's own design).
pub struct CentralPool {
    state: Arc<CentralState>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl CentralPool {
    /// `n` worker threads and an insertion window of `window` in-flight
    /// tasks (insertion blocks beyond it, as QUARK does to bound memory).
    pub fn new(n: usize, window: usize) -> CentralPool {
        assert!(n >= 1 && window >= 1);
        let state = Arc::new(CentralState {
            nodes: Mutex::new(Vec::new()),
            ready: CentralReadyList::new(),
            tracks: Mutex::new(HashMap::new()),
            inserted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            inflight_cv: Condvar::new(),
            inflight_mx: Mutex::new(()),
            window,
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        let mut threads = Vec::new();
        for i in 0..n {
            let st = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("quark-{i}"))
                    .spawn(move || worker_main(st, i))
                    .unwrap(),
            );
        }
        CentralPool { state, threads }
    }

    pub(crate) fn state(&self) -> &Arc<CentralState> {
        &self.state
    }

    /// Ready-queue lock acquisitions so far (contention indicator).
    pub fn queue_ops(&self) -> usize {
        self.state.ready.ops()
    }
}

impl Drop for CentralPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl CentralState {
    /// Insert a task (sequential master thread). Blocks while the window is
    /// full. Dependence analysis per QUARK: INPUT depends on the last
    /// writer; OUTPUT/INOUT depend on the last writer and all readers since.
    pub(crate) fn insert(&self, deps: &[QuarkDep], priority: bool, f: TaskClosure) {
        // Window throttle.
        {
            let mut g = self.inflight_mx.lock();
            while self.inserted.load(Ordering::Acquire) - self.completed.load(Ordering::Acquire)
                >= self.window
            {
                self.inflight_cv.wait(&mut g);
            }
        }

        let mut nodes = self.nodes.lock();
        let id = nodes.len();
        let node = Arc::new(Node {
            f: Mutex::new(Some(f)),
            npred: AtomicUsize::new(0),
            succ: Mutex::new(Vec::new()),
            done: AtomicBool::new(false),
            priority,
        });

        let mut preds: Vec<usize> = Vec::new();
        {
            let mut tracks = self.tracks.lock();
            for d in deps {
                let e = tracks.entry(d.key).or_insert(LastAccess {
                    last_writer: None,
                    readers: Vec::new(),
                });
                match d.mode {
                    DepMode::Input => {
                        preds.extend(e.last_writer);
                        e.readers.push(id);
                    }
                    DepMode::Output | DepMode::Inout => {
                        preds.extend(e.last_writer);
                        preds.extend(e.readers.iter().copied());
                        e.last_writer = Some(id);
                        e.readers.clear();
                    }
                    DepMode::Value | DepMode::Scratch => {}
                }
            }
        }
        preds.sort_unstable();
        preds.dedup();

        let mut npred = 0;
        for p in preds {
            // An edge counts only while the predecessor is incomplete; we
            // hold the nodes lock so completion of `p` cannot race the edge
            // registration (completions also take the nodes lock).
            let pn = &nodes[p];
            if !pn.done.load(Ordering::Acquire) {
                pn.succ.lock().push(id);
                npred += 1;
            }
        }
        node.npred.store(npred, Ordering::Release);
        nodes.push(Arc::clone(&node));
        self.inserted.fetch_add(1, Ordering::AcqRel);
        drop(nodes);

        if npred == 0 {
            self.push_ready(id, priority);
        }
    }

    fn push_ready(&self, id: usize, priority: bool) {
        self.ready.push(id, priority);
    }

    pub(crate) fn pop_ready(&self) -> Option<usize> {
        self.ready.pop()
    }

    /// Execute one ready task; returns false if none was available.
    pub(crate) fn execute_one(&self, widx: usize) -> bool {
        let Some(id) = self.pop_ready() else {
            return false;
        };
        let node = Arc::clone(&self.nodes.lock()[id]);
        let f = node.f.lock().take().expect("quark task executed twice");
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(widx))) {
            let mut slot = self.panic.lock();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        // Completion: mark, release successors.
        let succs = {
            let _nodes = self.nodes.lock();
            node.done.store(true, Ordering::Release);
            std::mem::take(&mut *node.succ.lock())
        };
        for s in succs {
            let sn = Arc::clone(&self.nodes.lock()[s]);
            if sn.npred.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.push_ready(s, sn.priority);
            }
        }
        self.completed.fetch_add(1, Ordering::AcqRel);
        {
            let _g = self.inflight_mx.lock();
            self.inflight_cv.notify_all();
        }
        true
    }

    /// Master-side barrier: help execute until everything inserted completed.
    pub(crate) fn barrier(&self, widx: usize) {
        while self.completed.load(Ordering::Acquire) < self.inserted.load(Ordering::Acquire) {
            if !self.execute_one(widx) {
                std::thread::yield_now();
            }
        }
    }

    pub(crate) fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().take()
    }

    /// Reset the dependence tracks and graph between sessions.
    pub(crate) fn reset(&self) {
        debug_assert_eq!(
            self.completed.load(Ordering::Acquire),
            self.inserted.load(Ordering::Acquire)
        );
        self.nodes.lock().clear();
        self.tracks.lock().clear();
        self.inserted.store(0, Ordering::Release);
        self.completed.store(0, Ordering::Release);
    }
}

fn worker_main(st: Arc<CentralState>, widx: usize) {
    loop {
        if st.shutdown.load(Ordering::Acquire) {
            return;
        }
        if st.execute_one(widx) {
            continue;
        }
        st.ready.wait_for_work(Duration::from_micros(500), || {
            !st.shutdown.load(Ordering::Acquire)
        });
    }
}
