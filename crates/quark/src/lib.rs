//! A QUARK-compatible task-insertion API with two interchangeable backends.
//!
//! The paper ports QUARK (PLASMA's runtime) on top of X-Kaapi to produce a
//! *binary compatible* QUARK library, then runs PLASMA's tiled Cholesky on
//! both runtimes. This crate reproduces that experiment structure:
//!
//! * one insertion API ([`Quark::session`] / [`QuarkCtx::insert_task`]) in
//!   the style of `QUARK_Insert_Task` — sequential insertion with
//!   INPUT/OUTPUT/INOUT argument modes keyed by "addresses";
//! * backend [`Backend::Centralized`] — QUARK's own scheduler (insertion-
//!   time dependence analysis + one global ready list, see
//!   [`central::CentralPool`]);
//! * backend [`Backend::OnXkaapi`] — the port onto `xkaapi-core`: every
//!   `insert_task` becomes a data-flow spawn whose keyed regions carry the
//!   dependences, scheduled by distributed work stealing.
//!
//! The same algorithm (e.g. `xkaapi-linalg`'s tiled Cholesky) runs unchanged
//! on both, which is exactly what Fig. 2 compares.

#![warn(missing_docs)]

pub mod central;

pub use central::{CentralReadyList, QuarkCentralQueue};

use central::CentralPool;
use std::sync::Arc;
use xkaapi_core::{Access, AccessMode, Ctx, Priority, Region, Runtime, Shared};

/// Argument access mode of a QUARK task (the `INPUT`/`OUTPUT`/`INOUT`/
/// `VALUE`/`SCRATCH` flags of `QUARK_Insert_Task`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepMode {
    /// Read-only argument.
    Input,
    /// Written argument (treated as exclusive; no renaming).
    Output,
    /// Read-written argument.
    Inout,
    /// By-value argument: no dependence.
    Value,
    /// Per-thread temporary: no dependence.
    Scratch,
}

/// One dependence declaration: an address-like key plus its access mode.
///
/// Keys play the role of argument addresses in QUARK's hash-based
/// dependence analysis; `xkaapi-linalg` derives them from tile coordinates.
#[derive(Clone, Copy, Debug)]
pub struct QuarkDep {
    /// Address-like dependence key.
    pub key: u64,
    /// Access mode.
    pub mode: DepMode,
}

impl QuarkDep {
    /// Read dependence on `key`.
    pub fn input(key: u64) -> QuarkDep {
        QuarkDep {
            key,
            mode: DepMode::Input,
        }
    }

    /// Write dependence on `key`.
    pub fn output(key: u64) -> QuarkDep {
        QuarkDep {
            key,
            mode: DepMode::Output,
        }
    }

    /// Read-write dependence on `key`.
    pub fn inout(key: u64) -> QuarkDep {
        QuarkDep {
            key,
            mode: DepMode::Inout,
        }
    }
}

/// Which runtime executes the inserted tasks.
pub enum Backend {
    /// QUARK's own centralized-list scheduler with `threads` workers and an
    /// insertion `window`.
    Centralized {
        /// Worker threads.
        threads: usize,
        /// Maximum in-flight tasks before insertion blocks.
        window: usize,
    },
    /// The X-Kaapi port: tasks become data-flow spawns on this runtime.
    OnXkaapi(Arc<Runtime>),
}

/// A QUARK handle: create once, run sessions of inserted tasks.
pub struct Quark {
    imp: Impl,
}

enum Impl {
    Central(CentralPool),
    Kaapi(Arc<Runtime>),
}

impl Quark {
    /// Create a QUARK with the given backend.
    pub fn new(backend: Backend) -> Quark {
        match backend {
            Backend::Centralized { threads, window } => Quark {
                imp: Impl::Central(CentralPool::new(threads, window)),
            },
            Backend::OnXkaapi(rt) => Quark {
                imp: Impl::Kaapi(rt),
            },
        }
    }

    /// Convenience: centralized backend with QUARK's spirit defaults.
    pub fn new_centralized(threads: usize) -> Quark {
        Quark::new(Backend::Centralized {
            threads,
            window: 5000,
        })
    }

    /// Convenience: X-Kaapi backend.
    pub fn new_on_xkaapi(rt: Arc<Runtime>) -> Quark {
        Quark::new(Backend::OnXkaapi(rt))
    }

    /// Is this the centralized (original QUARK) backend?
    pub fn is_centralized(&self) -> bool {
        matches!(self.imp, Impl::Central(_))
    }

    /// Ready-queue lock operations (centralized backend only) — the
    /// contention indicator reported next to Fig. 2.
    pub fn queue_ops(&self) -> Option<usize> {
        match &self.imp {
            Impl::Central(p) => Some(p.queue_ops()),
            Impl::Kaapi(_) => None,
        }
    }

    /// Run an insertion session: `f` inserts tasks through the [`QuarkCtx`];
    /// an implicit barrier at the end waits for everything. Insertion order
    /// defines the sequential semantics, as in QUARK.
    ///
    /// `'scope` brands the session (rayon-style): inserted tasks may borrow
    /// anything that outlives the `session` call.
    pub fn session<'scope, R: Send>(
        &self,
        f: impl FnOnce(&mut QuarkCtx<'_, 'scope>) -> R + Send,
    ) -> R {
        match &self.imp {
            Impl::Central(pool) => {
                let st = pool.state();
                let mut ctx = QuarkCtx {
                    imp: CtxImpl::Central(st),
                };
                let r = f(&mut ctx);
                st.barrier(usize::MAX);
                let panic = st.take_panic();
                st.reset();
                if let Some(p) = panic {
                    std::panic::resume_unwind(p);
                }
                r
            }
            Impl::Kaapi(rt) => rt.scope(|ctx| {
                // One synthetic handle provides the key space: dependences
                // are keyed regions of this handle.
                let space: Shared<()> = Shared::new(());
                let space_id = space.id();
                let mut qctx = QuarkCtx {
                    imp: CtxImpl::Kaapi {
                        ctx,
                        space_id,
                        _space: space,
                    },
                };
                let r = f(&mut qctx);
                if let CtxImpl::Kaapi { ctx, .. } = &mut qctx.imp {
                    ctx.sync();
                }
                r
            }),
        }
    }
}

enum CtxImpl<'a, 'scope> {
    Central(&'a Arc<central::CentralState>),
    Kaapi {
        ctx: &'a mut Ctx<'scope>,
        space_id: xkaapi_core::HandleId,
        _space: Shared<()>,
    },
}

/// Insertion context of a QUARK session.
pub struct QuarkCtx<'a, 'scope> {
    imp: CtxImpl<'a, 'scope>,
}

impl<'a, 'scope> QuarkCtx<'a, 'scope> {
    /// Insert a task (the `QUARK_Insert_Task` analogue). `deps` declare the
    /// argument keys and modes; `f` receives a worker index (for per-worker
    /// scratch) and runs when its dependences are satisfied.
    pub fn insert_task<F>(&mut self, deps: impl IntoIterator<Item = QuarkDep>, f: F)
    where
        F: FnOnce(usize) + Send + 'scope,
    {
        self.insert_task_prio(deps, false, f);
    }

    /// Insert a task with the QUARK priority flag. The centralized backend
    /// puts it at the front of the ready list; the X-Kaapi backend lowers
    /// it to [`Priority::High`] through the task builder, so the engine's
    /// banded queues, ready lists and steal scans drain it before
    /// normal-priority work — the same flag, honoured by both runtimes.
    pub fn insert_task_prio<F>(
        &mut self,
        deps: impl IntoIterator<Item = QuarkDep>,
        priority: bool,
        f: F,
    ) where
        F: FnOnce(usize) + Send + 'scope,
    {
        match &mut self.imp {
            CtxImpl::Central(st) => {
                let deps: Vec<QuarkDep> = deps.into_iter().collect();
                let boxed: Box<dyn FnOnce(usize) + Send + 'scope> = Box::new(f);
                // Safety: the session barrier runs before `session` returns,
                // so every task completes while `'scope` data is live.
                let boxed: central::TaskClosure = unsafe { std::mem::transmute(boxed) };
                st.insert(&deps, priority, boxed);
            }
            CtxImpl::Kaapi { ctx, space_id, .. } => {
                let accesses: Vec<Access> = deps
                    .into_iter()
                    .filter_map(|d| {
                        let mode = match d.mode {
                            DepMode::Input => AccessMode::Read,
                            DepMode::Output => AccessMode::Write,
                            DepMode::Inout => AccessMode::Exclusive,
                            DepMode::Value | DepMode::Scratch => return None,
                        };
                        Some(Access::new(*space_id, Region::Key(d.key), mode))
                    })
                    .collect();
                let prio = if priority {
                    Priority::High
                } else {
                    Priority::Normal
                };
                ctx.task()
                    .accesses(accesses)
                    .priority(prio)
                    .spawn(move |c| f(c.worker_index()));
            }
        }
    }

    /// Wait until every task inserted so far completed
    /// (`QUARK_Barrier`). The inserting thread helps execute.
    pub fn barrier(&mut self) {
        match &mut self.imp {
            CtxImpl::Central(st) => st.barrier(usize::MAX),
            CtxImpl::Kaapi { ctx, .. } => ctx.sync(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn backends() -> Vec<Quark> {
        vec![
            Quark::new_centralized(3),
            Quark::new_on_xkaapi(Arc::new(Runtime::new(3))),
        ]
    }

    #[test]
    fn tasks_all_execute() {
        for q in backends() {
            let count = AtomicUsize::new(0);
            q.session(|ctx| {
                for _ in 0..100 {
                    ctx.insert_task([], |_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn raw_dependence_orders() {
        for q in backends() {
            let log = Mutex::new(Vec::new());
            q.session(|ctx| {
                ctx.insert_task([QuarkDep::output(1)], |_| log.lock().push("write"));
                ctx.insert_task([QuarkDep::input(1)], |_| log.lock().push("read1"));
                ctx.insert_task([QuarkDep::input(1)], |_| log.lock().push("read2"));
                ctx.insert_task([QuarkDep::output(1)], |_| log.lock().push("write2"));
            });
            let log = log.into_inner();
            assert_eq!(log[0], "write");
            assert_eq!(log[3], "write2");
            assert!(log[1].starts_with("read") && log[2].starts_with("read"));
        }
    }

    #[test]
    fn chain_through_keys_is_sequential() {
        for q in backends() {
            let v = Mutex::new(0u64);
            q.session(|ctx| {
                for i in 0..50u64 {
                    let v = &v;
                    ctx.insert_task([QuarkDep::inout(7)], move |_| {
                        let mut g = v.lock();
                        assert_eq!(*g, i);
                        *g += 1;
                    });
                }
            });
            assert_eq!(*v.lock(), 50);
        }
    }

    #[test]
    fn independent_keys_run_unordered() {
        for q in backends() {
            let sum = AtomicUsize::new(0);
            q.session(|ctx| {
                let sum = &sum;
                for k in 0..64u64 {
                    ctx.insert_task([QuarkDep::output(k)], move |_| {
                        sum.fetch_add(k as usize, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), (0..64).sum::<usize>());
        }
    }

    #[test]
    fn explicit_barrier_divides_phases() {
        for q in backends() {
            let phase1 = AtomicUsize::new(0);
            let saw = AtomicUsize::new(999);
            q.session(|ctx| {
                for _ in 0..20 {
                    ctx.insert_task([], |_| {
                        phase1.fetch_add(1, Ordering::Relaxed);
                    });
                }
                ctx.barrier();
                saw.store(phase1.load(Ordering::Relaxed), Ordering::Relaxed);
            });
            assert_eq!(saw.load(Ordering::Relaxed), 20);
        }
    }

    #[test]
    fn mixed_graph_matches_sequential_reference() {
        // Random-ish DAG over 8 keys; both backends must produce the
        // sequential-order result.
        for q in backends() {
            let cells: Vec<Mutex<u64>> = (0..8).map(|_| Mutex::new(1)).collect();
            let mut reference: Vec<u64> = vec![1; 8];
            let mut state = 0x1234_5678u64;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut ops = Vec::new();
            for _ in 0..200 {
                let a = (rng() % 8) as usize;
                let b = (rng() % 8) as usize;
                let c = rng() % 5 + 1;
                reference[a] = reference[a].wrapping_add(c.wrapping_mul(reference[b]));
                ops.push((a, b, c));
            }
            q.session(|ctx| {
                for &(a, b, c) in &ops {
                    let cells = &cells;
                    if a == b {
                        ctx.insert_task([QuarkDep::inout(a as u64)], move |_| {
                            let mut ga = cells[a].lock();
                            let v = *ga;
                            *ga = v.wrapping_add(c.wrapping_mul(v));
                        });
                    } else {
                        ctx.insert_task(
                            [QuarkDep::inout(a as u64), QuarkDep::input(b as u64)],
                            move |_| {
                                let vb = *cells[b].lock();
                                let mut ga = cells[a].lock();
                                *ga = ga.wrapping_add(c.wrapping_mul(vb));
                            },
                        );
                    }
                }
            });
            for (i, c) in cells.iter().enumerate() {
                assert_eq!(*c.lock(), reference[i], "cell {i}");
            }
        }
    }

    #[test]
    fn sessions_are_reusable() {
        for q in backends() {
            for round in 0..5usize {
                let hits = AtomicUsize::new(0);
                q.session(|ctx| {
                    let hits = &hits;
                    for _ in 0..=round {
                        ctx.insert_task([], |_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                assert_eq!(hits.load(Ordering::Relaxed), round + 1);
            }
        }
    }

    #[test]
    fn centralized_counts_queue_ops() {
        let q = Quark::new_centralized(2);
        q.session(|ctx| {
            for _ in 0..50 {
                ctx.insert_task([], |_| {});
            }
        });
        assert!(q.queue_ops().unwrap() >= 100, "push + pop per task");
        let q2 = Quark::new_on_xkaapi(Arc::new(Runtime::new(2)));
        assert!(q2.queue_ops().is_none());
    }

    #[test]
    fn window_blocks_insertion() {
        let q = Quark::new(Backend::Centralized {
            threads: 2,
            window: 8,
        });
        let max_inflight = AtomicUsize::new(0);
        let running = AtomicUsize::new(0);
        q.session(|ctx| {
            let (max_inflight, running) = (&max_inflight, &running);
            for _ in 0..100 {
                ctx.insert_task([], move |_| {
                    let cur = running.fetch_add(1, Ordering::SeqCst) + 1;
                    max_inflight.fetch_max(cur, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        // window 8 bounds concurrency regardless of worker count
        assert!(max_inflight.load(Ordering::SeqCst) <= 8);
    }

    #[test]
    fn value_and_scratch_create_no_deps() {
        for q in backends() {
            let order = Mutex::new(Vec::new());
            q.session(|ctx| {
                let order = &order;
                ctx.insert_task(
                    [QuarkDep {
                        key: 1,
                        mode: DepMode::Value,
                    }],
                    move |_| order.lock().push(0usize),
                );
                ctx.insert_task(
                    [QuarkDep {
                        key: 1,
                        mode: DepMode::Scratch,
                    }],
                    move |_| order.lock().push(1usize),
                );
            });
            let mut o = order.into_inner();
            o.sort_unstable();
            assert_eq!(o, vec![0, 1]);
        }
    }
}
