//! Analytic fork-join models for the Fig. 1 reproduction.
//!
//! The fib(35) benchmark creates ~2.4·10⁷ tasks — too many for an explicit
//! DAG — but its behaviour under each runtime is governed by two well-known
//! regimes, which we model with constants *calibrated from real 1-core
//! measurements* of our own runtime implementations (see the fig1 harness):
//!
//! * **distributed work stealing** (X-Kaapi, Cilk-like, TBB-like):
//!   the Blumofe–Leiserson bound `T_P ≈ T₁/P + c·T_∞`; fib has a huge
//!   average parallelism so the `T₁/P` term dominates and scaling is
//!   near-linear — exactly the paper's table;
//! * **centralized task pool** (libGOMP): every deferred task goes through
//!   one lock whose hold time grows with the number of contenders
//!   (cache-line bouncing); once the offered task rate exceeds the lock's
//!   service rate, *the queue serializes the whole execution* and adding
//!   cores makes it slower — the catastrophic column of Fig. 1
//!   (51 s at 8 cores vs 2.4 s at 1, stopped after 5 min at ≥32).

/// Calibrated constants of a fork-join runtime.
#[derive(Clone, Copy, Debug)]
pub struct ForkJoinModel {
    /// Pure single-core compute time of the benchmark (no task overhead), ns.
    pub t_seq_ns: u64,
    /// Number of tasks the benchmark creates.
    pub tasks: u64,
    /// Per-task overhead on the creating/executing core, ns.
    pub task_overhead_ns: f64,
    /// Steal cost coefficient (ns per steal, times critical-path steals).
    pub steal_ns: f64,
    /// Critical-path length in tasks (fib depth ≈ n).
    pub depth: u64,
}

impl ForkJoinModel {
    /// `T₁`: serial execution with per-task overhead.
    pub fn t1_ns(&self) -> f64 {
        self.t_seq_ns as f64 + self.tasks as f64 * self.task_overhead_ns
    }

    /// Work-stealing execution time at `p` cores (Blumofe–Leiserson with a
    /// calibrated steal constant).
    pub fn ws_time_ns(&self, p: usize) -> f64 {
        if p <= 1 {
            return self.t1_ns();
        }
        // T_P = T1/P + c_steal · T_inf ; T_inf ≈ depth · per-task path cost
        let t_inf = self.depth as f64 * (self.task_overhead_ns + 60.0);
        self.t1_ns() / p as f64 + self.steal_ns / 100.0 * t_inf
    }

    /// Slowdown of the 1-core run against the sequential program — the
    /// first row of Fig. 1.
    pub fn slowdown_1core(&self) -> f64 {
        self.t1_ns() / self.t_seq_ns as f64
    }
}

/// Centralized-pool model (the libGOMP column).
#[derive(Clone, Copy, Debug)]
pub struct CentralPoolModel {
    /// Pure single-core compute time, ns.
    pub t_seq_ns: u64,
    /// Number of tasks.
    pub tasks: u64,
    /// Uncontended lock + queue service time per deferred task, ns.
    pub queue_ns: f64,
    /// Contention growth per additional contender (cache-line bouncing):
    /// effective service ≈ `queue_ns · (1 + beta·(p−1))`.
    pub beta: f64,
    /// Fraction of tasks that are deferred (the rest run inline through
    /// the serial-fallback/throttle paths).
    pub deferred_fraction: f64,
    /// Per-task overhead of the inline path, ns.
    pub inline_overhead_ns: f64,
}

impl CentralPoolModel {
    /// Execution time at `p` cores.
    pub fn time_ns(&self, p: usize) -> f64 {
        if p <= 1 {
            // libGOMP's 1-thread artifact: task creation degenerates to a
            // function call.
            return self.t_seq_ns as f64 + self.tasks as f64 * self.inline_overhead_ns;
        }
        let deferred = self.tasks as f64 * self.deferred_fraction;
        let service = self.queue_ns * (1.0 + self.beta * (p as f64 - 1.0));
        // Two queue passes per deferred task (push + pop), fully serialized;
        // compute can overlap on other cores but the lock is the bottleneck
        // once 2·deferred·service > T1/p.
        let lock_time = 2.0 * deferred * service;
        let compute = self.t_seq_ns as f64 / p as f64
            + self.tasks as f64 * self.inline_overhead_ns / p as f64;
        lock_time.max(compute) + 0.1 * lock_time.min(compute)
    }
}

/// Number of calls of the naive doubly-recursive Fibonacci (task count of
/// the Fig. 1 program).
pub fn fib_call_count(n: u64) -> u64 {
    // calls(n) = 2·fib(n+1) − 1
    let mut a = 0u64; // fib(0)
    let mut b = 1u64; // fib(1)
    for _ in 0..n + 1 {
        let c = a + b;
        a = b;
        b = c;
    }
    2 * a - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_call_counts() {
        assert_eq!(fib_call_count(0), 1);
        assert_eq!(fib_call_count(1), 1);
        assert_eq!(fib_call_count(2), 3);
        assert_eq!(fib_call_count(3), 5);
        assert_eq!(fib_call_count(35), 2 * 14_930_352 - 1);
    }

    #[test]
    fn ws_model_scales_nearly_linearly() {
        let m = ForkJoinModel {
            t_seq_ns: 91_000_000, // the paper's 0.091 s
            tasks: fib_call_count(35),
            task_overhead_ns: 25.0,
            steal_ns: 250.0,
            depth: 35,
        };
        let t1 = m.ws_time_ns(1);
        let t8 = m.ws_time_ns(8);
        let t48 = m.ws_time_ns(48);
        assert!(t1 / t8 > 7.0, "8-core scaling {:.2}", t1 / t8);
        assert!(t1 / t48 > 38.0, "48-core scaling {:.2}", t1 / t48);
        assert!(m.slowdown_1core() > 4.0); // overhead slowdown, Fig 1 row 1
    }

    #[test]
    fn central_pool_gets_worse_with_cores() {
        let m = CentralPoolModel {
            t_seq_ns: 91_000_000,
            tasks: fib_call_count(35),
            queue_ns: 120.0,
            beta: 0.8,
            deferred_fraction: 0.35,
            inline_overhead_ns: 90.0,
        };
        let t1 = m.time_ns(1);
        let t8 = m.time_ns(8);
        let t32 = m.time_ns(32);
        assert!(t8 > t1, "8 cores must be slower than 1 ({t8} vs {t1})");
        assert!(t32 > t8, "collapse worsens with cores");
        // the paper reports ~51 s at 8 cores vs 2.43 s at 1
        assert!(t8 / t1 > 5.0, "collapse ratio {:.1}", t8 / t1);
    }

    #[test]
    fn lean_runtime_has_lower_slowdown() {
        let kaapi = ForkJoinModel {
            t_seq_ns: 91_000_000,
            tasks: fib_call_count(35),
            task_overhead_ns: 25.0,
            steal_ns: 250.0,
            depth: 35,
        };
        let tbb = ForkJoinModel {
            task_overhead_ns: 95.0,
            ..kaapi
        };
        assert!(tbb.slowdown_1core() > kaapi.slowdown_1core() * 2.0);
    }
}
