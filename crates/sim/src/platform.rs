//! Virtual platform model.
//!
//! The build host exposes a single core (see DESIGN.md §1), so the paper's
//! 48-core AMD Magny-Cours (8 NUMA nodes × 6 cores, 2.2 GHz, shared L3 per
//! node) is modelled here: core count, node topology and a two-level
//! memory-bandwidth ceiling (per-node and machine-wide). Task durations
//! follow a simple roofline: `duration = cpu_time + bytes / bw_share`,
//! where the bandwidth share divides the node/machine ceilings among the
//! memory-hungry tasks running concurrently — enough to reproduce *where
//! speedup curves bend*, which is what the figures compare.

/// A simulated multicore machine.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Total cores.
    pub cores: usize,
    /// Cores per NUMA node (sharing a bandwidth domain / L3).
    pub cores_per_node: usize,
    /// Sustainable memory bandwidth per NUMA node, bytes per second.
    pub node_bw: f64,
    /// Machine-wide memory bandwidth ceiling, bytes per second.
    pub machine_bw: f64,
}

impl Platform {
    /// The paper's evaluation platform: AMD Magny-Cours, 8 nodes × 6 cores.
    /// Bandwidth figures are representative of that generation
    /// (≈ 10 GB/s sustained per node, ≈ 60 GB/s machine-wide).
    pub fn magny_cours(cores: usize) -> Platform {
        assert!((1..=48).contains(&cores));
        Platform {
            cores,
            cores_per_node: 6,
            node_bw: 10.0e9,
            machine_bw: 60.0e9,
        }
    }

    /// NUMA node of a core.
    #[inline]
    pub fn node_of(&self, core: usize) -> usize {
        core / self.cores_per_node
    }

    /// Number of (partially) populated nodes.
    pub fn nodes(&self) -> usize {
        self.cores.div_ceil(self.cores_per_node)
    }

    /// Memory time for `bytes` when `active_on_node` / `active_total`
    /// memory-bound tasks share the domains (including the one asking).
    pub fn mem_ns(&self, bytes: u64, active_on_node: usize, active_total: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let node_share = self.node_bw / active_on_node.max(1) as f64;
        let machine_share = self.machine_bw / active_total.max(1) as f64;
        let bw = node_share.min(machine_share);
        (bytes as f64 / bw * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magny_cours_topology() {
        let p = Platform::magny_cours(48);
        assert_eq!(p.nodes(), 8);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(5), 0);
        assert_eq!(p.node_of(6), 1);
        assert_eq!(p.node_of(47), 7);
    }

    #[test]
    fn mem_time_scales_with_contention() {
        let p = Platform::magny_cours(48);
        let solo = p.mem_ns(1 << 30, 1, 1);
        let six = p.mem_ns(1 << 30, 6, 6);
        assert!(six >= solo * 5, "node sharing must slow memory traffic");
        // machine ceiling binds when all 48 stream
        let all = p.mem_ns(1 << 30, 6, 48);
        assert!(all > six, "machine ceiling tighter than node share of 6");
        assert_eq!(p.mem_ns(0, 1, 1), 0);
    }
}
