//! Virtual platform model.
//!
//! The build host exposes a single core (see DESIGN.md §1), so the paper's
//! 48-core AMD Magny-Cours (8 NUMA nodes × 6 cores, 2.2 GHz, shared L3 per
//! node) is modelled here: core count, node topology and a two-level
//! memory-bandwidth ceiling (per-node and machine-wide). Task durations
//! follow a simple roofline: `duration = cpu_time + bytes / bw_share`,
//! where the bandwidth share divides the node/machine ceilings among the
//! memory-hungry tasks running concurrently — enough to reproduce *where
//! speedup curves bend*, which is what the figures compare.
//!
//! The platform's NUMA shape is exported to the real engine through the
//! *shared* topology representation ([`Platform::distance_matrix`] /
//! [`Platform::topology`] build `xkaapi_core::topology` values), so a
//! victim-selection policy studied on this 48-core model and one running
//! on a real host agree on the distance matrix they consult.

use xkaapi_core::topology::{DistanceMatrix, Topology};

/// A simulated multicore machine.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Total cores.
    pub cores: usize,
    /// Cores per NUMA node (sharing a bandwidth domain / L3).
    pub cores_per_node: usize,
    /// Sustainable memory bandwidth per NUMA node, bytes per second.
    pub node_bw: f64,
    /// Machine-wide memory bandwidth ceiling, bytes per second.
    pub machine_bw: f64,
}

impl Platform {
    /// The paper's evaluation platform: AMD Magny-Cours, 8 nodes × 6 cores.
    /// Bandwidth figures are representative of that generation
    /// (≈ 10 GB/s sustained per node, ≈ 60 GB/s machine-wide).
    pub fn magny_cours(cores: usize) -> Platform {
        assert!((1..=48).contains(&cores));
        Platform {
            cores,
            cores_per_node: 6,
            node_bw: 10.0e9,
            machine_bw: 60.0e9,
        }
    }

    /// NUMA node of a core.
    #[inline]
    pub fn node_of(&self, core: usize) -> usize {
        core / self.cores_per_node
    }

    /// Number of (partially) populated nodes.
    pub fn nodes(&self) -> usize {
        self.cores.div_ceil(self.cores_per_node)
    }

    /// Node distance matrix of this platform in the engine's shared
    /// representation (SLIT convention: 10 local, 20 remote — the
    /// Magny-Cours HT fabric is a flat remote mesh at this granularity).
    pub fn distance_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::two_level(self.nodes(), DistanceMatrix::REMOTE)
    }

    /// Engine [`Topology`] of this platform: one worker per core, workers
    /// mapped onto nodes exactly as [`Platform::node_of`] maps cores. Pass
    /// it to `xkaapi_core::Builder::topology` to run the real engine
    /// against the simulated machine shape.
    pub fn topology(&self) -> Topology {
        let worker_node = (0..self.cores).map(|c| self.node_of(c)).collect();
        Topology::with_distances(worker_node, self.distance_matrix())
    }

    /// Memory time for `bytes` when `active_on_node` / `active_total`
    /// memory-bound tasks share the domains (including the one asking).
    pub fn mem_ns(&self, bytes: u64, active_on_node: usize, active_total: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let node_share = self.node_bw / active_on_node.max(1) as f64;
        let machine_share = self.machine_bw / active_total.max(1) as f64;
        let bw = node_share.min(machine_share);
        (bytes as f64 / bw * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magny_cours_topology() {
        let p = Platform::magny_cours(48);
        assert_eq!(p.nodes(), 8);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(5), 0);
        assert_eq!(p.node_of(6), 1);
        assert_eq!(p.node_of(47), 7);
    }

    #[test]
    fn mem_time_scales_with_contention() {
        let p = Platform::magny_cours(48);
        let solo = p.mem_ns(1 << 30, 1, 1);
        let six = p.mem_ns(1 << 30, 6, 6);
        assert!(six >= solo * 5, "node sharing must slow memory traffic");
        // machine ceiling binds when all 48 stream
        let all = p.mem_ns(1 << 30, 6, 48);
        assert!(all > six, "machine ceiling tighter than node share of 6");
        assert_eq!(p.mem_ns(0, 1, 1), 0);
    }

    /// The simulator's platform model and the engine's topology must agree
    /// on the machine shape — they share one distance-matrix type.
    #[test]
    fn engine_topology_matches_platform() {
        let p = Platform::magny_cours(48);
        let t = p.topology();
        assert_eq!(t.workers(), 48);
        assert_eq!(t.nodes(), p.nodes());
        for c in 0..48 {
            assert_eq!(t.node_of(c), p.node_of(c), "core {c}");
        }
        let d = p.distance_matrix();
        assert_eq!(d.get(0, 0), DistanceMatrix::LOCAL);
        assert_eq!(d.get(0, 7), DistanceMatrix::REMOTE);
        assert_eq!(t.distance(0, 5), DistanceMatrix::LOCAL);
        assert_eq!(t.distance(0, 47), DistanceMatrix::REMOTE);
        // Partial machines keep the same shape.
        let t20 = Platform::magny_cours(20).topology();
        assert_eq!(t20.nodes(), 4);
        assert_eq!(t20.workers_on_node(3), &[18, 19]);
    }
}
