//! Virtual-time simulation of parallel-loop scheduling — the machinery
//! behind Fig. 3 and Fig. 6.
//!
//! A [`LoopWorkload`] is a set of iterations with (possibly jittered)
//! per-iteration CPU cost and memory traffic. Four policies mirror the
//! compared schedulers: OpenMP `static`, OpenMP `dynamic,chunk` (shared
//! counter with serialized access), OpenMP `guided`, and the X-Kaapi
//! adaptive foreach (reserved slices + on-demand splitting, no shared
//! counter).

use crate::platform::Platform;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A parallel loop to schedule.
#[derive(Clone, Debug)]
pub struct LoopWorkload {
    /// Per-iteration CPU cost in nanoseconds.
    pub iter_work_ns: Vec<u64>,
    /// Memory traffic per iteration, bytes.
    pub bytes_per_iter: u64,
}

impl LoopWorkload {
    /// Uniform workload.
    pub fn uniform(n: usize, work_ns: u64, bytes_per_iter: u64) -> LoopWorkload {
        LoopWorkload {
            iter_work_ns: vec![work_ns; n],
            bytes_per_iter,
        }
    }

    /// Jittered workload: cost in `[base·(1−jitter), base·(1+jitter)]`,
    /// deterministic in `seed`. Models the element-dependent cost of the
    /// EPX loops (material state, plastic vs elastic elements…).
    pub fn jittered(
        n: usize,
        base_ns: u64,
        jitter: f64,
        bytes_per_iter: u64,
        seed: u64,
    ) -> LoopWorkload {
        assert!((0.0..1.0).contains(&jitter));
        let mut s = seed | 1;
        let iter_work_ns = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let u = (s >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                let f = 1.0 - jitter + 2.0 * jitter * u;
                (base_ns as f64 * f) as u64
            })
            .collect();
        LoopWorkload {
            iter_work_ns,
            bytes_per_iter,
        }
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.iter_work_ns.len()
    }

    /// Is the loop empty?
    pub fn is_empty(&self) -> bool {
        self.iter_work_ns.is_empty()
    }

    /// Total CPU work.
    pub fn total_work_ns(&self) -> u64 {
        self.iter_work_ns.iter().sum()
    }

    fn range_work(&self, r: std::ops::Range<usize>) -> u64 {
        self.iter_work_ns[r].iter().sum()
    }
}

/// Loop scheduling policy.
#[derive(Clone, Debug)]
pub enum LoopPolicy {
    /// One contiguous block per core (OpenMP `static`).
    OmpStatic,
    /// Shared-counter chunks (OpenMP `dynamic,chunk`); each claim
    /// serializes on the counter for `counter_ns`.
    OmpDynamic {
        /// Chunk size.
        chunk: usize,
        /// Serialized counter access cost.
        counter_ns: u64,
    },
    /// Guided: chunks of `max(remaining/2p, min)`, shared counter.
    OmpGuided {
        /// Minimum chunk.
        min: usize,
        /// Serialized counter access cost.
        counter_ns: u64,
    },
    /// X-Kaapi adaptive foreach: reserved slice per core, idle cores split
    /// the largest remaining slice (k+1-way with aggregation), paying
    /// `steal_ns` per successful split; no shared counter.
    KaapiAdaptive {
        /// Chunk grain claimed from the local slice front.
        grain: usize,
        /// Cost of one successful split (steal).
        steal_ns: u64,
    },
}

/// Result of a loop simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoopRun {
    /// Virtual makespan, ns.
    pub makespan_ns: u64,
    /// Chunks executed.
    pub chunks: u64,
    /// Splits/steals performed (adaptive policy).
    pub steals: u64,
}

/// Effective duration of a chunk when all `active` cores stream memory.
fn chunk_duration(
    platform: &Platform,
    w: &LoopWorkload,
    work_ns: u64,
    iters: usize,
    active: usize,
) -> u64 {
    let bytes = w.bytes_per_iter * iters as u64;
    let per_node = active.min(platform.cores_per_node);
    work_ns + platform.mem_ns(bytes, per_node, active)
}

/// Simulate the loop under the given policy.
pub fn simulate_loop(platform: &Platform, w: &LoopWorkload, policy: &LoopPolicy) -> LoopRun {
    let p = platform.cores;
    let n = w.len();
    let mut run = LoopRun::default();
    if n == 0 {
        return run;
    }
    if p == 1 {
        run.makespan_ns = chunk_duration(platform, w, w.total_work_ns(), n, 1);
        run.chunks = 1;
        return run;
    }
    match policy {
        LoopPolicy::OmpStatic => {
            let mut makespan = 0u64;
            for c in 0..p {
                let lo = n * c / p;
                let hi = n * (c + 1) / p;
                if lo >= hi {
                    continue;
                }
                let d = chunk_duration(platform, w, w.range_work(lo..hi), hi - lo, p);
                makespan = makespan.max(d);
                run.chunks += 1;
            }
            run.makespan_ns = makespan;
        }
        LoopPolicy::OmpDynamic { chunk, counter_ns }
        | LoopPolicy::OmpGuided {
            min: chunk,
            counter_ns,
        } => {
            let guided = matches!(policy, LoopPolicy::OmpGuided { .. });
            let chunk = (*chunk).max(1);
            // Greedy event simulation: cores claim chunks through the
            // serialized counter.
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
                (0..p).map(|c| Reverse((0u64, c))).collect();
            let mut counter_free = 0u64;
            let mut next = 0usize;
            let mut makespan = 0u64;
            while next < n {
                let Reverse((free, c)) = heap.pop().unwrap();
                let claim = free.max(counter_free);
                counter_free = claim + counter_ns;
                let c_size = if guided {
                    ((n - next) / (2 * p)).max(chunk)
                } else {
                    chunk
                };
                let lo = next;
                let hi = (next + c_size).min(n);
                next = hi;
                let d = chunk_duration(platform, w, w.range_work(lo..hi), hi - lo, p);
                let fin = claim + counter_ns + d;
                makespan = makespan.max(fin);
                run.chunks += 1;
                heap.push(Reverse((fin, c)));
            }
            run.makespan_ns = makespan;
        }
        LoopPolicy::KaapiAdaptive { grain, steal_ns } => {
            let grain = (*grain).max(1);
            // Per-core slice [lo, hi); event heap of (time core frees, core).
            let mut lo = vec![0usize; p];
            let mut hi = vec![0usize; p];
            for c in 0..p {
                lo[c] = n * c / p;
                hi[c] = n * (c + 1) / p;
            }
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
                (0..p).map(|c| Reverse((0u64, c))).collect();
            let mut makespan = 0u64;
            // Claim + execute one chunk for core `c` at time `t`; returns
            // the finish time.
            let exec_chunk = |lo: &mut [usize],
                              run: &mut LoopRun,
                              makespan: &mut u64,
                              c: usize,
                              hi_c: usize,
                              t: u64|
             -> u64 {
                let l = lo[c];
                let h = (l + grain).min(hi_c);
                lo[c] = h;
                let d = chunk_duration(platform, w, w.range_work(l..h), h - l, p);
                let fin = t + d;
                *makespan = (*makespan).max(fin);
                run.chunks += 1;
                fin
            };
            while let Some(Reverse((t, c))) = heap.pop() {
                if lo[c] >= hi[c] {
                    // Idle: split the largest remaining slice. The thief
                    // immediately executes its first stolen chunk (no
                    // window in which the work could circulate unexecuted).
                    let victim = (0..p).max_by_key(|&v| hi[v].saturating_sub(lo[v]));
                    let Some(v) = victim else { break };
                    let rem = hi[v].saturating_sub(lo[v]);
                    if rem == 0 {
                        // no work anywhere: this core retires
                        makespan = makespan.max(t);
                        continue;
                    }
                    if rem <= grain {
                        // take the sub-grain tail entirely and run it now
                        let (l, h) = (lo[v], hi[v]);
                        hi[v] = l;
                        lo[c] = l;
                        hi[c] = h;
                        run.steals += 1;
                        let fin = exec_chunk(&mut lo, &mut run, &mut makespan, c, h, t + steal_ns);
                        heap.push(Reverse((fin, c)));
                        continue;
                    }
                    // steal half the victim's remaining interval
                    let keep = rem / 2;
                    let split = lo[v] + keep;
                    let (l, h) = (split, hi[v]);
                    hi[v] = split;
                    lo[c] = l;
                    hi[c] = h;
                    run.steals += 1;
                    let fin = exec_chunk(&mut lo, &mut run, &mut makespan, c, h, t + steal_ns);
                    heap.push(Reverse((fin, c)));
                    continue;
                }
                // Claim one grain-sized chunk from the local slice front.
                let hi_c = hi[c];
                let fin = exec_chunk(&mut lo, &mut run, &mut makespan, c, hi_c, t);
                heap.push(Reverse((fin, c)));
            }
            run.makespan_ns = makespan;
        }
    }
    run
}

/// Convenience: speedup of `policy` at each core count in `cores`.
pub fn loop_speedups(w: &LoopWorkload, policy: &LoopPolicy, cores: &[usize]) -> Vec<(usize, f64)> {
    let t1 = simulate_loop(&Platform::magny_cours(1), w, policy).makespan_ns as f64;
    cores
        .iter()
        .map(|&c| {
            let t = simulate_loop(&Platform::magny_cours(c), w, policy).makespan_ns as f64;
            (c, t1 / t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_loop(n: usize) -> LoopWorkload {
        LoopWorkload::jittered(n, 40_000, 0.3, 0, 42)
    }

    #[test]
    fn single_core_is_total_work() {
        let w = LoopWorkload::uniform(100, 1_000, 0);
        let r = simulate_loop(&Platform::magny_cours(1), &w, &LoopPolicy::OmpStatic);
        assert_eq!(r.makespan_ns, 100_000);
    }

    #[test]
    fn all_policies_scale_compute_bound() {
        let w = compute_loop(20_000);
        for pol in [
            LoopPolicy::OmpStatic,
            LoopPolicy::OmpDynamic {
                chunk: 64,
                counter_ns: 150,
            },
            LoopPolicy::OmpGuided {
                min: 16,
                counter_ns: 150,
            },
            LoopPolicy::KaapiAdaptive {
                grain: 64,
                steal_ns: 400,
            },
        ] {
            let s = loop_speedups(&w, &pol, &[8, 48]);
            assert!(s[0].1 > 6.0, "{pol:?}: 8-core speedup {}", s[0].1);
            assert!(s[1].1 > 28.0, "{pol:?}: 48-core speedup {}", s[1].1);
        }
    }

    #[test]
    fn memory_bound_loop_saturates() {
        // 2 KB per cheap iteration: bandwidth-limited.
        let w = LoopWorkload::uniform(200_000, 500, 2_048);
        let pol = LoopPolicy::KaapiAdaptive {
            grain: 256,
            steal_ns: 400,
        };
        let s = loop_speedups(&w, &pol, &[48]);
        assert!(
            s[0].1 < 25.0,
            "memory-bound speedup should be limited: {}",
            s[0].1
        );
    }

    #[test]
    fn adaptive_beats_static_under_jitter_at_high_core_count() {
        // Strong jitter: static suffers block imbalance; adaptive rebalances.
        let w = LoopWorkload::jittered(50_000, 30_000, 0.8, 0, 7);
        let s_static = loop_speedups(&w, &LoopPolicy::OmpStatic, &[48])[0].1;
        let s_adapt = loop_speedups(
            &w,
            &LoopPolicy::KaapiAdaptive {
                grain: 64,
                steal_ns: 400,
            },
            &[48],
        )[0]
        .1;
        assert!(
            s_adapt > s_static,
            "adaptive {s_adapt:.1} should beat static {s_static:.1} under jitter"
        );
    }

    #[test]
    fn dynamic_counter_contention_bites_with_tiny_chunks() {
        let w = LoopWorkload::uniform(200_000, 2_000, 0);
        let cheap = loop_speedups(
            &w,
            &LoopPolicy::OmpDynamic {
                chunk: 1,
                counter_ns: 150,
            },
            &[48],
        )[0]
        .1;
        let chunky = loop_speedups(
            &w,
            &LoopPolicy::OmpDynamic {
                chunk: 256,
                counter_ns: 150,
            },
            &[48],
        )[0]
        .1;
        assert!(chunky > cheap, "chunked {chunky:.1} vs per-iter {cheap:.1}");
    }

    #[test]
    fn iterations_all_executed_adaptive() {
        let w = compute_loop(9_973); // prime count
        let p = Platform::magny_cours(13);
        let r = simulate_loop(
            &p,
            &w,
            &LoopPolicy::KaapiAdaptive {
                grain: 32,
                steal_ns: 300,
            },
        );
        assert!(r.makespan_ns > 0);
        // chunks × grain must cover n
        assert!(r.chunks * 32 + 32 >= 9_973);
    }

    #[test]
    fn empty_loop() {
        let w = LoopWorkload::uniform(0, 1, 0);
        let r = simulate_loop(&Platform::magny_cours(8), &w, &LoopPolicy::OmpStatic);
        assert_eq!(r.makespan_ns, 0);
    }
}

#[cfg(test)]
mod livelock_regression {
    use super::*;

    /// Regression for the sub-grain tail livelock: small leftovers must be
    /// executed by whoever steals them, in the same steal event, for every
    /// core count and grain (this hung for certain calibrations before the
    /// steal-then-execute fix).
    #[test]
    fn adaptive_terminates_for_awkward_sizes() {
        for n in [60_000usize, 20_000, 9_973, 1_001] {
            for cores in [2usize, 5, 8, 16, 31, 48] {
                let w = LoopWorkload::jittered(n, 1_574, 0.35, 96, 11);
                let p = Platform::magny_cours(cores);
                let r = simulate_loop(
                    &p,
                    &w,
                    &LoopPolicy::KaapiAdaptive {
                        grain: 64,
                        steal_ns: 400,
                    },
                );
                assert!(r.makespan_ns > 0, "n={n} cores={cores}");
                // work conservation: chunk count covers all iterations
                assert!(r.chunks * 64 + 64 >= n as u64, "n={n} cores={cores}");
            }
        }
    }
}
