//! Virtual-time multicore simulator — the hardware substitution of this
//! reproduction (see DESIGN.md §1).
//!
//! The paper's figures were measured on a 48-core AMD Magny-Cours; this
//! build host has one core. This crate re-creates the *scheduling
//! algorithms* under comparison as deterministic discrete-event policies
//! over a modelled platform ([`platform::Platform`]): task DAGs
//! ([`dag::simulate_dag`]: work stealing with request aggregation,
//! centralized ready list, static ownership), parallel loops
//! ([`loops::simulate_loop`]: OpenMP static/dynamic/guided vs the adaptive
//! foreach), and analytic fork-join models for task-count regimes too large
//! for explicit graphs ([`models`]). Task costs are calibrated from real
//! single-core measurements by the benchmark harnesses.

#![warn(missing_docs)]

pub mod dag;
pub mod loops;
pub mod models;
pub mod platform;

pub use dag::{cyclic_owner, simulate_dag, DagPolicy, DagRun, SimTask, TaskDag};
pub use loops::{loop_speedups, simulate_loop, LoopPolicy, LoopRun, LoopWorkload};
pub use models::{fib_call_count, CentralPoolModel, ForkJoinModel};
pub use platform::Platform;
