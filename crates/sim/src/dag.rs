//! Task-graph representation and the discrete-event scheduler simulation.
//!
//! A [`TaskDag`] is built from per-task access lists (the same
//! last-writer/readers analysis every runtime in this repository performs),
//! or from explicit phase groups for barrier-style schedules. The
//! [`simulate_dag`] engine then executes it in virtual time on a
//! [`Platform`] under one of three scheduling policies mirroring the
//! compared runtimes:
//!
//! * [`DagPolicy::WorkStealing`] — X-Kaapi: ready tasks live in the queue
//!   of the core that released them, idle cores steal (oldest first) paying
//!   a steal cost; concurrent thieves are served together when request
//!   aggregation is on;
//! * [`DagPolicy::CentralQueue`] — QUARK / libGOMP tasks: one global ready
//!   list whose accesses are *serialized* (a virtual lock), the contention
//!   point that collapses at fine grain;
//! * [`DagPolicy::Static`] — PLASMA-static: a fixed task→core map, no
//!   scheduling cost at all, progress-table waits;
//! * [`DagPolicy::Offload`] — an accelerator track (the runtime's
//!   `OffloadEngine`): ready tasks feed a serialized launch engine that
//!   groups them into batches, the first task of each batch paying the
//!   kernel-launch latency, every task paying a per-task transfer cost;
//!   cores model the device's parallel execution lanes and successors are
//!   released by the asynchronous completion stream.

use crate::platform::Platform;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// One simulated task: pure-CPU time plus memory traffic.
#[derive(Clone, Copy, Debug)]
pub struct SimTask {
    /// CPU time at full speed, nanoseconds.
    pub work_ns: u64,
    /// Memory traffic, bytes (0 = compute-bound).
    pub bytes: u64,
}

/// A dependency graph of [`SimTask`]s.
pub struct TaskDag {
    /// Tasks, in sequential (program) order.
    pub tasks: Vec<SimTask>,
    succ: Vec<Vec<u32>>,
    npred: Vec<u32>,
}

impl TaskDag {
    /// Build from access lists: task `i` declares `(key, is_write)` pairs;
    /// edges follow the sequential-consistency rules (RAW, WAR, WAW).
    pub fn from_accesses(tasks: Vec<SimTask>, accesses: &[Vec<(u64, bool)>]) -> TaskDag {
        assert_eq!(tasks.len(), accesses.len());
        struct Track {
            last_writer: Option<u32>,
            readers: Vec<u32>,
        }
        let n = tasks.len();
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut npred: Vec<u32> = vec![0; n];
        let mut tracks: HashMap<u64, Track> = HashMap::new();
        let mut preds: Vec<u32> = Vec::new();
        for (i, acc) in accesses.iter().enumerate() {
            preds.clear();
            for &(key, write) in acc {
                let t = tracks.entry(key).or_insert(Track {
                    last_writer: None,
                    readers: Vec::new(),
                });
                if write {
                    preds.extend(t.last_writer);
                    preds.extend(t.readers.iter().copied());
                    t.last_writer = Some(i as u32);
                    t.readers.clear();
                } else {
                    preds.extend(t.last_writer);
                    t.readers.push(i as u32);
                }
            }
            preds.sort_unstable();
            preds.dedup();
            for &p in preds.iter() {
                if p as usize != i {
                    succ[p as usize].push(i as u32);
                    npred[i] += 1;
                }
            }
        }
        TaskDag { tasks, succ, npred }
    }

    /// Build from explicit phases: all tasks of phase `g` must finish
    /// before any task of phase `g+1` starts (the `taskwait` structure of
    /// the OpenMP-style codes). `phases[i]` is task `i`'s group.
    pub fn from_phases(tasks: Vec<SimTask>, phases: &[u32]) -> TaskDag {
        assert_eq!(tasks.len(), phases.len());
        let n = tasks.len();
        let mut by_phase: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, &g) in phases.iter().enumerate() {
            by_phase.entry(g).or_default().push(i as u32);
        }
        let mut groups: Vec<u32> = by_phase.keys().copied().collect();
        groups.sort_unstable();
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut npred: Vec<u32> = vec![0; n];
        // A barrier is all-to-all between consecutive phases. To keep the
        // edge count linear, insert a zero-cost virtual barrier task after
        // each phase: phase_a → barrier → phase_b.
        let mut tasks = tasks;
        for w in groups.windows(2) {
            let (a, b) = (w[0], w[1]);
            let bar = tasks.len() as u32;
            tasks.push(SimTask {
                work_ns: 0,
                bytes: 0,
            });
            succ.push(Vec::new());
            npred.push(0);
            for &x in &by_phase[&a] {
                succ[x as usize].push(bar);
                npred[bar as usize] += 1;
            }
            for &y in &by_phase[&b] {
                succ[bar as usize].push(y);
                npred[y as usize] += 1;
            }
        }
        TaskDag { tasks, succ, npred }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total CPU work (ns), ignoring memory effects.
    pub fn total_work_ns(&self) -> u64 {
        self.tasks.iter().map(|t| t.work_ns).sum()
    }

    /// Critical path length (ns), ignoring memory effects.
    pub fn critical_path_ns(&self) -> u64 {
        let n = self.len();
        let mut dist = vec![0u64; n];
        let mut indeg = self.npred.clone();
        let mut q: VecDeque<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut best = 0;
        while let Some(i) = q.pop_front() {
            let d = dist[i as usize] + self.tasks[i as usize].work_ns;
            best = best.max(d);
            for &s in &self.succ[i as usize] {
                dist[s as usize] = dist[s as usize].max(d);
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    q.push_back(s);
                }
            }
        }
        best
    }
}

/// Scheduling policy of the virtual runtime.
#[derive(Clone, Debug)]
pub enum DagPolicy {
    /// Distributed work stealing (X-Kaapi).
    WorkStealing {
        /// Cost of a successful steal operation (detection + transfer).
        steal_ns: u64,
        /// Per-task management overhead (spawn/claim/bookkeeping).
        task_overhead_ns: u64,
        /// Serve concurrent thieves in one combine (request aggregation).
        aggregation: bool,
        /// Sequential spawn rate of the master: task `i` cannot start
        /// before `i · spawn_ns` (the program-order creation stream).
        spawn_ns: u64,
    },
    /// One global ready list with serialized access (QUARK, libGOMP).
    CentralQueue {
        /// Serialized queue access cost (push or pop).
        queue_ns: u64,
        /// Per-task management overhead.
        task_overhead_ns: u64,
        /// Sequential insertion cost per task (QUARK's master thread does
        /// hash-based dependence analysis at insertion): task `i` cannot
        /// start before `i · insert_ns`.
        insert_ns: u64,
    },
    /// Fixed ownership, zero scheduling cost (PLASMA static).
    Static {
        /// Task → core assignment.
        owner: Vec<u32>,
    },
    /// Accelerator track: batched kernel launches behind a serialized
    /// engine (the runtime's `OffloadEngine` model). Cores stand in for
    /// the device's parallel execution lanes.
    Offload {
        /// Kernel-launch latency, paid once by the first task of each
        /// batch (the remaining `batch − 1` tasks ride the same launch).
        launch_ns: u64,
        /// Launch batch size (tasks per kernel launch); clamped to ≥ 1.
        batch: u64,
        /// Per-task transfer cost (H2D upload + D2H commit), paid between
        /// the launch and the task body.
        transfer_ns: u64,
    },
}

/// Result of a simulated schedule.
#[derive(Clone, Copy, Debug, Default)]
pub struct DagRun {
    /// Virtual makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Successful steals (work-stealing policy).
    pub steals: u64,
    /// Time cores spent waiting on the serialized queue (central policy)
    /// or the serialized launch engine (offload policy).
    pub queue_wait_ns: u64,
    /// Kernel launches issued (offload policy).
    pub launches: u64,
}

/// Simulate `dag` on `platform` under `policy`. Deterministic for a given
/// `seed` (used only for steal victim selection tie-breaking).
pub fn simulate_dag(platform: &Platform, dag: &TaskDag, policy: &DagPolicy, seed: u64) -> DagRun {
    let p = platform.cores;
    let n = dag.len();
    if n == 0 {
        return DagRun::default();
    }
    let mut npred = dag.npred.clone();
    // Per-core state.
    let mut core_busy_until = vec![0u64; p];
    let mut core_running: Vec<Option<u32>> = vec![None; p];
    let mut local_q: Vec<VecDeque<u32>> = vec![VecDeque::new(); p];
    let mut central_q: VecDeque<u32> = VecDeque::new();
    let mut static_q: Vec<VecDeque<u32>> = vec![VecDeque::new(); p];
    let mut device_q: VecDeque<u32> = VecDeque::new();
    let mut queue_free_at = 0u64;
    // Offload launch engine: serialized availability + pops left in the
    // batch opened by the last paid launch.
    let mut engine_free_at = 0u64;
    let mut batch_left = 0u64;
    let mut rng = seed | 1;
    let mut next_rand = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    // Initial ready tasks.
    let initial: Vec<u32> = (0..n as u32).filter(|&i| npred[i as usize] == 0).collect();
    match policy {
        DagPolicy::WorkStealing { .. } => {
            // Spawned by the master: they sit in core 0's frame.
            local_q[0].extend(initial.iter().copied());
        }
        DagPolicy::CentralQueue { .. } => central_q.extend(initial.iter().copied()),
        DagPolicy::Static { owner } => {
            for (c, q) in static_q.iter_mut().enumerate() {
                for i in 0..n as u32 {
                    if owner[i as usize] as usize % p == c {
                        q.push_back(i);
                    }
                }
            }
        }
        DagPolicy::Offload { .. } => device_q.extend(initial.iter().copied()),
    }
    let mut ready_flag = vec![false; n];
    for &i in &initial {
        ready_flag[i as usize] = true;
    }

    // Event queue of task completions: (time, seq, core, task).
    let mut events: BinaryHeap<Reverse<(u64, u64, u32, u32)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut finished = 0usize;
    let mut stats = DagRun::default();
    let mut mem_active_node = vec![0usize; platform.nodes()];
    let mut mem_active_total = 0usize;

    // Release gate: sequential creation stream of the master thread.
    let release_ns: u64 = match policy {
        DagPolicy::WorkStealing { spawn_ns, .. } => *spawn_ns,
        DagPolicy::CentralQueue { insert_ns, .. } => *insert_ns,
        DagPolicy::Static { .. } | DagPolicy::Offload { .. } => 0,
    };
    // Start a task on a core at `start`.
    macro_rules! start_task {
        ($core:expr, $task:expr, $start:expr) => {{
            let c = $core as usize;
            let t = $task as usize;
            let start = ($start).max(release_ns.saturating_mul(t as u64));
            let st = dag.tasks[t];
            let node = platform.node_of(c);
            let (a_node, a_tot) = if st.bytes > 0 {
                mem_active_node[node] += 1;
                mem_active_total += 1;
                (mem_active_node[node], mem_active_total)
            } else {
                (1, 1)
            };
            let dur = st.work_ns + platform.mem_ns(st.bytes, a_node, a_tot);
            let fin = start + dur.max(1);
            core_busy_until[c] = fin;
            core_running[c] = Some($task);
            seq += 1;
            events.push(Reverse((fin, seq, $core, $task)));
        }};
    }

    // Dispatch work to idle cores at time `now`. Returns true if something
    // was dispatched.
    macro_rules! dispatch {
        ($now:expr) => {{
            let now: u64 = $now;
            let mut any = false;
            loop {
                let mut dispatched = false;
                // Count idle cores for the aggregation model.
                let idle: Vec<usize> = (0..p)
                    .filter(|&c| core_running[c].is_none() && core_busy_until[c] <= now)
                    .collect();
                let n_idle = idle.len();
                for &c in &idle {
                    if core_running[c].is_some() {
                        continue;
                    }
                    match policy {
                        DagPolicy::WorkStealing {
                            steal_ns,
                            task_overhead_ns,
                            aggregation,
                            ..
                        } => {
                            // Local pop first.
                            if let Some(t) = local_q[c].pop_back() {
                                start_task!(c as u32, t, now + task_overhead_ns);
                                dispatched = true;
                                continue;
                            }
                            // Steal from the richest victim (random tie-break).
                            let mut best: Option<usize> = None;
                            let mut best_len = 0usize;
                            let off = (next_rand() % p as u64) as usize;
                            for k in 0..p {
                                let v = (k + off) % p;
                                if v != c && local_q[v].len() > best_len {
                                    best_len = local_q[v].len();
                                    best = Some(v);
                                }
                            }
                            if let Some(v) = best {
                                let t = local_q[v].pop_front().unwrap();
                                stats.steals += 1;
                                let cost = if *aggregation {
                                    *steal_ns
                                } else {
                                    // Unaggregated: concurrent thieves each
                                    // pay a detection pass on the victim.
                                    steal_ns * n_idle.max(1) as u64
                                };
                                start_task!(c as u32, t, now + cost + task_overhead_ns);
                                dispatched = true;
                            }
                        }
                        DagPolicy::CentralQueue {
                            queue_ns,
                            task_overhead_ns,
                            ..
                        } => {
                            if central_q.is_empty() {
                                continue;
                            }
                            // Serialized queue access.
                            let access = queue_free_at.max(now);
                            stats.queue_wait_ns += access - now;
                            queue_free_at = access + queue_ns;
                            let t = central_q.pop_front().unwrap();
                            start_task!(c as u32, t, access + queue_ns + task_overhead_ns);
                            dispatched = true;
                        }
                        DagPolicy::Static { .. } => {
                            if let Some(&t) = static_q[c].front() {
                                if ready_flag[t as usize] {
                                    static_q[c].pop_front();
                                    start_task!(c as u32, t, now);
                                    dispatched = true;
                                }
                            }
                        }
                        DagPolicy::Offload {
                            launch_ns,
                            batch,
                            transfer_ns,
                        } => {
                            if device_q.is_empty() {
                                continue;
                            }
                            // Serialized launch engine: the first task of
                            // each batch pays the launch latency, the next
                            // `batch − 1` pops ride the same launch.
                            let access = engine_free_at.max(now);
                            stats.queue_wait_ns += access - now;
                            if batch_left == 0 {
                                engine_free_at = access + launch_ns;
                                stats.launches += 1;
                                batch_left = (*batch).max(1);
                            } else {
                                engine_free_at = access;
                            }
                            batch_left -= 1;
                            let t = device_q.pop_front().unwrap();
                            start_task!(c as u32, t, engine_free_at + transfer_ns);
                            dispatched = true;
                        }
                    }
                }
                any |= dispatched;
                if !dispatched {
                    break;
                }
            }
            any
        }};
    }

    dispatch!(0);
    while finished < n {
        let Some(Reverse((now, _, core, task))) = events.pop() else {
            panic!("simulation deadlock: {finished}/{n} tasks finished");
        };
        // Retire.
        let c = core as usize;
        let t = task as usize;
        core_running[c] = None;
        if dag.tasks[t].bytes > 0 {
            mem_active_node[platform.node_of(c)] -= 1;
            mem_active_total -= 1;
        }
        finished += 1;
        stats.makespan_ns = stats.makespan_ns.max(now);
        // Release successors.
        for &s in &dag.succ[t] {
            npred[s as usize] -= 1;
            if npred[s as usize] == 0 {
                ready_flag[s as usize] = true;
                match policy {
                    DagPolicy::WorkStealing { .. } => local_q[c].push_back(s),
                    DagPolicy::CentralQueue { queue_ns, .. } => {
                        // Producer also pays the serialized push.
                        let access = queue_free_at.max(now);
                        stats.queue_wait_ns += access - now;
                        queue_free_at = access + queue_ns;
                        central_q.push_back(s);
                    }
                    DagPolicy::Static { .. } => {}
                    // The asynchronous completion stream re-enters the
                    // dataflow engine: successors become ready tasks on
                    // the device queue when the completion drains.
                    DagPolicy::Offload { .. } => device_q.push_back(s),
                }
            }
        }
        dispatch!(now);
    }
    stats
}

/// Row-cyclic owner map for the static policy (PLASMA-style), from a
/// "row" extractor over task indices.
pub fn cyclic_owner(n: usize, cores: usize, row_of: impl Fn(usize) -> usize) -> Vec<u32> {
    (0..n).map(|i| (row_of(i) % cores) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, work: u64) -> TaskDag {
        let tasks = vec![
            SimTask {
                work_ns: work,
                bytes: 0
            };
            n
        ];
        let acc: Vec<Vec<(u64, bool)>> = (0..n).map(|_| vec![(7, true)]).collect();
        TaskDag::from_accesses(tasks, &acc)
    }

    fn independent(n: usize, work: u64) -> TaskDag {
        let tasks = vec![
            SimTask {
                work_ns: work,
                bytes: 0
            };
            n
        ];
        let acc: Vec<Vec<(u64, bool)>> = (0..n).map(|i| vec![(i as u64, true)]).collect();
        TaskDag::from_accesses(tasks, &acc)
    }

    #[test]
    fn dag_builder_edges() {
        let d = chain(5, 10);
        assert_eq!(d.critical_path_ns(), 50);
        assert_eq!(d.total_work_ns(), 50);
        let d = independent(5, 10);
        assert_eq!(d.critical_path_ns(), 10);
    }

    #[test]
    fn chain_cannot_speed_up() {
        let p = Platform::magny_cours(8);
        let d = chain(100, 1_000);
        let ws = DagPolicy::WorkStealing {
            steal_ns: 10,
            task_overhead_ns: 0,
            aggregation: true,
            spawn_ns: 0,
        };
        let r = simulate_dag(&p, &d, &ws, 1);
        assert!(r.makespan_ns >= d.critical_path_ns());
    }

    #[test]
    fn independent_tasks_scale() {
        let d = independent(4_800, 10_000);
        let ws = DagPolicy::WorkStealing {
            steal_ns: 200,
            task_overhead_ns: 50,
            aggregation: true,
            spawn_ns: 0,
        };
        let t1 = simulate_dag(&Platform::magny_cours(1), &d, &ws, 1).makespan_ns;
        let t8 = simulate_dag(&Platform::magny_cours(8), &d, &ws, 1).makespan_ns;
        let t48 = simulate_dag(&Platform::magny_cours(48), &d, &ws, 1).makespan_ns;
        let s8 = t1 as f64 / t8 as f64;
        let s48 = t1 as f64 / t48 as f64;
        assert!(s8 > 6.0, "8-core speedup {s8}");
        assert!(s48 > 30.0, "48-core speedup {s48}");
    }

    #[test]
    fn makespan_lower_bounds_hold() {
        let d = independent(1_000, 5_000);
        for cores in [1, 4, 16, 48] {
            let p = Platform::magny_cours(cores);
            let ws = DagPolicy::WorkStealing {
                steal_ns: 0,
                task_overhead_ns: 0,
                aggregation: true,
                spawn_ns: 0,
            };
            let r = simulate_dag(&p, &d, &ws, 3);
            let bound = d.total_work_ns() / cores as u64;
            assert!(r.makespan_ns >= bound, "work/p bound at {cores} cores");
            assert!(r.makespan_ns >= d.critical_path_ns());
        }
    }

    #[test]
    fn central_queue_collapses_at_fine_grain() {
        // Fine tasks: queue serialization dominates; WS must win clearly.
        let d = independent(20_000, 1_000);
        let p = Platform::magny_cours(48);
        let ws = DagPolicy::WorkStealing {
            steal_ns: 200,
            task_overhead_ns: 50,
            aggregation: true,
            spawn_ns: 0,
        };
        let cq = DagPolicy::CentralQueue {
            queue_ns: 250,
            task_overhead_ns: 50,
            insert_ns: 0,
        };
        let t_ws = simulate_dag(&p, &d, &ws, 1).makespan_ns;
        let r_cq = simulate_dag(&p, &d, &cq, 1);
        assert!(
            r_cq.makespan_ns > t_ws * 2,
            "central {} vs ws {}",
            r_cq.makespan_ns,
            t_ws
        );
        assert!(r_cq.queue_wait_ns > 0);
    }

    #[test]
    fn central_queue_fine_at_coarse_grain() {
        // Coarse tasks amortize the queue: within ~20 % of WS.
        let d = independent(960, 1_000_000);
        let p = Platform::magny_cours(48);
        let ws = DagPolicy::WorkStealing {
            steal_ns: 200,
            task_overhead_ns: 50,
            aggregation: true,
            spawn_ns: 0,
        };
        let cq = DagPolicy::CentralQueue {
            queue_ns: 250,
            task_overhead_ns: 50,
            insert_ns: 0,
        };
        let t_ws = simulate_dag(&p, &d, &ws, 1).makespan_ns;
        let t_cq = simulate_dag(&p, &d, &cq, 1).makespan_ns;
        assert!((t_cq as f64) < (t_ws as f64) * 1.2);
    }

    #[test]
    fn static_policy_executes_everything() {
        let d = independent(1_000, 2_000);
        let owner = cyclic_owner(1_000, 16, |i| i);
        let p = Platform::magny_cours(16);
        let r = simulate_dag(&p, &d, &DagPolicy::Static { owner }, 1);
        let perfect = d.total_work_ns() / 16;
        assert!(r.makespan_ns >= perfect);
        assert!(r.makespan_ns < perfect * 2);
    }

    #[test]
    fn phase_barriers_serialize_phases() {
        // 2 phases of 10 independent tasks; barrier DAG's critical path is
        // two tasks long.
        let tasks = vec![
            SimTask {
                work_ns: 100,
                bytes: 0
            };
            20
        ];
        let phases: Vec<u32> = (0..20).map(|i| (i / 10) as u32).collect();
        let d = TaskDag::from_phases(tasks, &phases);
        assert_eq!(d.critical_path_ns(), 200);
        let p = Platform::magny_cours(48);
        let ws = DagPolicy::WorkStealing {
            steal_ns: 0,
            task_overhead_ns: 0,
            aggregation: true,
            spawn_ns: 0,
        };
        let r = simulate_dag(&p, &d, &ws, 1);
        assert!(r.makespan_ns >= 200);
    }

    #[test]
    fn memory_bound_tasks_hit_bandwidth_ceiling() {
        // Tasks that stream 10 MB each: scaling stalls near the bandwidth
        // limit regardless of core count.
        let tasks: Vec<SimTask> = (0..960)
            .map(|_| SimTask {
                work_ns: 10_000,
                bytes: 10 << 20,
            })
            .collect();
        let acc: Vec<Vec<(u64, bool)>> = (0..960).map(|i| vec![(i as u64, true)]).collect();
        let d = TaskDag::from_accesses(tasks, &acc);
        let ws = DagPolicy::WorkStealing {
            steal_ns: 100,
            task_overhead_ns: 10,
            aggregation: true,
            spawn_ns: 0,
        };
        let t1 = simulate_dag(&Platform::magny_cours(1), &d, &ws, 1).makespan_ns;
        let t48 = simulate_dag(&Platform::magny_cours(48), &d, &ws, 1).makespan_ns;
        let s = t1 as f64 / t48 as f64;
        assert!(s < 12.0, "bandwidth-bound speedup should saturate, got {s}");
        assert!(s > 3.0, "but it should still scale some, got {s}");
    }

    #[test]
    fn offload_batching_amortizes_launch_latency() {
        // Fine-grained independent tasks: with batch=1 every task pays the
        // full launch latency on the serialized engine; batch=32 amortizes
        // it 32×. Same DAG, same device.
        let d = independent(4_800, 2_000);
        let p = Platform::magny_cours(48);
        let unbatched = DagPolicy::Offload {
            launch_ns: 5_000,
            batch: 1,
            transfer_ns: 100,
        };
        let batched = DagPolicy::Offload {
            launch_ns: 5_000,
            batch: 32,
            transfer_ns: 100,
        };
        let r1 = simulate_dag(&p, &d, &unbatched, 1);
        let r32 = simulate_dag(&p, &d, &batched, 1);
        assert_eq!(r1.launches, 4_800);
        assert!(r32.launches < 200, "batched launches {}", r32.launches);
        assert!(
            r32.makespan_ns * 3 < r1.makespan_ns,
            "batched {} vs unbatched {}",
            r32.makespan_ns,
            r1.makespan_ns
        );
    }

    #[test]
    fn offload_respects_dependencies_and_pays_transfers() {
        // A chain cannot beat its critical path plus one launch + transfer
        // per task (batching cannot help: each successor only becomes
        // ready when the previous completion drains).
        let d = chain(50, 10_000);
        let p = Platform::magny_cours(8);
        let off = DagPolicy::Offload {
            launch_ns: 1_000,
            batch: 8,
            transfer_ns: 500,
        };
        let r = simulate_dag(&p, &d, &off, 1);
        assert!(r.makespan_ns >= d.critical_path_ns() + 50 * 500);
        assert_eq!(r.launches, 7, "one launch per 8-batch window");
    }

    #[test]
    fn aggregation_helps_with_many_idle_thieves() {
        // Long dependency spine with occasional wide fan-out: many idle
        // cores hammer the same victim; without aggregation each pays a
        // full detection.
        let mut tasks = Vec::new();
        let mut acc: Vec<Vec<(u64, bool)>> = Vec::new();
        for g in 0..50u64 {
            tasks.push(SimTask {
                work_ns: 20_000,
                bytes: 0,
            });
            acc.push(vec![(0, true)]); // spine
            for j in 0..47u64 {
                tasks.push(SimTask {
                    work_ns: 4_000,
                    bytes: 0,
                });
                acc.push(vec![(0, false), (1000 + g * 100 + j, true)]);
            }
        }
        let d = TaskDag::from_accesses(tasks, &acc);
        let p = Platform::magny_cours(48);
        let on = DagPolicy::WorkStealing {
            steal_ns: 400,
            task_overhead_ns: 20,
            aggregation: true,
            spawn_ns: 0,
        };
        let off = DagPolicy::WorkStealing {
            steal_ns: 400,
            task_overhead_ns: 20,
            aggregation: false,
            spawn_ns: 0,
        };
        let t_on = simulate_dag(&p, &d, &on, 7).makespan_ns;
        let t_off = simulate_dag(&p, &d, &off, 7).makespan_ns;
        assert!(t_on < t_off, "aggregation on {t_on} vs off {t_off}");
    }
}
