//! Micro-benchmarks of the runtime primitives the paper's §III-A discusses
//! (task creation ≈ ten cycles in the original C implementation; we report
//! our own numbers honestly), plus ablation comparisons: scheduler policy
//! matrix, aggregation on/off, ready-list promotion on/off, loop grain
//! sweep, and the kernel/bookkeeping costs behind the figure harnesses.
//!
//! Self-contained harness (`harness = false`; the container has no registry
//! access for criterion): median-of-N wall times via
//! `xkaapi_bench::measure_ns`, printed as one markdown table. Run with
//! `cargo bench -p xkaapi-bench`, or `--quick` for a fast smoke pass.

use std::sync::atomic::{AtomicUsize, Ordering};
use xkaapi_bench::{measure_ns, print_table, SchedPolicy};
use xkaapi_core::{PromotionPolicy, Runtime, Shared};
use xkaapi_forkjoin::the_deque::{JobRef, TheDeque};

struct Bench {
    rows: Vec<Vec<String>>,
    iters: usize,
}

impl Bench {
    fn report(&mut self, group: &str, name: &str, ns_per_iter: f64) {
        self.rows.push(vec![
            group.to_string(),
            name.to_string(),
            if ns_per_iter >= 1e6 {
                format!("{:.3} ms", ns_per_iter / 1e6)
            } else if ns_per_iter >= 1e3 {
                format!("{:.3} µs", ns_per_iter / 1e3)
            } else {
                format!("{ns_per_iter:.1} ns")
            },
        ]);
    }

    /// Median wall time of `f`, normalized by `per` inner operations.
    fn run(&mut self, group: &str, name: &str, per: usize, mut f: impl FnMut()) {
        let ns = measure_ns(self.iters, &mut f);
        self.report(group, name, ns as f64 / per as f64);
    }
}

fn bench_spawn(b: &mut Bench) {
    let rt = Runtime::new(1);
    b.run(
        "task-creation",
        "spawn+sync (xkaapi, 1 worker)",
        1000,
        || {
            rt.scope(|ctx| {
                for _ in 0..1000 {
                    ctx.spawn([], |_| {});
                }
            });
        },
    );
    let pool = xkaapi_forkjoin::CilkPool::new(1);
    b.run("task-creation", "join (cilklike, 1 worker)", 1000, || {
        pool.run(|ctx| {
            for _ in 0..1000 {
                ctx.join(|_| {}, |_| {});
            }
        });
    });
    let tpool = xkaapi_forkjoin::TbbPool::new(1);
    b.run("task-creation", "join (tbblike, 1 worker)", 1000, || {
        tpool.run(|ctx| {
            for _ in 0..1000 {
                ctx.join(|_| {}, |_| {});
            }
        });
    });
}

/// The PR 6 spawn fast path, layer by layer: the legacy `ctx.spawn`
/// (always default attributes), the builder at default attributes (must
/// monomorphize onto the same `#[inline]` path — any gap here is lowering
/// overhead), the attributed builder (takes the `#[cold]` slow path and
/// activates banded queues), and the fork-join fast lane for scale.
fn bench_spawn_layers(b: &mut Bench) {
    use xkaapi_core::Priority;
    let rt = Runtime::new(1);
    b.run("spawn-layers", "legacy ctx.spawn", 1000, || {
        rt.scope(|ctx| {
            for _ in 0..1000 {
                ctx.spawn([], |_| {});
            }
        });
    });
    b.run("spawn-layers", "builder, defaulted", 1000, || {
        rt.scope(|ctx| {
            for _ in 0..1000 {
                ctx.task().spawn(|_| {});
            }
        });
    });
    b.run("spawn-layers", "builder, priority(High)", 1000, || {
        rt.scope(|ctx| {
            for _ in 0..1000 {
                ctx.task().priority(Priority::High).spawn(|_| {});
            }
        });
    });
    b.run("spawn-layers", "join (fork-join lane)", 1000, || {
        rt.scope(|ctx| {
            for _ in 0..1000 {
                ctx.join(|_| {}, |_| {});
            }
        });
    });
}

fn bench_deque(b: &mut Bench) {
    let d = TheDeque::new();
    let sink = AtomicUsize::new(0);
    unsafe fn exec(data: *mut (), _w: usize) {
        let v = unsafe { &*(data as *const AtomicUsize) };
        v.fetch_add(1, Ordering::Relaxed);
    }
    let job = JobRef {
        data: &sink as *const AtomicUsize as *mut (),
        exec,
    };
    b.run("the-deque", "push+pop", 1000, || {
        for _ in 0..1000 {
            assert!(d.push(job));
            std::hint::black_box(d.pop().unwrap());
        }
    });
    b.run("the-deque", "push+steal", 1000, || {
        for _ in 0..1000 {
            assert!(d.push(job));
            std::hint::black_box(d.steal().unwrap());
        }
    });
}

fn bench_policy_matrix(b: &mut Bench) {
    for pol in SchedPolicy::ALL {
        let rt = pol.build_runtime(4);
        b.run("policy-matrix", pol.label(), 512, || {
            let sum = AtomicUsize::new(0);
            rt.scope(|ctx| {
                let sum = &sum;
                for _ in 0..512 {
                    ctx.spawn([], move |_| {
                        sum.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 512);
        });
    }
}

fn bench_dataflow(b: &mut Bench) {
    for (label, promote) in [("readylist-on", true), ("readylist-off", false)] {
        let rt = Runtime::builder()
            .workers(2)
            .promotion(PromotionPolicy {
                enabled: promote,
                promote_len: 16,
                promote_scans: 4,
            })
            .build();
        b.run("dataflow", &format!("chain256 {label}"), 256, || {
            let h = Shared::new(0u64);
            rt.scope(|ctx| {
                for _ in 0..256 {
                    let hw = h.clone();
                    ctx.spawn([h.exclusive()], move |t| {
                        *t.write(&hw) += 1;
                    });
                }
            });
            assert_eq!(*h.get(), 256);
        });
    }
    for (label, agg) in [("aggregation-on", true), ("aggregation-off", false)] {
        let rt = Runtime::builder().workers(4).aggregation(agg).build();
        b.run("dataflow", &format!("wide512 {label}"), 512, || {
            let sum = AtomicUsize::new(0);
            rt.scope(|ctx| {
                let sum = &sum;
                for _ in 0..512 {
                    ctx.spawn([], move |_| {
                        sum.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 512);
        });
    }
}

fn bench_foreach(b: &mut Bench) {
    let rt = Runtime::new(4);
    let n = 100_000usize;
    for grain in [16usize, 256, 4096] {
        b.run("foreach-grain", &format!("grain={grain}"), n, || {
            let s = rt.foreach_reduce(
                0..n,
                Some(grain),
                || 0u64,
                |a, i| *a += i as u64,
                |a, b| a + b,
            );
            assert_eq!(s, (n as u64 - 1) * n as u64 / 2);
        });
    }
}

fn bench_kernels(b: &mut Bench) {
    use xkaapi_linalg::kernels::{gemm, potrf};
    use xkaapi_linalg::TiledMatrix;
    for nb in [64usize, 128] {
        let a = TiledMatrix::spd_random(nb, nb, 3);
        let tile = a.tile(0, 0).to_vec();
        b.run("kernels", &format!("potrf nb={nb}"), 1, || {
            let mut t = tile.clone();
            potrf(&mut t, nb).unwrap();
            std::hint::black_box(&t);
        });
        b.run("kernels", &format!("gemm nb={nb}"), 1, || {
            let mut t = tile.clone();
            gemm(&tile, &tile, &mut t, nb);
            std::hint::black_box(&t);
        });
    }
}

fn bench_simulator(b: &mut Bench) {
    use xkaapi_bench::{cholesky_dag, ws_policy, KernelCosts};
    use xkaapi_sim::{simulate_dag, Platform};
    let costs = KernelCosts {
        nb: 128,
        potrf_ns: 400_000,
        trsm_ns: 1_000_000,
        syrk_ns: 1_000_000,
        gemm_ns: 2_000_000,
    };
    let dag = cholesky_dag(24, &costs);
    let p = Platform::magny_cours(48);
    b.run("simulator", "cholesky nt=24, 48 cores", 1, || {
        let r = simulate_dag(&p, &dag, &ws_policy(), 1);
        std::hint::black_box(r.makespan_ns);
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut b = Bench {
        rows: Vec::new(),
        iters: if quick { 3 } else { 11 },
    };
    bench_spawn(&mut b);
    bench_spawn_layers(&mut b);
    bench_deque(&mut b);
    bench_policy_matrix(&mut b);
    bench_dataflow(&mut b);
    bench_foreach(&mut b);
    bench_kernels(&mut b);
    bench_simulator(&mut b);
    print_table(
        &format!(
            "Micro-benchmarks (median of {} runs, per-op normalized)",
            b.iters
        ),
        &["group", "benchmark", "time/op"],
        &b.rows,
    );
}
