//! Criterion micro-benchmarks of the runtime primitives the paper's §III-A
//! discusses (task creation ≈ ten cycles in the original C implementation;
//! we report our own numbers honestly), plus ablation comparisons:
//! aggregation on/off, ready-list promotion on/off, loop grain sweep, and
//! the kernel/bookkeeping costs behind the figure harnesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicUsize, Ordering};
use xkaapi_core::{PromotionPolicy, Runtime, Shared};
use xkaapi_forkjoin::the_deque::{JobRef, TheDeque};

fn bench_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("task-creation");
    g.sample_size(20);
    let rt = Runtime::new(1);
    g.bench_function("spawn+sync x1000 (xkaapi, 1 worker)", |b| {
        b.iter(|| {
            rt.scope(|ctx| {
                for _ in 0..1000 {
                    ctx.spawn([], |_| {});
                }
            });
        })
    });
    let pool = xkaapi_forkjoin::CilkPool::new(1);
    g.bench_function("join x1000 (cilklike, 1 worker)", |b| {
        b.iter(|| {
            pool.run(|ctx| {
                for _ in 0..1000 {
                    ctx.join(|_| {}, |_| {});
                }
            });
        })
    });
    let tpool = xkaapi_forkjoin::TbbPool::new(1);
    g.bench_function("join x1000 (tbblike, 1 worker)", |b| {
        b.iter(|| {
            tpool.run(|ctx| {
                for _ in 0..1000 {
                    ctx.join(|_| {}, |_| {});
                }
            });
        })
    });
    g.finish();
}

fn bench_deque(c: &mut Criterion) {
    let mut g = c.benchmark_group("the-deque");
    let d = TheDeque::new();
    let sink = AtomicUsize::new(0);
    unsafe fn exec(data: *mut (), _w: usize) {
        let v = unsafe { &*(data as *const AtomicUsize) };
        v.fetch_add(1, Ordering::Relaxed);
    }
    let job = JobRef { data: &sink as *const AtomicUsize as *mut (), exec };
    g.bench_function("push+pop", |b| {
        b.iter(|| {
            assert!(d.push(job));
            let j = d.pop().unwrap();
            std::hint::black_box(j);
        })
    });
    g.bench_function("push+steal", |b| {
        b.iter(|| {
            assert!(d.push(job));
            let j = d.steal().unwrap();
            std::hint::black_box(j);
        })
    });
    g.finish();
}

fn bench_dataflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow");
    g.sample_size(15);
    for (label, promote) in [("readylist-on", true), ("readylist-off", false)] {
        let rt = Runtime::builder()
            .workers(2)
            .promotion(PromotionPolicy { enabled: promote, promote_len: 16, promote_scans: 4 })
            .build();
        g.bench_with_input(BenchmarkId::new("chain256", label), &rt, |b, rt| {
            b.iter(|| {
                let h = Shared::new(0u64);
                rt.scope(|ctx| {
                    for _ in 0..256 {
                        let hw = h.clone();
                        ctx.spawn([h.exclusive()], move |t| {
                            *t.write(&hw) += 1;
                        });
                    }
                });
                assert_eq!(*h.get(), 256);
            })
        });
    }
    for (label, agg) in [("aggregation-on", true), ("aggregation-off", false)] {
        let rt = Runtime::builder().workers(4).aggregation(agg).build();
        g.bench_with_input(BenchmarkId::new("wide512", label), &rt, |b, rt| {
            b.iter(|| {
                let sum = AtomicUsize::new(0);
                rt.scope(|ctx| {
                    let sum = &sum;
                    for _ in 0..512 {
                        ctx.spawn([], move |_| {
                            sum.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                assert_eq!(sum.load(Ordering::Relaxed), 512);
            })
        });
    }
    g.finish();
}

fn bench_foreach(c: &mut Criterion) {
    let mut g = c.benchmark_group("foreach-grain");
    g.sample_size(15);
    let rt = Runtime::new(4);
    let n = 100_000usize;
    for grain in [16usize, 256, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(grain), &grain, |b, &grain| {
            b.iter(|| {
                let s = rt.foreach_reduce(
                    0..n,
                    Some(grain),
                    || 0u64,
                    |a, i| *a += i as u64,
                    |a, b| a + b,
                );
                assert_eq!(s, (n as u64 - 1) * n as u64 / 2);
            })
        });
    }
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    use xkaapi_linalg::kernels::{gemm, potrf};
    use xkaapi_linalg::TiledMatrix;
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    for nb in [64usize, 128] {
        let a = TiledMatrix::spd_random(nb, nb, 3);
        let tile = a.tile(0, 0).to_vec();
        g.bench_with_input(BenchmarkId::new("potrf", nb), &nb, |b, &nb| {
            b.iter(|| {
                let mut t = tile.clone();
                potrf(&mut t, nb).unwrap();
                std::hint::black_box(&t);
            })
        });
        g.bench_with_input(BenchmarkId::new("gemm", nb), &nb, |b, &nb| {
            b.iter(|| {
                let mut t = tile.clone();
                gemm(&tile, &tile, &mut t, nb);
                std::hint::black_box(&t);
            })
        });
    }
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    use xkaapi_bench::{cholesky_dag, ws_policy, KernelCosts};
    use xkaapi_sim::{simulate_dag, Platform};
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let costs = KernelCosts {
        nb: 128,
        potrf_ns: 400_000,
        trsm_ns: 1_000_000,
        syrk_ns: 1_000_000,
        gemm_ns: 2_000_000,
    };
    let dag = cholesky_dag(24, &costs);
    let p = Platform::magny_cours(48);
    g.bench_function("cholesky-nt24-48cores", |b| {
        b.iter(|| {
            let r = simulate_dag(&p, &dag, &ws_policy(), 1);
            std::hint::black_box(r.makespan_ns);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_spawn,
    bench_deque,
    bench_dataflow,
    bench_foreach,
    bench_kernels,
    bench_simulator
);
criterion_main!(benches);
