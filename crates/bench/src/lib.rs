//! Shared infrastructure of the figure-regeneration harnesses: host
//! calibration (real single-core kernel and task-overhead measurements
//! that parameterize the simulator), DAG builders bridging the algorithm
//! crates to `xkaapi-sim`, and table printing.
//!
//! Each `src/bin/figN_*.rs` binary regenerates one table/figure of the
//! paper; `EXPERIMENTS.md` records the measured outputs next to the paper's
//! values.

#![warn(missing_docs)]

pub mod check;
pub mod policy;

pub use policy::{SchedPolicy, VictimPolicy};

use std::time::Instant;
use xkaapi_linalg::{flops, CholOp, TiledMatrix};
use xkaapi_sim::{DagPolicy, SimTask, TaskDag};
use xkaapi_skyline::{BlockSkyline, SkyOp};

/// ~µs of un-optimizable work (an LCG chain), so thieves can win task
/// claims from the owner on a time-sliced host.
#[inline]
pub fn busy_work(tag: u64, iters: u64) -> u64 {
    let mut acc = tag;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

/// Steal-heavy mixed workload shared by the steal-locality surfaces
/// (`ablation`'s victim sweep and `smoke`'s locality counters): 16×25
/// exclusive data-flow chains with busy links (data-flow steals) plus an
/// adaptive reduction whose on-demand splits hand slices to requesting
/// thieves (adaptive steals). Returns a schedule-independent checksum.
pub fn steal_heavy_workload(rt: &xkaapi_core::Runtime) -> u64 {
    use xkaapi_core::Shared;
    let cells: Vec<Shared<u64>> = (0..16).map(|_| Shared::new(1)).collect();
    rt.scope(|ctx| {
        for round in 0..25u64 {
            for (i, c) in cells.iter().enumerate() {
                let cw = c.clone();
                ctx.spawn([c.exclusive()], move |t| {
                    busy_work(round, 2000);
                    *t.write(&cw) += round + i as u64;
                });
            }
        }
    });
    let chain_sum: u64 = cells.iter().map(|c| *c.get()).sum();
    let loop_sum = rt.foreach_reduce(
        0..40_000,
        None,
        || 0u64,
        |a, i| {
            busy_work(i as u64, 40);
            *a += i as u64;
        },
        |a, b| a + b,
    );
    chain_sum.wrapping_add(loop_sum)
}

/// Median wall time of `f` over `iters` runs, in nanoseconds.
pub fn measure_ns<F: FnMut()>(iters: usize, mut f: F) -> u64 {
    assert!(iters >= 1);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Calibrated per-kernel costs for tile size `nb` (nanoseconds).
#[derive(Clone, Copy, Debug)]
pub struct KernelCosts {
    /// Tile size these costs were measured at.
    pub nb: usize,
    /// `potrf` cost.
    pub potrf_ns: u64,
    /// `trsm` cost.
    pub trsm_ns: u64,
    /// `syrk` cost.
    pub syrk_ns: u64,
    /// `gemm` cost.
    pub gemm_ns: u64,
}

/// Measure the dense tile kernels on this host at size `nb`.
pub fn calibrate_kernels(nb: usize) -> KernelCosts {
    use xkaapi_linalg::kernels::{gemm, potrf, syrk, trsm};
    let spd = TiledMatrix::spd_random(nb, nb, 42);
    let base: Vec<f64> = spd.tile(0, 0).to_vec();
    let mut l = base.clone();
    potrf(&mut l, nb).unwrap();
    let reps = if nb >= 192 { 3 } else { 5 };

    let potrf_ns = measure_ns(reps, || {
        let mut t = base.clone();
        potrf(&mut t, nb).unwrap();
        std::hint::black_box(&t);
    });
    let clone_ns = measure_ns(reps, || {
        let t = base.clone();
        std::hint::black_box(&t);
    });
    let trsm_ns = measure_ns(reps, || {
        let mut b = base.clone();
        trsm(&l, &mut b, nb);
        std::hint::black_box(&b);
    });
    let syrk_ns = measure_ns(reps, || {
        let mut c = base.clone();
        syrk(&l, &mut c, nb);
        std::hint::black_box(&c);
    });
    let gemm_ns = measure_ns(reps, || {
        let mut c = base.clone();
        gemm(&l, &base, &mut c, nb);
        std::hint::black_box(&c);
    });
    KernelCosts {
        nb,
        potrf_ns: potrf_ns.saturating_sub(clone_ns).max(1),
        trsm_ns: trsm_ns.saturating_sub(clone_ns).max(1),
        syrk_ns: syrk_ns.saturating_sub(clone_ns).max(1),
        gemm_ns: gemm_ns.saturating_sub(clone_ns).max(1),
    }
}

/// Scale measured costs from tile size `from.nb` to `nb` using the kernels'
/// flop-count ratios (used to reach tile sizes too slow to measure often).
pub fn scale_costs(from: &KernelCosts, nb: usize) -> KernelCosts {
    let r3 = (nb as f64 / from.nb as f64).powi(3);
    KernelCosts {
        nb,
        potrf_ns: (from.potrf_ns as f64 * r3) as u64,
        trsm_ns: (from.trsm_ns as f64 * r3) as u64,
        syrk_ns: (from.syrk_ns as f64 * r3) as u64,
        gemm_ns: (from.gemm_ns as f64 * r3) as u64,
    }
}

/// Tile memory traffic (bytes) of one kernel on `nb × nb` f64 tiles:
/// roughly `touched_tiles × nb² × 8`.
fn tile_bytes(nb: usize, tiles: u64) -> u64 {
    (nb * nb * 8) as u64 * tiles
}

/// Build the simulator DAG of an `nt × nt` tiled Cholesky.
pub fn cholesky_dag(nt: usize, costs: &KernelCosts) -> TaskDag {
    let ops = xkaapi_linalg::cholesky_ops(nt);
    let nb = costs.nb;
    let mut tasks = Vec::with_capacity(ops.len());
    let mut accesses = Vec::with_capacity(ops.len());
    for op in &ops {
        let work_ns = match op {
            CholOp::Potrf { .. } => costs.potrf_ns,
            CholOp::Trsm { .. } => costs.trsm_ns,
            CholOp::Syrk { .. } => costs.syrk_ns,
            CholOp::Gemm { .. } => costs.gemm_ns,
        };
        let ntiles = match op {
            CholOp::Potrf { .. } => 1,
            CholOp::Trsm { .. } | CholOp::Syrk { .. } => 2,
            CholOp::Gemm { .. } => 3,
        };
        tasks.push(SimTask {
            work_ns,
            bytes: tile_bytes(nb, ntiles),
        });
        accesses.push(op.accesses());
    }
    TaskDag::from_accesses(tasks, &accesses)
}

/// Static owner map for the Cholesky DAG: round-robin over the sequential
/// operation order — an idealized zero-overhead static pipeline, which is
/// what PLASMA's hand-tuned static schedule approximates (a plain
/// row-cyclic map would idle cores whenever `nt < p`).
pub fn cholesky_static_owner(nt: usize, cores: usize) -> Vec<u32> {
    let ops = xkaapi_linalg::cholesky_ops(nt);
    (0..ops.len()).map(|i| (i % cores) as u32).collect()
}

/// GFlop/s of an `n × n` Cholesky completed in `makespan_ns`.
pub fn gflops(n: usize, makespan_ns: u64) -> f64 {
    flops::cholesky(n) / makespan_ns as f64
}

/// Build the simulator DAG of a blocked skyline LDLᵀ, either with true
/// data-flow dependences (X-Kaapi) or with the OpenMP phase barriers.
pub fn skyline_dag(bsk: &BlockSkyline, costs: &KernelCosts, omp_phases: bool) -> TaskDag {
    let ops = xkaapi_skyline::ldlt_ops(bsk);
    let nbl = bsk.nbl;
    let nb = costs.nb;
    let mk = |op: &SkyOp| -> SimTask {
        let (work_ns, tiles) = match op {
            SkyOp::Potrf { .. } => (costs.potrf_ns, 1),
            SkyOp::Trsm { .. } => (costs.trsm_ns, 2),
            SkyOp::Syrk { .. } => (costs.syrk_ns, 2),
            SkyOp::Gemm { .. } => (costs.gemm_ns, 3),
        };
        SimTask {
            work_ns,
            bytes: tile_bytes(nb, tiles),
        }
    };
    let tasks: Vec<SimTask> = ops.iter().map(mk).collect();
    if omp_phases {
        // The paper's OpenMP version: potrf runs alone (master), trsm tasks
        // then taskwait, syrk/gemm tasks then taskwait.
        let phases: Vec<u32> = ops
            .iter()
            .map(|op| match *op {
                SkyOp::Potrf { k } => 3 * k as u32,
                SkyOp::Trsm { k, .. } => 3 * k as u32 + 1,
                SkyOp::Syrk { k, .. } | SkyOp::Gemm { k, .. } => 3 * k as u32 + 2,
            })
            .collect();
        TaskDag::from_phases(tasks, &phases)
    } else {
        let accesses: Vec<Vec<(u64, bool)>> = ops.iter().map(|op| op.accesses(nbl)).collect();
        TaskDag::from_accesses(tasks, &accesses)
    }
}

/// Default work-stealing policy constants (X-Kaapi): calibrated order of
/// magnitude for steal and task-management costs.
pub fn ws_policy() -> DagPolicy {
    DagPolicy::WorkStealing {
        steal_ns: 300,
        task_overhead_ns: 80,
        aggregation: true,
        // measured: the X-Kaapi fast spawn is ~50-250 ns on this host
        spawn_ns: 100,
    }
}

/// Default centralized-list policy constants (QUARK / libGOMP tasks).
pub fn central_policy() -> DagPolicy {
    DagPolicy::CentralQueue {
        queue_ns: 600,
        task_overhead_ns: 800,
        // QUARK's insertion-time dependence analysis (hashing every
        // argument address, window bookkeeping) is in the microseconds.
        insert_ns: 1_500,
    }
}

/// Print a markdown-ish table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        println!("| {} |", r.join(" | "));
    }
}

/// The core counts the paper samples.
pub const PAPER_CORES: [usize; 9] = [1, 2, 4, 8, 16, 24, 32, 40, 48];

#[cfg(test)]
mod tests {
    use super::*;
    use xkaapi_sim::{simulate_dag, Platform};

    #[test]
    fn calibration_produces_ordered_costs() {
        let c = calibrate_kernels(32);
        // gemm (2n³) must cost more than trsm (n³) on any host
        assert!(c.gemm_ns > c.trsm_ns / 2, "{c:?}");
        assert!(c.potrf_ns >= 1);
    }

    #[test]
    fn scaling_follows_cubic_law() {
        let c = KernelCosts {
            nb: 32,
            potrf_ns: 100,
            trsm_ns: 300,
            syrk_ns: 300,
            gemm_ns: 600,
        };
        let s = scale_costs(&c, 64);
        assert_eq!(s.gemm_ns, 4800);
        assert_eq!(s.nb, 64);
    }

    #[test]
    fn cholesky_dag_has_expected_size() {
        let c = KernelCosts {
            nb: 128,
            potrf_ns: 1,
            trsm_ns: 2,
            syrk_ns: 2,
            gemm_ns: 4,
        };
        let nt = 8;
        let d = cholesky_dag(nt, &c);
        let expect = nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) / 6;
        assert_eq!(d.len(), expect);
        // critical path of tiled cholesky is Θ(nt) tasks, far below total
        assert!(d.critical_path_ns() < d.total_work_ns() / 2);
    }

    #[test]
    fn cholesky_dag_simulates_with_speedup() {
        let costs = KernelCosts {
            nb: 128,
            potrf_ns: 400_000,
            trsm_ns: 1_000_000,
            syrk_ns: 1_000_000,
            gemm_ns: 2_000_000,
        };
        let d = cholesky_dag(16, &costs);
        let t1 = simulate_dag(&Platform::magny_cours(1), &d, &ws_policy(), 1).makespan_ns;
        let t8 = simulate_dag(&Platform::magny_cours(8), &d, &ws_policy(), 1).makespan_ns;
        assert!(t1 as f64 / t8 as f64 > 4.0);
    }

    #[test]
    fn skyline_dags_differ_in_critical_path() {
        let a = xkaapi_skyline::SkylineMatrix::generate_spd(600, 0.08, 5);
        let bsk = BlockSkyline::from_skyline(&a, 24);
        let costs = KernelCosts {
            nb: 24,
            potrf_ns: 10_000,
            trsm_ns: 25_000,
            syrk_ns: 25_000,
            gemm_ns: 50_000,
        };
        let flow = skyline_dag(&bsk, &costs, false);
        let omp = skyline_dag(&bsk, &costs, true);
        // Phase barriers can only lengthen the critical path.
        assert!(omp.critical_path_ns() >= flow.critical_path_ns());
        assert_eq!(
            flow.total_work_ns(),
            omp.total_work_ns(),
            "same work, different ordering constraints"
        );
    }

    #[test]
    fn static_owner_covers_all_ops() {
        let owner = cholesky_static_owner(10, 4);
        assert_eq!(owner.len(), xkaapi_linalg::cholesky_ops(10).len());
        assert!(owner.iter().all(|&o| o < 4));
    }

    #[test]
    fn gflops_sane() {
        // 3000³/3 flops in 0.06 s ≈ 150 GFlop/s (the paper's headline point)
        let g = gflops(3000, 60_000_000);
        assert!(g > 140.0 && g < 160.0, "{g}");
    }
}
