//! One-flag scheduler configuration for ablations and tests.
//!
//! [`SchedPolicy`] enumerates the queue-layer × steal-layer combinations
//! the engine supports, so a benchmark can flip the entire scheduler
//! architecture — distributed work stealing vs the centralized baselines,
//! aggregation on or off — from a single enum value instead of three
//! codebases (the pre-refactor state: `omp`, `quark::central` and `core`
//! each hand-rolled their own worker loop and queue machinery).

use std::sync::Arc;
use xkaapi_core::{
    AggregatedStealing, HierarchicalVictim, LocalityFirst, PerThiefStealing, Runtime, StealPolicy,
    TaskQueue, Topology, UniformVictim,
};
use xkaapi_omp::OmpCentralQueue;
use xkaapi_quark::QuarkCentralQueue;

/// Victim-selection dimension of the steal layer, swept orthogonally to
/// the queue layer by `bench --bin ablation` (ISSUE 3: uniform ×
/// hierarchical × locality-first on distributed and centralized queues).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Uniform random victim, full aggregation (the paper's default).
    Uniform,
    /// Same-node victims first, machine-wide after the fail streak grows;
    /// bounded near-first combiner batches.
    Hierarchical,
    /// Victims ranked by topology distance with probabilistic ring
    /// escalation; bounded near-first combiner batches.
    LocalityFirst,
}

impl VictimPolicy {
    /// Every victim policy, for exhaustive sweeps.
    pub const ALL: [VictimPolicy; 3] = [
        VictimPolicy::Uniform,
        VictimPolicy::Hierarchical,
        VictimPolicy::LocalityFirst,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            VictimPolicy::Uniform => "uniform",
            VictimPolicy::Hierarchical => "hierarchical",
            VictimPolicy::LocalityFirst => "locality-first",
        }
    }

    /// The steal-layer policy object implementing this victim selection.
    pub fn steal_policy(self) -> Arc<dyn StealPolicy> {
        match self {
            VictimPolicy::Uniform => Arc::new(UniformVictim),
            VictimPolicy::Hierarchical => Arc::new(HierarchicalVictim::default()),
            VictimPolicy::LocalityFirst => Arc::new(LocalityFirst::default()),
        }
    }
}

/// Full scheduler configuration, selectable from one value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Per-worker T.H.E. deques + lazy frame scans, flat-combining
    /// aggregated steals — the X-Kaapi default.
    DistributedAggregated,
    /// Same distributed structure, but each thief pays its own steal
    /// (no request aggregation).
    DistributedPerThief,
    /// libGOMP weight class: one mutex-protected global FIFO
    /// ([`OmpCentralQueue`]), eager ready-task publication.
    CentralOmp,
    /// QUARK weight class: the centralized ready list with priority
    /// ordering ([`QuarkCentralQueue`]), eager ready-task publication.
    CentralQuark,
}

impl SchedPolicy {
    /// Every configuration, for exhaustive sweeps.
    pub const ALL: [SchedPolicy; 4] = [
        SchedPolicy::DistributedAggregated,
        SchedPolicy::DistributedPerThief,
        SchedPolicy::CentralOmp,
        SchedPolicy::CentralQuark,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::DistributedAggregated => "distributed + aggregation",
            SchedPolicy::DistributedPerThief => "distributed, per-thief",
            SchedPolicy::CentralOmp => "central FIFO (omp)",
            SchedPolicy::CentralQuark => "central ready-list (quark)",
        }
    }

    /// Build a runtime with `workers` workers under this configuration.
    pub fn build_runtime(self, workers: usize) -> Runtime {
        self.builder(workers).build()
    }

    /// Build a runtime under this queue configuration with an explicit
    /// victim-selection policy and machine topology — the full
    /// queue-layer × victim-policy sweep surface. The victim policy
    /// replaces this configuration's default steal layer (the queue layer
    /// is unchanged, so centralized queues sweep victim policies too).
    pub fn build_runtime_with(
        self,
        workers: usize,
        victim: VictimPolicy,
        topo: Topology,
    ) -> Runtime {
        self.builder(workers)
            .steal_policy(victim.steal_policy())
            .topology(topo)
            .build()
    }

    fn builder(self, workers: usize) -> xkaapi_core::Builder {
        let builder = Runtime::builder().workers(workers);
        match self {
            SchedPolicy::DistributedAggregated => {
                builder.steal_policy(Arc::new(AggregatedStealing) as Arc<dyn StealPolicy>)
            }
            SchedPolicy::DistributedPerThief => {
                builder.steal_policy(Arc::new(PerThiefStealing) as Arc<dyn StealPolicy>)
            }
            SchedPolicy::CentralOmp => {
                builder.task_queue(Arc::new(OmpCentralQueue::new()) as Arc<dyn TaskQueue>)
            }
            SchedPolicy::CentralQuark => {
                builder.task_queue(Arc::new(QuarkCentralQueue::new()) as Arc<dyn TaskQueue>)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use xkaapi_core::Shared;

    /// The acceptance gate of the engine refactor: the same mixed-paradigm
    /// program produces identical results under every scheduler policy.
    #[test]
    fn all_policies_produce_identical_results() {
        let mut outcomes = Vec::new();
        for pol in SchedPolicy::ALL {
            let rt = pol.build_runtime(4);
            // Data-flow chain with a read fan-out.
            let h = Shared::new(1u64);
            let sum = Shared::new(0u64);
            rt.scope(|ctx| {
                for _ in 0..40 {
                    let hw = h.clone();
                    ctx.spawn([h.exclusive()], move |t| *t.write(&hw) += 1);
                }
                let (hr, sw) = (h.clone(), sum.clone());
                ctx.spawn([h.read(), sum.write()], move |t| {
                    *t.write(&sw) = 2 * *t.read(&hr);
                });
            });
            // Fork-join fib.
            let f = rt.scope(|ctx| {
                fn fib(c: &mut xkaapi_core::Ctx<'_>, n: u64) -> u64 {
                    if n < 2 {
                        n
                    } else {
                        let (a, b) = c.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
                        a + b
                    }
                }
                fib(ctx, 12)
            });
            // Adaptive loop.
            let hits = AtomicU64::new(0);
            rt.foreach(0..5000, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            outcomes.push((*h.get(), *sum.get(), f, hits.load(Ordering::Relaxed)));
        }
        assert_eq!(outcomes[0], (41, 82, 144, 5000));
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(*o, outcomes[0], "policy {:?} diverged", SchedPolicy::ALL[i]);
        }
    }
}
