//! Fig. 2 — dense tiled Cholesky GFlop/s on 48 (virtual) cores.
//!
//! Reproduces both plots: GFlop/s against matrix size for tile sizes
//! NB = 128 and NB = 224, with the three versions the paper compares:
//!
//! * `XKaapi`       — distributed work stealing (QUARK API on X-Kaapi),
//! * `PLASMA/Quark` — QUARK's centralized ready list,
//! * `PLASMA/static` — static row-cyclic schedule, no task management.
//!
//! Kernel costs are measured for real on this host (single core), then the
//! schedulers execute the exact PLASMA DAG in virtual time. A real
//! cross-check block runs the actual three drivers at a small size and
//! verifies they produce identical factors.
//!
//! Usage: `fig2_cholesky [max_n]` (default 6144).

use xkaapi_bench::{
    calibrate_kernels, central_policy, cholesky_dag, cholesky_static_owner, gflops, print_table,
    scale_costs, ws_policy,
};
use xkaapi_sim::{simulate_dag, DagPolicy, Platform};

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6144);
    println!("# Fig. 2 — Cholesky GFlop/s, 48 virtual cores (AMD Magny-Cours model)");

    // Real kernel calibration at a measurable size, scaled by flop counts.
    let base = calibrate_kernels(96);
    println!(
        "\ncalibration (nb=96, real): potrf {} µs, trsm {} µs, syrk {} µs, gemm {} µs",
        base.potrf_ns / 1000,
        base.trsm_ns / 1000,
        base.syrk_ns / 1000,
        base.gemm_ns / 1000
    );

    let platform = Platform::magny_cours(48);
    for nb in [128usize, 224] {
        let costs = scale_costs(&base, nb);
        let sizes: Vec<usize> = (1..=12)
            .map(|k| k * nb * 4)
            .filter(|&n| n <= max_n)
            .collect();
        let mut rows = Vec::new();
        for &n in &sizes {
            let nt = n / nb;
            if nt < 2 {
                continue;
            }
            let dag = cholesky_dag(nt, &costs);
            let t_ws = simulate_dag(&platform, &dag, &ws_policy(), 1).makespan_ns;
            let r_cq = simulate_dag(&platform, &dag, &central_policy(), 1);
            let owner = cholesky_static_owner(nt, 48);
            let t_st = simulate_dag(&platform, &dag, &DagPolicy::Static { owner }, 1).makespan_ns;
            rows.push(vec![
                n.to_string(),
                format!("{:.2}", gflops(n, t_ws)),
                format!("{:.2}", gflops(n, r_cq.makespan_ns)),
                format!("{:.2}", gflops(n, t_st)),
                format!("{:.1}", r_cq.queue_wait_ns as f64 / 1e6),
            ]);
        }
        print_table(
            &format!("NB = {nb}"),
            &[
                "matrix n",
                "XKaapi",
                "PLASMA/Quark",
                "PLASMA/static",
                "queue wait (ms)",
            ],
            &rows,
        );
    }
    println!("\n(paper shape: XKaapi ≥ Quark everywhere; the gap is largest at NB=128 where");
    println!(" the central list is contended; XKaapi close to PLASMA/static; at n=3000");
    println!(" NB=128 reaches ~150 GFlop/s vs ~105 at NB=224 — fewer, coarser tasks");
    println!(" reduce average parallelism)");

    // --- real cross-check at small size --------------------------------
    println!("\n## Real cross-check (n=256, NB=32, 4 threads on this host)");
    use std::sync::Arc;
    use xkaapi_linalg::{
        cholesky_quark, cholesky_seq, cholesky_static, cholesky_xkaapi, TiledMatrix,
    };
    use xkaapi_quark::Quark;
    let orig = TiledMatrix::spd_random(256, 32, 9);
    let mut reference = orig.clone_matrix();
    cholesky_seq(&mut reference).unwrap();

    let rt = Arc::new(xkaapi_core::Runtime::new(4));
    let a = cholesky_xkaapi(&rt, orig.clone_matrix()).unwrap();
    println!(
        "xkaapi dataflow  : max|Δ| vs seq = {:.2e}",
        a.max_abs_diff_lower(&reference)
    );

    let q = Quark::new_centralized(4);
    let mut b = orig.clone_matrix();
    cholesky_quark(&q, &mut b).unwrap();
    println!(
        "quark centralized: max|Δ| vs seq = {:.2e}",
        b.max_abs_diff_lower(&reference)
    );

    let q2 = Quark::new_on_xkaapi(rt);
    let mut c = orig.clone_matrix();
    cholesky_quark(&q2, &mut c).unwrap();
    println!(
        "quark on xkaapi  : max|Δ| vs seq = {:.2e}",
        c.max_abs_diff_lower(&reference)
    );

    let mut d = orig.clone_matrix();
    cholesky_static(4, &mut d).unwrap();
    println!(
        "plasma static    : max|Δ| vs seq = {:.2e}",
        d.max_abs_diff_lower(&reference)
    );
}
