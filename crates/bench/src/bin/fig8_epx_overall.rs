//! Fig. 8 — overall EPX gains: total time decomposition (repera / loopelm
//! / Cholesky / other) against core count, for MEPPEN and MAXPLANE.
//!
//! The 1-core decomposition is *measured for real* by running the EPX
//! mini-app sequentially on this host. Each phase is then scaled by its
//! simulated speedup: the two loops by the adaptive-loop simulator (with
//! each scenario's memory intensity), the skyline Cholesky by the data-flow
//! DAG simulator on the scenario's H matrix, and "other" stays serial —
//! Amdahl's law on the ≈30 % remainder, exactly the paper's point.
//!
//! Usage: `fig8_epx_overall [scale]` (default 1).

use xkaapi_bench::{
    calibrate_kernels, print_table, scale_costs, skyline_dag, ws_policy, PAPER_CORES,
};
use xkaapi_epx::{assemble_h, repera, run, ExecMode, Material, Mesh, Scenario, State};
use xkaapi_sim::{loop_speedups, simulate_dag, LoopPolicy, LoopWorkload, Platform};
use xkaapi_skyline::BlockSkyline;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("# Fig. 8 — EPX total time decomposition vs cores (X-Kaapi)");

    for sc in [Scenario::meppen(scale), Scenario::maxplane(scale)] {
        // --- real sequential run: the 1-core decomposition --------------
        let r = run(&sc, &ExecMode::Seq);
        let t = r.times;
        println!(
            "\n{}: sequential decomposition (real, this host): repera {:.3}s loopelm {:.3}s cholesky {:.3}s other {:.3}s (checksum {:.6})",
            sc.name, t.repera, t.loopelm, t.cholesky, t.other, r.checksum
        );

        // --- per-phase speedup models -----------------------------------
        let le_bytes = (sc.history_len * 16 + 64) as u64;
        let w_le = LoopWorkload::jittered(50_000, 2_000, 0.3, le_bytes, 5);
        let w_rp = LoopWorkload::jittered(50_000, 4_000, 0.4, 128, 6);
        let pol = LoopPolicy::KaapiAdaptive {
            grain: 64,
            steal_ns: 400,
        };
        let s_le = loop_speedups(&w_le, &pol, &PAPER_CORES);
        let s_rp = loop_speedups(&w_rp, &pol, &PAPER_CORES);

        // Cholesky speedups from the scenario's real H matrix DAG.
        let mesh = Mesh::block(sc.mesh.0, sc.mesh.1, sc.mesh.2);
        let state = State::new(&mesh, sc.history_len, 0xEBF);
        let _ = Material::default();
        let cands = repera(
            &mesh,
            &state,
            sc.repera_intensity,
            sc.gap_threshold,
            &ExecMode::Seq,
        );
        let active = &cands[..cands.len().min(sc.h_max_size)];
        let h = assemble_h(active, sc.h_min_size);
        let bsk = BlockSkyline::from_skyline(&h, sc.h_block_size);
        let kcosts = scale_costs(&calibrate_kernels(32), sc.h_block_size);
        let dag = skyline_dag(&bsk, &kcosts, false);
        let t1 = simulate_dag(&Platform::magny_cours(1), &dag, &ws_policy(), 1).makespan_ns as f64;
        let s_ch: Vec<f64> = PAPER_CORES
            .iter()
            .map(|&c| {
                let tc = simulate_dag(&Platform::magny_cours(c), &dag, &ws_policy(), 1).makespan_ns;
                (t1 / tc as f64).max(1.0)
            })
            .collect();

        // --- compose the stacked bars ------------------------------------
        let rows: Vec<Vec<String>> = PAPER_CORES
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let repera_t = t.repera / s_rp[i].1.max(1.0);
                let loopelm_t = t.loopelm / s_le[i].1.max(1.0);
                let chol_t = t.cholesky / s_ch[i];
                let total = repera_t + loopelm_t + chol_t + t.other;
                vec![
                    c.to_string(),
                    format!("{:.3}", repera_t),
                    format!("{:.3}", loopelm_t),
                    format!("{:.3}", chol_t),
                    format!("{:.3}", t.other),
                    format!("{:.3}", total),
                    format!("{:.2}", t.total() / total),
                ]
            })
            .collect();
        print_table(
            &format!("{} (seconds per phase; H order {})", sc.name, h.n),
            &[
                "cores", "repera", "loopelm", "Cholesky", "other", "total", "speedup",
            ],
            &rows,
        );
    }
    println!("\n(paper: gains flatten as the serial 'other' ≈30 % dominates — Amdahl;");
    println!(" MEPPEN driven by the two loops, MAXPLANE by the Cholesky)");
}
