//! Render the perf trajectory across the committed `BENCH_PR*.json`
//! snapshots: an ASCII table plus bar strips on stdout, and a
//! dependency-free SVG line chart (`bench_trend.svg`) suitable as a CI
//! artifact.
//!
//! Usage: `trend [dir]` — scans `dir` (default `.`) for `BENCH_PR*.json`,
//! reads the gated metrics of each (see `xkaapi_bench::check`), and
//! writes `bench_trend.svg` into the same directory. Snapshots are taken
//! as they come: metrics missing from old files (e.g. `jobs_per_s`
//! before PR 4, `speedup_vs_online` before PR 7, the per-band p99
//! latency series before PR 9) simply start later in the series, and an
//! unreadable snapshot is skipped with a warning instead of sinking the
//! whole render.

use std::path::{Path, PathBuf};
use xkaapi_bench::check::{leaf_value, GATE_METRICS};
use xkaapi_bench::print_table;

/// Per-band p99 submit→start latency from the PR 9 `telemetry` snapshot
/// section. Plotted alongside the gated metrics but deliberately **not**
/// part of `GATE_METRICS`: latency is lower-is-better, so it would
/// invert the regression gate's direction. Snapshots older than PR 9
/// lack the section and render as gaps, like any late-starting series.
const LATENCY_METRICS: [(&str, &str); 3] = [
    ("latency", "p99_high_ns"),
    ("latency", "p99_normal_ns"),
    ("latency", "p99_low_ns"),
];

/// All plotted series: the gate metrics first, then the latency bands.
fn trend_metrics() -> Vec<(&'static str, &'static str)> {
    GATE_METRICS
        .iter()
        .copied()
        .chain(LATENCY_METRICS.iter().copied())
        .collect()
}

/// `(pr, metric values in [`trend_metrics`] order, missing = NaN)`.
struct Snapshot {
    pr: u32,
    values: Vec<f64>,
}

fn load_snapshots(dir: &Path) -> Vec<Snapshot> {
    let entries = match dir.read_dir() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("trend: cannot read {}: {e}", dir.display());
            return Vec::new();
        }
    };
    let mut snaps: Vec<(u32, PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(n) = name
            .strip_prefix("BENCH_PR")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u32>().ok())
        {
            snaps.push((n, entry.path()));
        }
    }
    snaps.sort_unstable_by_key(|(n, _)| *n);
    snaps
        .into_iter()
        .filter_map(|(pr, path)| {
            // Old snapshots legitimately lack newer sections (the per-key
            // lookup leaves those NaN); a file that cannot be read at all
            // is warned about and skipped, so one bad snapshot never
            // sinks the whole trajectory render.
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("trend: skipping {}: {e}", path.display());
                    return None;
                }
            };
            let metrics = trend_metrics();
            let mut values = vec![f64::NAN; metrics.len()];
            for (v, (_, key)) in values.iter_mut().zip(metrics) {
                if let Some(x) = leaf_value(&text, key) {
                    *v = x;
                }
            }
            Some(Snapshot { pr, values })
        })
        .collect()
}

/// A unicode bar strip scaled to the series maximum (NaN renders empty).
fn strip(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().copied().fold(0.0f64, f64::max);
    series
        .iter()
        .map(|&v| {
            if !v.is_finite() || max <= 0.0 {
                ' '
            } else {
                BARS[((v / max * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

fn svg(snaps: &[Snapshot]) -> String {
    const W: f64 = 640.0;
    const PLOT_H: f64 = 110.0;
    const PAD_L: f64 = 70.0;
    const PAD_R: f64 = 20.0;
    let metrics = trend_metrics();
    let h = PLOT_H * metrics.len() as f64 + 30.0;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{h}\" \
         font-family=\"monospace\" font-size=\"11\">\n\
         <rect width=\"{W}\" height=\"{h}\" fill=\"white\"/>\n\
         <text x=\"{PAD_L}\" y=\"16\" font-size=\"13\">xkaapi perf trajectory \
         (BENCH_PR*.json)</text>\n"
    );
    let xs: Vec<f64> = (0..snaps.len())
        .map(|i| {
            PAD_L
                + (W - PAD_L - PAD_R)
                    * if snaps.len() > 1 {
                        i as f64 / (snaps.len() - 1) as f64
                    } else {
                        0.5
                    }
        })
        .collect();
    for (m, &(bench, key)) in metrics.iter().enumerate() {
        let top = 24.0 + PLOT_H * m as f64;
        let base = top + PLOT_H - 24.0;
        let series: Vec<f64> = snaps.iter().map(|s| s.values[m]).collect();
        let max = series.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        let y = |v: f64| base - (v / max) * (PLOT_H - 40.0);
        let pts: Vec<String> = series
            .iter()
            .zip(&xs)
            .filter(|(v, _)| v.is_finite())
            .map(|(&v, &x)| format!("{x:.1},{:.1}", y(v)))
            .collect();
        out += &format!(
            "<text x=\"6\" y=\"{:.1}\">{bench}</text>\n\
             <text x=\"6\" y=\"{:.1}\" fill=\"gray\">{key}</text>\n\
             <line x1=\"{PAD_L}\" y1=\"{base:.1}\" x2=\"{:.1}\" y2=\"{base:.1}\" \
             stroke=\"#ccc\"/>\n\
             <polyline points=\"{}\" fill=\"none\" stroke=\"#2266cc\" \
             stroke-width=\"2\"/>\n",
            top + 34.0,
            top + 48.0,
            W - PAD_R,
            pts.join(" ")
        );
        for (s, &x) in snaps.iter().zip(&xs) {
            let v = s.values[m];
            if !v.is_finite() {
                continue;
            }
            out += &format!(
                "<circle cx=\"{x:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#2266cc\"/>\n\
                 <text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n\
                 <text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\" \
                 fill=\"gray\">PR{}</text>\n",
                y(v),
                y(v) - 8.0,
                fmt_val(v),
                base + 14.0,
                s.pr
            );
        }
    }
    out += "</svg>\n";
    out
}

fn fmt_val(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.2}")
    }
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let snaps = load_snapshots(&dir);
    if snaps.is_empty() {
        eprintln!("no BENCH_PR*.json snapshots in {}", dir.display());
        std::process::exit(1);
    }
    let mut rows = Vec::new();
    for (m, (bench, key)) in trend_metrics().into_iter().enumerate() {
        let series: Vec<f64> = snaps.iter().map(|s| s.values[m]).collect();
        rows.push(vec![
            format!("{bench} ({key})"),
            strip(&series),
            series
                .iter()
                .zip(&snaps)
                .map(|(&v, s)| {
                    if v.is_finite() {
                        format!("PR{}:{}", s.pr, fmt_val(v))
                    } else {
                        format!("PR{}:-", s.pr)
                    }
                })
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    print_table(
        &format!("Perf trend over {} snapshots", snaps.len()),
        &["metric", "trend", "values"],
        &rows,
    );
    let path = dir.join("bench_trend.svg");
    std::fs::write(&path, svg(&snaps)).expect("write trend svg");
    println!("\nwrote {}", path.display());
}
