//! Ablation study of the two scheduler optimisations the paper singles out
//! (§II-C): steal-request **aggregation** and the **ready-list** (graph
//! mode) acceleration — plus the adaptive-loop grain.
//!
//! Two parts:
//! 1. real-machine ablations on this host (multi-worker, 1 core —
//!    correctness-preserving, contention-visible);
//! 2. simulator ablations on the 48-core model, where the idle-thief
//!    population that aggregation helps with actually exists.
//!
//! Usage: `ablation`

use std::sync::atomic::{AtomicUsize, Ordering};
use xkaapi_bench::{measure_ns, print_table};
use xkaapi_core::{PromotionPolicy, Runtime, Shared};
use xkaapi_sim::{simulate_dag, DagPolicy, Platform, SimTask, TaskDag};

fn main() {
    println!("# Ablations: request aggregation & ready-list promotion");

    // --- real: ready-list on/off on a wide data-flow frame --------------
    let mut rows = Vec::new();
    for (label, enabled) in [("ready-list ON", true), ("ready-list OFF", false)] {
        let rt = Runtime::builder()
            .workers(4)
            .promotion(PromotionPolicy { enabled, promote_len: 16, promote_scans: 2 })
            .build();
        let t = measure_ns(5, || {
            let handles: Vec<Shared<u64>> = (0..512).map(|_| Shared::new(0)).collect();
            rt.scope(|ctx| {
                for h in &handles {
                    let hw = h.clone();
                    ctx.spawn([h.write()], move |t| {
                        *t.write(&hw) += 1;
                        std::hint::black_box((0..500).sum::<u64>());
                    });
                }
            });
        });
        let s = rt.stats();
        rows.push(vec![
            label.into(),
            format!("{:.2}", t as f64 / 1e6),
            s.promotions.to_string(),
            s.tasks_executed_stolen.to_string(),
        ]);
    }
    print_table(
        "Real: 512 independent writers, 4 workers (this host)",
        &["variant", "time (ms)", "promotions", "stolen"],
        &rows,
    );

    // --- real: aggregation on/off under thief pressure ------------------
    let mut rows = Vec::new();
    for (label, agg) in [("aggregation ON", true), ("aggregation OFF", false)] {
        let rt = Runtime::builder().workers(4).aggregation(agg).build();
        let t = measure_ns(5, || {
            let sum = AtomicUsize::new(0);
            rt.scope(|ctx| {
                let sum = &sum;
                for _ in 0..2000 {
                    ctx.spawn([], move |_| {
                        sum.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 2000);
        });
        let s = rt.stats();
        rows.push(vec![
            label.into(),
            format!("{:.2}", t as f64 / 1e6),
            s.combine_batches.to_string(),
            s.aggregated_requests.to_string(),
        ]);
    }
    print_table(
        "Real: 2000 fine tasks, 4 workers (this host)",
        &["variant", "time (ms)", "combines", "aggregated reqs"],
        &rows,
    );

    // --- simulated: aggregation at 48 cores ------------------------------
    // Spine + fan-out workload: many simultaneously idle thieves hammer one
    // victim, the regime the paper's aggregation targets.
    let mut tasks = Vec::new();
    let mut acc: Vec<Vec<(u64, bool)>> = Vec::new();
    for g in 0..60u64 {
        tasks.push(SimTask { work_ns: 25_000, bytes: 0 });
        acc.push(vec![(0, true)]);
        for j in 0..47u64 {
            tasks.push(SimTask { work_ns: 5_000, bytes: 0 });
            acc.push(vec![(0, false), (1_000 + g * 64 + j, true)]);
        }
    }
    let dag = TaskDag::from_accesses(tasks, &acc);
    let p48 = Platform::magny_cours(48);
    let mut rows = Vec::new();
    for (label, aggregation) in [("aggregation ON", true), ("aggregation OFF", false)] {
        let pol = DagPolicy::WorkStealing {
            steal_ns: 400,
            task_overhead_ns: 50,
            aggregation,
            spawn_ns: 0,
        };
        let r = simulate_dag(&p48, &dag, &pol, 7);
        rows.push(vec![
            label.into(),
            format!("{:.3}", r.makespan_ns as f64 / 1e6),
            r.steals.to_string(),
        ]);
    }
    print_table(
        "Simulated: spine + 47-wide fan-out, 48 virtual cores",
        &["variant", "makespan (ms)", "steals"],
        &rows,
    );

    // --- simulated: loop grain sweep (adaptive foreach) ------------------
    use xkaapi_sim::{simulate_loop, LoopPolicy, LoopWorkload};
    let w = LoopWorkload::jittered(100_000, 2_000, 0.4, 0, 3);
    let mut rows = Vec::new();
    for grain in [1usize, 8, 64, 512, 4096] {
        let r = simulate_loop(
            &p48,
            &w,
            &LoopPolicy::KaapiAdaptive { grain, steal_ns: 400 },
        );
        rows.push(vec![
            grain.to_string(),
            format!("{:.3}", r.makespan_ns as f64 / 1e6),
            r.chunks.to_string(),
            r.steals.to_string(),
        ]);
    }
    print_table(
        "Simulated: adaptive-loop grain sweep, 100k jittered iterations, 48 cores",
        &["grain", "makespan (ms)", "chunks", "steals"],
        &rows,
    );
    println!("\n(too-fine grains pay per-chunk costs; too-coarse grains lose balance —");
    println!(" the on-demand splitting keeps the middle flat, the paper's §II-D point)");
}
